// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Every persisted artifact of the storage layer — snapshot sections and
// WAL records — carries a CRC so that corruption (bit rot, torn writes,
// truncation) is detected at load time instead of silently producing a
// wrong sheet. CRC-32 detects all single-burst errors up to 32 bits,
// which covers the single-byte corruption the fuzz suites inject.

#ifndef TACO_STORE_CHECKSUM_H_
#define TACO_STORE_CHECKSUM_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace taco {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// Extends a running CRC with `data`; start from `Crc32()`'s default to
/// checksum one buffer, or chain calls to cover discontiguous spans.
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  uint32_t crc = ~seed;
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ internal::kCrc32Table[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

}  // namespace taco

#endif  // TACO_STORE_CHECKSUM_H_
