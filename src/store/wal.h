// Per-session write-ahead log (.wal).
//
// Durability contract of the workbook service: every acknowledged
// Edit/EditBatch is appended (and fsynced) to the session's WAL before
// the response is returned, so a crash between checkpoints loses nothing
// that a client was told succeeded. A checkpoint (snapshot save) rotates
// the log: the new, empty log's header records the snapshot path, and
// recovery is "load that snapshot, replay the log tail".
//
// On-disk layout:
//
//   header   magic "TWAL", version, snapshot path and graph-backend key
//            (length-prefixed), CRC32 over everything before it. The
//            header is only ever written whole via temp-file + rename
//            (creation and rotation), so it is either complete and
//            valid or the file does not exist — torn headers cannot
//            occur. The backend key makes recovery rebuild the session
//            with the graph implementation it was created with, same
//            as a parked reload.
//   records  appended in place, each:
//              u32 payload length | u32 payload CRC32 | payload
//            payload = u32 edit count, then the encoded edits.
//
// Torn-tail tolerance: appends are the only in-place writes, so a crash
// can leave at most one partial record at the end. On open, a record
// that extends past EOF (or a trailing CRC mismatch) is silently
// truncated — those edits were never acknowledged. A CRC mismatch on an
// INTERIOR record (valid records follow it) cannot be a torn append; it
// is corruption and fails the open with DataLoss rather than replaying
// wrong data.

#ifndef TACO_STORE_WAL_H_
#define TACO_STORE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "eval/recalc.h"
#include "sheet/sheet.h"
#include "store/group_commit.h"

namespace taco {

/// Notable WAL lifecycle moments, reported through WalOptions::observer
/// so the owning layer can log them without the store depending on any
/// logging machinery.
enum class WalEvent {
  kRotate,         ///< Checkpoint rotation swapped in a fresh log.
  kAppendFailure,  ///< An append (write or fsync) failed; detail = error.
};

struct WalOptions {
  /// fsync after every append (the durability contract). Benchmarks may
  /// turn it off to measure the encode/write path alone.
  bool sync = true;
  /// Deferred sync: when set (and sync is on), Append does not fsync
  /// inline — it enqueues a flush ticket with this shared committer and
  /// the durability wait happens on the ticket instead, letting many
  /// appends share one fsync. Non-owning; must outlive the log.
  GroupCommitter* group_commit = nullptr;
  /// Records larger than this are rejected at append and treated as
  /// corruption at replay (a frame this size cannot be genuine).
  uint32_t max_record_bytes = 64u << 20;
  /// Optional event hook, invoked synchronously on the appending thread
  /// with the log's path as context. Must not call back into the log.
  std::function<void(WalEvent event, const std::string& path,
                     const std::string& detail)>
      observer;
};

/// The atomically-written metadata at the front of every log.
struct WalHeader {
  std::string snapshot_path;  ///< Snapshot this log extends; may be empty.
  std::string backend;        ///< Graph-backend key of the session.
};

/// What replaying an existing log found.
struct WalRecovery {
  uint64_t records = 0;       ///< Complete records replayed.
  uint64_t edits = 0;         ///< Edits contained in those records.
  uint64_t bytes = 0;         ///< Valid log length (post-truncation size).
  bool torn_tail = false;     ///< A partial final record was dropped.
  WalHeader header;
};

/// An open, appendable write-ahead log bound to one file.
class WriteAheadLog {
 public:
  using ReplayFn = std::function<Status(const EditBatch&)>;

  /// Opens `path` for appending, creating it (with `header`) when
  /// absent. Existing records are replayed in order through `replay`
  /// (which may be null to skip application) and a torn tail is
  /// truncated off the file; interior corruption fails with DataLoss
  /// and leaves the file untouched. `header` seeds the file only when
  /// it is being created.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      std::string path, const WalOptions& options,
      const ReplayFn& replay = nullptr, WalRecovery* recovery = nullptr,
      const WalHeader& header = {});

  /// Creates (or truncates) `path` as an empty log with `header`.
  /// Atomic via temp-then-rename.
  static Result<std::unique_ptr<WriteAheadLog>> Create(
      std::string path, const WalOptions& options, const WalHeader& header);

  /// Read-only scan of an existing log (no truncation, no writer) — the
  /// recovery-test oracle and offline inspection path. Torn tails are
  /// reported, interior corruption is DataLoss.
  static Result<WalRecovery> Replay(const std::string& path,
                                    const ReplayFn& replay,
                                    const WalOptions& options = {});

  /// The header of an existing log. Reads only the (bounded) header
  /// region, not the records — cheap even on a long log.
  static Result<WalHeader> PeekHeader(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record holding `edits`, fsyncing before returning when
  /// options.sync is set. Empty spans are a no-op. Under group commit
  /// (options.group_commit set), the record is written but not yet
  /// durable on return: a non-null `ticket` receives the flush ticket
  /// for the caller to Wait on AFTER releasing its own lock; with a
  /// null `ticket` the append waits for the group flush inline, so the
  /// fsync-before-return contract holds either way.
  Status Append(std::span<const Edit> edits,
                GroupCommitTicket* ticket = nullptr);

  /// Swaps the file for an empty log with `header` — the checkpoint
  /// rotation. Atomic: a crash leaves either the full old log or the
  /// fresh empty one.
  Status Rotate(const WalHeader& header);

  const std::string& path() const { return path_; }
  /// Current on-disk size in bytes (header + records).
  uint64_t bytes() const { return bytes_; }
  /// Records appended through THIS handle since open/rotate.
  uint64_t appended_records() const { return appended_records_; }
  /// Duration of the durability wait in the most recent Append (0 when
  /// sync is off, nothing was appended yet, or the append handed out a
  /// group-commit ticket — then the caller measures its own ticket
  /// wait). The durability wait is usually the dominant term of a
  /// mutation's latency; trace spans report it as its own phase so it
  /// is never mistaken for compute.
  uint64_t last_sync_ns() const { return last_sync_ns_; }

 private:
  WriteAheadLog(std::string path, WalOptions options, int fd,
                uint64_t bytes);

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t bytes_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t last_sync_ns_ = 0;
};

/// Applies one logged edit directly to a sheet (no graph, no recalc) —
/// the replay primitive. Recovery rebuilds the graph and evaluates after
/// the full replay, so intermediate recalcs would be wasted work.
Status ApplyEditToSheet(Sheet* sheet, const Edit& edit);

}  // namespace taco

#endif  // TACO_STORE_WAL_H_
