// Little-endian byte encoding helpers shared by the binary snapshot
// format and the write-ahead log.
//
// ByteWriter appends fixed-width scalars and length-prefixed strings to a
// std::string. ByteReader is the bounds-checked inverse: every accessor
// returns false once the input is exhausted instead of reading past the
// end, so a truncated or corrupted buffer can never walk out of bounds —
// the caller turns the failure into a DataLoss status.

#ifndef TACO_STORE_BYTES_H_
#define TACO_STORE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace taco {

class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  void Raw(std::string_view s) { out_->append(s.data(), s.size()); }

  /// LEB128 varint: 7 bits per byte, high bit = continue. Small values
  /// (cell coordinate deltas, string lengths) cost one byte.
  void VarU64(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    out_->push_back(static_cast<char>(v));
  }
  void VarU32(uint32_t v) { VarU64(v); }
  /// Zigzag-encoded signed varint (small magnitudes of either sign are
  /// one byte).
  void VarI32(int32_t v) {
    VarU32((static_cast<uint32_t>(v) << 1) ^
           static_cast<uint32_t>(v >> 31));
  }
  /// Varint length prefix + raw bytes.
  void VarStr(std::string_view s) {
    VarU64(s.size());
    out_->append(s.data(), s.size());
  }

  size_t size() const { return out_->size(); }

 private:
  void AppendLe(const void* v, size_t n) {
    // Serialize explicitly little-endian so files are portable across
    // hosts regardless of native byte order.
    const auto* bytes = static_cast<const unsigned char*>(v);
    uint64_t value = 0;
    std::memcpy(&value, bytes, n);
    for (size_t i = 0; i < n; ++i) {
      out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
    }
  }

  std::string* out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) { return ReadLe(v); }
  bool U64(uint64_t* v) { return ReadLe(v); }
  bool I32(int32_t* v) {
    uint32_t raw;
    if (!U32(&raw)) return false;
    *v = static_cast<int32_t>(raw);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Reads a u32 length prefix + that many bytes. The view aliases the
  /// underlying buffer. `max_len` bounds hostile prefixes.
  bool Str(std::string_view* s, uint32_t max_len = 1u << 30) {
    uint32_t len;
    if (!U32(&len)) return false;
    if (len > max_len || pos_ + len > data_.size()) return false;
    *s = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  bool VarU64(uint64_t* v) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte;
      if (!U8(&byte)) return false;
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *v = value;
        return true;
      }
    }
    return false;  // Over-long encoding: corrupt.
  }
  bool VarU32(uint32_t* v) {
    uint64_t wide;
    if (!VarU64(&wide) || wide > 0xFFFFFFFFull) return false;
    *v = static_cast<uint32_t>(wide);
    return true;
  }
  bool VarI32(int32_t* v) {
    uint32_t raw;
    if (!VarU32(&raw)) return false;
    *v = static_cast<int32_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }
  bool VarStr(std::string_view* s, uint64_t max_len = 1ull << 30) {
    uint64_t len;
    if (!VarU64(&len)) return false;
    if (len > max_len || pos_ + len > data_.size()) return false;
    *s = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  bool ReadLe(T* v) {
    if (pos_ + sizeof(T) > data_.size()) return false;
    uint64_t value = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    std::memcpy(v, &value, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace taco

#endif  // TACO_STORE_BYTES_H_
