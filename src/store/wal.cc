#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/clock.h"

#include "store/bytes.h"
#include "store/checksum.h"

namespace taco {
namespace {

constexpr std::string_view kWalMagic = "TWAL";
constexpr uint32_t kWalVersion = 1;

Status WalCorrupt(const std::string& path, std::string_view detail) {
  return Status::DataLoss("wal '" + path + "': " + std::string(detail));
}

/// Bounds each header string (snapshot path / backend key): far above
/// any real value, small enough that PeekHeader can read a fixed-size
/// prefix instead of the whole log.
constexpr uint32_t kMaxHeaderString = 64u << 10;

std::string EncodeHeader(const WalHeader& header) {
  std::string out;
  ByteWriter w(&out);
  w.Raw(kWalMagic);
  w.U32(kWalVersion);
  w.Str(header.snapshot_path);
  w.Str(header.backend);
  w.U32(Crc32(out));
  return out;
}

/// Parses the header at the front of `data`. Returns the header length,
/// or an error; a file too short to hold its own header is corruption
/// (headers are written atomically, never appended piecemeal).
Result<size_t> DecodeHeader(const std::string& path, std::string_view data,
                            WalHeader* header) {
  ByteReader r(data);
  if (data.size() < kWalMagic.size() ||
      data.substr(0, kWalMagic.size()) != kWalMagic) {
    return Status::ParseError("'" + path + "' is not a write-ahead log");
  }
  uint8_t skip;
  for (size_t i = 0; i < kWalMagic.size(); ++i) r.U8(&skip);
  uint32_t version, crc;
  std::string_view snap, backend;
  if (!r.U32(&version) || !r.Str(&snap, kMaxHeaderString) ||
      !r.Str(&backend, kMaxHeaderString) || !r.U32(&crc)) {
    return WalCorrupt(path, "truncated header");
  }
  size_t header_len = r.position();
  if (Crc32(data.substr(0, header_len - 4)) != crc) {
    return WalCorrupt(path, "header CRC mismatch");
  }
  if (version != kWalVersion) {
    return Status::Unsupported("wal '" + path + "' version " +
                               std::to_string(version));
  }
  header->snapshot_path = std::string(snap);
  header->backend = std::string(backend);
  return header_len;
}

void EncodeEdit(const Edit& edit, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(edit.kind));
  switch (edit.kind) {
    case Edit::Kind::kSetNumber:
      w->I32(edit.cell.col);
      w->I32(edit.cell.row);
      w->F64(edit.number);
      return;
    case Edit::Kind::kSetText:
    case Edit::Kind::kSetFormula:
      w->I32(edit.cell.col);
      w->I32(edit.cell.row);
      w->Str(edit.text);
      return;
    case Edit::Kind::kClearRange:
      w->I32(edit.range.head.col);
      w->I32(edit.range.head.row);
      w->I32(edit.range.tail.col);
      w->I32(edit.range.tail.row);
      return;
  }
}

bool DecodeEdit(ByteReader* r, Edit* edit) {
  uint8_t kind;
  if (!r->U8(&kind) || kind > static_cast<uint8_t>(Edit::Kind::kClearRange)) {
    return false;
  }
  edit->kind = static_cast<Edit::Kind>(kind);
  switch (edit->kind) {
    case Edit::Kind::kSetNumber:
      return r->I32(&edit->cell.col) && r->I32(&edit->cell.row) &&
             r->F64(&edit->number);
    case Edit::Kind::kSetText:
    case Edit::Kind::kSetFormula: {
      std::string_view text;
      if (!r->I32(&edit->cell.col) || !r->I32(&edit->cell.row) ||
          !r->Str(&text)) {
        return false;
      }
      edit->text = std::string(text);
      return true;
    }
    case Edit::Kind::kClearRange:
      return r->I32(&edit->range.head.col) && r->I32(&edit->range.head.row) &&
             r->I32(&edit->range.tail.col) && r->I32(&edit->range.tail.row);
  }
  return false;
}

/// Scans `data` (header already skipped) record by record. Returns the
/// number of bytes of intact records (relative to `data`), reporting each
/// decoded batch through `replay`. Distinguishes a torn tail (truncate)
/// from interior corruption (DataLoss) by whether the failure consumes
/// exactly the rest of the file.
Result<size_t> ScanRecords(const std::string& path, std::string_view data,
                           const WalOptions& options,
                           const WriteAheadLog::ReplayFn& replay,
                           WalRecovery* recovery) {
  size_t pos = 0;
  while (pos < data.size()) {
    size_t remaining = data.size() - pos;
    if (remaining < 8) {
      recovery->torn_tail = true;  // Partial record header.
      break;
    }
    ByteReader frame(data.substr(pos, 8));
    uint32_t len, crc;
    frame.U32(&len);
    frame.U32(&crc);
    // Torn-tail test FIRST: a record extending past EOF is by
    // definition the tail, even when its length field is implausible —
    // classifying it as corruption would make a recoverable crash
    // permanently unrecoverable.
    if (len > remaining - 8) {
      recovery->torn_tail = true;  // Payload cut off by the crash.
      break;
    }
    if (len > options.max_record_bytes) {
      return WalCorrupt(path, "record length " + std::to_string(len) +
                                  " exceeds the limit");
    }
    std::string_view payload = data.substr(pos + 8, len);
    if (Crc32(payload) != crc) {
      if (pos + 8 + len == data.size()) {
        // The final record: a torn in-place overwrite, not corruption.
        recovery->torn_tail = true;
        break;
      }
      return WalCorrupt(path,
                        "record " + std::to_string(recovery->records + 1) +
                            " CRC mismatch");
    }
    ByteReader body(payload);
    uint32_t edit_count;
    if (!body.U32(&edit_count) || edit_count > body.remaining()) {
      return WalCorrupt(path, "record " +
                                  std::to_string(recovery->records + 1) +
                                  " has a malformed edit count");
    }
    EditBatch batch;
    batch.reserve(edit_count);
    for (uint32_t i = 0; i < edit_count; ++i) {
      Edit edit;
      if (!DecodeEdit(&body, &edit)) {
        return WalCorrupt(path, "record " +
                                    std::to_string(recovery->records + 1) +
                                    " has a malformed edit");
      }
      batch.push_back(std::move(edit));
    }
    if (!body.AtEnd()) {
      return WalCorrupt(path, "record " +
                                  std::to_string(recovery->records + 1) +
                                  " has trailing bytes");
    }
    if (replay != nullptr) {
      TACO_RETURN_IF_ERROR(replay(batch));
    }
    ++recovery->records;
    recovery->edits += edit_count;
    pos += 8 + len;
  }
  return pos;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("stat '" + path + "': " + std::strerror(err));
  }
  std::string data;
  data.resize(static_cast<size_t>(st.st_size));
  size_t total = 0;
  while (total < data.size()) {
    ssize_t n = ::read(fd, data.data() + total, data.size() - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError("read '" + path + "': " + std::strerror(err));
    }
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fd);
  data.resize(total);
  return data;
}

/// Writes a fresh header-only log at `path` via temp + rename and opens
/// it for appending. Returns the open fd and size.
Result<std::pair<int, uint64_t>> CreateFreshLog(const std::string& path,
                                                const WalHeader& meta) {
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  std::string header = EncodeHeader(meta);
  int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create '" + tmp +
                           "': " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < header.size()) {
    ssize_t n = ::write(fd, header.data() + written, header.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("write '" + tmp + "': " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("fsync '" + tmp + "': " + std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' to '" + path +
                           "': " + std::strerror(err));
  }
  // The rename is only durable once the directory itself is synced; a
  // failure here means a crash could resurface the OLD log (or none),
  // so it must fail the create like the file fsync above — not weaken
  // the crash guarantee silently. The rename already happened, so the
  // file is left in place for a retry rather than unlinked.
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("open dir '" + dir + "': " + std::strerror(err));
  }
  if (::fsync(dir_fd) != 0) {
    int err = errno;
    ::close(dir_fd);
    ::close(fd);
    return Status::IoError("fsync dir '" + dir +
                           "': " + std::strerror(err));
  }
  ::close(dir_fd);
  return std::make_pair(fd, static_cast<uint64_t>(header.size()));
}

}  // namespace

Status ApplyEditToSheet(Sheet* sheet, const Edit& edit) {
  switch (edit.kind) {
    case Edit::Kind::kSetNumber:
      return sheet->SetNumber(edit.cell, edit.number);
    case Edit::Kind::kSetText:
      return sheet->SetText(edit.cell, edit.text);
    case Edit::Kind::kSetFormula:
      return sheet->SetFormula(edit.cell, edit.text);
    case Edit::Kind::kClearRange:
      return sheet->ClearRange(edit.range);
  }
  return Status::Internal("unknown edit kind");
}

WriteAheadLog::WriteAheadLog(std::string path, WalOptions options, int fd,
                             uint64_t bytes)
    : path_(std::move(path)), options_(options), fd_(fd), bytes_(bytes) {}

WriteAheadLog::~WriteAheadLog() {
  // Any ticket still pending must resolve before the fd dies (waiters
  // hold the owning session alive, so in practice the queue is empty —
  // this is the backstop that makes closing the fd always safe).
  if (options_.group_commit != nullptr) options_.group_commit->Drain(this);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    std::string path, const WalOptions& options, const ReplayFn& replay,
    WalRecovery* recovery, const WalHeader& header) {
  WalRecovery local;
  WalRecovery* rec = recovery != nullptr ? recovery : &local;
  *rec = WalRecovery{};

  if (!std::filesystem::exists(path)) {
    auto fresh = CreateFreshLog(path, header);
    if (!fresh.ok()) return fresh.status();
    rec->header = header;
    rec->bytes = fresh->second;
    return std::unique_ptr<WriteAheadLog>(
        new WriteAheadLog(std::move(path), options, fresh->first,
                          fresh->second));
  }

  auto data = ReadWholeFile(path);
  if (!data.ok()) return data.status();
  auto header_len = DecodeHeader(path, *data, &rec->header);
  if (!header_len.ok()) return header_len.status();
  auto valid = ScanRecords(path, std::string_view(*data).substr(*header_len),
                           options, replay, rec);
  if (!valid.ok()) return valid.status();
  uint64_t valid_bytes = *header_len + *valid;
  rec->bytes = valid_bytes;

  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("cannot reopen '" + path +
                           "': " + std::strerror(errno));
  }
  if (valid_bytes < data->size()) {
    // Drop the torn tail so the next append starts on a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
      int err = errno;
      ::close(fd);
      return Status::IoError("truncate '" + path +
                             "': " + std::strerror(err));
    }
    if (options.sync) ::fsync(fd);
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("seek '" + path + "': " + std::strerror(err));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), options, fd, valid_bytes));
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    std::string path, const WalOptions& options, const WalHeader& header) {
  auto fresh = CreateFreshLog(path, header);
  if (!fresh.ok()) return fresh.status();
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(
      std::move(path), options, fresh->first, fresh->second));
}

Result<WalRecovery> WriteAheadLog::Replay(const std::string& path,
                                          const ReplayFn& replay,
                                          const WalOptions& options) {
  auto data = ReadWholeFile(path);
  if (!data.ok()) return data.status();
  WalRecovery rec;
  auto header_len = DecodeHeader(path, *data, &rec.header);
  if (!header_len.ok()) return header_len.status();
  auto valid = ScanRecords(path, std::string_view(*data).substr(*header_len),
                           options, replay, &rec);
  if (!valid.ok()) return valid.status();
  rec.bytes = *header_len + *valid;
  return rec;
}

Result<WalHeader> WriteAheadLog::PeekHeader(const std::string& path) {
  // The header is bounded (two strings of at most kMaxHeaderString), so
  // one bounded read suffices — never the whole log, which may be long.
  constexpr size_t kMaxHeaderBytes = 16 + 2 * (4 + kMaxHeaderString) + 4;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::string data;
  data.resize(kMaxHeaderBytes);
  size_t total = 0;
  while (total < data.size()) {
    ssize_t n = ::read(fd, data.data() + total, data.size() - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError("read '" + path + "': " + std::strerror(err));
    }
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fd);
  data.resize(total);
  WalHeader header;
  auto header_len = DecodeHeader(path, data, &header);
  if (!header_len.ok()) return header_len.status();
  return header;
}

Status WriteAheadLog::Append(std::span<const Edit> edits,
                             GroupCommitTicket* ticket) {
  last_sync_ns_ = 0;  // Never report a previous append's fsync.
  if (edits.empty()) return Status::OK();
  std::string payload;
  ByteWriter body(&payload);
  body.U32(static_cast<uint32_t>(edits.size()));
  for (const Edit& edit : edits) EncodeEdit(edit, &body);
  if (payload.size() > options_.max_record_bytes) {
    return Status::InvalidArgument(
        "wal record of " + std::to_string(payload.size()) +
        " bytes exceeds the limit of " +
        std::to_string(options_.max_record_bytes));
  }
  std::string record;
  ByteWriter frame(&record);
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Raw(payload);

  size_t written = 0;
  while (written < record.size()) {
    ssize_t n =
        ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      // A partial append is exactly the torn tail recovery handles;
      // trim it now so this handle stays usable on a transient error.
      if (written > 0) {
        if (::ftruncate(fd_, static_cast<off_t>(bytes_)) == 0) {
          ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET);
        }
      }
      if (options_.observer) {
        options_.observer(WalEvent::kAppendFailure, path_,
                          std::strerror(err));
      }
      return Status::IoError("wal append '" + path_ +
                             "': " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (options_.sync) {
    if (options_.group_commit != nullptr) {
      // Deferred sync: the record is written; durability arrives with
      // the group flush. Hand the ticket out when the caller can wait
      // outside its own lock, otherwise wait here so Append keeps its
      // synced-on-return contract for callers that don't opt in.
      GroupCommitTicket t = options_.group_commit->Enqueue(this, fd_, path_);
      if (ticket != nullptr) {
        *ticket = t;
      } else {
        auto sync_start = SteadyNow();
        Status flushed = t.Wait();
        if (!flushed.ok()) {
          if (options_.observer) {
            options_.observer(WalEvent::kAppendFailure, path_,
                              flushed.message());
          }
          return flushed;
        }
        last_sync_ns_ = NsSince(sync_start);
      }
    } else {
      auto sync_start = SteadyNow();
      if (::fsync(fd_) != 0) {
        int err = errno;
        if (options_.observer) {
          options_.observer(WalEvent::kAppendFailure, path_,
                            std::strerror(err));
        }
        return Status::IoError("wal fsync '" + path_ +
                               "': " + std::strerror(err));
      }
      last_sync_ns_ = NsSince(sync_start);
    }
  }
  bytes_ += record.size();
  ++appended_records_;
  return Status::OK();
}

Status WriteAheadLog::Rotate(const WalHeader& header) {
  // Resolve every outstanding group ticket against the OLD fd before it
  // closes. A failed drain is not the rotation's failure: those waiters
  // see the error themselves, and the snapshot this rotation serves has
  // already captured their edits (Save writes it before rotating).
  if (options_.group_commit != nullptr) options_.group_commit->Drain(this);
  auto fresh = CreateFreshLog(path_, header);
  if (!fresh.ok()) return fresh.status();
  // The old fd points at the unlinked inode; swap in the new one.
  if (fd_ >= 0) ::close(fd_);
  fd_ = fresh->first;
  bytes_ = fresh->second;
  appended_records_ = 0;
  if (options_.observer) {
    options_.observer(WalEvent::kRotate, path_, header.snapshot_path);
  }
  return Status::OK();
}

}  // namespace taco
