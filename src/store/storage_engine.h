// The pluggable persistence seam of the workbook service.
//
// Everything above this interface (sessions, the service registry, the
// protocol) persists sheets exclusively through a StorageEngine; which
// bytes land on disk is the engine's business. Two backends exist:
//
//   "text"    the original .tsheet line format (sheet/textio.h) — human-
//             inspectable, kept for compatibility and as the
//             differential oracle for the binary backend
//   "binary"  the compact snapshot format (store/snapshot.h) — versioned
//             header, CRC-checked sections, string table, compiled
//             formula ASTs; ~2x+ faster cold loads
//
// Both Save paths are atomic (unique temp + rename) and fsync before the
// rename, and both Load paths refuse files over options.max_load_bytes
// with DataLoss instead of reading unboundedly.

#ifndef TACO_STORE_STORAGE_ENGINE_H_
#define TACO_STORE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sheet/sheet.h"
#include "store/snapshot.h"

namespace taco {

struct StorageOptions {
  /// Snapshot files larger than this fail to load with DataLoss.
  uint64_t max_load_bytes = kDefaultMaxSnapshotBytes;
};

/// Side metadata a snapshot may carry beyond the sheet itself. The
/// binary format persists it in its meta section; the text format
/// cannot (its byte layout is the compatibility contract and the
/// differential oracle), so text loads leave the fields empty and rely
/// on the WAL header carrying the same facts.
struct SnapshotMeta {
  /// The MakeGraphBackend key of the session that saved the snapshot —
  /// recovery restores the same graph implementation instead of
  /// silently rebuilding on the default. Empty = unrecorded.
  std::string backend;
};

/// One persistence format. Engines are stateless and thread-safe; the
/// service owns a single instance shared by every session.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// The MakeStorageEngine key ("text", "binary").
  virtual std::string_view name() const = 0;

  /// In-memory (de)serialization, used by tests and diff tooling.
  virtual std::string Serialize(const Sheet& sheet) const = 0;
  virtual Result<Sheet> Deserialize(std::string_view data) const = 0;

  /// Atomic, durable snapshot write (temp + fsync + rename). Engines
  /// that can persist `meta` do; the text engine ignores it.
  virtual Status SaveSnapshot(const Sheet& sheet, const std::string& path,
                              const SnapshotMeta& meta = {}) const = 0;

  /// Bounded snapshot read; the sheet is named after the file stem.
  /// A non-null `meta` receives whatever the file recorded (fields the
  /// format cannot carry come back empty).
  virtual Result<Sheet> LoadSnapshot(const std::string& path,
                                     SnapshotMeta* meta = nullptr) const = 0;
};

/// Creates the engine selected by `kind` ("text" or "binary",
/// case-insensitive). Fails with InvalidArgument on unknown names.
Result<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    std::string_view kind, const StorageOptions& options = {});

}  // namespace taco

#endif  // TACO_STORE_STORAGE_ENGINE_H_
