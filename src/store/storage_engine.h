// The pluggable persistence seam of the workbook service.
//
// Everything above this interface (sessions, the service registry, the
// protocol) persists sheets exclusively through a StorageEngine; which
// bytes land on disk is the engine's business. Two backends exist:
//
//   "text"    the original .tsheet line format (sheet/textio.h) — human-
//             inspectable, kept for compatibility and as the
//             differential oracle for the binary backend
//   "binary"  the compact snapshot format (store/snapshot.h) — versioned
//             header, CRC-checked sections, string table, compiled
//             formula ASTs; ~2x+ faster cold loads
//
// Both Save paths are atomic (unique temp + rename) and fsync before the
// rename, and both Load paths refuse files over options.max_load_bytes
// with DataLoss instead of reading unboundedly.

#ifndef TACO_STORE_STORAGE_ENGINE_H_
#define TACO_STORE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sheet/sheet.h"
#include "store/snapshot.h"

namespace taco {

struct StorageOptions {
  /// Snapshot files larger than this fail to load with DataLoss.
  uint64_t max_load_bytes = kDefaultMaxSnapshotBytes;
};

/// One persistence format. Engines are stateless and thread-safe; the
/// service owns a single instance shared by every session.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// The MakeStorageEngine key ("text", "binary").
  virtual std::string_view name() const = 0;

  /// In-memory (de)serialization, used by tests and diff tooling.
  virtual std::string Serialize(const Sheet& sheet) const = 0;
  virtual Result<Sheet> Deserialize(std::string_view data) const = 0;

  /// Atomic, durable snapshot write (temp + fsync + rename).
  virtual Status SaveSnapshot(const Sheet& sheet,
                              const std::string& path) const = 0;

  /// Bounded snapshot read; the sheet is named after the file stem.
  virtual Result<Sheet> LoadSnapshot(const std::string& path) const = 0;
};

/// Creates the engine selected by `kind` ("text" or "binary",
/// case-insensitive). Fails with InvalidArgument on unknown names.
Result<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    std::string_view kind, const StorageOptions& options = {});

}  // namespace taco

#endif  // TACO_STORE_STORAGE_ENGINE_H_
