#include "store/storage_engine.h"

#include <filesystem>

#include "common/ascii.h"
#include "sheet/textio.h"

namespace taco {
namespace {

class TextStorageEngine : public StorageEngine {
 public:
  explicit TextStorageEngine(StorageOptions options) : options_(options) {}

  std::string_view name() const override { return "text"; }

  std::string Serialize(const Sheet& sheet) const override {
    return WriteSheetText(sheet);
  }

  Result<Sheet> Deserialize(std::string_view data) const override {
    return ReadSheetText(data);
  }

  Status SaveSnapshot(const Sheet& sheet, const std::string& path,
                      const SnapshotMeta& /*meta*/) const override {
    // WriteFileAtomic rather than SaveSheetFile: same temp-then-rename,
    // plus the fsync the durability contract requires. The text format
    // carries no meta — its byte layout is the compatibility contract —
    // so the backend key rides the WAL header instead.
    return WriteFileAtomic(path, WriteSheetText(sheet));
  }

  Result<Sheet> LoadSnapshot(const std::string& path,
                             SnapshotMeta* meta) const override {
    if (meta != nullptr) *meta = {};
    auto data = ReadFileLimited(path, options_.max_load_bytes);
    if (!data.ok()) return data.status();
    if (LooksLikeBinarySnapshot(*data)) {
      return Status::ParseError(
          "'" + path +
          "' is a binary snapshot; this service runs --store text");
    }
    auto sheet = ReadSheetText(*data);
    if (!sheet.ok()) return sheet;
    sheet->set_name(std::filesystem::path(path).stem().string());
    return sheet;
  }

 private:
  StorageOptions options_;
};

class BinaryStorageEngine : public StorageEngine {
 public:
  explicit BinaryStorageEngine(StorageOptions options) : options_(options) {}

  std::string_view name() const override { return "binary"; }

  std::string Serialize(const Sheet& sheet) const override {
    return WriteSheetBinary(sheet);
  }

  Result<Sheet> Deserialize(std::string_view data) const override {
    return ReadSheetBinary(data);
  }

  Status SaveSnapshot(const Sheet& sheet, const std::string& path,
                      const SnapshotMeta& meta) const override {
    return SaveSheetBinaryFile(sheet, path, meta.backend);
  }

  Result<Sheet> LoadSnapshot(const std::string& path,
                             SnapshotMeta* meta) const override {
    if (meta != nullptr) *meta = {};
    return LoadSheetBinaryFile(path, options_.max_load_bytes,
                               meta != nullptr ? &meta->backend : nullptr);
  }

 private:
  StorageOptions options_;
};

}  // namespace

Result<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    std::string_view kind, const StorageOptions& options) {
  std::string key = ToLowerAscii(kind);
  if (key.empty() || key == "text") {
    return std::unique_ptr<StorageEngine>(
        std::make_unique<TextStorageEngine>(options));
  }
  if (key == "binary") {
    return std::unique_ptr<StorageEngine>(
        std::make_unique<BinaryStorageEngine>(options));
  }
  return Status::InvalidArgument("unknown storage engine '" +
                                 std::string(kind) +
                                 "' (text/binary)");
}

}  // namespace taco
