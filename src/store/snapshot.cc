#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/bytes.h"
#include "store/checksum.h"

namespace taco {
namespace {

constexpr std::string_view kMagic = "TSNP";
// Version 2 added the graph-backend key to the meta section (recovery
// restores the saving session's graph implementation). Version-1 files
// still load — they simply report no backend.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinReadVersion = 1;

// Section ids, in required file order.
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionStrings = 2;
constexpr uint32_t kSectionFormulas = 3;
constexpr uint32_t kSectionCells = 4;
constexpr uint32_t kSectionCount = 4;

// Cell record tags.
constexpr uint8_t kTagNumber = 0;
constexpr uint8_t kTagText = 1;
constexpr uint8_t kTagBoolean = 2;
constexpr uint8_t kTagFormula = 3;

// Decoding a hostile-but-CRC-valid AST must not overflow the stack.
constexpr int kMaxAstDepth = 256;

Status Corrupt(std::string_view detail) {
  return Status::DataLoss("binary snapshot: " + std::string(detail));
}

// ---------------------------------------------------------------------------
// AST codec. Formula cells persist a compiled expression tree so loading
// skips the lexer and parser entirely — the dominant cost of text loads
// (see bench_storage).
//
// References are encoded HOST-RELATIVE: a coordinate without a '$'
// marker is stored as its offset from the formula's own cell, a '$'
// coordinate is stored absolutely — exactly the shift rule autofill
// applies. The paper's core observation (tabular locality: regions of
// autofilled formulas whose references shift in lockstep) then collapses
// an entire autofill region to ONE byte-identical AST entry, which is
// what makes the snapshot compact on formula-heavy sheets.
// ---------------------------------------------------------------------------

void EncodeExpr(const Expr& expr, const Cell& host, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(expr.kind));
  switch (expr.kind) {
    case ExprKind::kNumber:
      w->F64(static_cast<const NumberExpr&>(expr).value);
      return;
    case ExprKind::kString:
      w->VarStr(static_cast<const StringExpr&>(expr).value);
      return;
    case ExprKind::kBoolean:
      w->U8(static_cast<const BooleanExpr&>(expr).value ? 1 : 0);
      return;
    case ExprKind::kReference: {
      const A1Reference& ref = static_cast<const ReferenceExpr&>(expr).ref;
      uint8_t flags = 0;
      if (ref.head_flags.abs_col) flags |= 1u << 0;
      if (ref.head_flags.abs_row) flags |= 1u << 1;
      if (ref.tail_flags.abs_col) flags |= 1u << 2;
      if (ref.tail_flags.abs_row) flags |= 1u << 3;
      if (ref.is_single_cell) flags |= 1u << 4;
      w->U8(flags);
      const Range& r = ref.range;
      w->VarI32(ref.head_flags.abs_col ? r.head.col : r.head.col - host.col);
      w->VarI32(ref.head_flags.abs_row ? r.head.row : r.head.row - host.row);
      if (!ref.is_single_cell) {
        w->VarI32(ref.tail_flags.abs_col ? r.tail.col
                                         : r.tail.col - host.col);
        w->VarI32(ref.tail_flags.abs_row ? r.tail.row
                                         : r.tail.row - host.row);
      }
      return;
    }
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      w->U8(static_cast<uint8_t>(unary.op));
      EncodeExpr(*unary.operand, host, w);
      return;
    }
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      w->U8(static_cast<uint8_t>(binary.op));
      EncodeExpr(*binary.lhs, host, w);
      EncodeExpr(*binary.rhs, host, w);
      return;
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      w->VarStr(call.name);
      w->VarU32(static_cast<uint32_t>(call.args.size()));
      for (const ExprPtr& arg : call.args) EncodeExpr(*arg, host, w);
      return;
    }
  }
}

/// True when the encoding of `expr` is the same for every host — all
/// reference coordinates carry '$' (or there are no references at all).
/// Cells sharing a host-invariant entry share one decoded AST.
bool HostInvariant(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kBoolean:
      return true;
    case ExprKind::kReference: {
      const A1Reference& ref = static_cast<const ReferenceExpr&>(expr).ref;
      if (!ref.head_flags.abs_col || !ref.head_flags.abs_row) return false;
      return ref.is_single_cell ||
             (ref.tail_flags.abs_col && ref.tail_flags.abs_row);
    }
    case ExprKind::kUnary:
      return HostInvariant(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      return HostInvariant(*binary.lhs) && HostInvariant(*binary.rhs);
    }
    case ExprKind::kCall: {
      for (const ExprPtr& arg : static_cast<const CallExpr&>(expr).args) {
        if (!HostInvariant(*arg)) return false;
      }
      return true;
    }
  }
  return false;
}

Result<ExprPtr> DecodeExpr(ByteReader* r, const Cell& host, int depth) {
  if (depth > kMaxAstDepth) return Corrupt("formula AST nests too deeply");
  uint8_t kind_byte;
  if (!r->U8(&kind_byte)) return Corrupt("truncated formula AST");
  switch (static_cast<ExprKind>(kind_byte)) {
    case ExprKind::kNumber: {
      double value;
      if (!r->F64(&value)) return Corrupt("truncated number literal");
      return ExprPtr(std::make_unique<NumberExpr>(value));
    }
    case ExprKind::kString: {
      std::string_view value;
      if (!r->VarStr(&value)) return Corrupt("truncated string literal");
      return ExprPtr(std::make_unique<StringExpr>(std::string(value)));
    }
    case ExprKind::kBoolean: {
      uint8_t value;
      if (!r->U8(&value)) return Corrupt("truncated boolean literal");
      return ExprPtr(std::make_unique<BooleanExpr>(value != 0));
    }
    case ExprKind::kReference: {
      A1Reference ref;
      uint8_t flags;
      int32_t a, b;
      if (!r->U8(&flags) || !r->VarI32(&a) || !r->VarI32(&b)) {
        return Corrupt("truncated reference");
      }
      ref.head_flags.abs_col = (flags & (1u << 0)) != 0;
      ref.head_flags.abs_row = (flags & (1u << 1)) != 0;
      ref.tail_flags.abs_col = (flags & (1u << 2)) != 0;
      ref.tail_flags.abs_row = (flags & (1u << 3)) != 0;
      ref.is_single_cell = (flags & (1u << 4)) != 0;
      ref.range.head.col = ref.head_flags.abs_col ? a : a + host.col;
      ref.range.head.row = ref.head_flags.abs_row ? b : b + host.row;
      if (ref.is_single_cell) {
        ref.range.tail = ref.range.head;
        ref.tail_flags = ref.head_flags;
      } else {
        int32_t c, d;
        if (!r->VarI32(&c) || !r->VarI32(&d)) {
          return Corrupt("truncated reference tail");
        }
        ref.range.tail.col = ref.tail_flags.abs_col ? c : c + host.col;
        ref.range.tail.row = ref.tail_flags.abs_row ? d : d + host.row;
      }
      return ExprPtr(std::make_unique<ReferenceExpr>(std::move(ref)));
    }
    case ExprKind::kUnary: {
      uint8_t op;
      if (!r->U8(&op) || op > static_cast<uint8_t>(UnaryOp::kPercent)) {
        return Corrupt("bad unary operator");
      }
      auto operand = DecodeExpr(r, host, depth + 1);
      if (!operand.ok()) return operand.status();
      return ExprPtr(std::make_unique<UnaryExpr>(static_cast<UnaryOp>(op),
                                                 std::move(*operand)));
    }
    case ExprKind::kBinary: {
      uint8_t op;
      if (!r->U8(&op) || op > static_cast<uint8_t>(BinaryOp::kGe)) {
        return Corrupt("bad binary operator");
      }
      auto lhs = DecodeExpr(r, host, depth + 1);
      if (!lhs.ok()) return lhs.status();
      auto rhs = DecodeExpr(r, host, depth + 1);
      if (!rhs.ok()) return rhs.status();
      return ExprPtr(std::make_unique<BinaryExpr>(
          static_cast<BinaryOp>(op), std::move(*lhs), std::move(*rhs)));
    }
    case ExprKind::kCall: {
      std::string_view name;
      uint32_t argc;
      if (!r->VarStr(&name) || !r->VarU32(&argc)) {
        return Corrupt("truncated call");
      }
      // Each argument needs at least one kind byte.
      if (argc > r->remaining()) return Corrupt("bad call arity");
      std::vector<ExprPtr> args;
      args.reserve(argc);
      for (uint32_t i = 0; i < argc; ++i) {
        auto arg = DecodeExpr(r, host, depth + 1);
        if (!arg.ok()) return arg.status();
        args.push_back(std::move(*arg));
      }
      return ExprPtr(
          std::make_unique<CallExpr>(std::string(name), std::move(args)));
    }
  }
  return Corrupt("unknown AST node kind");
}

void AppendSection(uint32_t id, const std::string& payload,
                   std::string* out) {
  ByteWriter w(out);
  w.U32(id);
  w.U64(payload.size());
  w.U32(Crc32(payload));
  w.Raw(payload);
}

}  // namespace

bool LooksLikeBinarySnapshot(std::string_view data) {
  return data.substr(0, kMagic.size()) == kMagic;
}

std::string WriteSheetBinary(const Sheet& sheet, std::string_view backend) {
  // One pass to intern strings (text values AND distinct formula texts)
  // and distinct host-relative ASTs, collecting the cell records in
  // column-major order as we go. Cells are delta-encoded against the
  // previous cell (column-major order makes the common delta "same
  // column, next row" — two varint bytes). Because AST references are
  // host-relative, every formula of an autofill region produces
  // byte-identical AST bytes and the whole region shares ONE table
  // entry; only the (short) per-formula canonical texts stay distinct.
  std::unordered_map<std::string_view, uint32_t> string_ids;
  std::vector<std::string_view> strings;
  auto intern = [&](std::string_view s) -> uint32_t {
    auto [it, inserted] =
        string_ids.emplace(s, static_cast<uint32_t>(strings.size()));
    if (inserted) strings.push_back(s);
    return it->second;
  };

  // Dedup by the encoded relative bytes themselves; entries are owned by
  // `formula_blobs` (the map keys view into it via stable strings).
  std::unordered_map<std::string, uint32_t> formula_ids;
  std::vector<const std::string*> formula_blobs;
  std::vector<bool> formula_invariant;

  std::string cells_payload;
  ByteWriter cells(&cells_payload);
  uint64_t cell_count = 0;
  uint64_t formula_cells = 0;
  Cell prev{0, 0};

  sheet.ForEachCellColumnMajor([&](const Cell& cell,
                                   const CellContent& content) {
    ++cell_count;
    cells.VarI32(cell.col - prev.col);
    cells.VarI32(cell.row - prev.row);
    prev = cell;
    if (content.IsNumber()) {
      cells.U8(kTagNumber);
      cells.F64(content.number());
    } else if (content.IsText()) {
      cells.U8(kTagText);
      cells.VarU32(intern(content.text()));
    } else if (content.IsBoolean()) {
      cells.U8(kTagBoolean);
      cells.U8(content.boolean() ? 1 : 0);
    } else {
      const FormulaCell& formula = content.formula();
      ++formula_cells;
      std::string ast_bytes;
      ByteWriter ast(&ast_bytes);
      EncodeExpr(*formula.ast, cell, &ast);
      auto [it, inserted] = formula_ids.emplace(
          std::move(ast_bytes), static_cast<uint32_t>(formula_blobs.size()));
      if (inserted) {
        formula_blobs.push_back(&it->first);
        formula_invariant.push_back(HostInvariant(*formula.ast));
      }
      cells.U8(kTagFormula);
      cells.VarU32(intern(formula.text));
      cells.VarU32(it->second);
    }
  });

  std::string formulas_payload;
  ByteWriter formulas(&formulas_payload);
  for (size_t i = 0; i < formula_blobs.size(); ++i) {
    formulas.U8(formula_invariant[i] ? 1 : 0);
    formulas.VarStr(*formula_blobs[i]);
  }
  uint32_t formula_entries = static_cast<uint32_t>(formula_blobs.size());

  std::string meta_payload;
  ByteWriter meta(&meta_payload);
  meta.Str(sheet.name());
  meta.U64(cell_count);
  meta.U64(formula_cells);
  meta.Str(backend);  // Since version 2.

  std::string strings_payload;
  ByteWriter strtab(&strings_payload);
  strtab.U32(static_cast<uint32_t>(strings.size()));
  for (std::string_view s : strings) strtab.VarStr(s);
  // The interned views alias CellContent storage inside `sheet`, which
  // outlives this function; nothing dangles.

  // Prepend the formula entry count so the reader can pre-size.
  std::string formulas_full;
  {
    ByteWriter w(&formulas_full);
    w.U32(formula_entries);
    w.Raw(formulas_payload);
  }

  std::string out;
  out.reserve(16 + meta_payload.size() + strings_payload.size() +
              formulas_full.size() + cells_payload.size() + 64);
  ByteWriter header(&out);
  header.Raw(kMagic);
  header.U32(kVersion);
  header.U32(kSectionCount);
  header.U32(Crc32(out));  // CRC over magic + version + section count.
  AppendSection(kSectionMeta, meta_payload, &out);
  AppendSection(kSectionStrings, strings_payload, &out);
  AppendSection(kSectionFormulas, formulas_full, &out);
  AppendSection(kSectionCells, cells_payload, &out);
  return out;
}

Result<Sheet> ReadSheetBinary(std::string_view data, std::string* backend) {
  if (backend != nullptr) backend->clear();
  // Header: magic, version, section count, CRC over those 12 bytes.
  if (data.size() < 16) {
    if (!LooksLikeBinarySnapshot(data)) {
      return Status::ParseError("not a binary snapshot (bad magic)");
    }
    return Corrupt("truncated header");
  }
  if (!LooksLikeBinarySnapshot(data)) {
    return Status::ParseError("not a binary snapshot (bad magic)");
  }
  ByteReader header(data.substr(4, 12));
  uint32_t version = 0, section_count = 0, header_crc = 0;
  header.U32(&version);
  header.U32(&section_count);
  header.U32(&header_crc);
  if (Crc32(data.substr(0, 12)) != header_crc) {
    return Corrupt("header CRC mismatch");
  }
  if (version < kMinReadVersion || version > kVersion) {
    return Status::Unsupported("binary snapshot version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kMinReadVersion) + ".." +
                               std::to_string(kVersion) + ")");
  }
  if (section_count != kSectionCount) {
    return Corrupt("unexpected section count");
  }

  // Frame the sections against the real file size.
  std::string_view payloads[kSectionCount + 1];
  size_t pos = 16;
  for (uint32_t expected_id = 1; expected_id <= kSectionCount; ++expected_id) {
    if (pos + 16 > data.size()) return Corrupt("truncated section header");
    ByteReader section(data.substr(pos, 16));
    uint32_t id = 0, crc = 0;
    uint64_t len = 0;
    section.U32(&id);
    section.U64(&len);
    section.U32(&crc);
    pos += 16;
    if (id != expected_id) return Corrupt("sections out of order");
    if (len > data.size() - pos) return Corrupt("section extends past EOF");
    std::string_view payload = data.substr(pos, len);
    if (Crc32(payload) != crc) {
      return Corrupt("section " + std::to_string(id) + " CRC mismatch");
    }
    payloads[id] = payload;
    pos += len;
  }
  if (pos != data.size()) return Corrupt("trailing bytes after sections");

  // meta.
  ByteReader meta(payloads[kSectionMeta]);
  std::string_view name;
  uint64_t cell_count, formula_cells;
  if (!meta.Str(&name) || !meta.U64(&cell_count) ||
      !meta.U64(&formula_cells)) {
    return Corrupt("malformed meta section");
  }
  std::string_view recorded_backend;
  if (version >= 2 && !meta.Str(&recorded_backend)) {
    return Corrupt("malformed meta section");
  }
  if (!meta.AtEnd()) return Corrupt("malformed meta section");
  if (backend != nullptr) *backend = std::string(recorded_backend);

  // strtab.
  ByteReader strtab(payloads[kSectionStrings]);
  uint32_t string_count;
  if (!strtab.U32(&string_count)) return Corrupt("malformed string table");
  if (string_count > strtab.remaining()) {
    return Corrupt("string table count exceeds section");
  }
  std::vector<std::string_view> strings;
  strings.reserve(string_count);
  for (uint32_t i = 0; i < string_count; ++i) {
    std::string_view s;
    if (!strtab.VarStr(&s)) return Corrupt("truncated string table entry");
    strings.push_back(s);
  }
  if (!strtab.AtEnd()) return Corrupt("trailing bytes in string table");

  // formulas: the table holds host-relative AST bytes; each formula cell
  // decodes against its own position (no parser involved), and
  // host-invariant entries (all-'$' references, plain constants) decode
  // once and share one tree across their cells.
  ByteReader ftab(payloads[kSectionFormulas]);
  uint32_t formula_entries;
  if (!ftab.U32(&formula_entries)) return Corrupt("malformed formula table");
  if (formula_entries > ftab.remaining()) {
    return Corrupt("formula table count exceeds section");
  }
  struct FormulaEntry {
    std::string_view bytes;
    bool invariant = false;
    std::shared_ptr<const Expr> cached;  ///< Lazy, invariant entries only.
  };
  std::vector<FormulaEntry> formulas;
  formulas.reserve(formula_entries);
  for (uint32_t i = 0; i < formula_entries; ++i) {
    FormulaEntry entry;
    uint8_t invariant;
    if (!ftab.U8(&invariant) || !ftab.VarStr(&entry.bytes)) {
      return Corrupt("truncated formula entry");
    }
    entry.invariant = invariant != 0;
    formulas.push_back(std::move(entry));
  }
  if (!ftab.AtEnd()) return Corrupt("trailing bytes in formula table");

  // cells: delta-decoded in the writer's column-major order, adopted
  // through the bulk-load path (the map is pre-sized; no per-cell
  // replace bookkeeping; duplicates are corruption).
  Sheet sheet;
  sheet.set_name(std::string(name));
  if (cell_count > payloads[kSectionCells].size()) {
    return Corrupt("cell count exceeds section");  // >= 3 bytes per cell.
  }
  sheet.Reserve(cell_count);
  ByteReader cells(payloads[kSectionCells]);
  Cell prev{0, 0};
  for (uint64_t i = 0; i < cell_count; ++i) {
    int32_t dcol, drow;
    uint8_t tag;
    if (!cells.VarI32(&dcol) || !cells.VarI32(&drow) || !cells.U8(&tag)) {
      return Corrupt("truncated cell record");
    }
    Cell cell{prev.col + dcol, prev.row + drow};
    prev = cell;
    Status applied = Status::OK();
    switch (tag) {
      case kTagNumber: {
        double value;
        if (!cells.F64(&value)) return Corrupt("truncated number cell");
        applied = sheet.AdoptCell(cell, CellContent(value));
        break;
      }
      case kTagText: {
        uint32_t id;
        if (!cells.VarU32(&id)) return Corrupt("truncated text cell");
        if (id >= strings.size()) return Corrupt("text cell id range");
        applied = sheet.AdoptCell(cell, CellContent(std::string(strings[id])));
        break;
      }
      case kTagBoolean: {
        uint8_t value;
        if (!cells.U8(&value)) return Corrupt("truncated boolean cell");
        applied = sheet.AdoptCell(cell, CellContent(value != 0));
        break;
      }
      case kTagFormula: {
        uint32_t text_id, ast_id;
        if (!cells.VarU32(&text_id) || !cells.VarU32(&ast_id)) {
          return Corrupt("truncated formula cell");
        }
        if (text_id >= strings.size()) return Corrupt("formula text range");
        if (ast_id >= formulas.size()) return Corrupt("formula cell range");
        FormulaEntry& entry = formulas[ast_id];
        FormulaCell formula;
        formula.text = std::string(strings[text_id]);
        if (entry.invariant && entry.cached != nullptr) {
          formula.ast = entry.cached;
        } else {
          ByteReader ast_reader(entry.bytes);
          auto ast = DecodeExpr(&ast_reader, cell, 0);
          if (!ast.ok()) return ast.status();
          if (!ast_reader.AtEnd()) {
            return Corrupt("trailing bytes in formula AST");
          }
          formula.ast = std::shared_ptr<const Expr>(std::move(*ast));
          if (entry.invariant) entry.cached = formula.ast;
        }
        applied = sheet.AdoptCell(cell, CellContent(std::move(formula)));
        break;
      }
      default:
        return Corrupt("unknown cell tag");
    }
    if (!applied.ok()) return applied;
  }
  if (!cells.AtEnd()) return Corrupt("trailing bytes in cell section");
  if (sheet.cell_count() != cell_count ||
      sheet.formula_cell_count() != formula_cells) {
    return Corrupt("cell counts disagree with meta");
  }
  return sheet;
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  // Unique temp per writer (same discipline as SaveSheetFile), plus an
  // fsync before the rename: after this function returns OK the bytes
  // are on disk under `path`, and a crash at any point leaves either the
  // old file or the new one.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid()) +
                               "." +
                               std::to_string(counter.fetch_add(1));
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp_path +
                           "': " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IoError("failed writing '" + tmp_path +
                             "': " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::IoError("fsync '" + tmp_path +
                           "': " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp_path.c_str());
    return Status::IoError("cannot rename '" + tmp_path + "' to '" + path +
                           "': " + std::strerror(err));
  }
  // Directory sync so the rename itself is durable. Propagated like the
  // file fsync above: returning OK on a failed dir sync would promise a
  // durability the disk never delivered (the renamed entry could vanish
  // in a crash, resurfacing the old file).
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IoError("open dir '" + dir +
                           "': " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    int err = errno;
    ::close(dir_fd);
    return Status::IoError("fsync dir '" + dir +
                           "': " + std::strerror(err));
  }
  ::close(dir_fd);
  return Status::OK();
}

Result<std::string> ReadFileLimited(const std::string& path,
                                    uint64_t max_bytes) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "' for reading: " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("stat '" + path + "': " + std::strerror(err));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size > max_bytes) {
    ::close(fd);
    return Status::DataLoss("'" + path + "' is " + std::to_string(size) +
                            " bytes, over the load limit of " +
                            std::to_string(max_bytes));
  }
  std::string data;
  data.resize(size);
  size_t read_total = 0;
  while (read_total < size) {
    ssize_t n = ::read(fd, data.data() + read_total, size - read_total);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IoError("failed reading '" + path +
                             "': " + std::strerror(err));
    }
    if (n == 0) break;  // Shrunk underneath us; keep what we got.
    read_total += static_cast<size_t>(n);
  }
  ::close(fd);
  data.resize(read_total);
  return data;
}

Status SaveSheetBinaryFile(const Sheet& sheet, const std::string& path,
                           std::string_view backend) {
  return WriteFileAtomic(path, WriteSheetBinary(sheet, backend));
}

Result<Sheet> LoadSheetBinaryFile(const std::string& path,
                                  uint64_t max_bytes, std::string* backend) {
  auto data = ReadFileLimited(path, max_bytes);
  if (!data.ok()) return data.status();
  auto sheet = ReadSheetBinary(*data, backend);
  if (!sheet.ok()) return sheet;
  sheet->set_name(std::filesystem::path(path).stem().string());
  return sheet;
}

}  // namespace taco
