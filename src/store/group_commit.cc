#include "store/group_commit.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace taco {

/// One flush round for one file. Tickets hold a shared_ptr to the batch
/// their append joined; the flusher (committer thread, or Drain's
/// caller) resolves it exactly once. The batch carries its own mutex so
/// a resolved Wait never touches the committer again — tickets stay
/// valid even across the file's Drain.
struct GroupCommitBatch {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  /// Tickets joined; guarded by the committer's mu_ until the batch is
  /// detached for flushing, then owned by the flushing thread.
  uint64_t appends = 0;
};

Status GroupCommitTicket::Wait() {
  if (batch_ == nullptr) return Status::OK();
  std::unique_lock<std::mutex> lock(batch_->mu);
  batch_->cv.wait(lock, [&] { return batch_->done; });
  return batch_->status;
}

GroupCommitter::GroupCommitter(GroupCommitOptions options)
    : options_(std::move(options)) {
  committer_ = std::thread([this] { Run(); });
}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  committer_.join();
  // The run loop flushed everything pending before exiting, and the
  // lifetime contract says no WAL is appending anymore; resolve any
  // batch a misbehaving straggler managed to park so no ticket can
  // hang on a destroyed committer.
  for (auto& [key, st] : files_) {
    for (auto* batch : {st.pending.get(), st.inflight.get()}) {
      if (batch == nullptr) continue;
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->done = true;
      batch->status = Status::Internal("group committer destroyed");
      batch->cv.notify_all();
    }
  }
}

GroupCommitTicket GroupCommitter::Enqueue(const void* file, int fd,
                                          const std::string& path) {
  GroupCommitTicket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& st = files_[file];
    st.fd = fd;
    st.path = path;
    if (st.pending == nullptr) {
      st.pending = std::make_shared<GroupCommitBatch>();
    }
    st.pending->appends += 1;
    ticket.batch_ = st.pending;
  }
  work_cv_.notify_one();
  return ticket;
}

Status GroupCommitter::Drain(const void* file) {
  std::unique_lock<std::mutex> lock(mu_);
  if (files_.find(file) == files_.end()) return Status::OK();
  // An in-flight fsync is using the fd the caller is about to close;
  // wait it out. Re-find each time: other files' Enqueues may rehash
  // the map while the lock is released.
  done_cv_.wait(lock, [&] {
    auto it = files_.find(file);
    return it == files_.end() || it->second.inflight == nullptr;
  });
  auto it = files_.find(file);
  if (it == files_.end()) return Status::OK();
  std::shared_ptr<GroupCommitBatch> batch = std::move(it->second.pending);
  const int fd = it->second.fd;
  const std::string path = std::move(it->second.path);
  files_.erase(it);
  lock.unlock();
  if (batch == nullptr) return Status::OK();
  // The committer no longer knows this file; flush its final batch here.
  Status status = FlushFile(fd, path, batch->appends);
  {
    std::lock_guard<std::mutex> batch_lock(batch->mu);
    batch->done = true;
    batch->status = status;
  }
  batch->cv.notify_all();
  return status;
}

bool GroupCommitter::AnyPendingLocked() const {
  for (const auto& [key, st] : files_) {
    if (st.pending != nullptr) return true;
  }
  return false;
}

Status GroupCommitter::FlushFile(int fd, const std::string& path,
                                 uint64_t appends) {
  GroupFlushStats stats;
  stats.path = path;
  stats.appends = appends;
  auto start = SteadyNow();
  Status status;
  if (::fsync(fd) != 0) {
    stats.error = std::strerror(errno);
    stats.ok = false;
    status = Status::IoError("wal group fsync '" + path +
                             "': " + stats.error);
  }
  stats.flush_ns = NsSince(start);
  if (options_.observer) options_.observer(stats);
  return status;
}

void GroupCommitter::Run() {
  struct RoundItem {
    const void* key;
    int fd;
    std::string path;
    std::shared_ptr<GroupCommitBatch> batch;
  };
  std::vector<RoundItem> round;
  // Flushes one item and releases its waiters. Runs with no committer
  // lock held, possibly on a round helper thread.
  auto flush_item = [this](RoundItem& item) {
    Status status = FlushFile(item.fd, item.path, item.batch->appends);
    {
      std::lock_guard<std::mutex> batch_lock(item.batch->mu);
      item.batch->done = true;
      item.batch->status = status;
    }
    item.batch->cv.notify_all();
    {
      // Release the fd for Drain. The map node is stable (only Drain
      // erases it, and Drain waits for inflight to clear first).
      std::lock_guard<std::mutex> relock(mu_);
      auto it = files_.find(item.key);
      if (it != files_.end() && it->second.inflight == item.batch) {
        it->second.inflight.reset();
      }
    }
    done_cv_.notify_all();
    item.batch.reset();
  };
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || AnyPendingLocked(); });
    if (!AnyPendingLocked()) {
      if (stop_) return;  // Spurious/raced wake with nothing to do.
      continue;
    }
    if (options_.max_delay_us > 0 && !stop_) {
      // Bounded nap to widen the round; stop_ cuts it short.
      work_cv_.wait_for(lock, std::chrono::microseconds(options_.max_delay_us),
                        [&] { return stop_; });
    }
    // Collect the round: every file's pending batch moves to inflight,
    // so appends arriving during the fsyncs start the next round.
    round.clear();
    for (auto& [key, st] : files_) {
      if (st.pending == nullptr) continue;
      st.inflight = std::move(st.pending);
      round.push_back({key, st.fd, st.path, st.inflight});
    }
    lock.unlock();
    // Flush the round's files CONCURRENTLY where the hardware can
    // overlap them: the round's latency should be ~one fsync, not
    // O(files) — back-to-back fsyncs put every file's waiters behind
    // every other file's journal commit. Helpers are spawned per round
    // (rounds are fsync-paced, so the spawn cost is noise), bounded by
    // the core count: on a single-core host concurrent fsyncs cannot
    // overlap and the threads are pure scheduling overhead, so the
    // round degrades gracefully to the sequential loop.
    static const size_t kMaxRoundHelpers =
        std::thread::hardware_concurrency() > 1
            ? std::min<size_t>(std::thread::hardware_concurrency() - 1, 7)
            : 0;
    size_t helpers = std::min(round.size() - 1, kMaxRoundHelpers);
    if (helpers == 0) {
      for (RoundItem& item : round) flush_item(item);
    } else {
      std::atomic<size_t> next{0};
      auto worker = [&] {
        for (size_t i; (i = next.fetch_add(1)) < round.size();) {
          flush_item(round[i]);
        }
      };
      std::vector<std::thread> crew;
      crew.reserve(helpers);
      for (size_t i = 0; i < helpers; ++i) crew.emplace_back(worker);
      worker();
      for (std::thread& helper : crew) helper.join();
    }
    lock.lock();
  }
}

}  // namespace taco
