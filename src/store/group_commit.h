// Cross-session group commit for write-ahead logs.
//
// The per-session WAL fsyncs on every append, which caps a session's
// durable edit rate at 1/fsync-latency and — with many sessions — puts
// O(edits) journal commits on the device. A GroupCommitter replaces the
// inline fsync with classic DB group commit: appenders write their
// record (under their session lock), enqueue a flush ticket, release the
// lock, and block on the ticket; a dedicated committer thread batches
// every ticket pending at that moment and issues ONE fsync per distinct
// WAL file per round, releasing all of that file's waiters with the
// round's outcome. Acks still never outrun the bytes they promise —
// the fsync-before-ack contract is unchanged — but N concurrent
// appenders of a file share one fsync instead of paying one each, and
// the committer's rounds amortize the device's journal commits across
// files.
//
// Locking contract (deadlock freedom): Enqueue and Drain are called
// with the owning session's mutex held; Wait must be called with it
// RELEASED. The committer thread takes only its own mutex, never a
// session's, so a session blocked in Wait cannot be waiting on anything
// that waits on that session. Drain is how a file leaves the committer:
// the WAL calls it (still under the session lock) before closing or
// swapping its descriptor, so the committer never fsyncs a dead fd.

#ifndef TACO_STORE_GROUP_COMMIT_H_
#define TACO_STORE_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"

namespace taco {

struct GroupCommitBatch;  // One flush round's shared state (internal).

/// What one completed group flush covered, reported through
/// GroupCommitOptions::observer (metrics, structured logging).
struct GroupFlushStats {
  std::string path;      ///< WAL file the fsync covered.
  uint64_t appends = 0;  ///< Tickets (appended records) this flush acked.
  uint64_t flush_ns = 0; ///< Duration of the fsync itself.
  bool ok = true;
  std::string error;     ///< strerror text when !ok.
};

struct GroupCommitOptions {
  /// Extra coalescing window: after noticing pending work, the committer
  /// sleeps this long before collecting the round, letting more
  /// appenders join it. 0 relies on natural batching (appends that
  /// arrive while the previous round's fsyncs run join the next round),
  /// which is already effective whenever flushes are slower than
  /// appends — the only regime where group commit matters.
  uint32_t max_delay_us = 0;
  /// Invoked on the committer thread after every per-file flush. Must
  /// not call back into the committer.
  std::function<void(const GroupFlushStats&)> observer;
};

/// The handle an appender blocks on: armed by GroupCommitter::Enqueue,
/// resolved when the flush round covering the append completes. Cheap to
/// copy; an unarmed (default) ticket Waits as an immediate OK.
class GroupCommitTicket {
 public:
  GroupCommitTicket() = default;

  bool armed() const { return batch_ != nullptr; }

  /// Blocks until the covering flush completes and returns its outcome.
  /// Call with no session lock held (see the header contract).
  Status Wait();

 private:
  friend class GroupCommitter;
  std::shared_ptr<GroupCommitBatch> batch_;
};

/// The shared committer: one per service, used by every session's WAL.
/// All methods are thread-safe under the contract above.
class GroupCommitter {
 public:
  explicit GroupCommitter(GroupCommitOptions options = {});

  /// Flushes whatever is still pending, then stops the thread. Callers
  /// keep every WAL registered here alive until after destruction (the
  /// service owns the committer and destroys it after its sessions).
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Registers one just-written append of `file` (an opaque per-log key)
  /// for the next flush round. `fd` must stay open until the round
  /// completes — Drain before closing it. Called under the session lock.
  GroupCommitTicket Enqueue(const void* file, int fd,
                            const std::string& path);

  /// Completes every pending ticket of `file` (flushing on the calling
  /// thread if the committer has not picked them up) and forgets the
  /// registration, so `fd` can be closed or swapped. Returns the final
  /// flush's outcome. Called under the session lock; the lock guarantees
  /// no concurrent Enqueue for the same file.
  Status Drain(const void* file);

 private:
  struct FileState {
    int fd = -1;
    std::string path;
    /// The accumulating batch new tickets join; null when nothing is
    /// pending. The committer swaps it to `inflight` at round start.
    std::shared_ptr<GroupCommitBatch> pending;
    /// The batch whose fsync is running right now. Drain waits for it
    /// to clear before the fd may be closed.
    std::shared_ptr<GroupCommitBatch> inflight;
  };

  void Run();
  bool AnyPendingLocked() const;
  /// fsync + observer for one file's batch; no committer lock held.
  Status FlushFile(int fd, const std::string& path, uint64_t appends);

  GroupCommitOptions options_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Wakes the committer.
  std::condition_variable done_cv_;  ///< Wakes Wait / Drain.
  bool stop_ = false;
  std::unordered_map<const void*, FileState> files_;
  std::thread committer_;
};

}  // namespace taco

#endif  // TACO_STORE_GROUP_COMMIT_H_
