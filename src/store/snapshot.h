// Compact binary sheet snapshots (.tsnap).
//
// The text format (.tsheet, sheet/textio.h) is human-inspectable but slow
// to load: every line re-runs the A1 parser, the number scanner, and — for
// formula cells — the full formula parser. The binary snapshot trades
// inspectability for cold-load speed and size:
//
//   header   magic "TSNP", version, section count, header CRC
//   sections length-prefixed, each with its own CRC32:
//     meta      sheet name + cell/formula counts (cross-checked on load)
//     strtab    deduplicated strings (text-cell values and canonical
//               formula texts), varint length-prefixed
//     formulas  one compiled AST blob per distinct HOST-RELATIVE
//               formula: references without '$' are stored as offsets
//               from the formula's own cell (the autofill shift rule),
//               so an entire autofilled region — the paper's tabular
//               locality — shares ONE byte-identical entry. Loading
//               re-parses nothing; all-'$' entries even share one
//               decoded tree across their cells.
//     cells     column-major records, coordinates delta-encoded as
//               zigzag varints against the previous cell (the common
//               "next row, same column" step is one byte)
//
// Every byte of the file is covered by a CRC (the header by its own, each
// section payload by the section CRC, section framing by bounds checks
// against the file size), so any single-byte corruption fails the load
// with a status instead of producing a wrong sheet. Truncation at any
// offset is detected the same way and reported as DataLoss.

#ifndef TACO_STORE_SNAPSHOT_H_
#define TACO_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sheet/sheet.h"

namespace taco {

/// Default refusal threshold for loading persisted artifacts. Generous —
/// real workbooks are far smaller — but finite, so a hostile or corrupt
/// length field can never drive an unbounded allocation.
inline constexpr uint64_t kDefaultMaxSnapshotBytes = 512ull << 20;

/// Serializes `sheet` into the binary snapshot format (version 2).
/// `backend` — the graph-backend key of the saving session — is recorded
/// in the meta section so recovery can restore the same implementation;
/// empty means unrecorded.
std::string WriteSheetBinary(const Sheet& sheet,
                             std::string_view backend = {});

/// Parses a binary snapshot (versions 1 and 2). Fails with ParseError
/// when `data` is not a binary snapshot at all (bad magic), Unsupported
/// for a future version, and DataLoss for truncation or CRC mismatch.
/// A non-null `backend` receives the recorded graph-backend key (empty
/// for version-1 files, which predate the field).
Result<Sheet> ReadSheetBinary(std::string_view data,
                              std::string* backend = nullptr);

/// True when `data` starts with the binary snapshot magic (used for
/// format mix-up diagnostics; a positive sniff does not imply validity).
bool LooksLikeBinarySnapshot(std::string_view data);

/// File variants. Save writes temp-then-rename with fsync so a crash
/// leaves either the old file or the new one, never a torn mix. Load
/// refuses files larger than `max_bytes` with DataLoss.
Status SaveSheetBinaryFile(const Sheet& sheet, const std::string& path,
                           std::string_view backend = {});
Result<Sheet> LoadSheetBinaryFile(
    const std::string& path, uint64_t max_bytes = kDefaultMaxSnapshotBytes,
    std::string* backend = nullptr);

/// Shared helper for the storage layer: writes `data` to `path` via a
/// unique temp file + rename, fsyncing the file (and best-effort the
/// directory) before the rename so the bytes are durable when it returns.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Reads a whole file, refusing files larger than `max_bytes` with
/// DataLoss (the configurable guard against unbounded reads).
Result<std::string> ReadFileLimited(const std::string& path,
                                    uint64_t max_bytes);

}  // namespace taco

#endif  // TACO_STORE_SNAPSHOT_H_
