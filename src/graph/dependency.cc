#include "graph/dependency.h"

#include <unordered_set>

#include "formula/references.h"
#include "sheet/sheet.h"

namespace taco {

std::vector<Dependency> CollectDependencies(const Sheet& sheet) {
  std::vector<Dependency> out;
  out.reserve(sheet.formula_cell_count());
  std::vector<A1Reference> refs;
  sheet.ForEachFormulaCellColumnMajor(
      [&](const Cell& cell, const FormulaCell& formula) {
        refs.clear();
        ExtractReferences(*formula.ast, &refs);
        std::unordered_set<Range> seen;
        for (const A1Reference& ref : refs) {
          // A formula can mention the same range several times (e.g. M3 in
          // IF(A3=A2,N2+M3,M3)); only one dependency edge results.
          if (!seen.insert(ref.range).second) continue;
          Dependency dep;
          dep.prec = ref.range;
          dep.dep = cell;
          dep.head_flags = ref.head_flags;
          dep.tail_flags = ref.tail_flags;
          out.push_back(dep);
        }
      });
  return out;
}

}  // namespace taco
