// The formula-graph interface shared by TACO and every baseline.
//
// A formula graph answers two queries — the transitive dependents and the
// transitive precedents of an input range — and supports incremental
// maintenance (adding a dependency; clearing the dependencies of a range
// of formula cells). Implementations: TacoGraph (compressed), NoCompGraph
// (paper's baseline), and the Sec. VI comparison systems under
// src/baselines.

#ifndef TACO_GRAPH_DEPENDENCY_GRAPH_H_
#define TACO_GRAPH_DEPENDENCY_GRAPH_H_

#include <string>
#include <vector>

#include "common/range.h"
#include "common/status.h"
#include "graph/dependency.h"

namespace taco {

/// Counters for one query, for the paper's Sec. IV-D edge-access analysis.
struct QueryCounters {
  uint64_t edge_accesses = 0;    ///< findDep/findPrec invocations.
  uint64_t vertex_visits = 0;    ///< overlap-index hits expanded.
  uint64_t result_ranges = 0;    ///< ranges placed in the result set.
};

/// Abstract formula graph.
class DependencyGraph {
 public:
  virtual ~DependencyGraph() = default;

  /// Inserts one dependency (the formula cell `dep.dep` references
  /// `dep.prec`). Duplicate insertions create parallel edges; callers feed
  /// deduplicated dependency streams (CollectDependencies does).
  virtual Status AddDependency(const Dependency& dep) = 0;

  /// Returns the cells that transitively depend on any cell of `input`,
  /// as a list of disjoint ranges (empty when none).
  virtual std::vector<Range> FindDependents(const Range& input) = 0;

  /// Returns the cells that any cell of `input` transitively depends on,
  /// as a list of disjoint ranges.
  virtual std::vector<Range> FindPrecedents(const Range& input) = 0;

  /// Clears the formula cells in `cells`: every dependency whose formula
  /// cell lies inside `cells` is removed. Edges referencing `cells` as a
  /// precedent are unaffected (the locations still exist).
  virtual Status RemoveFormulaCells(const Range& cells) = 0;

  /// Graph size, in the representation's own units: compressed edges for
  /// TACO, raw dependencies for NoComp (Table II compares these).
  virtual size_t NumVertices() const = 0;
  virtual size_t NumEdges() const = 0;

  /// Implementation name for reports ("TACO", "NoComp", ...).
  virtual std::string Name() const = 0;

  /// Counters from the most recent FindDependents/FindPrecedents call.
  const QueryCounters& last_query_counters() const { return counters_; }

 protected:
  QueryCounters counters_;
};

/// Builds `graph` from every formula dependency in `sheet`, in the
/// paper's column-major insertion order.
class Sheet;
Status BuildGraphFromSheet(const Sheet& sheet, DependencyGraph* graph);

}  // namespace taco

#endif  // TACO_GRAPH_DEPENDENCY_GRAPH_H_
