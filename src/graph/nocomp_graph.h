// NoComp: the paper's uncompressed baseline formula graph (Sec. IV-D).
//
// Every dependency is stored as its own edge in an adjacency list; an
// R-tree over the vertices (distinct ranges) finds the vertices that
// overlap a query range. Dependent search is a BFS whose frontier expands
// whole dependent cells; precedent search is the dual.

#ifndef TACO_GRAPH_NOCOMP_GRAPH_H_
#define TACO_GRAPH_NOCOMP_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dependency_graph.h"
#include "rtree/rtree.h"

namespace taco {

/// Uncompressed formula graph with an R-tree vertex index.
class NoCompGraph : public DependencyGraph {
 public:
  NoCompGraph() = default;

  Status AddDependency(const Dependency& dep) override;
  std::vector<Range> FindDependents(const Range& input) override;
  std::vector<Range> FindPrecedents(const Range& input) override;
  Status RemoveFormulaCells(const Range& cells) override;

  size_t NumVertices() const override { return live_vertices_; }
  size_t NumEdges() const override { return live_edges_; }
  std::string Name() const override { return "NoComp"; }

 private:
  using VertexId = uint32_t;
  using EdgeId = uint32_t;

  struct Vertex {
    Range range;
    std::vector<EdgeId> out_edges;  ///< Edges with this vertex as precedent.
    std::vector<EdgeId> in_edges;   ///< Edges with this vertex as dependent.
    bool alive = true;
  };

  struct Edge {
    VertexId prec = 0;
    VertexId dep = 0;
    bool alive = true;
  };

  /// Returns the vertex for `range`, creating (and indexing) it if new.
  VertexId InternVertex(const Range& range);

  /// Drops a vertex that no longer has any edges.
  void RemoveVertexIfOrphan(VertexId id);

  /// Unlinks one edge from both endpoint adjacency lists.
  void RemoveEdge(EdgeId id);

  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::unordered_map<Range, VertexId> vertex_by_range_;
  RTree index_;
  size_t live_vertices_ = 0;
  size_t live_edges_ = 0;
};

}  // namespace taco

#endif  // TACO_GRAPH_NOCOMP_GRAPH_H_
