// A single uncompressed formula dependency.

#ifndef TACO_GRAPH_DEPENDENCY_H_
#define TACO_GRAPH_DEPENDENCY_H_

#include <vector>

#include "common/a1.h"
#include "common/cell.h"
#include "common/range.h"

namespace taco {

/// One edge of the uncompressed formula graph: the formula cell `dep`
/// references the range `prec`. The '$' flags from the formula text ride
/// along as compression cues (TACO's heuristic 3; they never change query
/// results).
struct Dependency {
  Range prec;
  Cell dep;
  AbsFlags head_flags;
  AbsFlags tail_flags;

  friend bool operator==(const Dependency&, const Dependency&) = default;
};

class Sheet;

/// Extracts every formula dependency from `sheet` in column-major formula
/// cell order — the insertion order the paper uses (POI configured to load
/// by columns, Sec. VI-A). References duplicated inside one formula are
/// emitted once.
std::vector<Dependency> CollectDependencies(const Sheet& sheet);

}  // namespace taco

#endif  // TACO_GRAPH_DEPENDENCY_H_
