#include "graph/nocomp_graph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/range_set.h"
#include "sheet/sheet.h"

namespace taco {

Status BuildGraphFromSheet(const Sheet& sheet, DependencyGraph* graph) {
  for (const Dependency& dep : CollectDependencies(sheet)) {
    TACO_RETURN_IF_ERROR(graph->AddDependency(dep));
  }
  return Status::OK();
}

NoCompGraph::VertexId NoCompGraph::InternVertex(const Range& range) {
  auto it = vertex_by_range_.find(range);
  if (it != vertex_by_range_.end()) return it->second;
  VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(Vertex{range, {}, {}, true});
  vertex_by_range_.emplace(range, id);
  index_.Insert(range, id);
  ++live_vertices_;
  return id;
}

Status NoCompGraph::AddDependency(const Dependency& dep) {
  if (!dep.prec.IsValid() || !dep.dep.IsValid()) {
    return Status::InvalidArgument("invalid dependency " +
                                   dep.prec.ToString() + " -> " +
                                   dep.dep.ToString());
  }
  VertexId prec = InternVertex(dep.prec);
  VertexId dep_v = InternVertex(Range(dep.dep));
  EdgeId edge = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{prec, dep_v, true});
  vertices_[prec].out_edges.push_back(edge);
  vertices_[dep_v].in_edges.push_back(edge);
  ++live_edges_;
  return Status::OK();
}

std::vector<Range> NoCompGraph::FindDependents(const Range& input) {
  counters_ = QueryCounters{};
  std::vector<Range> result;
  // Dependent vertices are always single formula cells in the uncompressed
  // graph, so a hash set of cells is the visited structure.
  std::unordered_set<Cell> visited;
  std::deque<Range> queue{input};

  while (!queue.empty()) {
    Range prec_to_visit = queue.front();
    queue.pop_front();
    index_.ForEachOverlap(
        prec_to_visit, [&](const Range&, RTree::EntryId id) {
          const Vertex& vertex = vertices_[static_cast<VertexId>(id)];
          ++counters_.vertex_visits;
          for (EdgeId edge_id : vertex.out_edges) {
            const Edge& edge = edges_[edge_id];
            ++counters_.edge_accesses;
            const Cell dep_cell = vertices_[edge.dep].range.head;
            if (visited.insert(dep_cell).second) {
              result.push_back(Range(dep_cell));
              queue.push_back(Range(dep_cell));
              ++counters_.result_ranges;
            }
          }
        });
  }
  return result;
}

std::vector<Range> NoCompGraph::FindPrecedents(const Range& input) {
  counters_ = QueryCounters{};
  std::vector<Range> result;
  // Precedent vertices are arbitrary ranges; visited tracking is by vertex
  // id (each precedent range is a vertex of the graph).
  std::unordered_set<VertexId> visited;
  std::deque<Range> queue{input};

  while (!queue.empty()) {
    Range dep_to_visit = queue.front();
    queue.pop_front();
    index_.ForEachOverlap(
        dep_to_visit, [&](const Range&, RTree::EntryId id) {
          const VertexId vid = static_cast<VertexId>(id);
          const Vertex& vertex = vertices_[vid];
          ++counters_.vertex_visits;
          for (EdgeId edge_id : vertex.in_edges) {
            const Edge& edge = edges_[edge_id];
            ++counters_.edge_accesses;
            if (visited.insert(edge.prec).second) {
              const Range& prec_range = vertices_[edge.prec].range;
              result.push_back(prec_range);
              queue.push_back(prec_range);
              ++counters_.result_ranges;
            }
          }
        });
  }
  // Precedent ranges can overlap each other; normalize to disjoint form.
  return DisjointifyRanges(result);
}

void NoCompGraph::RemoveEdge(EdgeId id) {
  Edge& edge = edges_[id];
  if (!edge.alive) return;
  edge.alive = false;
  --live_edges_;
  auto unlink = [id](std::vector<EdgeId>* list) {
    list->erase(std::remove(list->begin(), list->end(), id), list->end());
  };
  unlink(&vertices_[edge.prec].out_edges);
  unlink(&vertices_[edge.dep].in_edges);
}

void NoCompGraph::RemoveVertexIfOrphan(VertexId id) {
  Vertex& vertex = vertices_[id];
  if (!vertex.alive || !vertex.out_edges.empty() || !vertex.in_edges.empty()) {
    return;
  }
  vertex.alive = false;
  --live_vertices_;
  vertex_by_range_.erase(vertex.range);
  index_.Remove(vertex.range, id);
}

Status NoCompGraph::RemoveFormulaCells(const Range& cells) {
  if (!cells.IsValid()) {
    return Status::InvalidArgument("invalid range " + cells.ToString());
  }
  // Gather first: removing edges mutates the index we are iterating.
  std::vector<VertexId> targets;
  index_.ForEachOverlap(cells, [&](const Range& box, RTree::EntryId id) {
    // Only dependent-side vertices matter; they are single formula cells.
    // A partially-covered multi-cell vertex is a precedent-only vertex.
    if (cells.Contains(box) && !vertices_[static_cast<VertexId>(id)]
                                    .in_edges.empty()) {
      targets.push_back(static_cast<VertexId>(id));
    }
  });

  for (VertexId vid : targets) {
    std::vector<EdgeId> in_edges = vertices_[vid].in_edges;  // copy: mutated
    std::vector<VertexId> precs;
    precs.reserve(in_edges.size());
    for (EdgeId edge_id : in_edges) {
      precs.push_back(edges_[edge_id].prec);
      RemoveEdge(edge_id);
    }
    RemoveVertexIfOrphan(vid);
    for (VertexId prec : precs) {
      RemoveVertexIfOrphan(prec);
    }
  }
  return Status::OK();
}

}  // namespace taco
