#include "eval/recalc.h"

#include <chrono>
#include <unordered_set>

#include "formula/references.h"

namespace taco {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

RecalcEngine::RecalcEngine(Sheet* sheet, DependencyGraph* graph)
    : sheet_(sheet), graph_(graph), evaluator_(sheet) {}

RecalcResult RecalcEngine::Recalculate(const Range& changed) {
  RecalcResult result;
  auto start = std::chrono::steady_clock::now();
  result.dirty = graph_->FindDependents(changed);
  result.find_dependents_ms = MsSince(start);

  evaluator_.Invalidate(changed);
  for (const Range& range : result.dirty) {
    result.dirty_cells += range.Area();
    evaluator_.Invalidate(range);
  }
  // Re-evaluate eagerly; the recursive evaluator resolves ordering and the
  // shared cache makes each formula compute once.
  for (const Range& range : result.dirty) {
    for (const Cell& cell : EnumerateCells(range)) {
      if (sheet_->IsFormulaCell(cell)) {
        evaluator_.EvaluateCell(cell);
        ++result.recalculated;
      }
    }
  }
  return result;
}

Result<RecalcResult> RecalcEngine::SetNumber(const Cell& cell, double value) {
  // Replacing a formula cell also drops its outgoing dependencies.
  if (sheet_->IsFormulaCell(cell)) {
    TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(Range(cell)));
  }
  TACO_RETURN_IF_ERROR(sheet_->SetNumber(cell, value));
  return Recalculate(Range(cell));
}

Result<RecalcResult> RecalcEngine::SetText(const Cell& cell,
                                           std::string value) {
  if (sheet_->IsFormulaCell(cell)) {
    TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(Range(cell)));
  }
  TACO_RETURN_IF_ERROR(sheet_->SetText(cell, std::move(value)));
  return Recalculate(Range(cell));
}

Result<RecalcResult> RecalcEngine::SetFormula(const Cell& cell,
                                              std::string_view text) {
  if (sheet_->IsFormulaCell(cell)) {
    TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(Range(cell)));
  }
  TACO_RETURN_IF_ERROR(sheet_->SetFormula(cell, text));

  // Register the new formula's dependencies (an update is modeled as
  // clear + insert, Sec. IV-C).
  const CellContent* content = sheet_->Get(cell);
  std::vector<A1Reference> refs = ExtractReferences(*content->formula().ast);
  std::unordered_set<Range> seen;
  for (const A1Reference& ref : refs) {
    if (!seen.insert(ref.range).second) continue;
    Dependency dep;
    dep.prec = ref.range;
    dep.dep = cell;
    dep.head_flags = ref.head_flags;
    dep.tail_flags = ref.tail_flags;
    TACO_RETURN_IF_ERROR(graph_->AddDependency(dep));
  }
  return Recalculate(Range(cell));
}

Result<RecalcResult> RecalcEngine::ClearRange(const Range& range) {
  TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(range));
  TACO_RETURN_IF_ERROR(sheet_->ClearRange(range));
  return Recalculate(range);
}

}  // namespace taco
