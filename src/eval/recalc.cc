#include "eval/recalc.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/clock.h"
#include "common/range_set.h"
#include "eval/cutoff.h"
#include "formula/references.h"

namespace taco {

Edit Edit::SetNumber(const Cell& cell, double value) {
  Edit edit;
  edit.kind = Kind::kSetNumber;
  edit.cell = cell;
  edit.number = value;
  return edit;
}

Edit Edit::SetText(const Cell& cell, std::string value) {
  Edit edit;
  edit.kind = Kind::kSetText;
  edit.cell = cell;
  edit.text = std::move(value);
  return edit;
}

Edit Edit::SetFormula(const Cell& cell, std::string text) {
  Edit edit;
  edit.kind = Kind::kSetFormula;
  edit.cell = cell;
  edit.text = std::move(text);
  return edit;
}

Edit Edit::ClearRange(const Range& range) {
  Edit edit;
  edit.kind = Kind::kClearRange;
  edit.range = range;
  return edit;
}

uint64_t RecalcPlan::max_wave_cells() const {
  uint64_t max_cells = 0;
  for (uint64_t cells : wave_cells) max_cells = std::max(max_cells, cells);
  return max_cells;
}

std::string_view RecalcPlan::granularity_name() const {
  switch (granularity) {
    case Granularity::kSerialInline:  return "serial-inline";
    case Granularity::kCellGranular:  return "cell-granular";
    case Granularity::kRangeGranular: return "range-granular";
  }
  return "?";
}

namespace {

/// Counts the formula cells in `dirty` for plan reporting, bounded so an
/// EXPLAIN of a giant sparse rectangle cannot take longer than the pass
/// it describes.  Returns false when the area budget was exceeded (the
/// count is then a lower bound over the ranges scanned so far).
bool CountDirtyFormulas(const Sheet& sheet, std::span<const Range> dirty,
                        uint64_t max_area, uint64_t* formulas) {
  *formulas = 0;
  uint64_t scanned = 0;
  for (const Range& range : dirty) {
    scanned += range.Area();
    if (scanned > max_area) return false;
    for (const Cell& cell : EnumerateCells(range)) {
      if (sheet.IsFormulaCell(cell)) ++(*formulas);
    }
  }
  return true;
}

/// Budgets for the engine's own (serial-path) cutoff machinery. The
/// prior-capture area bound mirrors SchedulerOptions::max_cells and the
/// edge bound mirrors max_edges: past either, cutoff bookkeeping would
/// dominate the pass it's trying to shrink, so the engine falls back to
/// the eager full evaluation with zero cells skipped.
constexpr uint64_t kCutoffMaxPriorArea = 1u << 20;
constexpr uint64_t kCutoffMaxEdges = 4u << 20;

}  // namespace

RecalcPlan RecalcExecutor::Plan(const Sheet& sheet,
                                std::span<const Range> dirty,
                                std::span<const Range> /*seeds*/,
                                bool cutoff) const {
  RecalcPlan plan;
  plan.granularity = RecalcPlan::Granularity::kSerialInline;
  plan.decision = "no_planner";
  plan.cutoff = cutoff;
  plan.dirty_ranges = dirty.size();
  for (const Range& range : dirty) plan.dirty_area += range.Area();
  CountDirtyFormulas(sheet, dirty, 1u << 20, &plan.dirty_formulas);
  return plan;
}

RecalcEngine::RecalcEngine(Sheet* sheet, DependencyGraph* graph)
    : sheet_(sheet), graph_(graph), evaluator_(sheet) {}

RecalcResult RecalcEngine::Recalculate(const Range& changed) {
  return RecalculateMerged({&changed, 1});
}

RecalcResult RecalcEngine::RecalculateMerged(std::span<const Range> changed) {
  RecalcResult result;
  result.recalc_passes = 1;

  // One merged dirty-set computation: query the dependents of each distinct
  // changed rectangle and collapse the union into disjoint ranges so the
  // re-evaluation pass below visits each dirty formula exactly once.
  std::vector<Range> seeds = DisjointifyRanges(changed);
  std::vector<Range> dirty_union;
  auto start = SteadyNow();
  for (const Range& seed : seeds) {
    std::vector<Range> dirty = graph_->FindDependents(seed);
    dirty_union.insert(dirty_union.end(), dirty.begin(), dirty.end());
  }
  result.dirty = DisjointifyRanges(dirty_union);
  result.find_dependents_ns = NsSince(start);
  result.find_dependents_ms = double(result.find_dependents_ns) / 1e6;

  for (const Range& range : result.dirty) result.dirty_cells += range.Area();

  // Cutoff needs the dirty cells' prior values, which invalidation is
  // about to destroy — capture them first (bounded: past the area budget
  // the pass runs eagerly with zero cells skipped).
  CutoffContext ctx;
  bool cutoff_ready = false;
  if (cutoff_ && result.dirty_cells <= kCutoffMaxPriorArea) {
    ctx.seeds = seeds;
    CapturePriorValues(*sheet_, evaluator_, result.dirty, &ctx);
    cutoff_ready = true;
  }

  for (const Range& seed : seeds) evaluator_.Invalidate(seed);
  for (const Range& range : result.dirty) evaluator_.Invalidate(range);

  auto eval_start = SteadyNow();
  if (mode_ == RecalcMode::kParallel && executor_ != nullptr) {
    RecalcExecutor::Outcome outcome = executor_->Execute(
        *sheet_, &evaluator_, result.dirty, cutoff_ready ? &ctx : nullptr);
    result.recalculated = outcome.recalculated;
    result.cells_skipped_cutoff = outcome.cells_skipped_cutoff;
    result.dirty_formulas = outcome.dirty_formulas;
    result.waves = outcome.waves;
    result.max_wave_cells = outcome.max_wave_cells;
    result.barrier_wait_ns = outcome.barrier_wait_ns;
  } else {
    bool cut = false;
    if (cutoff_ready) {
      // Serial cutoff: evaluate the dirty subgraph wave-by-wave so a
      // value-unchanged commit prunes the dependents reachable only
      // through it (eval/cutoff.h). Wave order is equivalent to the
      // eager order for acyclic cells, and the cycle leftover replays in
      // the same node order, so results are identical either way.
      // RecalcResult::waves stays 0: no parallel waves were dispatched.
      std::vector<Cell> nodes;
      std::vector<const Expr*> asts;
      CollectDirtyFormulaCells(*sheet_, result.dirty, &nodes, &asts);
      CellWavePlan plan = BuildCellWavePlan(std::move(nodes), std::move(asts),
                                           ctx.seeds, kCutoffMaxEdges);
      if (!plan.over_budget) {
        CutoffOutcome outcome = SerialCutoffEvaluate(plan, &evaluator_, ctx);
        result.recalculated = outcome.evaluated;
        result.cells_skipped_cutoff = outcome.skipped;
        result.dirty_formulas = outcome.dirty_formulas;
        cut = true;
      }
    }
    if (!cut) {
      // Re-evaluate eagerly; the recursive evaluator resolves ordering
      // and the shared cache makes each formula compute once. The dirty
      // ranges are disjoint, so no formula is visited (or counted)
      // twice.
      for (const Range& range : result.dirty) {
        for (const Cell& cell : EnumerateCells(range)) {
          if (sheet_->IsFormulaCell(cell)) {
            evaluator_.EvaluateCell(cell);
            ++result.recalculated;
          }
        }
      }
      result.dirty_formulas = result.recalculated;
    }
  }
  result.eval_ns = NsSince(eval_start);
  result.eval_ms = double(result.eval_ns) / 1e6;
  return result;
}

RecalcEngine::ExplainInfo RecalcEngine::Explain(const Range& target) {
  ExplainInfo info;
  info.mode = mode_;
  info.parallel_active = mode_ == RecalcMode::kParallel && executor_ != nullptr;
  info.cutoff = cutoff_;

  // The exact dirty-set recipe of RecalculateMerged, minus invalidation.
  info.seeds = DisjointifyRanges({&target, 1});
  std::vector<Range> dirty_union;
  auto start = SteadyNow();
  for (const Range& seed : info.seeds) {
    std::vector<Range> dirty = graph_->FindDependents(seed);
    dirty_union.insert(dirty_union.end(), dirty.begin(), dirty.end());
  }
  info.dirty = DisjointifyRanges(dirty_union);
  info.find_dependents_ns = NsSince(start);
  for (const Range& range : info.dirty) info.dirty_cells += range.Area();

  if (info.parallel_active) {
    info.plan = executor_->Plan(*sheet_, info.dirty, info.seeds, cutoff_);
  } else {
    info.plan.granularity = RecalcPlan::Granularity::kSerialInline;
    info.plan.decision =
        executor_ == nullptr ? "no_executor" : "mode=serial";
    info.plan.cutoff = cutoff_;
    info.plan.dirty_ranges = info.dirty.size();
    info.plan.dirty_area = info.dirty_cells;
    CountDirtyFormulas(*sheet_, info.dirty, 1u << 20,
                       &info.plan.dirty_formulas);
  }
  return info;
}

std::shared_ptr<const ValueVersion> RecalcEngine::PublishVersion(
    std::span<const Range> touched) {
  // A freshly set formula's own cell is NOT in the dirty set (only its
  // dependents are) and is evaluated lazily — but a published version
  // must carry its committed value, so `touched` always includes the
  // seed rectangles. Evaluating here, before readers see the version,
  // keeps the lazy path out of the lock-free read side entirely.
  uint64_t id = version_ != nullptr ? version_->id() + 1 : 1;
  version_ = ValueVersion::Delta(id, version_, *sheet_, &evaluator_, touched);
  return version_;
}

Status RecalcEngine::ApplyEditNoRecalc(const Edit& edit,
                                       std::vector<Range>* changed) {
  switch (edit.kind) {
    case Edit::Kind::kSetNumber:
      // Replacing a formula cell also drops its outgoing dependencies.
      if (sheet_->IsFormulaCell(edit.cell)) {
        TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(Range(edit.cell)));
      }
      TACO_RETURN_IF_ERROR(sheet_->SetNumber(edit.cell, edit.number));
      changed->push_back(Range(edit.cell));
      return Status::OK();
    case Edit::Kind::kSetText:
      if (sheet_->IsFormulaCell(edit.cell)) {
        TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(Range(edit.cell)));
      }
      TACO_RETURN_IF_ERROR(sheet_->SetText(edit.cell, edit.text));
      changed->push_back(Range(edit.cell));
      return Status::OK();
    case Edit::Kind::kSetFormula: {
      // Parse/store the new formula BEFORE dropping the old one's graph
      // edges: a parse failure must leave sheet and graph untouched, not
      // a formula cell with its dependencies removed.
      bool was_formula = sheet_->IsFormulaCell(edit.cell);
      TACO_RETURN_IF_ERROR(sheet_->SetFormula(edit.cell, edit.text));
      if (was_formula) {
        TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(Range(edit.cell)));
      }

      // Register the new formula's dependencies (an update is modeled as
      // clear + insert, Sec. IV-C).
      const CellContent* content = sheet_->Get(edit.cell);
      std::vector<A1Reference> refs =
          ExtractReferences(*content->formula().ast);
      std::unordered_set<Range> seen;
      for (const A1Reference& ref : refs) {
        if (!seen.insert(ref.range).second) continue;
        Dependency dep;
        dep.prec = ref.range;
        dep.dep = edit.cell;
        dep.head_flags = ref.head_flags;
        dep.tail_flags = ref.tail_flags;
        TACO_RETURN_IF_ERROR(graph_->AddDependency(dep));
      }
      changed->push_back(Range(edit.cell));
      return Status::OK();
    }
    case Edit::Kind::kClearRange:
      TACO_RETURN_IF_ERROR(graph_->RemoveFormulaCells(edit.range));
      TACO_RETURN_IF_ERROR(sheet_->ClearRange(edit.range));
      changed->push_back(edit.range);
      return Status::OK();
  }
  return Status::Internal("unknown edit kind");
}

Result<RecalcResult> RecalcEngine::SetNumber(const Cell& cell, double value) {
  return ApplyBatch({Edit::SetNumber(cell, value)});
}

Result<RecalcResult> RecalcEngine::SetText(const Cell& cell,
                                           std::string value) {
  return ApplyBatch({Edit::SetText(cell, std::move(value))});
}

Result<RecalcResult> RecalcEngine::SetFormula(const Cell& cell,
                                              std::string_view text) {
  return ApplyBatch({Edit::SetFormula(cell, std::string(text))});
}

Result<RecalcResult> RecalcEngine::ClearRange(const Range& range) {
  return ApplyBatch({Edit::ClearRange(range)});
}

Result<RecalcResult> RecalcEngine::ApplyBatch(const EditBatch& batch,
                                              RecalcResult* partial) {
  if (partial != nullptr) *partial = RecalcResult{};
  std::vector<Range> changed;
  changed.reserve(batch.size());
  Status failure = Status::OK();
  uint64_t applied = 0;
  for (const Edit& edit : batch) {
    failure = ApplyEditNoRecalc(edit, &changed);
    if (!failure.ok()) break;
    ++applied;
  }
  if (changed.empty()) {
    if (!failure.ok()) return failure;
    return RecalcResult{};  // Empty batch: nothing changed, no recalc pass.
  }
  RecalcResult result = RecalculateMerged(changed);
  result.edits_applied = applied;
  // A failing edit stops the batch, but the edits before it were applied
  // and recalculated above, leaving the engine consistent; the partial
  // outcome is reported through `partial` alongside the error.
  if (!failure.ok()) {
    if (partial != nullptr) *partial = std::move(result);
    return failure;
  }
  return result;
}

}  // namespace taco
