// Immutable published value snapshots — the MVCC read path.
//
// A ValueVersion is the committed cell->value state of one session at one
// recalc commit, published as a refcounted immutable object so readers
// can serve GET/GETRANGE with a single atomic shared_ptr load: no session
// mutex, no evaluator-cache mutation, and no possibility of observing a
// torn mid-recalc state. Writers build the next version UNDER the session
// lock (right after the recalc commit — the same barrier the wave
// scheduler commits at) and publish it with a release store; readers
// acquire-load and walk a short copy-on-write delta chain:
//
//   version N   { id, touched ranges of commit N, values of those cells }
//         |base
//   version N-1 { ... }
//         |base
//   full        { every evaluated cell of the sheet at its commit }
//
// Lookup(cell) scans newest-to-oldest: the first node whose value map
// holds the cell wins; a node whose `touched` ranges cover the cell
// without a map entry means the commit left it blank (cleared or empty).
// Chains are bounded: once a delta would make the chain deeper than
// kMaxDepth, the builder flattens the whole chain into a fresh full
// version, so reads stay O(depth-bounded) and dropped versions free their
// deltas promptly.
//
// Thread-safety: a ValueVersion is deeply immutable after construction;
// any number of threads may Lookup concurrently while the writer builds
// (and publishes) successors that share the tail of the chain.

#ifndef TACO_EVAL_VALUE_VERSION_H_
#define TACO_EVAL_VALUE_VERSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/range.h"
#include "eval/evaluator.h"
#include "eval/value.h"
#include "sheet/sheet.h"

namespace taco {

class ValueVersion {
 public:
  /// Deltas deeper than this flatten into a fresh full snapshot. Small:
  /// every GET pays O(depth) map probes in the worst case.
  static constexpr size_t kMaxDepth = 8;

  /// Builds a full snapshot: every cell of `sheet`, evaluated through
  /// `evaluator` (cache-warm after a recalc, so mostly hash probes).
  static std::shared_ptr<const ValueVersion> Full(uint64_t id,
                                                  const Sheet& sheet,
                                                  Evaluator* evaluator);

  /// Builds the successor of `base` after a commit that touched
  /// `touched` (seed rectangles plus dirty ranges; need not be
  /// disjoint). Cells whose committed value equals the base version's
  /// are dropped from the delta (the older chain already answers them),
  /// so the node carries only what the commit CHANGED. Falls back to a
  /// full rebuild when the touched area rivals the sheet itself or the
  /// chain would exceed kMaxDepth.
  static std::shared_ptr<const ValueVersion> Delta(
      uint64_t id, std::shared_ptr<const ValueVersion> base,
      const Sheet& sheet, Evaluator* evaluator,
      std::span<const Range> touched);

  /// The committed value of `cell` in this version (Blank when the cell
  /// is empty). Lock-free and safe to call from any thread.
  Value Lookup(const Cell& cell) const;

  uint64_t id() const { return id_; }
  /// Chain length including this node (a full snapshot is depth 1).
  size_t depth() const { return depth_; }
  /// Cells carried by this node alone (not the chain).
  size_t cell_entries() const { return values_.size(); }

 private:
  ValueVersion() = default;

  uint64_t id_ = 0;
  std::shared_ptr<const ValueVersion> base_;  ///< Null for full snapshots.
  std::vector<Range> touched_;  ///< Disjoint; empty for full snapshots.
  std::unordered_map<Cell, Value> values_;
  size_t depth_ = 1;
};

}  // namespace taco

#endif  // TACO_EVAL_VALUE_VERSION_H_
