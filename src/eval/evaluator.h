// Recursive formula evaluator with memoization and cycle detection.
//
// Supported functions: SUM, AVERAGE (alias AVG), MIN, MAX, COUNT, COUNTA,
// IF, AND, OR, NOT, ABS, ROUND, VLOOKUP, CONCAT/CONCATENATE; all binary
// operators of the formula language. Range arguments aggregate over
// non-blank cells like real spreadsheets.

#ifndef TACO_EVAL_EVALUATOR_H_
#define TACO_EVAL_EVALUATOR_H_

#include <unordered_map>
#include <unordered_set>

#include "eval/value.h"
#include "formula/ast.h"
#include "sheet/sheet.h"

namespace taco {

/// Evaluates cells of a Sheet. Results are cached per cell; Invalidate()
/// drops cache entries when cells change (the recalc engine drives this).
class Evaluator {
 public:
  explicit Evaluator(const Sheet* sheet) : sheet_(sheet) {}

  /// The value of `cell`: literals convert directly, formulas evaluate
  /// recursively. Unknown functions yield #NAME?, cycles #CYCLE!.
  Value EvaluateCell(const Cell& cell);

  /// Evaluates an expression as if located at some cell (references are
  /// absolute positions, so no origin is needed).
  Value EvaluateExpr(const Expr& expr);

  /// Drops the cached values of `cells` (after an update).
  void Invalidate(const Range& cells);
  void InvalidateAll() { cache_.clear(); }

  size_t cache_size() const { return cache_.size(); }

  /// One flattened function argument. Spreadsheet aggregates treat values
  /// that came out of a range differently from direct scalar arguments
  /// (text/logicals in ranges are skipped; direct ones coerce), so the
  /// provenance rides along.
  struct ArgValue {
    Value value;
    bool from_range = false;
  };

 private:
  Value EvaluateCall(const CallExpr& call);
  Value EvaluateBinary(const BinaryExpr& expr);
  Value EvaluateUnary(const UnaryExpr& expr);
  void CollectArgValues(const Expr& arg, std::vector<ArgValue>* out);

  const Sheet* sheet_;
  std::unordered_map<Cell, Value> cache_;
  std::unordered_set<Cell> in_progress_;
};

}  // namespace taco

#endif  // TACO_EVAL_EVALUATOR_H_
