// Recursive formula evaluator with memoization and cycle detection.
//
// Supported functions: SUM, AVERAGE (alias AVG), MIN, MAX, COUNT, COUNTA,
// IF, AND, OR, NOT, ABS, ROUND, VLOOKUP, CONCAT/CONCATENATE; all binary
// operators of the formula language. Range arguments aggregate over
// non-blank cells like real spreadsheets.

#ifndef TACO_EVAL_EVALUATOR_H_
#define TACO_EVAL_EVALUATOR_H_

#include <unordered_map>
#include <unordered_set>

#include "eval/value.h"
#include "formula/ast.h"
#include "sheet/sheet.h"

namespace taco {

/// Evaluates cells of a Sheet. Results are cached per cell; Invalidate()
/// drops cache entries when cells change (the recalc engine drives this).
///
/// Overlay evaluators: the parallel recalc scheduler gives each worker
/// its own Evaluator whose `base` points at the engine's main evaluator.
/// Lookups consult the local cache first, then the base's cache
/// read-only; computed values land only in the local cache. While the
/// overlay is in use the base must not be mutated (the scheduler's wave
/// barrier guarantees this), which makes concurrent overlay reads safe.
class Evaluator {
 public:
  explicit Evaluator(const Sheet* sheet, const Evaluator* base = nullptr)
      : sheet_(sheet), base_(base) {}

  /// The value of `cell`: literals convert directly, formulas evaluate
  /// recursively. Unknown functions yield #NAME?, cycles #CYCLE!.
  Value EvaluateCell(const Cell& cell);

  /// Evaluates an expression as if located at some cell (references are
  /// absolute positions, so no origin is needed).
  Value EvaluateExpr(const Expr& expr);

  /// Drops the cached values of `cells` (after an update). Shrinks the
  /// cache's bucket table when a bulk invalidation leaves it nearly
  /// empty (erase alone never returns bucket memory).
  void Invalidate(const Range& cells);
  void InvalidateAll() {
    cache_.clear();
    MaybeShrink();
  }

  /// Inserts an already-computed value into the cache — how the parallel
  /// scheduler commits a wave's results back into the engine's main
  /// evaluator. Overwrites any stale entry.
  void Prime(const Cell& cell, Value value) {
    cache_[cell] = std::move(value);
  }

  /// The locally cached value of `cell` (not consulting the base), or
  /// nullptr when uncached. The pointer is invalidated by any mutation.
  const Value* FindCached(const Cell& cell) const {
    auto it = cache_.find(cell);
    return it == cache_.end() ? nullptr : &it->second;
  }

  size_t cache_size() const { return cache_.size(); }

  /// Bucket count of the value cache — the memory-visible footprint the
  /// shrink heuristic manages (tests assert it drops after bulk clears).
  size_t cache_bucket_count() const { return cache_.bucket_count(); }

  /// Tables at or below this many buckets never shrink (rehash churn on
  /// small maps isn't worth it).
  static constexpr size_t kShrinkMinBuckets = 1024;

  /// One flattened function argument. Spreadsheet aggregates treat values
  /// that came out of a range differently from direct scalar arguments
  /// (text/logicals in ranges are skipped; direct ones coerce), so the
  /// provenance rides along.
  struct ArgValue {
    Value value;
    bool from_range = false;
  };

 private:
  Value EvaluateCall(const CallExpr& call);
  Value EvaluateBinary(const BinaryExpr& expr);
  Value EvaluateUnary(const UnaryExpr& expr);
  void CollectArgValues(const Expr& arg, std::vector<ArgValue>* out);

  /// Rehashes the cache down after bulk erasure leaves it sparse.
  void MaybeShrink();

  /// Cached value of `cell` in the base's cache or the local one;
  /// nullptr when neither holds it. Base first: for overlay evaluators
  /// almost every hit is a clean or committed cell in the shared cache,
  /// so the hot read costs one hash probe instead of two. The order is
  /// semantically free — both caches derive from the same committed
  /// state, so they never disagree on a cell they both hold; the local
  /// cache only adds cells the base lacks (lazily computed leaves and
  /// clean formulas of the current pass).
  const Value* Lookup(const Cell& cell) const {
    if (base_ != nullptr) {
      if (const Value* cached = base_->FindCached(cell)) return cached;
    }
    auto it = cache_.find(cell);
    return it == cache_.end() ? nullptr : &it->second;
  }

  const Sheet* sheet_;
  const Evaluator* base_ = nullptr;  ///< Read-only fallback cache layer.
  std::unordered_map<Cell, Value> cache_;
  std::unordered_set<Cell> in_progress_;
};

}  // namespace taco

#endif  // TACO_EVAL_EVALUATOR_H_
