// The recalculation engine: the application layer that makes formula-graph
// queries latency-critical (Sec. I of the paper).
//
// On every update the engine asks the formula graph for the transitive
// dependents of the changed cell — exactly the step DataSpread performs
// before returning control to the user — then re-evaluates those formulas.
// The dirty-set identification time and size are reported per update so
// benchmarks and examples can attribute latency to the graph query.

#ifndef TACO_EVAL_RECALC_H_
#define TACO_EVAL_RECALC_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "eval/evaluator.h"
#include "eval/value_version.h"
#include "graph/dependency_graph.h"
#include "sheet/sheet.h"

namespace taco {

struct CutoffContext;  // eval/cutoff.h

/// Outcome of one update (or one batch of updates).
struct RecalcResult {
  std::vector<Range> dirty;        ///< Ranges of formulas needing recalc.
  uint64_t dirty_cells = 0;        ///< Total dirty formula cells.
  uint64_t recalculated = 0;       ///< Formulas actually re-evaluated.
  /// Dirty formulas pruned by value-change cutoff (prior value restored
  /// instead of recomputed). Zero when cutoff is off or didn't apply.
  /// `recalculated + cells_skipped_cutoff == dirty_formulas` always.
  uint64_t cells_skipped_cutoff = 0;
  /// Total dirty formula cells the pass was responsible for (evaluated
  /// plus cutoff-skipped).
  uint64_t dirty_formulas = 0;
  uint64_t recalc_passes = 0;      ///< Merged recalc passes (1 per batch).
  uint64_t edits_applied = 0;      ///< Sheet/graph mutations performed.
  double find_dependents_ms = 0;   ///< Time spent in FindDependents.
  double eval_ms = 0;              ///< Time spent re-evaluating formulas.
  /// The same two phases in integer nanoseconds (the ms fields are
  /// derived from these). Trace spans and histograms keep ns end-to-end;
  /// a FindDependents probe on a small sheet runs in single-digit µs,
  /// which a double-ms aggregate quietly rounds into noise.
  uint64_t find_dependents_ns = 0;
  uint64_t eval_ns = 0;
  uint64_t barrier_wait_ns = 0;    ///< Wave-barrier wait (parallel only).
  uint64_t waves = 0;              ///< Topological waves executed (0 = serial).
  uint64_t max_wave_cells = 0;     ///< Largest wave, in formula cells.
};

/// How the engine re-evaluates a dirty set. kParallel only takes effect
/// when an executor is plugged in (set_executor); without one the engine
/// silently stays serial, so taco_core keeps no thread dependency.
enum class RecalcMode {
  kSerial,    ///< One thread, dirty-range enumeration order.
  kParallel,  ///< Wave-scheduled across the plugged-in executor.
};

/// A dry-run of the wave planner: what an executor WOULD do with a
/// dirty set, without evaluating anything.  This is the inspectable
/// unit behind the EXPLAIN protocol verb — it must mirror the real
/// Execute decision tree exactly (same thresholds, same order), so a
/// plan's waves/granularity always match the pass a mutation would run.
struct RecalcPlan {
  enum class Granularity {
    kSerialInline,   ///< Evaluated on the calling thread, no waves.
    kCellGranular,   ///< Per-cell nodes, Kahn waves.
    kRangeGranular,  ///< Disjoint dirty ranges as nodes, R-tree edges.
  };

  Granularity granularity = Granularity::kSerialInline;
  /// The threshold that made the decision, as a compact machine-greppable
  /// token (e.g. "dirty_area(12)<min_parallel_cells(64)").  Never empty.
  std::string decision;
  int width = 1;                     ///< Wave-execution width (threads).
  /// The plan models a cutoff pass: the width/min_parallel_cells serial
  /// short-circuits don't apply (cutoff always builds waves when the
  /// granularity budgets allow), and `wave_cutoff_eligible` is filled.
  bool cutoff = false;
  uint64_t dirty_ranges = 0;         ///< Disjoint dirty rectangles.
  uint64_t dirty_area = 0;           ///< Total cells covered by them.
  uint64_t dirty_formulas = 0;       ///< Formula cells among them.
  uint64_t edges = 0;                ///< Dependency edges the plan expanded.
  uint64_t cycle_cells = 0;          ///< Nodes on/downstream of cycles.
  std::vector<uint64_t> wave_cells;  ///< Work units per topological wave.
  /// Per-wave upper bound on cutoff pruning (cutoff plans only): work
  /// units with no direct seed input. Whether they actually skip depends
  /// on runtime values, so execution's skip count is <= the sum of this.
  std::vector<uint64_t> wave_cutoff_eligible;

  uint64_t waves() const { return wave_cells.size(); }
  uint64_t max_wave_cells() const;
  std::string_view granularity_name() const;
};

/// The pluggable parallel-execution seam between the engine (taco_core,
/// thread-free) and the wave scheduler (taco_sched, owns the threads).
/// An executor must evaluate EVERY dirty formula cell of `dirty` into
/// `evaluator`'s cache with results cell-for-cell identical to the
/// serial path — including #CYCLE!/error outcomes — before returning
/// (src/sched/recalc_scheduler.h documents how that determinism is
/// achieved).
class RecalcExecutor {
 public:
  /// What the executor did, for RecalcResult's wave metrics.
  struct Outcome {
    uint64_t recalculated = 0;    ///< Formula cells evaluated.
    /// Formula cells pruned by value-change cutoff (prior restored).
    uint64_t cells_skipped_cutoff = 0;
    /// Total formula cells of the pass (recalculated + skipped).
    uint64_t dirty_formulas = 0;
    uint64_t waves = 0;           ///< Topological waves executed.
    uint64_t max_wave_cells = 0;  ///< Largest wave, in formula cells.
    uint64_t barrier_wait_ns = 0; ///< Time the coordinator spent blocked
                                  ///  on wave barriers (contention signal:
                                  ///  eval_ns minus this is compute).
  };

  virtual ~RecalcExecutor() = default;

  /// Evaluates every dirty formula cell. `dirty` ranges are disjoint;
  /// the evaluator has already been invalidated for them. When `cutoff`
  /// is non-null the executor MAY prune dependents of value-unchanged
  /// cells, restoring their captured prior values instead — the cache
  /// must still end up cell-for-cell identical to a full pass.
  virtual Outcome Execute(const Sheet& sheet, Evaluator* evaluator,
                          std::span<const Range> dirty,
                          const CutoffContext* cutoff) = 0;

  /// Plans (without executing) the pass Execute would run for `dirty`.
  /// Read-only and side-effect-free.  `seeds` (the edited rectangles)
  /// and `cutoff` describe the cutoff configuration the pass would run
  /// with; they only affect the plan when cutoff is on.  The default
  /// implementation models an executor-less engine: everything evaluates
  /// serially inline.
  virtual RecalcPlan Plan(const Sheet& sheet, std::span<const Range> dirty,
                          std::span<const Range> seeds, bool cutoff) const;
};

/// One deferred cell mutation, for batched application. Constructed via
/// the factory helpers; `range` is used by kClearRange, `cell` by the
/// others.
struct Edit {
  enum class Kind { kSetNumber, kSetText, kSetFormula, kClearRange };

  Kind kind = Kind::kSetNumber;
  Cell cell;
  Range range;
  double number = 0;
  std::string text;  ///< Text value or formula source (no leading '=').

  static Edit SetNumber(const Cell& cell, double value);
  static Edit SetText(const Cell& cell, std::string value);
  static Edit SetFormula(const Cell& cell, std::string text);
  static Edit ClearRange(const Range& range);
};

/// An ordered list of edits applied with a single merged dirty-set
/// computation and recalc pass (RecalcEngine::ApplyBatch).
using EditBatch = std::vector<Edit>;

/// Couples a Sheet, a DependencyGraph, and an Evaluator into a live
/// spreadsheet engine. The graph implementation is pluggable — pass a
/// TacoGraph for compressed operation or a NoCompGraph as the baseline.
class RecalcEngine {
 public:
  /// `sheet` and `graph` must outlive the engine. The graph must already
  /// reflect the sheet's dependencies (BuildGraphFromSheet).
  RecalcEngine(Sheet* sheet, DependencyGraph* graph);

  /// Updates a literal cell and recalculates its dependents.
  Result<RecalcResult> SetNumber(const Cell& cell, double value);
  Result<RecalcResult> SetText(const Cell& cell, std::string value);

  /// Replaces a cell's formula (clear + insert in the graph) and
  /// recalculates.
  Result<RecalcResult> SetFormula(const Cell& cell, std::string_view text);

  /// Clears a range of cells, removing their dependencies.
  Result<RecalcResult> ClearRange(const Range& range);

  /// Applies every edit of `batch` in order, then performs ONE merged
  /// dirty-set computation and recalc pass instead of one per edit — the
  /// serving-path batching the paper's latency argument calls for. Each
  /// dirty formula is re-evaluated at most once per batch regardless of
  /// how many edits dirtied it; the result's `recalc_passes` is 1 and
  /// `edits_applied` is batch.size().
  ///
  /// Batches are not atomic: a failing edit (e.g. a formula parse error)
  /// stops application at that edit (applying nothing of it), but the
  /// edits before it stay applied and their merged recalc still runs
  /// before the error is returned, so the engine is always left
  /// consistent. When `partial` is non-null and the batch fails, it
  /// receives the recalc outcome of the edits that DID apply (zeroed
  /// when none did) — callers tracking work done must not lose it just
  /// because the Result carries an error.
  Result<RecalcResult> ApplyBatch(const EditBatch& batch,
                                  RecalcResult* partial = nullptr);

  /// Current value of a cell (cached; evaluates on demand).
  Value GetValue(const Cell& cell) { return evaluator_.EvaluateCell(cell); }

  /// What a mutation of `target` would recalculate, without mutating:
  /// the dependency-closure half of EXPLAIN.  Runs the exact dirty-set
  /// recipe of RecalculateMerged (FindDependents per disjoint seed,
  /// union disjointified) and then asks the active executor to Plan the
  /// pass; an engine in serial mode (or without an executor) reports a
  /// serial-inline plan.  Non-const only because graph queries update
  /// the graph's query counters; no sheet/graph/evaluator/version state
  /// changes.
  struct ExplainInfo {
    std::vector<Range> seeds;        ///< Disjointified seed rectangles.
    std::vector<Range> dirty;        ///< The would-be dirty ranges.
    uint64_t dirty_cells = 0;        ///< Area covered by `dirty`.
    uint64_t find_dependents_ns = 0; ///< Closure query time (measured).
    RecalcMode mode = RecalcMode::kSerial;
    bool parallel_active = false;    ///< kParallel AND an executor plugged.
    bool cutoff = false;             ///< Value-change cutoff enabled.
    RecalcPlan plan;
  };
  ExplainInfo Explain(const Range& target);

  /// The version-publication hook at the recalc commit point: builds the
  /// immutable ValueVersion succeeding the last published one, covering
  /// `touched` (the commit's seed rectangles plus its dirty ranges).
  /// Serial and parallel commits call this identically — by the
  /// executor's contract the evaluator cache holds the same committed
  /// values either way, so the published version is mode-independent.
  /// NOT thread-safe; the caller serializes it with mutations (the
  /// session lock) and hands the result to readers via an atomic store.
  std::shared_ptr<const ValueVersion> PublishVersion(
      std::span<const Range> touched);

  /// The most recently published version (null before the first commit).
  const std::shared_ptr<const ValueVersion>& latest_version() const {
    return version_;
  }

  /// Plugs in (or clears) the parallel executor; `executor` must outlive
  /// the engine. Switching the executor or mode between operations is
  /// safe — recalc consults both at the start of each pass.
  void set_executor(RecalcExecutor* executor) { executor_ = executor; }

  /// Selects the recalc path. kParallel without an executor runs serial.
  void set_mode(RecalcMode mode) { mode_ = mode; }
  RecalcMode mode() const { return mode_; }

  /// Toggles value-change cutoff: recalc passes compare each committed
  /// value against its prior and prune dependents reachable only
  /// through unchanged cells (eval/cutoff.h documents why results stay
  /// cell-for-cell identical). Applies to the serial path directly and
  /// is forwarded to the executor on parallel passes. Off by default.
  void set_cutoff(bool cutoff) { cutoff_ = cutoff; }
  bool cutoff() const { return cutoff_; }

 private:
  /// Invalidates and re-evaluates everything depending on `changed`.
  RecalcResult Recalculate(const Range& changed);

  /// Merged variant: one FindDependents sweep over every changed range,
  /// one de-duplicated re-evaluation pass.
  RecalcResult RecalculateMerged(std::span<const Range> changed);

  /// Mutates sheet + graph for one edit without recalculating; appends
  /// the changed rectangle to `changed`.
  Status ApplyEditNoRecalc(const Edit& edit, std::vector<Range>* changed);

  Sheet* sheet_;
  DependencyGraph* graph_;
  Evaluator evaluator_;
  RecalcExecutor* executor_ = nullptr;
  RecalcMode mode_ = RecalcMode::kSerial;
  bool cutoff_ = false;
  std::shared_ptr<const ValueVersion> version_;  ///< Last published.
};

}  // namespace taco

#endif  // TACO_EVAL_RECALC_H_
