// The recalculation engine: the application layer that makes formula-graph
// queries latency-critical (Sec. I of the paper).
//
// On every update the engine asks the formula graph for the transitive
// dependents of the changed cell — exactly the step DataSpread performs
// before returning control to the user — then re-evaluates those formulas.
// The dirty-set identification time and size are reported per update so
// benchmarks and examples can attribute latency to the graph query.

#ifndef TACO_EVAL_RECALC_H_
#define TACO_EVAL_RECALC_H_

#include <memory>

#include "eval/evaluator.h"
#include "graph/dependency_graph.h"
#include "sheet/sheet.h"

namespace taco {

/// Outcome of one update.
struct RecalcResult {
  std::vector<Range> dirty;        ///< Ranges of formulas needing recalc.
  uint64_t dirty_cells = 0;        ///< Total dirty formula cells.
  uint64_t recalculated = 0;       ///< Formulas actually re-evaluated.
  double find_dependents_ms = 0;   ///< Time spent in FindDependents.
};

/// Couples a Sheet, a DependencyGraph, and an Evaluator into a live
/// spreadsheet engine. The graph implementation is pluggable — pass a
/// TacoGraph for compressed operation or a NoCompGraph as the baseline.
class RecalcEngine {
 public:
  /// `sheet` and `graph` must outlive the engine. The graph must already
  /// reflect the sheet's dependencies (BuildGraphFromSheet).
  RecalcEngine(Sheet* sheet, DependencyGraph* graph);

  /// Updates a literal cell and recalculates its dependents.
  Result<RecalcResult> SetNumber(const Cell& cell, double value);
  Result<RecalcResult> SetText(const Cell& cell, std::string value);

  /// Replaces a cell's formula (clear + insert in the graph) and
  /// recalculates.
  Result<RecalcResult> SetFormula(const Cell& cell, std::string_view text);

  /// Clears a range of cells, removing their dependencies.
  Result<RecalcResult> ClearRange(const Range& range);

  /// Current value of a cell (cached; evaluates on demand).
  Value GetValue(const Cell& cell) { return evaluator_.EvaluateCell(cell); }

 private:
  /// Invalidates and re-evaluates everything depending on `changed`.
  RecalcResult Recalculate(const Range& changed);

  Sheet* sheet_;
  DependencyGraph* graph_;
  Evaluator evaluator_;
};

}  // namespace taco

#endif  // TACO_EVAL_RECALC_H_
