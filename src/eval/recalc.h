// The recalculation engine: the application layer that makes formula-graph
// queries latency-critical (Sec. I of the paper).
//
// On every update the engine asks the formula graph for the transitive
// dependents of the changed cell — exactly the step DataSpread performs
// before returning control to the user — then re-evaluates those formulas.
// The dirty-set identification time and size are reported per update so
// benchmarks and examples can attribute latency to the graph query.

#ifndef TACO_EVAL_RECALC_H_
#define TACO_EVAL_RECALC_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "graph/dependency_graph.h"
#include "sheet/sheet.h"

namespace taco {

/// Outcome of one update (or one batch of updates).
struct RecalcResult {
  std::vector<Range> dirty;        ///< Ranges of formulas needing recalc.
  uint64_t dirty_cells = 0;        ///< Total dirty formula cells.
  uint64_t recalculated = 0;       ///< Formulas actually re-evaluated.
  uint64_t recalc_passes = 0;      ///< Merged recalc passes (1 per batch).
  uint64_t edits_applied = 0;      ///< Sheet/graph mutations performed.
  double find_dependents_ms = 0;   ///< Time spent in FindDependents.
};

/// One deferred cell mutation, for batched application. Constructed via
/// the factory helpers; `range` is used by kClearRange, `cell` by the
/// others.
struct Edit {
  enum class Kind { kSetNumber, kSetText, kSetFormula, kClearRange };

  Kind kind = Kind::kSetNumber;
  Cell cell;
  Range range;
  double number = 0;
  std::string text;  ///< Text value or formula source (no leading '=').

  static Edit SetNumber(const Cell& cell, double value);
  static Edit SetText(const Cell& cell, std::string value);
  static Edit SetFormula(const Cell& cell, std::string text);
  static Edit ClearRange(const Range& range);
};

/// An ordered list of edits applied with a single merged dirty-set
/// computation and recalc pass (RecalcEngine::ApplyBatch).
using EditBatch = std::vector<Edit>;

/// Couples a Sheet, a DependencyGraph, and an Evaluator into a live
/// spreadsheet engine. The graph implementation is pluggable — pass a
/// TacoGraph for compressed operation or a NoCompGraph as the baseline.
class RecalcEngine {
 public:
  /// `sheet` and `graph` must outlive the engine. The graph must already
  /// reflect the sheet's dependencies (BuildGraphFromSheet).
  RecalcEngine(Sheet* sheet, DependencyGraph* graph);

  /// Updates a literal cell and recalculates its dependents.
  Result<RecalcResult> SetNumber(const Cell& cell, double value);
  Result<RecalcResult> SetText(const Cell& cell, std::string value);

  /// Replaces a cell's formula (clear + insert in the graph) and
  /// recalculates.
  Result<RecalcResult> SetFormula(const Cell& cell, std::string_view text);

  /// Clears a range of cells, removing their dependencies.
  Result<RecalcResult> ClearRange(const Range& range);

  /// Applies every edit of `batch` in order, then performs ONE merged
  /// dirty-set computation and recalc pass instead of one per edit — the
  /// serving-path batching the paper's latency argument calls for. Each
  /// dirty formula is re-evaluated at most once per batch regardless of
  /// how many edits dirtied it; the result's `recalc_passes` is 1 and
  /// `edits_applied` is batch.size().
  ///
  /// Batches are not atomic: a failing edit (e.g. a formula parse error)
  /// stops application at that edit (applying nothing of it), but the
  /// edits before it stay applied and their merged recalc still runs
  /// before the error is returned, so the engine is always left
  /// consistent. When `partial` is non-null and the batch fails, it
  /// receives the recalc outcome of the edits that DID apply (zeroed
  /// when none did) — callers tracking work done must not lose it just
  /// because the Result carries an error.
  Result<RecalcResult> ApplyBatch(const EditBatch& batch,
                                  RecalcResult* partial = nullptr);

  /// Current value of a cell (cached; evaluates on demand).
  Value GetValue(const Cell& cell) { return evaluator_.EvaluateCell(cell); }

 private:
  /// Invalidates and re-evaluates everything depending on `changed`.
  RecalcResult Recalculate(const Range& changed);

  /// Merged variant: one FindDependents sweep over every changed range,
  /// one de-duplicated re-evaluation pass.
  RecalcResult RecalculateMerged(std::span<const Range> changed);

  /// Mutates sheet + graph for one edit without recalculating; appends
  /// the changed rectangle to `changed`.
  Status ApplyEditNoRecalc(const Edit& edit, std::vector<Range>* changed);

  Sheet* sheet_;
  DependencyGraph* graph_;
  Evaluator evaluator_;
};

}  // namespace taco

#endif  // TACO_EVAL_RECALC_H_
