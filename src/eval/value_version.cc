#include "eval/value_version.h"

#include <utility>

#include "common/range_set.h"

namespace taco {
namespace {

/// Erases from `values` every cell covered by the disjoint `ranges`.
/// Picks the cheaper side: enumerate the ranges when their area is
/// smaller than the map, otherwise sweep the map once.
void EraseCovered(std::span<const Range> ranges,
                  std::unordered_map<Cell, Value>* values) {
  uint64_t area = 0;
  for (const Range& r : ranges) area += r.Area();
  if (area <= values->size()) {
    for (const Range& r : ranges) {
      for (const Cell& cell : EnumerateCells(r)) values->erase(cell);
    }
    return;
  }
  for (auto it = values->begin(); it != values->end();) {
    it = CoversCell(ranges, it->first) ? values->erase(it) : ++it;
  }
}

}  // namespace

std::shared_ptr<const ValueVersion> ValueVersion::Full(uint64_t id,
                                                       const Sheet& sheet,
                                                       Evaluator* evaluator) {
  auto version = std::shared_ptr<ValueVersion>(new ValueVersion());
  version->id_ = id;
  version->values_.reserve(sheet.cell_count());
  // Evaluating inside the visitor is safe: EvaluateCell reads the sheet
  // and mutates only the evaluator's own cache.
  sheet.ForEachCellColumnMajor([&](const Cell& cell, const CellContent&) {
    version->values_.emplace(cell, evaluator->EvaluateCell(cell));
  });
  return version;
}

std::shared_ptr<const ValueVersion> ValueVersion::Delta(
    uint64_t id, std::shared_ptr<const ValueVersion> base, const Sheet& sheet,
    Evaluator* evaluator, std::span<const Range> touched) {
  if (base == nullptr) return Full(id, sheet, evaluator);

  std::vector<Range> disjoint = DisjointifyRanges(touched);
  uint64_t covered = CoveredCellCount(disjoint);
  // A commit that touched more cells than the sheet holds (a huge CLEAR,
  // a wide dirty fan-out over mostly-empty area) is cheaper to re-snapshot
  // outright than to enumerate cell by cell — and the result is more
  // compact than carrying the wide delta forward.
  if (covered > sheet.cell_count() + 1024) return Full(id, sheet, evaluator);

  auto version = std::shared_ptr<ValueVersion>(new ValueVersion());
  version->id_ = id;
  version->touched_ = std::move(disjoint);
  for (const Range& range : version->touched_) {
    for (const Cell& cell : EnumerateCells(range)) {
      // Only existing cells get entries; a touched cell without one reads
      // as Blank, which is exactly what a cleared or empty cell is. The
      // evaluator was primed by the commit, so this is mostly cache hits.
      if (sheet.Get(cell) != nullptr) {
        version->values_.emplace(cell, evaluator->EvaluateCell(cell));
      }
    }
  }

  if (base->depth_ < kMaxDepth) {
    version->depth_ = base->depth_ + 1;
    version->base_ = std::move(base);
    return version;
  }

  // Flatten: merge the whole chain into one full node so reader cost and
  // retained memory stay bounded. Oldest-first replay — start from the
  // root's map, and for each newer node drop what its commit touched,
  // then overlay what it carries.
  std::vector<const ValueVersion*> chain;
  for (const ValueVersion* node = base.get(); node != nullptr;
       node = node->base_.get()) {
    chain.push_back(node);
  }
  auto flat = std::shared_ptr<ValueVersion>(new ValueVersion());
  flat->id_ = id;
  flat->values_ = chain.back()->values_;  // Root: a full snapshot.
  for (size_t i = chain.size() - 1; i-- > 0;) {
    EraseCovered(chain[i]->touched_, &flat->values_);
    for (const auto& [cell, value] : chain[i]->values_) {
      flat->values_[cell] = value;
    }
  }
  EraseCovered(version->touched_, &flat->values_);
  for (const auto& [cell, value] : version->values_) {
    flat->values_[cell] = value;
  }
  return flat;
}

Value ValueVersion::Lookup(const Cell& cell) const {
  for (const ValueVersion* node = this; node != nullptr;
       node = node->base_.get()) {
    // A rootless node is a full snapshot (Full or a flatten): its map is
    // the whole sheet, so the probe is the answer either way.
    if (node->base_ == nullptr) {
      auto it = node->values_.find(cell);
      return it != node->values_.end() ? it->second : Value::Blank();
    }
    // Delta node: the coverage test is a handful of range compares and
    // gates the hash probe — a cell outside this commit's touched set
    // skips straight to the older node. Touched but absent from the map
    // means the commit left the cell blank.
    if (CoversCell(node->touched_, cell)) {
      auto it = node->values_.find(cell);
      return it != node->values_.end() ? it->second : Value::Blank();
    }
  }
  return Value::Blank();
}

}  // namespace taco
