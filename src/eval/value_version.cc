#include "eval/value_version.h"

#include <algorithm>
#include <utility>

#include "common/range_set.h"

namespace taco {
namespace {

/// Erases from `values` every cell covered by the disjoint `ranges`.
/// Picks the cheaper side: enumerate the ranges when their area is
/// smaller than the map, otherwise sweep the map once.
void EraseCovered(std::span<const Range> ranges,
                  std::unordered_map<Cell, Value>* values) {
  uint64_t area = 0;
  for (const Range& r : ranges) area += r.Area();
  if (area <= values->size()) {
    for (const Range& r : ranges) {
      for (const Cell& cell : EnumerateCells(r)) values->erase(cell);
    }
    return;
  }
  for (auto it = values->begin(); it != values->end();) {
    it = CoversCell(ranges, it->first) ? values->erase(it) : ++it;
  }
}

}  // namespace

std::shared_ptr<const ValueVersion> ValueVersion::Full(uint64_t id,
                                                       const Sheet& sheet,
                                                       Evaluator* evaluator) {
  auto version = std::shared_ptr<ValueVersion>(new ValueVersion());
  version->id_ = id;
  version->values_.reserve(sheet.cell_count());
  // Evaluating inside the visitor is safe: EvaluateCell reads the sheet
  // and mutates only the evaluator's own cache.
  sheet.ForEachCellColumnMajor([&](const Cell& cell, const CellContent&) {
    version->values_.emplace(cell, evaluator->EvaluateCell(cell));
  });
  return version;
}

std::shared_ptr<const ValueVersion> ValueVersion::Delta(
    uint64_t id, std::shared_ptr<const ValueVersion> base, const Sheet& sheet,
    Evaluator* evaluator, std::span<const Range> touched) {
  if (base == nullptr) return Full(id, sheet, evaluator);

  std::vector<Range> disjoint = DisjointifyRanges(touched);
  uint64_t covered = CoveredCellCount(disjoint);
  // A commit that touched more cells than the sheet holds (a huge CLEAR,
  // a wide dirty fan-out over mostly-empty area) is cheaper to re-snapshot
  // outright than to enumerate cell by cell — and the result is more
  // compact than carrying the wide delta forward.
  if (covered > sheet.cell_count() + 1024) return Full(id, sheet, evaluator);

  auto version = std::shared_ptr<ValueVersion>(new ValueVersion());
  version->id_ = id;

  // Value-unchanged cells are dropped from the delta entirely — no
  // coverage, no entry — so Lookup falls through to the older node,
  // which answers with the identical value. Cutoff recalc makes this the
  // common case: an absorbed edit touches a wide dirty closure but
  // changes a handful of cells, and the delta should cost what CHANGED,
  // not what was scheduled. A changed cell that no longer exists (a
  // CLEAR) must stay covered WITHOUT an entry, so it reads Blank here
  // instead of leaking the older node's value.
  struct Changed {
    Cell cell;
    Value value;
    bool exists;
  };
  std::vector<Changed> changed;
  for (const Range& range : disjoint) {
    for (const Cell& cell : EnumerateCells(range)) {
      // The evaluator was primed by the commit, so this is mostly cache
      // hits; the base lookup is a depth-bounded chain walk.
      Value now = sheet.Get(cell) != nullptr ? evaluator->EvaluateCell(cell)
                                             : Value::Blank();
      if (now == base->Lookup(cell)) continue;
      changed.push_back({cell, std::move(now), sheet.Get(cell) != nullptr});
    }
  }

  // Coalesce the changed cells into vertical runs, column-major: the
  // narrowed coverage Lookup gates on. Every delta probe pays O(#ranges)
  // range compares, so past this cap the narrowed form costs readers
  // more than it saves — keep the old wide coverage + full entries.
  constexpr size_t kMaxNarrowedRanges = 256;
  std::sort(changed.begin(), changed.end(),
            [](const Changed& a, const Changed& b) {
              return a.cell.col != b.cell.col ? a.cell.col < b.cell.col
                                              : a.cell.row < b.cell.row;
            });
  std::vector<Range> narrowed;
  for (const Changed& c : changed) {
    if (!narrowed.empty() && narrowed.back().head.col == c.cell.col &&
        narrowed.back().tail.row + 1 == c.cell.row) {
      narrowed.back().tail.row = c.cell.row;
    } else {
      narrowed.push_back(Range(c.cell));
    }
  }

  if (narrowed.size() <= kMaxNarrowedRanges) {
    version->touched_ = std::move(narrowed);
    version->values_.reserve(changed.size());
    for (Changed& c : changed) {
      if (c.exists) version->values_.emplace(c.cell, std::move(c.value));
    }
  } else {
    // Wide fallback: cover everything the commit touched and carry an
    // entry per existing cell (a touched cell without one reads Blank —
    // exactly what a cleared or empty cell is).
    version->touched_ = std::move(disjoint);
    for (const Range& range : version->touched_) {
      for (const Cell& cell : EnumerateCells(range)) {
        if (sheet.Get(cell) != nullptr) {
          version->values_.emplace(cell, evaluator->EvaluateCell(cell));
        }
      }
    }
  }

  if (base->depth_ < kMaxDepth) {
    version->depth_ = base->depth_ + 1;
    version->base_ = std::move(base);
    return version;
  }

  // Flatten: merge the whole chain into one full node so reader cost and
  // retained memory stay bounded. Oldest-first replay — start from the
  // root's map, and for each newer node drop what its commit touched,
  // then overlay what it carries.
  std::vector<const ValueVersion*> chain;
  for (const ValueVersion* node = base.get(); node != nullptr;
       node = node->base_.get()) {
    chain.push_back(node);
  }
  auto flat = std::shared_ptr<ValueVersion>(new ValueVersion());
  flat->id_ = id;
  flat->values_ = chain.back()->values_;  // Root: a full snapshot.
  for (size_t i = chain.size() - 1; i-- > 0;) {
    EraseCovered(chain[i]->touched_, &flat->values_);
    for (const auto& [cell, value] : chain[i]->values_) {
      flat->values_[cell] = value;
    }
  }
  EraseCovered(version->touched_, &flat->values_);
  for (const auto& [cell, value] : version->values_) {
    flat->values_[cell] = value;
  }
  return flat;
}

Value ValueVersion::Lookup(const Cell& cell) const {
  for (const ValueVersion* node = this; node != nullptr;
       node = node->base_.get()) {
    // A rootless node is a full snapshot (Full or a flatten): its map is
    // the whole sheet, so the probe is the answer either way.
    if (node->base_ == nullptr) {
      auto it = node->values_.find(cell);
      return it != node->values_.end() ? it->second : Value::Blank();
    }
    // Delta node: the coverage test is a handful of range compares and
    // gates the hash probe — a cell outside this commit's touched set
    // skips straight to the older node. Touched but absent from the map
    // means the commit left the cell blank.
    if (CoversCell(node->touched_, cell)) {
      auto it = node->values_.find(cell);
      return it != node->values_.end() ? it->second : Value::Blank();
    }
  }
  return Value::Blank();
}

}  // namespace taco
