#include "eval/cutoff.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/range_set.h"
#include "formula/references.h"

namespace taco {

void CapturePriorValues(const Sheet& sheet, const Evaluator& evaluator,
                        std::span<const Range> dirty, CutoffContext* ctx) {
  for (const Range& range : dirty) {
    for (const Cell& cell : EnumerateCells(range)) {
      if (!sheet.IsFormulaCell(cell)) continue;
      if (const Value* cached = evaluator.FindCached(cell)) {
        ctx->prior.emplace(cell, *cached);
      }
    }
  }
}

std::vector<std::vector<int>> BuildWaves(
    const std::vector<std::vector<int>>& adj, std::vector<int>* indeg,
    std::vector<int>* leftover) {
  const int n = static_cast<int>(indeg->size());
  std::vector<std::vector<int>> waves;
  std::vector<int> current;
  for (int i = 0; i < n; ++i) {
    if ((*indeg)[i] == 0) current.push_back(i);
  }
  int scheduled = 0;
  while (!current.empty()) {
    scheduled += static_cast<int>(current.size());
    std::vector<int> next;
    for (int node : current) {
      for (int dependent : adj[node]) {
        if (--(*indeg)[dependent] == 0) next.push_back(dependent);
      }
    }
    std::sort(next.begin(), next.end());
    waves.push_back(std::move(current));
    current = std::move(next);
  }
  if (scheduled < n) {
    leftover->reserve(n - scheduled);
    for (int i = 0; i < n; ++i) {
      if ((*indeg)[i] > 0) leftover->push_back(i);
    }
  }
  return waves;
}

void CollectDirtyFormulaCells(const Sheet& sheet, std::span<const Range> dirty,
                              std::vector<Cell>* nodes,
                              std::vector<const Expr*>* asts) {
  for (const Range& range : dirty) {
    for (const Cell& cell : EnumerateCells(range)) {
      const CellContent* content = sheet.Get(cell);
      if (content != nullptr && content->IsFormula()) {
        nodes->push_back(cell);
        asts->push_back(content->formula().ast.get());
      }
    }
  }
}

CellWavePlan BuildCellWavePlan(std::vector<Cell> nodes,
                               std::vector<const Expr*> asts,
                               std::span<const Range> seeds,
                               uint64_t max_edges) {
  CellWavePlan plan;
  plan.nodes = std::move(nodes);
  plan.asts = std::move(asts);
  const int n = static_cast<int>(plan.nodes.size());
  plan.forced.assign(n, 0);

  // Per-column row index over the dirty nodes, for reference-range
  // intersection: ordered by column so a wide reference only visits
  // columns that actually hold dirty cells.
  std::map<int32_t, std::vector<std::pair<int32_t, int>>> columns;
  for (int i = 0; i < n; ++i) {
    columns[plan.nodes[i].col].emplace_back(plan.nodes[i].row, i);
    if (!seeds.empty() && CoversCell(seeds, plan.nodes[i])) {
      plan.forced[i] = 1;  // The node itself was edited.
    }
  }
  for (auto& [col, rows] : columns) std::sort(rows.begin(), rows.end());

  // Expand each node's references into cell-level dirty edges
  // (precedent -> dependent), bounded by the edge budget.
  plan.adj.resize(n);
  std::vector<int> indeg(n, 0);
  std::vector<A1Reference> refs;
  for (int d = 0; d < n && !plan.over_budget; ++d) {
    refs.clear();
    ExtractReferences(*plan.asts[d], &refs);
    for (const A1Reference& ref : refs) {
      const Range& r = ref.range;
      if (!r.IsValid()) continue;
      if (!plan.forced[d]) {
        for (const Range& seed : seeds) {
          if (r.Overlaps(seed)) {
            plan.forced[d] = 1;
            break;
          }
        }
      }
      for (auto it = columns.lower_bound(r.head.col);
           it != columns.end() && it->first <= r.tail.col; ++it) {
        const auto& rows = it->second;
        auto lo = std::lower_bound(rows.begin(), rows.end(),
                                   std::make_pair(r.head.row, -1));
        for (auto row_it = lo;
             row_it != rows.end() && row_it->first <= r.tail.row; ++row_it) {
          // Duplicate references produce duplicate edges; indegree and
          // adjacency stay matched, so Kahn still converges. A
          // self-reference blocks its own node forever — exactly the
          // serial #CYCLE! case, resolved by the leftover pass.
          plan.adj[row_it->second].push_back(d);
          ++indeg[d];
          if (++plan.edges > max_edges) {
            plan.over_budget = true;
            break;
          }
        }
        if (plan.over_budget) break;
      }
      if (plan.over_budget) break;
    }
  }

  if (!plan.over_budget) {
    plan.waves = BuildWaves(plan.adj, &indeg, &plan.leftover);
  }
  return plan;
}

CutoffOutcome SerialCutoffEvaluate(const CellWavePlan& plan,
                                   Evaluator* evaluator,
                                   const CutoffContext& ctx) {
  CutoffOutcome outcome;
  const int n = static_cast<int>(plan.nodes.size());
  outcome.dirty_formulas = static_cast<uint64_t>(n);

  // A node evaluates when it was edited, reads a seed, had no captured
  // prior, or (below) any dirty precedent committed a changed value.
  std::vector<char> needs_eval(n);
  for (int i = 0; i < n; ++i) {
    needs_eval[i] =
        plan.forced[i] != 0 || ctx.prior.find(plan.nodes[i]) == ctx.prior.end();
  }

  for (const std::vector<int>& wave : plan.waves) {
    for (int idx : wave) {
      if (!needs_eval[idx]) {
        // Prune: the pass invalidated the cache, so restore the prior
        // value. Dependents stay unmarked — nothing changed here.
        evaluator->Prime(plan.nodes[idx], ctx.prior.at(plan.nodes[idx]));
        ++outcome.skipped;
        continue;
      }
      Value now = evaluator->EvaluateCell(plan.nodes[idx]);
      ++outcome.evaluated;
      auto it = ctx.prior.find(plan.nodes[idx]);
      if (it == ctx.prior.end() || !(now == it->second)) {
        for (int d : plan.adj[idx]) needs_eval[d] = 1;
      }
    }
  }
  // Cycle members and their downstream dependents replay un-cut, in
  // node order — the serial first-touch order #CYCLE! patterns pin.
  for (int idx : plan.leftover) {
    evaluator->EvaluateCell(plan.nodes[idx]);
    ++outcome.evaluated;
  }
  return outcome;
}

}  // namespace taco
