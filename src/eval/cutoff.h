// Value-change cutoff recalculation: the shared dirty-subgraph wave
// machinery behind RecalcEngine's serial cutoff path, the wave
// scheduler's cutoff execution, and the EXPLAIN planner.
//
// Full recalc re-evaluates the whole transitive closure of a dirty set
// even when most recomputed values come out identical (a constant
// overwritten with the same constant, an IF/MIN that absorbs the change,
// a chain where the delta dies two hops in). Cutoff recalc evaluates the
// frontier wave-by-wave and compares each committed value against its
// prior cached value: dependents reachable ONLY through unchanged cells
// are pruned from later waves and their prior values restored instead of
// recomputed.
//
// Correctness argument (why cutoff output is cell-for-cell identical to
// full recalc, by construction):
//   * Acyclic dirty formulas are pure functions of their precedents. A
//     node is pruned only when it has no direct seed input (no reference
//     overlapping an edited rectangle, not itself edited) and every
//     dirty precedent committed value-unchanged — so every one of its
//     inputs holds exactly the value it held before the edit, and
//     re-evaluating it would reproduce the prior value bit-for-bit.
//   * Pruning requires a captured prior: a cell whose value was never
//     cached (cold cache, fresh session) always evaluates.
//   * Cycle-involved cells and their downstream never become ready in
//     Kahn's algorithm; they replay serially in node order exactly like
//     the un-cut path, so #CYCLE! placement is order-identical. Cutoff
//     NEVER applies to them.

#ifndef TACO_EVAL_CUTOFF_H_
#define TACO_EVAL_CUTOFF_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "eval/evaluator.h"
#include "eval/value.h"
#include "formula/ast.h"
#include "sheet/sheet.h"

namespace taco {

/// Per-pass cutoff state, captured by the engine BEFORE the dirty set is
/// invalidated: the edited rectangles (whose dependents must always
/// evaluate) and the prior cached value of every dirty formula cell that
/// had one. A cell absent from `prior` is treated as changed.
struct CutoffContext {
  std::vector<Range> seeds;
  std::unordered_map<Cell, Value> prior;
};

/// Snapshots the cached value of every dirty formula cell into
/// `ctx->prior`. Must run before the evaluator is invalidated for the
/// pass (the whole point is remembering what the cells were worth).
void CapturePriorValues(const Sheet& sheet, const Evaluator& evaluator,
                        std::span<const Range> dirty, CutoffContext* ctx);

/// Partitions Kahn-style ready counts into waves. `adj[p]` lists the
/// nodes depending on p; `indeg` is consumed. Waves come out sorted by
/// node index so the partition is canonical regardless of adjacency
/// discovery order. Nodes still blocked at the end (on or downstream of
/// a cycle) are returned through `leftover`, in node order.
std::vector<std::vector<int>> BuildWaves(
    const std::vector<std::vector<int>>& adj, std::vector<int>* indeg,
    std::vector<int>* leftover);

/// Appends every dirty formula cell (and its AST) in dirty-range
/// enumeration order — the node order both the serial path and the
/// leftover replay depend on.
void CollectDirtyFormulaCells(const Sheet& sheet, std::span<const Range> dirty,
                              std::vector<Cell>* nodes,
                              std::vector<const Expr*>* asts);

/// The dirty subgraph in wave form: one node per dirty formula cell,
/// cell-level edges from reference expansion, Kahn waves, and the
/// cycle-blocked leftover. Shared between the engine's serial cutoff
/// path, RecalcScheduler::Execute, and RecalcScheduler::Plan so the
/// three can never disagree on wave structure.
struct CellWavePlan {
  std::vector<Cell> nodes;
  std::vector<const Expr*> asts;
  /// adj[p] lists the node indices depending on node p. Duplicate
  /// references produce duplicate edges (harmless: indegree and
  /// adjacency stay matched).
  std::vector<std::vector<int>> adj;
  /// Node reads an edited rectangle directly (a reference overlaps a
  /// seed, or the node itself was edited): cutoff never prunes it.
  std::vector<char> forced;
  uint64_t edges = 0;
  /// Edge expansion blew `max_edges`; waves/leftover are unusable and
  /// the caller must fall back (range-granular or eager serial).
  bool over_budget = false;
  std::vector<std::vector<int>> waves;
  std::vector<int> leftover;  ///< Cycle members + downstream, node order.
};

/// Expands `nodes`' references into cell-level edges (bounded by
/// `max_edges`), marks seed-forced nodes, and builds the waves. `seeds`
/// may be empty (non-cutoff callers): every `forced` bit is then 0.
CellWavePlan BuildCellWavePlan(std::vector<Cell> nodes,
                               std::vector<const Expr*> asts,
                               std::span<const Range> seeds,
                               uint64_t max_edges);

/// What a cutoff evaluation did. `evaluated + skipped == dirty_formulas`
/// always (the invariant the differential suite pins).
struct CutoffOutcome {
  uint64_t evaluated = 0;       ///< Formula cells actually re-evaluated.
  uint64_t skipped = 0;         ///< Formula cells pruned (prior restored).
  uint64_t dirty_formulas = 0;  ///< Total formula cells in the pass.
};

/// Evaluates `plan` wave-by-wave on the calling thread with value-change
/// cutoff: pruned nodes get their prior value primed back into
/// `evaluator` (the pass invalidated it), evaluated nodes whose value
/// changed mark their dependents for evaluation, and the leftover
/// replays serially un-cut. Requires `!plan.over_budget`.
CutoffOutcome SerialCutoffEvaluate(const CellWavePlan& plan,
                                   Evaluator* evaluator,
                                   const CutoffContext& ctx);

}  // namespace taco

#endif  // TACO_EVAL_CUTOFF_H_
