// Evaluated cell values.

#ifndef TACO_EVAL_VALUE_H_
#define TACO_EVAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace taco {

/// Spreadsheet error codes, printed the way sheets display them.
enum class EvalError : uint8_t {
  kDiv0,   ///< #DIV/0!
  kValue,  ///< #VALUE! (type mismatch)
  kRef,    ///< #REF!   (invalid reference)
  kName,   ///< #NAME?  (unknown function)
  kNa,     ///< #N/A    (lookup miss)
  kCycle,  ///< #CYCLE! (circular dependency; non-standard but explicit)
};

std::string_view EvalErrorToString(EvalError error);

/// The result of evaluating a cell or expression: empty (blank cell), a
/// number, a boolean, text, or an error.
class Value {
 public:
  Value() = default;
  static Value Number(double v) { return Value(Repr(v)); }
  static Value Boolean(bool v) { return Value(Repr(v)); }
  static Value Text(std::string v) { return Value(Repr(std::move(v))); }
  static Value Error(EvalError e) { return Value(Repr(e)); }
  static Value Blank() { return Value(); }

  bool is_blank() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_number() const { return std::holds_alternative<double>(repr_); }
  bool is_boolean() const { return std::holds_alternative<bool>(repr_); }
  bool is_text() const { return std::holds_alternative<std::string>(repr_); }
  bool is_error() const { return std::holds_alternative<EvalError>(repr_); }

  double number() const { return std::get<double>(repr_); }
  bool boolean() const { return std::get<bool>(repr_); }
  const std::string& text() const { return std::get<std::string>(repr_); }
  EvalError error() const { return std::get<EvalError>(repr_); }

  /// Numeric coercion: numbers as-is, booleans 1/0, blank 0. Text and
  /// errors do not coerce (callers check CoercesToNumber first).
  double AsNumber() const {
    if (is_number()) return number();
    if (is_boolean()) return boolean() ? 1.0 : 0.0;
    return 0.0;  // blank
  }
  bool CoercesToNumber() const { return is_number() || is_boolean() || is_blank(); }

  /// Truthiness for IF/AND/OR: non-zero numbers and TRUE.
  bool AsBoolean() const {
    if (is_boolean()) return boolean();
    if (is_number()) return number() != 0.0;
    return false;
  }

  /// Display form ("42", "TRUE", "#DIV/0!", text verbatim, "" for blank).
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }

 private:
  using Repr =
      std::variant<std::monostate, double, bool, std::string, EvalError>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

}  // namespace taco

#endif  // TACO_EVAL_VALUE_H_
