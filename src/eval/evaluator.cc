#include "eval/evaluator.h"

#include "formula/references.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <optional>

namespace taco {
namespace {

// Propagates the first error among argument values, if any.
std::optional<Value> FirstError(const std::vector<Evaluator::ArgValue>& values) {
  for (const auto& arg : values) {
    if (arg.value.is_error()) return arg.value;
  }
  return std::nullopt;
}

Value Compare(const Value& lhs, const Value& rhs, BinaryOp op) {
  // Spreadsheet comparison semantics: numbers compare numerically
  // (booleans/blanks coerce), text compares case-insensitively, mixed
  // number/text compares all text > all numbers (simplified to #VALUE!
  // here to keep semantics predictable).
  int cmp;
  if (lhs.CoercesToNumber() && rhs.CoercesToNumber()) {
    double a = lhs.AsNumber(), b = rhs.AsNumber();
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.is_text() && rhs.is_text()) {
    std::string a = lhs.text(), b = rhs.text();
    auto lower = [](std::string s) {
      std::transform(s.begin(), s.end(), s.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      return s;
    };
    a = lower(std::move(a));
    b = lower(std::move(b));
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    return Value::Error(EvalError::kValue);
  }
  switch (op) {
    case BinaryOp::kEq: return Value::Boolean(cmp == 0);
    case BinaryOp::kNe: return Value::Boolean(cmp != 0);
    case BinaryOp::kLt: return Value::Boolean(cmp < 0);
    case BinaryOp::kLe: return Value::Boolean(cmp <= 0);
    case BinaryOp::kGt: return Value::Boolean(cmp > 0);
    case BinaryOp::kGe: return Value::Boolean(cmp >= 0);
    default: return Value::Error(EvalError::kValue);
  }
}

}  // namespace

std::string_view EvalErrorToString(EvalError error) {
  switch (error) {
    case EvalError::kDiv0: return "#DIV/0!";
    case EvalError::kValue: return "#VALUE!";
    case EvalError::kRef: return "#REF!";
    case EvalError::kName: return "#NAME?";
    case EvalError::kNa: return "#N/A";
    case EvalError::kCycle: return "#CYCLE!";
  }
  return "#ERROR!";
}

std::string Value::ToString() const {
  if (is_blank()) return "";
  if (is_number()) {
    double v = number();
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    std::string out = std::to_string(v);
    return out;
  }
  if (is_boolean()) return boolean() ? "TRUE" : "FALSE";
  if (is_text()) return text();
  return std::string(EvalErrorToString(error()));
}

namespace {

// Value of a non-formula cell.
Value LeafValue(const CellContent* content) {
  if (content == nullptr || content->IsBlank()) return Value::Blank();
  if (content->IsNumber()) return Value::Number(content->number());
  if (content->IsText()) return Value::Text(content->text());
  return Value::Boolean(content->boolean());
}

}  // namespace

Value Evaluator::EvaluateCell(const Cell& cell) {
  if (const Value* cached = Lookup(cell)) return *cached;

  const CellContent* content = sheet_->Get(cell);
  if (content == nullptr || !content->IsFormula()) {
    Value result = LeafValue(content);
    cache_.emplace(cell, result);
    return result;
  }
  // A gray cell reached again through an expression: circular reference.
  if (in_progress_.contains(cell)) {
    return Value::Error(EvalError::kCycle);
  }

  // Resolve the formula DAG under `cell` iteratively so that arbitrarily
  // deep dependency chains (running-total columns routinely reach 10^5
  // cells) cannot overflow the native stack. Expression evaluation stays
  // recursive — AST depth is small — and by the time a frame evaluates,
  // every formula cell it references is already cached.
  struct Frame {
    Cell cell;
    bool expanded = false;
  };
  std::vector<Frame> stack{{cell, false}};
  std::vector<A1Reference> refs;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (Lookup(frame.cell) != nullptr) {
      stack.pop_back();
      continue;
    }
    const CellContent* c = sheet_->Get(frame.cell);
    if (c == nullptr || !c->IsFormula()) {
      cache_.emplace(frame.cell, LeafValue(c));
      stack.pop_back();
      continue;
    }
    if (!frame.expanded) {
      frame.expanded = true;
      in_progress_.insert(frame.cell);
      refs.clear();
      ExtractReferences(*c->formula().ast, &refs);
      for (const A1Reference& ref : refs) {
        if (!ref.range.IsValid()) continue;
        for (const Cell& rc : EnumerateCells(ref.range)) {
          // Only uncached formula cells need resolution; gray ones are
          // ancestors (a cycle) and evaluate to #CYCLE! on read.
          if (Lookup(rc) == nullptr && !in_progress_.contains(rc) &&
              sheet_->IsFormulaCell(rc)) {
            stack.push_back(Frame{rc, false});
          }
        }
      }
      continue;  // children first; `frame` reference may be stale now
    }
    // Children resolved: evaluate with cache hits only.
    Value value = EvaluateExpr(*c->formula().ast);
    in_progress_.erase(frame.cell);
    cache_.emplace(frame.cell, value);
    stack.pop_back();
  }
  return cache_.at(cell);
}

Value Evaluator::EvaluateExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return Value::Number(static_cast<const NumberExpr&>(expr).value);
    case ExprKind::kString:
      return Value::Text(static_cast<const StringExpr&>(expr).value);
    case ExprKind::kBoolean:
      return Value::Boolean(static_cast<const BooleanExpr&>(expr).value);
    case ExprKind::kReference: {
      const auto& ref = static_cast<const ReferenceExpr&>(expr).ref;
      if (!ref.range.IsValid()) return Value::Error(EvalError::kRef);
      if (ref.range.IsSingleCell()) return EvaluateCell(ref.range.head);
      // A bare multi-cell range outside an aggregate context is #VALUE!.
      return Value::Error(EvalError::kValue);
    }
    case ExprKind::kUnary:
      return EvaluateUnary(static_cast<const UnaryExpr&>(expr));
    case ExprKind::kBinary:
      return EvaluateBinary(static_cast<const BinaryExpr&>(expr));
    case ExprKind::kCall:
      return EvaluateCall(static_cast<const CallExpr&>(expr));
  }
  return Value::Error(EvalError::kValue);
}

Value Evaluator::EvaluateUnary(const UnaryExpr& expr) {
  Value v = EvaluateExpr(*expr.operand);
  if (v.is_error()) return v;
  if (!v.CoercesToNumber()) return Value::Error(EvalError::kValue);
  switch (expr.op) {
    case UnaryOp::kNegate: return Value::Number(-v.AsNumber());
    case UnaryOp::kPlus: return Value::Number(v.AsNumber());
    case UnaryOp::kPercent: return Value::Number(v.AsNumber() / 100.0);
  }
  return Value::Error(EvalError::kValue);
}

Value Evaluator::EvaluateBinary(const BinaryExpr& expr) {
  Value lhs = EvaluateExpr(*expr.lhs);
  if (lhs.is_error()) return lhs;
  Value rhs = EvaluateExpr(*expr.rhs);
  if (rhs.is_error()) return rhs;

  switch (expr.op) {
    case BinaryOp::kConcat:
      return Value::Text(lhs.ToString() + rhs.ToString());
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return Compare(lhs, rhs, expr.op);
    default:
      break;
  }
  if (!lhs.CoercesToNumber() || !rhs.CoercesToNumber()) {
    return Value::Error(EvalError::kValue);
  }
  double a = lhs.AsNumber(), b = rhs.AsNumber();
  switch (expr.op) {
    case BinaryOp::kAdd: return Value::Number(a + b);
    case BinaryOp::kSub: return Value::Number(a - b);
    case BinaryOp::kMul: return Value::Number(a * b);
    case BinaryOp::kDiv:
      return b == 0.0 ? Value::Error(EvalError::kDiv0) : Value::Number(a / b);
    case BinaryOp::kPow: return Value::Number(std::pow(a, b));
    default: return Value::Error(EvalError::kValue);
  }
}

void Evaluator::CollectArgValues(const Expr& arg, std::vector<ArgValue>* out) {
  if (arg.kind == ExprKind::kReference) {
    const auto& ref = static_cast<const ReferenceExpr&>(arg).ref;
    if (!ref.range.IsSingleCell()) {
      for (const Cell& c : EnumerateCells(ref.range)) {
        out->push_back(ArgValue{EvaluateCell(c), true});
      }
      return;
    }
    // A single-cell reference still counts as range provenance: SUM(B1)
    // over a text B1 is 0, not #VALUE!.
    out->push_back(ArgValue{EvaluateCell(ref.range.head), true});
    return;
  }
  out->push_back(ArgValue{EvaluateExpr(arg), false});
}

Value Evaluator::EvaluateCall(const CallExpr& call) {
  const std::string& name = call.name;

  // IF evaluates lazily (only the taken branch).
  if (name == "IF") {
    if (call.args.size() < 2 || call.args.size() > 3) {
      return Value::Error(EvalError::kValue);
    }
    Value cond = EvaluateExpr(*call.args[0]);
    if (cond.is_error()) return cond;
    if (cond.AsBoolean()) return EvaluateExpr(*call.args[1]);
    if (call.args.size() == 3) return EvaluateExpr(*call.args[2]);
    return Value::Boolean(false);
  }

  if (name == "VLOOKUP") {
    // VLOOKUP(key, table, col_index [, exact_ignored]).
    if (call.args.size() < 3) return Value::Error(EvalError::kValue);
    Value key = EvaluateExpr(*call.args[0]);
    if (key.is_error()) return key;
    if (call.args[1]->kind != ExprKind::kReference) {
      return Value::Error(EvalError::kValue);
    }
    const Range table =
        static_cast<const ReferenceExpr&>(*call.args[1]).ref.range;
    Value col_value = EvaluateExpr(*call.args[2]);
    if (!col_value.CoercesToNumber()) return Value::Error(EvalError::kValue);
    int32_t col_index = static_cast<int32_t>(col_value.AsNumber());
    if (col_index < 1 || col_index > table.width()) {
      return Value::Error(EvalError::kRef);
    }
    for (int32_t row = table.head.row; row <= table.tail.row; ++row) {
      Value candidate = EvaluateCell(Cell{table.head.col, row});
      bool match = false;
      if (candidate.is_text() && key.is_text()) {
        match = candidate.text() == key.text();
      } else if (candidate.CoercesToNumber() && key.CoercesToNumber() &&
                 !candidate.is_blank()) {
        match = candidate.AsNumber() == key.AsNumber();
      }
      if (match) {
        return EvaluateCell(Cell{table.head.col + col_index - 1, row});
      }
    }
    return Value::Error(EvalError::kNa);
  }

  // Eager functions: aggregate every argument.
  std::vector<ArgValue> values;
  for (const ExprPtr& arg : call.args) {
    CollectArgValues(*arg, &values);
  }

  if (name == "SUM" || name == "AVERAGE" || name == "AVG" || name == "MIN" ||
      name == "MAX") {
    if (auto error = FirstError(values)) return *error;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    size_t count = 0;
    for (const ArgValue& arg : values) {
      const Value& v = arg.value;
      // Range cells contribute only actual numbers; direct scalar
      // arguments coerce booleans (SUM(TRUE) == 1) and reject text.
      if (arg.from_range) {
        if (!v.is_number()) continue;
      } else if (!v.CoercesToNumber()) {
        return Value::Error(EvalError::kValue);
      }
      double x = v.AsNumber();
      sum += x;
      min = std::min(min, x);
      max = std::max(max, x);
      ++count;
    }
    if (name == "SUM") return Value::Number(sum);
    if (count == 0) return Value::Error(EvalError::kDiv0);
    if (name == "AVERAGE" || name == "AVG") {
      return Value::Number(sum / static_cast<double>(count));
    }
    return Value::Number(name == "MIN" ? min : max);
  }
  if (name == "COUNT") {
    size_t count = 0;
    for (const ArgValue& arg : values) {
      if (arg.value.is_number()) ++count;
    }
    return Value::Number(static_cast<double>(count));
  }
  if (name == "COUNTA") {
    size_t count = 0;
    for (const ArgValue& arg : values) {
      if (!arg.value.is_blank()) ++count;
    }
    return Value::Number(static_cast<double>(count));
  }
  if (name == "AND" || name == "OR") {
    if (auto error = FirstError(values)) return *error;
    bool all = true, any = false;
    for (const ArgValue& arg : values) {
      const Value& v = arg.value;
      if (v.is_blank() || (arg.from_range && v.is_text())) continue;
      bool b = v.AsBoolean();
      all = all && b;
      any = any || b;
    }
    return Value::Boolean(name == "AND" ? all : any);
  }
  if (name == "NOT") {
    if (values.size() != 1) return Value::Error(EvalError::kValue);
    if (values[0].value.is_error()) return values[0].value;
    return Value::Boolean(!values[0].value.AsBoolean());
  }
  if (name == "ABS") {
    if (values.size() != 1 || !values[0].value.CoercesToNumber()) {
      return values.size() == 1 && values[0].value.is_error()
                 ? values[0].value
                 : Value::Error(EvalError::kValue);
    }
    return Value::Number(std::fabs(values[0].value.AsNumber()));
  }
  if (name == "ROUND") {
    if (values.empty() || !values[0].value.CoercesToNumber()) {
      return Value::Error(EvalError::kValue);
    }
    double digits = values.size() > 1 && values[1].value.CoercesToNumber()
                        ? values[1].value.AsNumber()
                        : 0.0;
    double scale = std::pow(10.0, digits);
    return Value::Number(std::round(values[0].value.AsNumber() * scale) /
                         scale);
  }
  if (name == "CONCAT" || name == "CONCATENATE") {
    std::string out;
    for (const ArgValue& arg : values) {
      if (arg.value.is_error()) return arg.value;
      out += arg.value.ToString();
    }
    return Value::Text(std::move(out));
  }

  return Value::Error(EvalError::kName);
}

void Evaluator::Invalidate(const Range& cells) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (cells.Contains(it->first)) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  MaybeShrink();
}

void Evaluator::MaybeShrink() {
  // unordered_map::erase never releases buckets, so a cache that once
  // held a large region keeps its table (and its O(buckets) iteration
  // cost) forever. After a bulk invalidation leaves the table mostly
  // empty, rehash down. The 1/8 threshold keeps the amortized cost nil:
  // a shrink is only reachable after ~8x growth or mass erasure.
  if (cache_.bucket_count() > kShrinkMinBuckets &&
      cache_.size() < cache_.bucket_count() / 8) {
    cache_.rehash(cache_.size() * 2);
  }
}

}  // namespace taco
