// TCP transport for the workbook service: a POSIX socket server that
// frames the line protocol and dispatches into the shared
// CommandProcessor, so socket clients and the stdin loop of taco_serve
// serve the SAME sessions, metrics, and recalc pools.
//
// Model: one accept thread plus one thread per connection. Each
// connection owns a read buffer with partial-line reassembly (commands
// may arrive torn across packets, CRLF or LF terminated), frames BATCH
// bodies with CommandProcessor::ExtraBodyLines, executes each complete
// command synchronously on its own thread, and writes the response as
// one atomic unit (ResponseWriter contract). Two clients editing one
// session serialize on the session lock exactly like two stdin
// commands; a client's next command always observes its previous
// response's effects.
//
// Framing hazards are handled the way taco_serve's stdin loop does, and
// then some:
//   - a line longer than `max_line_bytes` is dropped with a single
//     "ERR InvalidArgument: line exceeds ..." response instead of
//     buffering without bound; the connection survives. Inside a BATCH
//     body the dropped line consumes its body slot (the batch response
//     then reports that line unparseable) so the frame never slips. An
//     oversized line whose first word is BATCH is treated as an
//     unframeable header (below) — its count was in the dropped bytes.
//   - an unframeable BATCH header (bad or oversized count) gets its ERR
//     response and then the connection closes — the body length is
//     unknowable, so reinterpreting body lines as commands would
//     silently address other sessions.
//   - EOF in the middle of a BATCH body executes the partial frame
//     (matching stdin-at-EOF) before closing.
//
// Shutdown() is graceful: stop accepting, wake every connection (they
// finish the command in flight and emit its response first), join all
// threads, close every fd. A connection blocked on a stuck peer's full
// send buffer is aborted by the same wakeup, so Shutdown() always
// completes. Idle connections can be reaped with `idle_timeout_ms`.

#ifndef TACO_NET_SOCKET_SERVER_H_
#define TACO_NET_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

namespace taco {

/// One response from the HTTP handler (see SocketServerOptions).
struct HttpReply {
  int status = 200;  ///< 200 / 404 / 503; anything else renders bare.
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

struct SocketServerOptions {
  /// IPv4 address to bind. The default serves loopback only; a daemon
  /// deliberately exposed to a network binds "0.0.0.0".
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;            ///< 0 = ephemeral; read back via port().
  int max_clients = 64;         ///< Concurrent connections; extras refused.
  int idle_timeout_ms = 0;      ///< Close silent connections; 0 = never.
  size_t max_line_bytes = 64 * 1024;  ///< Per-line bound (see above).

  /// When set, this listener speaks minimal HTTP instead of the line
  /// protocol: a GET's path (query string stripped — Prometheus
  /// appends scrape parameters) is routed to this handler, anything
  /// non-GET is a 405, and every connection serves one request then
  /// closes (`Connection: close` is always sent). taco_serve's
  /// --metrics-port routes /metrics, /healthz, and /readyz through this
  /// so a stock Prometheus (and an orchestrator's probes) can hit the
  /// daemon with zero new threading machinery — the
  /// accept/drain/shutdown model is untouched. A 200 on /metrics is
  /// metered as a METRICS op, same histogram row as the protocol verb.
  std::function<HttpReply(std::string_view path)> http_handler;
};

/// The network daemon in front of one WorkbookService. `service` must
/// outlive the server. Start() binds and begins serving; Shutdown()
/// (also run by the destructor) drains and joins everything.
class SocketServer {
 public:
  explicit SocketServer(WorkbookService* service,
                        SocketServerOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread. Fails (IoError) when
  /// the address is unusable; safe to destroy the server afterwards.
  Status Start();

  /// The bound port (resolves an ephemeral request) — valid after a
  /// successful Start().
  uint16_t port() const { return port_; }

  /// Graceful stop: no new connections, in-flight commands finish and
  /// their responses are written, every connection thread is joined and
  /// every fd closed. Idempotent; returns only when fully quiesced.
  void Shutdown();

  /// Currently attached clients (0 after Shutdown()).
  int open_connections() const { return open_.load(); }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;  ///< Server-unique, for conn.* log events.
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// One-request HTTP mode (options_.http_handler set): reads one
  /// request head, answers, closes. Uses the same wake pipe / idle
  /// timeout / WriteAll machinery as the line protocol.
  void ServeHttp(Connection* conn);
  /// Joins finished connection threads; with `all`, blocks until every
  /// connection (live ones were woken by Shutdown) has been joined.
  void Reap(bool all);
  /// Keep the per-server gauge (admission control, open_connections())
  /// and the service-wide STATS gauge moving in lockstep.
  void ConnectionOpened();
  void ConnectionClosed();

  WorkbookService* service_;
  CommandProcessor processor_;
  SocketServerOptions options_;

  int listen_fd_ = -1;
  /// Self-pipe: every poll() in the server also watches the read end;
  /// Shutdown() closes the write end, which wakes them all at once
  /// (readable-at-EOF) without any per-connection signaling.
  int wake_read_ = -1;
  int wake_write_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;

  mutable std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::atomic<int> open_{0};
  std::atomic<uint64_t> next_conn_id_{1};
};

}  // namespace taco

#endif  // TACO_NET_SOCKET_SERVER_H_
