#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/ascii.h"
#include "common/clock.h"
#include "obs/log.h"
#include "service/metrics.h"

namespace taco {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default:  return "Status";
  }
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetCloseOnExec(int fd) {
  int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Poll outcome the connection/accept loops branch on.
enum class WaitResult { kReady, kWake, kTimeout, kError };

/// Waits for `events` on `fd` while also watching the shutdown pipe.
/// `timeout_ms` < 0 means forever.
WaitResult WaitFor(int fd, short events, int wake_fd, int timeout_ms) {
  struct pollfd fds[2];
  int r;
  do {
    fds[0] = {fd, events, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    r = ::poll(fds, 2, timeout_ms);
    // Re-polling on EINTR restarts the idle window; close enough — a
    // signal storm should not masquerade as an idle client.
  } while (r < 0 && errno == EINTR);
  if (r < 0) return WaitResult::kError;
  if (r == 0) return WaitResult::kTimeout;
  // Shutdown wins over pending data: in-flight commands already finished
  // (we only poll between commands), so this is the drain point.
  if (fds[1].revents != 0) return WaitResult::kWake;
  if (fds[0].revents & (POLLERR | POLLNVAL)) return WaitResult::kError;
  return WaitResult::kReady;
}

/// Writes all of `data`, waiting for POLLOUT on the non-blocking fd and
/// aborting if the shutdown pipe wakes — a stuck peer must not be able
/// to wedge Shutdown(). Returns false when the connection is unusable.
bool WriteAll(int fd, std::string_view data, int wake_fd) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (WaitFor(fd, POLLOUT, wake_fd, -1) != WaitResult::kReady) {
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / anything else: peer is gone.
  }
  return true;
}

/// ResponseWriter over one connection: a whole response (newline
/// appended) per Emit, written by the single connection thread, so
/// responses can never interleave on the wire.
class SocketResponseWriter : public ResponseWriter {
 public:
  SocketResponseWriter(int fd, int wake_fd) : fd_(fd), wake_fd_(wake_fd) {}

  bool Emit(std::string_view response) override {
    std::string framed;
    framed.reserve(response.size() + 1);
    framed.append(response);
    framed.push_back('\n');
    return WriteAll(fd_, framed, wake_fd_);
  }

 private:
  int fd_;
  int wake_fd_;
};

}  // namespace

SocketServer::SocketServer(WorkbookService* service,
                           SocketServerOptions options)
    : service_(service), processor_(service), options_(std::move(options)) {
  if (options_.max_clients < 1) options_.max_clients = 1;
  if (options_.max_line_bytes < 256) options_.max_line_bytes = 256;
}

SocketServer::~SocketServer() { Shutdown(); }

Status SocketServer::Start() {
  if (running_.load()) return Status::AlreadyExists("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  SetCloseOnExec(listen_fd_);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  // Non-blocking listener: poll-then-accept races (a connection that
  // RSTs away between the two calls) must surface as EAGAIN, not block
  // accept() past the wake pipe and wedge Shutdown().
  SetNonBlocking(listen_fd_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status status = Errno("bind/listen " + options_.bind_address + ":" +
                          std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    Status status = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  SetCloseOnExec(wake_read_);
  SetCloseOnExec(wake_write_);

  shutdown_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::Shutdown() {
  if (!running_.load()) return;
  if (!shutdown_.exchange(true)) {
    // Closing the write end makes the read end readable-at-EOF for every
    // poller at once — accept loop, idle reads, and stuck writes alike.
    ::close(wake_write_);
    wake_write_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  Reap(/*all=*/true);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_ >= 0) {
    ::close(wake_read_);
    wake_read_ = -1;
  }
  running_.store(false);
}

void SocketServer::Reap(bool all) {
  std::list<std::unique_ptr<Connection>> joinable;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      joinable.swap(connections_);
    } else {
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load()) {
          joinable.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (auto& conn : joinable) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void SocketServer::AcceptLoop() {
  TransportCounters& counters = service_->metrics().transport();
  while (!shutdown_.load()) {
    WaitResult wait = WaitFor(listen_fd_, POLLIN, wake_read_, -1);
    if (wait == WaitResult::kWake || wait == WaitResult::kError) break;
    if (wait == WaitResult::kTimeout) continue;

    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // Only a dead listening socket ends the loop. Everything else —
      // including fd exhaustion (EMFILE/ENFILE) and kernel memory
      // pressure (ENOBUFS/ENOMEM) — is transient: back off briefly
      // (wake-aware, so Shutdown stays prompt) and keep accepting,
      // rather than silently leaving the backlog to hang forever.
      if (errno == EBADF || errno == EINVAL || errno == ENOTSOCK) break;
      if (errno != EINTR && errno != EAGAIN && errno != ECONNABORTED) {
        std::fprintf(stderr, "taco_net: accept: %s (retrying)\n",
                     std::strerror(errno));
        WaitFor(listen_fd_, 0, wake_read_, 50);
      }
      continue;
    }
    SetCloseOnExec(fd);
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    obs::Logger* logger = service_->logger();
    if (open_.load() >= options_.max_clients) {
      counters.rejected.fetch_add(1);
      if (logger != nullptr) {
        logger->Log(obs::LogLevel::kWarn, "conn.reject",
                    {{"open", static_cast<uint64_t>(open_.load())},
                     {"max", static_cast<uint64_t>(options_.max_clients)}});
      }
      WriteAll(fd,
               "ERR Unavailable: too many clients (max " +
                   std::to_string(options_.max_clients) + ")\n",
               wake_read_);
      ::close(fd);
      continue;
    }

    counters.accepted.fetch_add(1);
    ConnectionOpened();

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1);
    if (logger != nullptr) {
      // HTTP connections are per-scrape noise: keep them at debug so a
      // default info log records clients, not every probe.
      logger->Log(options_.http_handler ? obs::LogLevel::kDebug
                                        : obs::LogLevel::kInfo,
                  "conn.accept",
                  {{"conn", conn->id},
                   {"transport", options_.http_handler ? "http" : "line"}});
    }
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });

    Reap(/*all=*/false);
  }
}

void SocketServer::ServeHttp(Connection* conn) {
  // Minimal, deliberately boring HTTP/1.0-style serving: one request
  // head, one response, close. A scraper opens a fresh connection per
  // scrape anyway, and single-shot keeps every hard HTTP problem
  // (pipelining, chunking, keep-alive timers) out of the daemon.
  std::string head;
  char chunk[4096];
  bool complete = false;
  while (!complete && !shutdown_.load()) {
    int timeout =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
    WaitResult wait = WaitFor(conn->fd, POLLIN, wake_read_, timeout);
    if (wait != WaitResult::kReady) return;
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return;
    }
    if (n == 0) return;  // EOF before a complete request head.
    head.append(chunk, static_cast<size_t>(n));
    complete = head.find("\r\n\r\n") != std::string::npos ||
               head.find("\n\n") != std::string::npos;
    if (!complete && head.size() > options_.max_line_bytes) {
      return;  // A request head this large is not a scraper.
    }
  }
  if (!complete) return;

  std::string_view request = head;
  std::string_view line = request.substr(0, request.find('\n'));
  while (!line.empty() && (line.back() == '\r')) line.remove_suffix(1);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  std::string_view method =
      sp1 == std::string_view::npos ? line : line.substr(0, sp1);
  std::string_view target = (sp1 == std::string_view::npos || sp2 <= sp1)
                                ? std::string_view{}
                                : line.substr(sp1 + 1, sp2 - sp1 - 1);

  HttpReply reply;
  if (method != "GET") {
    reply.status = 405;
    reply.body = "only GET is served\n";
  } else {
    // The query string is scrape tooling's business, not the routing
    // table's: /metrics?collect[]=... must reach the same handler arm.
    std::string_view path = target.substr(0, target.find('?'));
    auto start = SteadyNow();
    reply = options_.http_handler(path);
    if (path == "/metrics" && reply.status == 200) {
      // An HTTP scrape is a METRICS op by another transport; it lands
      // in the same histogram row the protocol verb does.
      service_->metrics().Record(ServiceOp::kMetrics, NsSince(start),
                                 /*ok=*/true);
    }
  }
  std::string response = "HTTP/1.1 " + std::to_string(reply.status) + " " +
                         HttpStatusText(reply.status) +
                         "\r\nContent-Type: " + reply.content_type +
                         "\r\nContent-Length: " +
                         std::to_string(reply.body.size()) +
                         "\r\nConnection: close\r\n\r\n" + reply.body;
  WriteAll(conn->fd, response, wake_read_);
}

void SocketServer::ServeConnection(Connection* conn) {
  TransportCounters& counters = service_->metrics().transport();
  if (options_.http_handler) {
    ServeHttp(conn);
    ::close(conn->fd);
    conn->fd = -1;
    ConnectionClosed();
    if (obs::Logger* logger = service_->logger(); logger != nullptr) {
      logger->Log(obs::LogLevel::kDebug, "conn.close",
                  {{"conn", conn->id}, {"transport", "http"}});
    }
    Reap(/*all=*/false);
    conn->done.store(true);
    return;
  }
  SocketResponseWriter writer(conn->fd, wake_read_);

  std::string inbuf;     // Raw bytes not yet split into lines.
  std::string pending;   // Command under assembly (BATCH header + body).
  int body_needed = 0;   // Body lines still owed to `pending`.
  bool discarding = false;  // Skipping the tail of an oversized line.
  bool closing = false;

  auto dispatch = [&](std::string_view command) {
    counters.commands.fetch_add(1);
    if (!writer.Emit(processor_.Execute(command))) closing = true;
  };

  // One complete line (terminator stripped; may still carry a '\r',
  // which the processor tolerates).
  auto feed_line = [&](std::string_view line) {
    if (body_needed > 0) {
      pending += '\n';
      pending += line;
      if (--body_needed == 0) {
        dispatch(pending);
        pending.clear();
      }
      return;
    }
    std::string_view word = line.substr(0, line.find_first_of(" \t\r"));
    if (EqualsIgnoreCaseAscii(word, "QUIT") ||
        EqualsIgnoreCaseAscii(word, "EXIT")) {
      closing = true;  // Mirror stdin: end of stream, no response.
      return;
    }
    int extra = CommandProcessor::ExtraBodyLines(line);
    if (extra < 0) {
      // Unframeable BATCH header: report and close — the body length is
      // unknowable, so the rest of the stream cannot be trusted.
      dispatch(line);
      closing = true;
      return;
    }
    if (extra == 0) {
      dispatch(line);
    } else {
      pending.assign(line);
      body_needed = extra;
    }
  };

  // A line blew the bound (`prefix` is what arrived before we stopped
  // buffering). Never buffered further: the command is lost by design,
  // but the framing is not — a body line consumes its slot (the batch
  // response then names it unparseable), a header line gets its own
  // error response. One exception: a header whose first word is BATCH
  // is *unframeable* — its body-line count was in the dropped bytes —
  // so it gets the poison treatment (ERR + close) rather than letting
  // its body lines execute as commands against other sessions.
  auto oversized = [&](std::string_view prefix) {
    counters.oversized.fetch_add(1);
    if (body_needed > 0) {
      feed_line("");
      return;
    }
    // Tokenize the way ExtraBodyLines does (leading whitespace skipped)
    // so " BATCH ..." cannot sneak past the check below.
    size_t start = prefix.find_first_not_of(" \t");
    prefix = start == std::string_view::npos ? std::string_view{}
                                             : prefix.substr(start);
    std::string_view word = prefix.substr(0, prefix.find_first_of(" \t\r"));
    bool unframeable = EqualsIgnoreCaseAscii(word, "BATCH");
    if (!writer.Emit("ERR InvalidArgument: line exceeds " +
                     std::to_string(options_.max_line_bytes) + " bytes" +
                     (unframeable ? "; BATCH frame unknowable, closing"
                                  : "")) ||
        unframeable) {
      closing = true;
    }
  };

  auto drain_lines = [&] {
    // Consume via an offset and erase once: front-erasing per line
    // would memmove the rest of the buffer for every pipelined command.
    size_t begin = 0;
    size_t nl;
    while (!closing &&
           (nl = inbuf.find('\n', begin)) != std::string::npos) {
      std::string_view line =
          std::string_view(inbuf).substr(begin, nl - begin);
      if (discarding) {
        discarding = false;  // The dropped line's tail ends here.
      } else if (line.size() > options_.max_line_bytes) {
        oversized(line);
      } else {
        feed_line(line);
      }
      begin = nl + 1;
    }
    inbuf.erase(0, begin);
    if (closing) return;
    if (discarding) {
      inbuf.clear();
    } else if (inbuf.size() > options_.max_line_bytes) {
      oversized(inbuf);
      discarding = true;
      inbuf.clear();
    }
  };

  char chunk[4096];
  bool peer_eof = false;
  while (!closing && !shutdown_.load()) {
    int timeout =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
    WaitResult wait = WaitFor(conn->fd, POLLIN, wake_read_, timeout);
    if (wait == WaitResult::kWake || wait == WaitResult::kError) break;
    if (wait == WaitResult::kTimeout) {
      if (options_.idle_timeout_ms > 0) {
        counters.idle_closed.fetch_add(1);
        writer.Emit("ERR Unavailable: idle timeout, closing connection");
        break;
      }
      continue;
    }
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (n == 0) {  // Peer finished writing (EOF / half-close).
      peer_eof = true;
      break;
    }
    inbuf.append(chunk, static_cast<size_t>(n));
    drain_lines();
  }

  // EOF mid-frame: execute what arrived, exactly like the stdin loop
  // when getline fails inside a BATCH body. An unterminated final line
  // counts as a line (a stream ending without a newline still said it).
  if (peer_eof && !closing && !shutdown_.load()) {
    if (!inbuf.empty() && !discarding) {
      feed_line(inbuf);
    }
    if (body_needed > 0 && !closing) {
      body_needed = 0;
      dispatch(pending);
    }
  }

  ::close(conn->fd);
  conn->fd = -1;
  ConnectionClosed();
  if (obs::Logger* logger = service_->logger(); logger != nullptr) {
    logger->Log(obs::LogLevel::kInfo, "conn.close",
                {{"conn", conn->id}, {"transport", "line"}});
  }
  // Reap peers that finished before us so a quiet daemon does not hold
  // dead threads until the next accept. Our own entry is skipped (done
  // is still false here — a thread cannot join itself), and the chain
  // terminates because a thread only ever joins already-done peers.
  Reap(/*all=*/false);
  conn->done.store(true);
}

void SocketServer::ConnectionOpened() {
  open_.fetch_add(1);
  service_->metrics().transport().open.fetch_add(1);
}

void SocketServer::ConnectionClosed() {
  open_.fetch_sub(1);
  service_->metrics().transport().open.fetch_sub(1);
}

}  // namespace taco
