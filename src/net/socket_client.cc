#include "net/socket_client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <utility>

#include "service/protocol.h"

namespace taco {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

SocketClient::~SocketClient() { Close(); }

SocketClient::SocketClient(SocketClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

SocketClient& SocketClient::operator=(SocketClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Status SocketClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return Status::AlreadyExists("already connected");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &results);
  if (rc != 0) {
    return Status::IoError("resolve '" + host + "': " + ::gai_strerror(rc));
  }

  Status status = Status::IoError("no addresses for '" + host + "'");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      status = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      status = Status::OK();
      break;
    }
    status = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
  }
  ::freeaddrinfo(results);
  return status;
}

void SocketClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void SocketClient::FinishWrites() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status SocketClient::WriteRaw(std::string_view bytes) {
  if (!connected()) return Status::Unavailable("not connected");
  while (!bytes.empty()) {
    ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status SocketClient::SendCommand(const std::string& command) {
  return WriteRaw(command + "\n");
}

Result<std::string> SocketClient::ReadLine() {
  if (!connected()) return Status::Unavailable("not connected");
  size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::Unavailable("connection closed by server");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

Result<std::string> SocketClient::ReadResponse() {
  TACO_ASSIGN_OR_RETURN(std::string response, ReadLine());
  if (!CommandProcessor::ResponseContinues(response)) return response;
  // The multi-line report: accumulate through the terminator so the
  // caller gets the exact string Execute() returned on the server.
  while (true) {
    TACO_ASSIGN_OR_RETURN(std::string line, ReadLine());
    response += '\n';
    response += line;
    if (line == CommandProcessor::kResponseTerminator) return response;
  }
}

Result<std::string> SocketClient::Call(const std::string& command) {
  TACO_RETURN_IF_ERROR(SendCommand(command));
  return ReadResponse();
}

Status ParseHostPort(std::string_view spec, std::string* host,
                     uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected host:port, got '" +
                                   std::string(spec) + "'");
  }
  std::string_view port_text = spec.substr(colon + 1);
  int value = 0;
  auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), value);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size() ||
      value < 1 || value > 65535) {
    return Status::InvalidArgument("bad port '" + std::string(port_text) +
                                   "'");
  }
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

}  // namespace taco
