// A small blocking TCP client for the taco_serve text protocol: the
// remote counterpart of driving CommandProcessor in-process. One
// Call() sends one complete command (multi-line for BATCH) and returns
// exactly the string CommandProcessor::Execute produced on the server
// — including the multi-line service STATS report, which is framed by
// CommandProcessor::ResponseContinues / kResponseTerminator.
//
// Used by examples/service_client.cpp (--connect host:port), the
// protocol conformance and transport test suites, and
// bench_net_throughput. Intentionally synchronous: request, response,
// repeat — pipelining belongs to the server side.

#ifndef TACO_NET_SOCKET_CLIENT_H_
#define TACO_NET_SOCKET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace taco {

class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;
  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;

  /// Connects to `host`:`port` (name or numeric, resolved over IPv4).
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Half-close: tells the server no more commands are coming while
  /// responses can still be read — how a scripted client ends cleanly
  /// (and how tests exercise the server's EOF-mid-frame path).
  void FinishWrites();

  /// Sends `command` and reads its complete response.
  Result<std::string> Call(const std::string& command);

  /// The halves of Call, for callers that pipeline or test framing.
  Status SendCommand(const std::string& command);  ///< command + '\n'.
  Result<std::string> ReadResponse();  ///< One response, multi-line aware.

  /// Exactly these bytes, no newline added — lets tests tear commands
  /// across writes to exercise the server's reassembly.
  Status WriteRaw(std::string_view bytes);

  /// Next line, CR/LF stripped. Unavailable on clean EOF ("connection
  /// closed by server"), IoError on transport failure.
  Result<std::string> ReadLine();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Received bytes not yet returned as lines.
};

/// Splits "host:port" (e.g. "127.0.0.1:7013"). InvalidArgument when the
/// port is missing or not in [1, 65535].
Status ParseHostPort(std::string_view spec, std::string* host,
                     uint16_t* port);

}  // namespace taco

#endif  // TACO_NET_SOCKET_CLIENT_H_
