#include "formula/references.h"

#include <cassert>

namespace taco {
namespace {

// Shifts one corner: '$'-anchored coordinates stay, relative ones move.
Cell ShiftCorner(const Cell& cell, const AbsFlags& flags, Offset offset) {
  return Cell{flags.abs_col ? cell.col : cell.col + offset.dcol,
              flags.abs_row ? cell.row : cell.row + offset.drow};
}

Result<A1Reference> ShiftReference(const A1Reference& ref, Offset offset) {
  A1Reference out = ref;
  Cell head = ShiftCorner(ref.range.head, ref.head_flags, offset);
  Cell tail = ShiftCorner(ref.range.tail, ref.tail_flags, offset);
  if (!head.IsValid() || !tail.IsValid()) {
    return Status::OutOfRange("shifted reference " + ref.range.ToString() +
                              " by " + offset.ToString() +
                              " leaves the sheet (#REF!)");
  }
  // Mixed-anchor shifts can cross the corners; re-normalize, keeping each
  // flag with its textual corner like spreadsheets do.
  if (!DominatedBy(head, tail)) {
    if (head.col > tail.col) {
      std::swap(head.col, tail.col);
      std::swap(out.head_flags.abs_col, out.tail_flags.abs_col);
    }
    if (head.row > tail.row) {
      std::swap(head.row, tail.row);
      std::swap(out.head_flags.abs_row, out.tail_flags.abs_row);
    }
  }
  out.range = Range(head, tail);
  return out;
}

}  // namespace

void ExtractReferences(const Expr& expr, std::vector<A1Reference>* out) {
  switch (expr.kind) {
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kBoolean:
      return;
    case ExprKind::kReference:
      out->push_back(static_cast<const ReferenceExpr&>(expr).ref);
      return;
    case ExprKind::kUnary:
      ExtractReferences(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      ExtractReferences(*bin.lhs, out);
      ExtractReferences(*bin.rhs, out);
      return;
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      for (const ExprPtr& arg : call.args) {
        ExtractReferences(*arg, out);
      }
      return;
    }
  }
}

std::vector<A1Reference> ExtractReferences(const Expr& expr) {
  std::vector<A1Reference> out;
  ExtractReferences(expr, &out);
  return out;
}

Result<ExprPtr> ShiftExprForAutofill(const Expr& expr, Offset offset) {
  switch (expr.kind) {
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kBoolean:
      return CloneExpr(expr);
    case ExprKind::kReference: {
      auto shifted =
          ShiftReference(static_cast<const ReferenceExpr&>(expr).ref, offset);
      if (!shifted.ok()) return shifted.status();
      return ExprPtr(std::make_unique<ReferenceExpr>(std::move(*shifted)));
    }
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      auto operand = ShiftExprForAutofill(*unary.operand, offset);
      if (!operand.ok()) return operand;
      return ExprPtr(
          std::make_unique<UnaryExpr>(unary.op, std::move(*operand)));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      auto lhs = ShiftExprForAutofill(*bin.lhs, offset);
      if (!lhs.ok()) return lhs;
      auto rhs = ShiftExprForAutofill(*bin.rhs, offset);
      if (!rhs.ok()) return rhs;
      return ExprPtr(std::make_unique<BinaryExpr>(bin.op, std::move(*lhs),
                                                  std::move(*rhs)));
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      std::vector<ExprPtr> args;
      args.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) {
        auto shifted = ShiftExprForAutofill(*arg, offset);
        if (!shifted.ok()) return shifted.status();
        args.push_back(std::move(*shifted));
      }
      return ExprPtr(
          std::make_unique<CallExpr>(call.name, std::move(args)));
    }
  }
  assert(false && "unreachable");
  return Status::Internal("unknown expression kind");
}

RefCue ClassifyReferenceCue(const A1Reference& ref, Axis axis) {
  // Along the column axis formulas march down rows, so the row flag decides
  // whether a corner is anchored; along the row axis the column flag does.
  bool head_fixed = axis == Axis::kColumn ? ref.head_flags.abs_row
                                          : ref.head_flags.abs_col;
  bool tail_fixed = axis == Axis::kColumn ? ref.tail_flags.abs_row
                                          : ref.tail_flags.abs_col;
  if (head_fixed && tail_fixed) return RefCue::kFixFix;
  if (head_fixed) return RefCue::kFixRel;
  if (tail_fixed) return RefCue::kRelFix;
  return RefCue::kRelRel;
}

}  // namespace taco
