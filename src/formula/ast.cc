#include "formula/ast.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace taco {
namespace {

// Operator precedence for printing with minimal parentheses; larger binds
// tighter. Mirrors the parser's levels.
int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 1;
    case BinaryOp::kConcat:
      return 2;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 3;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 4;
    case BinaryOp::kPow:
      return 5;
  }
  return 0;
}

// All binary operators here are left-associative except '^'.
bool RightAssociative(BinaryOp op) { return op == BinaryOp::kPow; }

void Print(const Expr& expr, int parent_prec, bool parent_right,
           std::string* out);

void PrintBinary(const BinaryExpr& bin, int parent_prec, bool parent_right,
                 std::string* out) {
  int prec = Precedence(bin.op);
  // Parenthesize when this operator binds looser than the context, or at
  // equal precedence on the non-associative side.
  bool needs_parens = prec < parent_prec ||
                      (prec == parent_prec &&
                       (RightAssociative(bin.op) ? !parent_right : parent_right));
  if (needs_parens) out->push_back('(');
  Print(*bin.lhs, prec, false, out);
  out->append(BinaryOpToString(bin.op));
  Print(*bin.rhs, prec + (RightAssociative(bin.op) ? 0 : 1), true, out);
  if (needs_parens) out->push_back(')');
}

std::string FormatNumber(double v) {
  // Integral values print without a decimal point, like spreadsheets do.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os.precision(15);
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

void Print(const Expr& expr, int parent_prec, bool parent_right,
           std::string* out) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      out->append(FormatNumber(static_cast<const NumberExpr&>(expr).value));
      return;
    case ExprKind::kString: {
      const auto& str = static_cast<const StringExpr&>(expr);
      out->push_back('"');
      for (char ch : str.value) {
        if (ch == '"') out->push_back('"');
        out->push_back(ch);
      }
      out->push_back('"');
      return;
    }
    case ExprKind::kBoolean:
      out->append(static_cast<const BooleanExpr&>(expr).value ? "TRUE"
                                                              : "FALSE");
      return;
    case ExprKind::kReference: {
      const auto& ref = static_cast<const ReferenceExpr&>(expr).ref;
      if (ref.is_single_cell) {
        out->append(CellToA1(ref.range.head, ref.head_flags));
      } else {
        out->append(CellToA1(ref.range.head, ref.head_flags) + ":" +
                    CellToA1(ref.range.tail, ref.tail_flags));
      }
      return;
    }
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      // Postfix '%' binds tighter than the prefix operators: "-x%" parses
      // as Negate(Percent(x)), so Percent(Negate(x)) needs "(-x)%".
      constexpr int kPrefixPrec = 6;
      constexpr int kPostfixPrec = 7;
      const bool is_postfix = unary.op == UnaryOp::kPercent;
      const int my_prec = is_postfix ? kPostfixPrec : kPrefixPrec;
      bool needs_parens = my_prec < parent_prec;
      if (needs_parens) out->push_back('(');
      switch (unary.op) {
        case UnaryOp::kNegate:
          out->push_back('-');
          Print(*unary.operand, kPrefixPrec, true, out);
          break;
        case UnaryOp::kPlus:
          out->push_back('+');
          Print(*unary.operand, kPrefixPrec, true, out);
          break;
        case UnaryOp::kPercent:
          Print(*unary.operand, kPostfixPrec, false, out);
          out->push_back('%');
          break;
      }
      if (needs_parens) out->push_back(')');
      return;
    }
    case ExprKind::kBinary:
      PrintBinary(static_cast<const BinaryExpr&>(expr), parent_prec,
                  parent_right, out);
      return;
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      out->append(call.name);
      out->push_back('(');
      for (size_t i = 0; i < call.args.size(); ++i) {
        if (i > 0) out->push_back(',');
        Print(*call.args[i], 0, false, out);
      }
      out->push_back(')');
      return;
    }
  }
}

}  // namespace

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kPow: return "^";
    case BinaryOp::kConcat: return "&";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

ExprPtr CloneExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return std::make_unique<NumberExpr>(
          static_cast<const NumberExpr&>(expr).value);
    case ExprKind::kString:
      return std::make_unique<StringExpr>(
          static_cast<const StringExpr&>(expr).value);
    case ExprKind::kBoolean:
      return std::make_unique<BooleanExpr>(
          static_cast<const BooleanExpr&>(expr).value);
    case ExprKind::kReference:
      return std::make_unique<ReferenceExpr>(
          static_cast<const ReferenceExpr&>(expr).ref);
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      return std::make_unique<UnaryExpr>(unary.op, CloneExpr(*unary.operand));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      return std::make_unique<BinaryExpr>(bin.op, CloneExpr(*bin.lhs),
                                          CloneExpr(*bin.rhs));
    }
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      std::vector<ExprPtr> args;
      args.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) {
        args.push_back(CloneExpr(*arg));
      }
      return std::make_unique<CallExpr>(call.name, std::move(args));
    }
  }
  assert(false && "unreachable");
  return nullptr;
}

std::string ExprToString(const Expr& expr) {
  std::string out;
  Print(expr, 0, false, &out);
  return out;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kNumber:
      return static_cast<const NumberExpr&>(a).value ==
             static_cast<const NumberExpr&>(b).value;
    case ExprKind::kString:
      return static_cast<const StringExpr&>(a).value ==
             static_cast<const StringExpr&>(b).value;
    case ExprKind::kBoolean:
      return static_cast<const BooleanExpr&>(a).value ==
             static_cast<const BooleanExpr&>(b).value;
    case ExprKind::kReference:
      return static_cast<const ReferenceExpr&>(a).ref ==
             static_cast<const ReferenceExpr&>(b).ref;
    case ExprKind::kUnary: {
      const auto& ua = static_cast<const UnaryExpr&>(a);
      const auto& ub = static_cast<const UnaryExpr&>(b);
      return ua.op == ub.op && ExprEquals(*ua.operand, *ub.operand);
    }
    case ExprKind::kBinary: {
      const auto& ba = static_cast<const BinaryExpr&>(a);
      const auto& bb = static_cast<const BinaryExpr&>(b);
      return ba.op == bb.op && ExprEquals(*ba.lhs, *bb.lhs) &&
             ExprEquals(*ba.rhs, *bb.rhs);
    }
    case ExprKind::kCall: {
      const auto& ca = static_cast<const CallExpr&>(a);
      const auto& cb = static_cast<const CallExpr&>(b);
      if (ca.name != cb.name || ca.args.size() != cb.args.size()) return false;
      for (size_t i = 0; i < ca.args.size(); ++i) {
        if (!ExprEquals(*ca.args[i], *cb.args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace taco
