// Lexical tokens of the spreadsheet formula language.

#ifndef TACO_FORMULA_TOKEN_H_
#define TACO_FORMULA_TOKEN_H_

#include <cstdint>
#include <string>

#include "common/a1.h"

namespace taco {

/// Kinds of lexical tokens. Operators carry no payload; literals and
/// references carry their parsed value.
enum class TokenKind : uint8_t {
  kNumber,      ///< Numeric literal, e.g. "3.5", "1e6".
  kString,      ///< Double-quoted string literal; "" escapes a quote.
  kBoolean,     ///< TRUE or FALSE.
  kCellRef,     ///< A single-cell reference, e.g. "B7", "$B$7".
  kIdentifier,  ///< A function name, e.g. "SUM".
  kPlus,        ///< '+'
  kMinus,       ///< '-'
  kStar,        ///< '*'
  kSlash,       ///< '/'
  kCaret,       ///< '^'
  kAmpersand,   ///< '&' (string concatenation)
  kPercent,     ///< '%' (postfix percent)
  kEq,          ///< '='
  kNe,          ///< '<>'
  kLt,          ///< '<'
  kLe,          ///< '<='
  kGt,          ///< '>'
  kGe,          ///< '>='
  kLParen,      ///< '('
  kRParen,      ///< ')'
  kComma,       ///< ','
  kColon,       ///< ':' (range operator)
  kEnd,         ///< End of input.
};

/// Returns a short printable name for a token kind (for error messages).
std::string_view TokenKindToString(TokenKind kind);

/// One lexical token with its source position (byte offset into the
/// formula text, for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  size_t offset = 0;

  double number = 0.0;       ///< Set for kNumber.
  bool boolean = false;      ///< Set for kBoolean.
  std::string text;          ///< Set for kString (unescaped) / kIdentifier.
  Cell cell;                 ///< Set for kCellRef.
  AbsFlags cell_flags;       ///< Set for kCellRef.
};

}  // namespace taco

#endif  // TACO_FORMULA_TOKEN_H_
