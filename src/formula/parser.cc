#include "formula/parser.h"

#include "formula/lexer.h"

namespace taco {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    auto expr = ParseComparison();
    if (!expr.ok()) return expr;
    if (Peek().kind != TokenKind::kEnd) {
      return UnexpectedToken("end of formula");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status UnexpectedToken(std::string_view expected) const {
    return Status::ParseError(
        "expected " + std::string(expected) + " but found " +
        std::string(TokenKindToString(Peek().kind)) + " at offset " +
        std::to_string(Peek().offset));
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseConcat();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    while (true) {
      BinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kEq: op = BinaryOp::kEq; break;
        case TokenKind::kNe: op = BinaryOp::kNe; break;
        case TokenKind::kLt: op = BinaryOp::kLt; break;
        case TokenKind::kLe: op = BinaryOp::kLe; break;
        case TokenKind::kGt: op = BinaryOp::kGt; break;
        case TokenKind::kGe: op = BinaryOp::kGe; break;
        default:
          return expr;
      }
      Advance();
      auto rhs = ParseConcat();
      if (!rhs.ok()) return rhs;
      expr = std::make_unique<BinaryExpr>(op, std::move(expr), std::move(*rhs));
    }
  }

  Result<ExprPtr> ParseConcat() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    while (Match(TokenKind::kAmpersand)) {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      expr = std::make_unique<BinaryExpr>(BinaryOp::kConcat, std::move(expr),
                                          std::move(*rhs));
    }
    return expr;
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return expr;
      }
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      expr = std::make_unique<BinaryExpr>(op, std::move(expr), std::move(*rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseExponent();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(*lhs);
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else {
        return expr;
      }
      Advance();
      auto rhs = ParseExponent();
      if (!rhs.ok()) return rhs;
      expr = std::make_unique<BinaryExpr>(op, std::move(expr), std::move(*rhs));
    }
  }

  Result<ExprPtr> ParseExponent() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    if (Match(TokenKind::kCaret)) {
      // Right associative: recurse at the same level.
      auto rhs = ParseExponent();
      if (!rhs.ok()) return rhs;
      return ExprPtr(std::make_unique<BinaryExpr>(
          BinaryOp::kPow, std::move(*lhs), std::move(*rhs)));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(*operand)));
    }
    if (Match(TokenKind::kPlus)) {
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kPlus, std::move(*operand)));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    auto primary = ParsePrimary();
    if (!primary.ok()) return primary;
    ExprPtr expr = std::move(*primary);
    while (Match(TokenKind::kPercent)) {
      expr = std::make_unique<UnaryExpr>(UnaryOp::kPercent, std::move(expr));
    }
    return expr;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kNumber: {
        double value = token.number;
        Advance();
        return ExprPtr(std::make_unique<NumberExpr>(value));
      }
      case TokenKind::kString: {
        std::string value = token.text;
        Advance();
        return ExprPtr(std::make_unique<StringExpr>(std::move(value)));
      }
      case TokenKind::kBoolean: {
        bool value = token.boolean;
        Advance();
        return ExprPtr(std::make_unique<BooleanExpr>(value));
      }
      case TokenKind::kCellRef:
        return ParseReference();
      case TokenKind::kIdentifier:
        return ParseCall();
      case TokenKind::kLParen: {
        Advance();
        auto inner = ParseComparison();
        if (!inner.ok()) return inner;
        if (!Match(TokenKind::kRParen)) {
          return UnexpectedToken("')'");
        }
        return inner;
      }
      default:
        return UnexpectedToken("a value, reference, or function call");
    }
  }

  Result<ExprPtr> ParseReference() {
    const Token& head = Advance();  // kCellRef
    A1Reference ref;
    if (Match(TokenKind::kColon)) {
      if (Peek().kind != TokenKind::kCellRef) {
        return UnexpectedToken("cell reference after ':'");
      }
      const Token& tail = Advance();
      ref.range = Range(CellMin(head.cell, tail.cell),
                        CellMax(head.cell, tail.cell));
      ref.head_flags = head.cell_flags;
      ref.tail_flags = tail.cell_flags;
      ref.is_single_cell = false;
    } else {
      ref.range = Range(head.cell);
      ref.head_flags = head.cell_flags;
      ref.tail_flags = head.cell_flags;
      ref.is_single_cell = true;
    }
    return ExprPtr(std::make_unique<ReferenceExpr>(std::move(ref)));
  }

  Result<ExprPtr> ParseCall() {
    const Token& name = Advance();  // kIdentifier
    std::string fn_name = name.text;
    if (!Match(TokenKind::kLParen)) {
      return UnexpectedToken("'(' after function name");
    }
    std::vector<ExprPtr> args;
    if (!Match(TokenKind::kRParen)) {
      while (true) {
        auto arg = ParseComparison();
        if (!arg.ok()) return arg;
        args.push_back(std::move(*arg));
        if (Match(TokenKind::kComma)) continue;
        if (Match(TokenKind::kRParen)) break;
        return UnexpectedToken("',' or ')'");
      }
    }
    return ExprPtr(
        std::make_unique<CallExpr>(std::move(fn_name), std::move(args)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseFormula(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace taco
