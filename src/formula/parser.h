// Recursive-descent parser for spreadsheet formulas.
//
// Grammar (precedence from loosest to tightest, mirrors Excel):
//   comparison :=  concat (('='|'<>'|'<'|'<='|'>'|'>=') concat)*
//   concat     :=  additive ('&' additive)*
//   additive   :=  multiplicative (('+'|'-') multiplicative)*
//   multiplicative := exponent (('*'|'/') exponent)*
//   exponent   :=  unary ('^' exponent)?          (right associative)
//   unary      :=  ('-'|'+')* postfix
//   postfix    :=  primary '%'*
//   primary    :=  number | string | boolean | reference | call | '(' comparison ')'
//   reference  :=  CELL (':' CELL)?
//   call       :=  IDENT '(' (comparison (',' comparison)*)? ')'

#ifndef TACO_FORMULA_PARSER_H_
#define TACO_FORMULA_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "formula/ast.h"

namespace taco {

/// Parses formula text (without the leading '=') into an AST.
Result<ExprPtr> ParseFormula(std::string_view text);

}  // namespace taco

#endif  // TACO_FORMULA_PARSER_H_
