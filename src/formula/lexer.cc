#include "formula/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace taco {
namespace {

bool IsIdentChar(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
         ch == '$' || ch == '.';
}

// Classifies an identifier-like run: cell reference, boolean literal, or
// function-name identifier. `next_char` is the first character after the
// run ('(' marks a function call).
Result<Token> ClassifyWord(std::string_view word, size_t offset,
                           char next_char) {
  Token token;
  token.offset = offset;

  // Case-insensitive TRUE/FALSE.
  auto equals_ci = [&](std::string_view target) {
    if (word.size() != target.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(word[i])) != target[i]) {
        return false;
      }
    }
    return true;
  };
  if (equals_ci("TRUE")) {
    token.kind = TokenKind::kBoolean;
    token.boolean = true;
    return token;
  }
  if (equals_ci("FALSE")) {
    token.kind = TokenKind::kBoolean;
    token.boolean = false;
    return token;
  }

  if (next_char == '(') {
    token.kind = TokenKind::kIdentifier;
    token.text.assign(word);
    for (char& ch : token.text) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    return token;
  }

  // Not a call: must be a cell reference.
  size_t pos = 0;
  AbsFlags flags;
  if (pos < word.size() && word[pos] == '$') {
    flags.abs_col = true;
    ++pos;
  }
  size_t letters_begin = pos;
  while (pos < word.size() &&
         std::isalpha(static_cast<unsigned char>(word[pos]))) {
    ++pos;
  }
  if (pos == letters_begin) {
    return Status::ParseError("expected cell reference at offset " +
                              std::to_string(offset) + ": '" +
                              std::string(word) + "'");
  }
  auto col = LettersToColumn(word.substr(letters_begin, pos - letters_begin));
  if (!col.ok()) {
    return Status::ParseError("bad column in reference '" + std::string(word) +
                              "' at offset " + std::to_string(offset));
  }
  if (pos < word.size() && word[pos] == '$') {
    flags.abs_row = true;
    ++pos;
  }
  size_t digits_begin = pos;
  int64_t row = 0;
  while (pos < word.size() &&
         std::isdigit(static_cast<unsigned char>(word[pos]))) {
    row = row * 10 + (word[pos] - '0');
    if (row > kMaxRow) {
      return Status::ParseError("row out of range in '" + std::string(word) +
                                "'");
    }
    ++pos;
  }
  if (digits_begin == pos || pos != word.size() || row < 1) {
    return Status::ParseError("unknown identifier '" + std::string(word) +
                              "' at offset " + std::to_string(offset));
  }
  token.kind = TokenKind::kCellRef;
  token.cell = Cell{*col, static_cast<int32_t>(row)};
  token.cell_flags = flags;
  return token;
}

}  // namespace

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kBoolean: return "boolean";
    case TokenKind::kCellRef: return "cell reference";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kAmpersand: return "'&'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEnd: return "end of formula";
  }
  return "unknown";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  auto push_op = [&](TokenKind kind, size_t offset) {
    Token token;
    token.kind = kind;
    token.offset = offset;
    tokens.push_back(std::move(token));
  };

  while (i < n) {
    char ch = text[i];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }

    // Numbers: digits, optionally with '.', exponent. A leading '.' is
    // also accepted (".5").
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      const char* begin = text.data() + i;
      char* end = nullptr;
      double value = std::strtod(begin, &end);
      if (end == begin) {
        return Status::ParseError("malformed number at offset " +
                                  std::to_string(i));
      }
      Token token;
      token.kind = TokenKind::kNumber;
      token.offset = i;
      token.number = value;
      tokens.push_back(std::move(token));
      i += static_cast<size_t>(end - begin);
      continue;
    }

    // Strings: double-quoted; "" escapes a literal quote.
    if (ch == '"') {
      Token token;
      token.kind = TokenKind::kString;
      token.offset = i;
      ++i;
      bool closed = false;
      while (i < n) {
        if (text[i] == '"') {
          if (i + 1 < n && text[i + 1] == '"') {
            token.text += '"';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          token.text += text[i];
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(token.offset));
      }
      tokens.push_back(std::move(token));
      continue;
    }

    // Identifier-like runs (function names, cell refs, TRUE/FALSE).
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '$' ||
        ch == '_') {
      size_t begin = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      char next = i < n ? text[i] : '\0';
      // Skip whitespace to find a possible '(' for function calls.
      size_t look = i;
      while (look < n &&
             std::isspace(static_cast<unsigned char>(text[look]))) {
        ++look;
      }
      if (look < n && text[look] == '(') next = '(';
      auto token = ClassifyWord(text.substr(begin, i - begin), begin, next);
      if (!token.ok()) return token.status();
      tokens.push_back(std::move(*token));
      continue;
    }

    size_t offset = i;
    switch (ch) {
      case '+': push_op(TokenKind::kPlus, offset); ++i; break;
      case '-': push_op(TokenKind::kMinus, offset); ++i; break;
      case '*': push_op(TokenKind::kStar, offset); ++i; break;
      case '/': push_op(TokenKind::kSlash, offset); ++i; break;
      case '^': push_op(TokenKind::kCaret, offset); ++i; break;
      case '&': push_op(TokenKind::kAmpersand, offset); ++i; break;
      case '%': push_op(TokenKind::kPercent, offset); ++i; break;
      case '(': push_op(TokenKind::kLParen, offset); ++i; break;
      case ')': push_op(TokenKind::kRParen, offset); ++i; break;
      case ',': push_op(TokenKind::kComma, offset); ++i; break;
      case ':': push_op(TokenKind::kColon, offset); ++i; break;
      case '=': push_op(TokenKind::kEq, offset); ++i; break;
      case '<':
        if (i + 1 < n && text[i + 1] == '>') {
          push_op(TokenKind::kNe, offset);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '=') {
          push_op(TokenKind::kLe, offset);
          i += 2;
        } else {
          push_op(TokenKind::kLt, offset);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push_op(TokenKind::kGe, offset);
          i += 2;
        } else {
          push_op(TokenKind::kGt, offset);
          ++i;
        }
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, ch) + "' at offset " +
                                  std::to_string(i));
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace taco
