// Tokenizer for spreadsheet formula text.
//
// Accepts the expression after the leading '=' (the sheet layer strips the
// '='). Identifier-like character runs are disambiguated against cell
// references: "SUM" followed by '(' is a function name, "B7" is a cell,
// "$B$7" is a cell with absolute markers.

#ifndef TACO_FORMULA_LEXER_H_
#define TACO_FORMULA_LEXER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "formula/token.h"

namespace taco {

/// Tokenizes `text` into a token list terminated by a kEnd token.
/// Whitespace between tokens is skipped. Fails with ParseError on
/// malformed input (bad number, unterminated string, stray character).
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace taco

#endif  // TACO_FORMULA_LEXER_H_
