// Reference extraction and the autofill shift transform.
//
// These are the two operations the rest of the system needs from parsed
// formulas: (1) the list of ranges a formula reads, each with its '$'
// flags (the input to formula-graph construction and to TACO's dollar-sign
// compression cue), and (2) the relative/absolute shift that autofill
// applies when a formula is dragged to neighboring cells — the mechanism
// that creates tabular locality in the first place (Sec. III-A).

#ifndef TACO_FORMULA_REFERENCES_H_
#define TACO_FORMULA_REFERENCES_H_

#include <vector>

#include "common/a1.h"
#include "common/range.h"
#include "common/status.h"
#include "formula/ast.h"

namespace taco {

/// Appends every cell/range reference in `expr`, in left-to-right source
/// order. Duplicates are preserved (a formula may reference a range twice;
/// graph construction deduplicates).
void ExtractReferences(const Expr& expr, std::vector<A1Reference>* out);

/// Convenience overload.
std::vector<A1Reference> ExtractReferences(const Expr& expr);

/// Applies the autofill shift: every relative coordinate moves by
/// `offset`, every '$'-absolute coordinate stays. Fails with OutOfRange
/// when a relative reference would leave the sheet (the #REF! case).
/// Range corners that cross after shifting are re-normalized.
Result<ExprPtr> ShiftExprForAutofill(const Expr& expr, Offset offset);

/// The basic-pattern cue a reference's '$' flags imply for compression
/// along `axis` (Sec. IV-A "Select the final edge"). Only the coordinate
/// that varies along the axis matters: rows for column-wise autofill,
/// columns for row-wise.
enum class RefCue : uint8_t {
  kRelRel,  ///< neither corner anchored: RR
  kRelFix,  ///< tail anchored: RF
  kFixRel,  ///< head anchored: FR
  kFixFix,  ///< both corners anchored: FF
};

RefCue ClassifyReferenceCue(const A1Reference& ref, Axis axis);

}  // namespace taco

#endif  // TACO_FORMULA_REFERENCES_H_
