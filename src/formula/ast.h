// Abstract syntax tree for spreadsheet formulas.

#ifndef TACO_FORMULA_AST_H_
#define TACO_FORMULA_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/a1.h"

namespace taco {

enum class ExprKind : uint8_t {
  kNumber,
  kString,
  kBoolean,
  kReference,
  kUnary,
  kBinary,
  kCall,
};

enum class UnaryOp : uint8_t {
  kNegate,   ///< -x
  kPlus,     ///< +x
  kPercent,  ///< x% (postfix, divides by 100)
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
  kConcat,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Base class of all formula expression nodes. Nodes are immutable after
/// parsing and owned through unique_ptr.
struct Expr {
  const ExprKind kind;

  virtual ~Expr() = default;

 protected:
  explicit Expr(ExprKind k) : kind(k) {}
};

using ExprPtr = std::unique_ptr<Expr>;

struct NumberExpr : Expr {
  explicit NumberExpr(double v) : Expr(ExprKind::kNumber), value(v) {}
  double value;
};

struct StringExpr : Expr {
  explicit StringExpr(std::string v)
      : Expr(ExprKind::kString), value(std::move(v)) {}
  std::string value;
};

struct BooleanExpr : Expr {
  explicit BooleanExpr(bool v) : Expr(ExprKind::kBoolean), value(v) {}
  bool value;
};

/// A cell or range reference, retaining the '$' absolute markers.
struct ReferenceExpr : Expr {
  explicit ReferenceExpr(A1Reference r)
      : Expr(ExprKind::kReference), ref(std::move(r)) {}
  A1Reference ref;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr x)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(x)) {}
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// A function invocation, e.g. SUM(A1:B3, 5).
struct CallExpr : Expr {
  CallExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kCall), name(std::move(n)), args(std::move(a)) {}
  std::string name;  ///< Upper-cased function name.
  std::vector<ExprPtr> args;
};

/// Deep-copies an expression tree.
ExprPtr CloneExpr(const Expr& expr);

/// Renders an expression back to formula text (without the leading '=').
/// Parentheses are emitted where precedence requires them; parsing the
/// output yields a structurally identical tree.
std::string ExprToString(const Expr& expr);

/// Structural equality of two expression trees.
bool ExprEquals(const Expr& a, const Expr& b);

/// The spelling of a binary operator ("+", "<>", ...).
std::string_view BinaryOpToString(BinaryOp op);

}  // namespace taco

#endif  // TACO_FORMULA_AST_H_
