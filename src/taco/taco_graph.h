// TacoGraph: the compressed formula graph (Sec. IV of the paper).
//
// Dependencies are greedily compressed on insertion (Algorithm 2): the
// vertex R-tree locates compressed edges whose dependent range is adjacent
// to the new formula cell, every enabled pattern proposes a merge, and the
// paper's heuristics pick the winner (column-wise first, special patterns
// over general, then '$' cues from the formula text). Queries run directly
// on the compressed graph with a modified BFS (Algorithm 3) that uses a
// second R-tree over the result set to enqueue only unvisited sub-ranges.
// Maintenance splits edges in place with the pattern removeDep functions
// (Sec. IV-C); no decompression ever happens.

#ifndef TACO_TACO_TACO_GRAPH_H_
#define TACO_TACO_TACO_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dependency_graph.h"
#include "rtree/rtree.h"
#include "taco/pattern.h"

namespace taco {

/// Tuning knobs for TacoGraph. The defaults reproduce the paper's
/// TACO-Full configuration.
struct TacoOptions {
  /// Patterns tried when extending a Single edge, in candidate order.
  std::vector<PatternType> patterns = DefaultPatternSet();

  /// Heuristic 1: prefer column-wise over row-wise compression.
  bool prefer_column_axis = true;
  /// Heuristic 2: prefer special patterns (RR-Chain) over general ones.
  bool prefer_special_patterns = true;
  /// Heuristic 3: prefer the pattern implied by the reference's '$' flags.
  bool use_dollar_cues = true;

  /// TACO-InRow (Sec. VI-B): restrict to column-axis RR over references
  /// in the formula's own row — the derived-column pattern.
  bool in_row_only = false;

  /// The paper's TACO-Full configuration (all defaults).
  static TacoOptions Full() { return TacoOptions{}; }

  /// The paper's TACO-InRow comparison variant.
  static TacoOptions InRow() {
    TacoOptions options;
    options.patterns = {PatternType::kRR};
    options.in_row_only = true;
    return options;
  }

  /// Ablation: first-valid candidate selection instead of the heuristics.
  static TacoOptions NoHeuristics() {
    TacoOptions options;
    options.prefer_column_axis = false;
    options.prefer_special_patterns = false;
    options.use_dollar_cues = false;
    return options;
  }
};

/// Per-pattern compression effectiveness, for Table V.
struct PatternStat {
  uint64_t edges = 0;          ///< Compressed edges with this pattern.
  uint64_t dependencies = 0;   ///< Raw dependencies they represent.
  /// Edges saved versus the uncompressed graph: Σ (|E'_i| - 1).
  uint64_t reduced() const { return dependencies - edges; }
};

/// The compressed formula graph.
class TacoGraph : public DependencyGraph {
 public:
  explicit TacoGraph(TacoOptions options = TacoOptions::Full());

  Status AddDependency(const Dependency& dep) override;
  std::vector<Range> FindDependents(const Range& input) override;
  std::vector<Range> FindPrecedents(const Range& input) override;
  Status RemoveFormulaCells(const Range& cells) override;

  size_t NumVertices() const override { return live_vertices_; }
  size_t NumEdges() const override { return live_edges_; }
  std::string Name() const override {
    return options_.in_row_only ? "TACO-InRow" : "TACO";
  }

  /// Total raw dependencies represented (== NumEdges of the equivalent
  /// uncompressed graph).
  uint64_t NumRawDependencies() const { return raw_dependencies_; }

  /// Per-pattern statistics over the live edges (Table V).
  std::unordered_map<PatternType, PatternStat> PatternStats() const;

  /// Visits every live compressed edge (tests and stats).
  void ForEachEdge(
      const std::function<void(const CompressedEdge&)>& fn) const;

  /// Inserts an already-compressed edge verbatim, bypassing Algorithm 2.
  /// Used by the graph loader (taco/graph_io.h); the edge must be
  /// internally consistent (validated). Raw-dependency accounting uses
  /// edge.compressed_count.
  Status InsertCompressedEdgeForLoad(const CompressedEdge& edge);

  const TacoOptions& options() const { return options_; }

 private:
  using VertexId = uint32_t;
  using EdgeId = uint32_t;

  struct Vertex {
    Range range;
    std::vector<EdgeId> out_edges;  ///< Edges whose prec is this range.
    std::vector<EdgeId> in_edges;   ///< Edges whose dep is this range.
    bool alive = true;
  };

  struct EdgeSlot {
    CompressedEdge edge;
    VertexId prec_v = 0;
    VertexId dep_v = 0;
    bool alive = true;
  };

  VertexId InternVertex(const Range& range);
  void RemoveVertexIfOrphan(VertexId id);
  EdgeId InsertEdge(const CompressedEdge& edge);
  void RemoveEdge(EdgeId id);

  /// Candidate discovery (step 1 of Algorithm 2): edges whose dependent
  /// range is adjacent to `dep_cell` along either axis (stride 2 when
  /// RR-GapOne is enabled).
  void FindCandidateEdges(const Cell& dep_cell,
                          std::vector<EdgeId>* candidates) const;

  /// genCompEdges + heuristic selection (steps 2-3 of Algorithm 2).
  /// Returns true and fills outputs when a merge was chosen.
  bool SelectMerge(const Dependency& dep,
                   const std::vector<EdgeId>& candidates,
                   CompressedEdge* merged, EdgeId* replaced) const;

  TacoOptions options_;
  bool gap_pattern_enabled_ = false;

  std::vector<Vertex> vertices_;
  std::vector<EdgeSlot> edges_;
  std::vector<VertexId> free_vertices_;
  std::vector<EdgeId> free_edges_;
  std::unordered_map<Range, VertexId> vertex_by_range_;
  RTree index_;

  size_t live_vertices_ = 0;
  size_t live_edges_ = 0;
  uint64_t raw_dependencies_ = 0;
};

}  // namespace taco

#endif  // TACO_TACO_TACO_GRAPH_H_
