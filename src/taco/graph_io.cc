#include "taco/graph_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/a1.h"

namespace taco {
namespace {

std::string FlagsToString(const CompressedEdge& edge) {
  std::string out(4, '0');
  out[0] = edge.head_flags.abs_col ? '1' : '0';
  out[1] = edge.head_flags.abs_row ? '1' : '0';
  out[2] = edge.tail_flags.abs_col ? '1' : '0';
  out[3] = edge.tail_flags.abs_row ? '1' : '0';
  return out;
}

Result<PatternType> PatternFromName(std::string_view name) {
  for (PatternType type :
       {PatternType::kSingle, PatternType::kRR, PatternType::kRF,
        PatternType::kFR, PatternType::kFF, PatternType::kRRChain,
        PatternType::kRRGapOne}) {
    if (name == PatternTypeToString(type)) return type;
  }
  return Status::ParseError("unknown pattern '" + std::string(name) + "'");
}

Result<std::pair<int32_t, int32_t>> ParsePair(std::string_view text) {
  size_t comma = text.find(',');
  if (comma == std::string_view::npos) {
    return Status::ParseError("expected 'a,b' in '" + std::string(text) + "'");
  }
  int32_t a = 0, b = 0;
  auto ra = std::from_chars(text.data(), text.data() + comma, a);
  auto rb = std::from_chars(text.data() + comma + 1,
                            text.data() + text.size(), b);
  if (ra.ec != std::errc() || rb.ec != std::errc() ||
      ra.ptr != text.data() + comma ||
      rb.ptr != text.data() + text.size()) {
    return Status::ParseError("malformed pair '" + std::string(text) + "'");
  }
  return std::make_pair(a, b);
}

Status LineError(size_t line_no, std::string_view detail) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            std::string(detail));
}

}  // namespace

std::string WriteGraphText(const TacoGraph& graph) {
  std::ostringstream out;
  out << "# taco-graph v1\n";
  // Deterministic output: collect and sort by (dep, prec, pattern).
  std::vector<CompressedEdge> edges;
  graph.ForEachEdge(
      [&edges](const CompressedEdge& edge) { edges.push_back(edge); });
  std::sort(edges.begin(), edges.end(),
            [](const CompressedEdge& a, const CompressedEdge& b) {
              if (!(a.dep == b.dep)) return a.dep < b.dep;
              if (!(a.prec == b.prec)) return a.prec < b.prec;
              return static_cast<int>(a.pattern) < static_cast<int>(b.pattern);
            });
  for (const CompressedEdge& e : edges) {
    out << PatternTypeToString(e.pattern) << ' ' << RangeToA1(e.prec) << ' '
        << RangeToA1(e.dep);
    out << " h=" << e.meta.h_rel.dcol << ',' << e.meta.h_rel.drow;
    out << " t=" << e.meta.t_rel.dcol << ',' << e.meta.t_rel.drow;
    out << " hf=" << e.meta.h_fix.col << ',' << e.meta.h_fix.row;
    out << " tf=" << e.meta.t_fix.col << ',' << e.meta.t_fix.row;
    out << " axis=" << (e.meta.axis == Axis::kColumn ? "col" : "row");
    out << " stride=" << e.meta.stride;
    out << " n=" << e.compressed_count;
    out << " fl=" << FlagsToString(e);
    out << '\n';
  }
  return out.str();
}

Result<TacoGraph> ReadGraphText(std::string_view text, TacoOptions options) {
  TacoGraph graph(std::move(options));
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    std::istringstream in{std::string(line)};
    std::string pattern_name, prec_text, dep_text;
    in >> pattern_name >> prec_text >> dep_text;
    if (dep_text.empty()) {
      return LineError(line_no, "expected '<pattern> <prec> <dep> ...'");
    }
    auto pattern = PatternFromName(pattern_name);
    if (!pattern.ok()) return LineError(line_no, pattern.status().message());
    auto prec = ParseA1(prec_text);
    if (!prec.ok()) return LineError(line_no, prec.status().message());
    auto dep = ParseA1(dep_text);
    if (!dep.ok()) return LineError(line_no, dep.status().message());

    CompressedEdge edge;
    edge.pattern = *pattern;
    edge.prec = prec->range;
    edge.dep = dep->range;

    std::string field;
    while (in >> field) {
      size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return LineError(line_no, "malformed field '" + field + "'");
      }
      std::string_view key(field.data(), eq);
      std::string_view value(field.data() + eq + 1, field.size() - eq - 1);
      if (key == "axis") {
        if (value != "col" && value != "row") {
          return LineError(line_no, "bad axis '" + std::string(value) + "'");
        }
        edge.meta.axis = value == "col" ? Axis::kColumn : Axis::kRow;
      } else if (key == "fl") {
        if (value.size() != 4) {
          return LineError(line_no, "bad flags '" + std::string(value) + "'");
        }
        edge.head_flags = AbsFlags{value[0] == '1', value[1] == '1'};
        edge.tail_flags = AbsFlags{value[2] == '1', value[3] == '1'};
      } else if (key == "n" || key == "stride") {
        int64_t number = 0;
        auto r = std::from_chars(value.data(), value.data() + value.size(),
                                 number);
        if (r.ec != std::errc() || r.ptr != value.data() + value.size() ||
            number < 1) {
          return LineError(line_no, "bad count '" + std::string(value) + "'");
        }
        if (key == "n") {
          edge.compressed_count = static_cast<uint64_t>(number);
        } else {
          edge.meta.stride = static_cast<int32_t>(number);
        }
      } else {
        auto pair = ParsePair(value);
        if (!pair.ok()) return LineError(line_no, pair.status().message());
        if (key == "h") {
          edge.meta.h_rel = Offset{pair->first, pair->second};
        } else if (key == "t") {
          edge.meta.t_rel = Offset{pair->first, pair->second};
        } else if (key == "hf") {
          edge.meta.h_fix = Cell{pair->first, pair->second};
        } else if (key == "tf") {
          edge.meta.t_fix = Cell{pair->first, pair->second};
        } else {
          return LineError(line_no, "unknown field '" + std::string(key) +
                                        "'");
        }
      }
    }
    Status inserted = graph.InsertCompressedEdgeForLoad(edge);
    if (!inserted.ok()) return LineError(line_no, inserted.message());
  }
  return graph;
}

Status SaveGraphFile(const TacoGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << WriteGraphText(graph);
  out.close();
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::OK();
}

Result<TacoGraph> LoadGraphFile(const std::string& path,
                                TacoOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadGraphText(buffer.str(), std::move(options));
}

}  // namespace taco
