#include "taco/pattern.h"

#include <cassert>
#include <functional>

namespace taco {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers

// Merges `cell` into the dependent line `dep`, requiring it to extend the
// line by exactly one cell along `axis` (so the merged rectangle covers
// exactly the old dependents plus the new formula cell — the lossless
// merge invariant of DESIGN.md §3.1). Returns nullopt otherwise.
std::optional<Range> MergeDepLine(const Range& dep, const Cell& cell,
                                  Axis axis) {
  Range merged = dep.BoundingUnion(Range(cell));
  if (merged.Area() != dep.Area() + 1) return std::nullopt;
  if (axis == Axis::kColumn ? merged.width() != 1 : merged.height() != 1) {
    return std::nullopt;
  }
  return merged;
}

// Relative positions of a raw dependency: offsets from the formula cell to
// the head and tail of its referenced window (the paper's rel(e)).
struct Rel {
  Offset h;
  Offset t;
};

Rel RelOf(const Dependency& d) {
  return Rel{d.prec.head - d.dep, d.prec.tail - d.dep};
}

Rel RelOf(const CompressedEdge& single) {
  assert(single.pattern == PatternType::kSingle);
  return Rel{single.prec.head - single.dep.head,
             single.prec.tail - single.dep.head};
}

// The window referenced by dependent cell `c` of edge `e`.
Range WindowOf(const CompressedEdge& e, const Cell& c) {
  switch (e.pattern) {
    case PatternType::kSingle:
      return e.prec;
    case PatternType::kRR:
    case PatternType::kRRChain:
    case PatternType::kRRGapOne:
      return Range(c + e.meta.h_rel, c + e.meta.t_rel);
    case PatternType::kRF:
      return Range(c + e.meta.h_rel, e.meta.t_fix);
    case PatternType::kFR:
      return Range(e.meta.h_fix, c + e.meta.t_rel);
    case PatternType::kFF:
      return Range(e.meta.h_fix, e.meta.t_fix);
  }
  assert(false && "unreachable");
  return e.prec;
}

CompressedEdge MergedEdge(const CompressedEdge& e, const Dependency& d,
                          const Range& merged_dep, PatternType pattern,
                          const EdgeMeta& meta) {
  CompressedEdge out;
  out.prec = e.prec.BoundingUnion(d.prec);
  out.dep = merged_dep;
  out.pattern = pattern;
  out.meta = meta;
  out.compressed_count = e.compressed_count + 1;
  out.head_flags = e.head_flags;
  out.tail_flags = e.tail_flags;
  return out;
}

// Builds the replacement edge for a remainder line `piece` of e.dep after
// removal, with pattern-appropriate precedent and demotion to Single for
// one-cell remainders. Shared by every stride-1 pattern.
CompressedEdge RemainderEdge(const CompressedEdge& e, const Range& piece) {
  CompressedEdge out;
  out.dep = piece;
  out.compressed_count = piece.Area();
  out.head_flags = e.head_flags;
  out.tail_flags = e.tail_flags;
  switch (e.pattern) {
    case PatternType::kRR:
    case PatternType::kRRChain:
      out.prec = Range(piece.head + e.meta.h_rel, piece.tail + e.meta.t_rel);
      break;
    case PatternType::kRF:
      out.prec = Range(piece.head + e.meta.h_rel, e.meta.t_fix);
      break;
    case PatternType::kFR:
      out.prec = Range(e.meta.h_fix, piece.tail + e.meta.t_rel);
      break;
    case PatternType::kFF:
      out.prec = Range(e.meta.h_fix, e.meta.t_fix);
      break;
    case PatternType::kSingle:
    case PatternType::kRRGapOne:
      assert(false && "handled elsewhere");
      break;
  }
  if (piece.IsSingleCell()) {
    out.pattern = PatternType::kSingle;
  } else {
    out.pattern = e.pattern;
    out.meta = e.meta;
  }
  return out;
}

// Shared RemoveDep for all stride-1 patterns: subtract `s` from the
// dependent line and re-emit pattern edges for the (at most two) remaining
// line pieces.
void RemoveDepStride1(const CompressedEdge& e, const Range& s,
                      std::vector<CompressedEdge>* out) {
  std::vector<Range> pieces;
  SubtractRange(e.dep, s, &pieces);
  for (const Range& piece : pieces) {
    out->push_back(RemainderEdge(e, piece));
  }
}

// ---------------------------------------------------------------------------
// RR: sliding window. window(d) = [d + h_rel, d + t_rel].

class RRPattern : public Pattern {
 public:
  PatternType type() const override { return PatternType::kRR; }

  std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                       const Dependency& d,
                                       Axis axis) const override {
    Rel rel = RelOf(d);
    if (e.pattern == PatternType::kSingle) {
      Rel erel = RelOf(e);
      if (!(erel.h == rel.h && erel.t == rel.t)) return std::nullopt;
    } else if (e.pattern == PatternType::kRR) {
      if (e.meta.axis != axis) return std::nullopt;
      if (!(e.meta.h_rel == rel.h && e.meta.t_rel == rel.t)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    auto merged_dep = MergeDepLine(e.dep, d.dep, axis);
    if (!merged_dep) return std::nullopt;
    EdgeMeta meta;
    meta.h_rel = rel.h;
    meta.t_rel = rel.t;
    meta.axis = axis;
    return MergedEdge(e, d, *merged_dep, PatternType::kRR, meta);
  }

  void FindDep(const CompressedEdge& e, const Range& r,
               std::vector<Range>* out) const override {
    // A dependent cell d qualifies iff its window [d+h_rel, d+t_rel]
    // intersects r, i.e. d lies in the box [r.head - t_rel, r.tail - h_rel]
    // (the closed form of the paper's back-calculation; DESIGN.md §3.1).
    auto overlap = r.Intersect(e.prec);
    if (!overlap) return;
    Cell lo = overlap->head - e.meta.t_rel;
    Cell hi = overlap->tail - e.meta.h_rel;
    Range box(CellMax(lo, e.dep.head), CellMin(hi, e.dep.tail));
    if (DominatedBy(box.head, box.tail)) out->push_back(box);
  }

  void FindPrec(const CompressedEdge& e, const Range& s,
                std::vector<Range>* out) const override {
    auto overlap = s.Intersect(e.dep);
    if (!overlap) return;
    // Union of vertically/horizontally sliding same-size windows over a
    // rectangle of dependents is exactly their bounding rectangle.
    out->push_back(
        Range(overlap->head + e.meta.h_rel, overlap->tail + e.meta.t_rel));
  }

  void RemoveDep(const CompressedEdge& e, const Range& s,
                 std::vector<CompressedEdge>* out) const override {
    RemoveDepStride1(e, s, out);
  }
};

// ---------------------------------------------------------------------------
// RF: shrinking window. window(d) = [d + h_rel, t_fix].

class RFPattern : public Pattern {
 public:
  PatternType type() const override { return PatternType::kRF; }

  std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                       const Dependency& d,
                                       Axis axis) const override {
    Rel rel = RelOf(d);
    if (e.pattern == PatternType::kSingle) {
      Rel erel = RelOf(e);
      if (!(erel.h == rel.h && e.prec.tail == d.prec.tail)) {
        return std::nullopt;
      }
    } else if (e.pattern == PatternType::kRF) {
      if (e.meta.axis != axis) return std::nullopt;
      if (!(e.meta.h_rel == rel.h && e.meta.t_fix == d.prec.tail)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    auto merged_dep = MergeDepLine(e.dep, d.dep, axis);
    if (!merged_dep) return std::nullopt;
    EdgeMeta meta;
    meta.h_rel = rel.h;
    meta.t_fix = d.prec.tail;
    meta.axis = axis;
    return MergedEdge(e, d, *merged_dep, PatternType::kRF, meta);
  }

  void FindDep(const CompressedEdge& e, const Range& r,
               std::vector<Range>* out) const override {
    auto overlap = r.Intersect(e.prec);
    if (!overlap) return;
    // window(d) ∩ r ≠ ∅ iff d + h_rel <= r.tail (t_fix >= r.head holds
    // because r ⊆ e.prec and e.prec.tail == t_fix).
    Cell hi = overlap->tail - e.meta.h_rel;
    Range box(e.dep.head, CellMin(hi, e.dep.tail));
    if (DominatedBy(box.head, box.tail)) out->push_back(box);
  }

  void FindPrec(const CompressedEdge& e, const Range& s,
                std::vector<Range>* out) const override {
    auto overlap = s.Intersect(e.dep);
    if (!overlap) return;
    // Windows nest toward the tail; the union is the head cell's window.
    out->push_back(Range(overlap->head + e.meta.h_rel, e.meta.t_fix));
  }

  void RemoveDep(const CompressedEdge& e, const Range& s,
                 std::vector<CompressedEdge>* out) const override {
    RemoveDepStride1(e, s, out);
  }
};

// ---------------------------------------------------------------------------
// FR: expanding window. window(d) = [h_fix, d + t_rel]. Dual of RF.

class FRPattern : public Pattern {
 public:
  PatternType type() const override { return PatternType::kFR; }

  std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                       const Dependency& d,
                                       Axis axis) const override {
    Rel rel = RelOf(d);
    if (e.pattern == PatternType::kSingle) {
      Rel erel = RelOf(e);
      if (!(erel.t == rel.t && e.prec.head == d.prec.head)) {
        return std::nullopt;
      }
    } else if (e.pattern == PatternType::kFR) {
      if (e.meta.axis != axis) return std::nullopt;
      if (!(e.meta.t_rel == rel.t && e.meta.h_fix == d.prec.head)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    auto merged_dep = MergeDepLine(e.dep, d.dep, axis);
    if (!merged_dep) return std::nullopt;
    EdgeMeta meta;
    meta.t_rel = rel.t;
    meta.h_fix = d.prec.head;
    meta.axis = axis;
    return MergedEdge(e, d, *merged_dep, PatternType::kFR, meta);
  }

  void FindDep(const CompressedEdge& e, const Range& r,
               std::vector<Range>* out) const override {
    auto overlap = r.Intersect(e.prec);
    if (!overlap) return;
    // window(d) ∩ r ≠ ∅ iff d + t_rel >= r.head (h_fix <= r.tail always).
    Cell lo = overlap->head - e.meta.t_rel;
    Range box(CellMax(lo, e.dep.head), e.dep.tail);
    if (DominatedBy(box.head, box.tail)) out->push_back(box);
  }

  void FindPrec(const CompressedEdge& e, const Range& s,
                std::vector<Range>* out) const override {
    auto overlap = s.Intersect(e.dep);
    if (!overlap) return;
    out->push_back(Range(e.meta.h_fix, overlap->tail + e.meta.t_rel));
  }

  void RemoveDep(const CompressedEdge& e, const Range& s,
                 std::vector<CompressedEdge>* out) const override {
    RemoveDepStride1(e, s, out);
  }
};

// ---------------------------------------------------------------------------
// FF: fixed window. window(d) = [h_fix, t_fix] for every dependent.

class FFPattern : public Pattern {
 public:
  PatternType type() const override { return PatternType::kFF; }

  std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                       const Dependency& d,
                                       Axis axis) const override {
    if (e.pattern == PatternType::kSingle) {
      if (!(e.prec == d.prec)) return std::nullopt;
    } else if (e.pattern == PatternType::kFF) {
      if (e.meta.axis != axis) return std::nullopt;
      if (!(Range(e.meta.h_fix, e.meta.t_fix) == d.prec)) return std::nullopt;
    } else {
      return std::nullopt;
    }
    auto merged_dep = MergeDepLine(e.dep, d.dep, axis);
    if (!merged_dep) return std::nullopt;
    EdgeMeta meta;
    meta.h_fix = d.prec.head;
    meta.t_fix = d.prec.tail;
    meta.axis = axis;
    return MergedEdge(e, d, *merged_dep, PatternType::kFF, meta);
  }

  void FindDep(const CompressedEdge& e, const Range& r,
               std::vector<Range>* out) const override {
    if (r.Overlaps(e.prec)) out->push_back(e.dep);
  }

  void FindPrec(const CompressedEdge& e, const Range& s,
                std::vector<Range>* out) const override {
    if (s.Overlaps(e.dep)) {
      out->push_back(Range(e.meta.h_fix, e.meta.t_fix));
    }
  }

  void RemoveDep(const CompressedEdge& e, const Range& s,
                 std::vector<CompressedEdge>* out) const override {
    RemoveDepStride1(e, s, out);
  }
};

// ---------------------------------------------------------------------------
// RR-Chain: unit-offset RR over adjacent formula cells (Sec. V). Queries
// return the transitive closure *within the edge* in O(1), which removes
// the repeated-edge-access bottleneck of plain RR on chains.

class RRChainPattern : public Pattern {
 public:
  PatternType type() const override { return PatternType::kRRChain; }

  // True when `rel` is the unit offset of a chain along `axis` (the
  // referenced cell is the adjacent cell above/below or left/right).
  static bool IsChainRel(const Rel& rel, Axis axis) {
    if (!(rel.h == rel.t)) return false;
    if (axis == Axis::kColumn) {
      return rel.h.dcol == 0 && (rel.h.drow == 1 || rel.h.drow == -1);
    }
    return rel.h.drow == 0 && (rel.h.dcol == 1 || rel.h.dcol == -1);
  }

  std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                       const Dependency& d,
                                       Axis axis) const override {
    Rel rel = RelOf(d);
    if (!IsChainRel(rel, axis)) return std::nullopt;
    if (e.pattern == PatternType::kSingle) {
      Rel erel = RelOf(e);
      if (!(erel.h == rel.h && erel.t == rel.t)) return std::nullopt;
    } else if (e.pattern == PatternType::kRRChain) {
      if (e.meta.axis != axis) return std::nullopt;
      if (!(e.meta.h_rel == rel.h)) return std::nullopt;
    } else {
      return std::nullopt;
    }
    auto merged_dep = MergeDepLine(e.dep, d.dep, axis);
    if (!merged_dep) return std::nullopt;
    EdgeMeta meta;
    meta.h_rel = rel.h;
    meta.t_rel = rel.t;
    meta.axis = axis;
    return MergedEdge(e, d, *merged_dep, PatternType::kRRChain, meta);
  }

  void FindDep(const CompressedEdge& e, const Range& r,
               std::vector<Range>* out) const override {
    auto overlap = r.Intersect(e.prec);
    if (!overlap) return;
    const Offset rel = e.meta.h_rel;
    // Negative rel: each cell references its predecessor, so dependents
    // run from the first cell after the overlap to the end of the chain.
    // Positive rel: the dual.
    Range box = (rel.drow < 0 || rel.dcol < 0)
                    ? Range(overlap->head - rel, e.dep.tail)
                    : Range(e.dep.head, overlap->tail - rel);
    Range clamped(CellMax(box.head, e.dep.head),
                  CellMin(box.tail, e.dep.tail));
    if (DominatedBy(clamped.head, clamped.tail)) out->push_back(clamped);
  }

  void FindPrec(const CompressedEdge& e, const Range& s,
                std::vector<Range>* out) const override {
    auto overlap = s.Intersect(e.dep);
    if (!overlap) return;
    const Offset rel = e.meta.h_rel;
    Range box = (rel.drow < 0 || rel.dcol < 0)
                    ? Range(e.prec.head, overlap->tail + rel)
                    : Range(overlap->head + rel, e.prec.tail);
    Range clamped(CellMax(box.head, e.prec.head),
                  CellMin(box.tail, e.prec.tail));
    if (DominatedBy(clamped.head, clamped.tail)) out->push_back(clamped);
  }

  void RemoveDep(const CompressedEdge& e, const Range& s,
                 std::vector<CompressedEdge>* out) const override {
    // Same direct-RR geometry as RR (Sec. V): remainders keep the chain
    // pattern (or demote to Single).
    RemoveDepStride1(e, s, out);
  }
};

// ---------------------------------------------------------------------------
// RR-GapOne: RR over every other cell (stride 2) — the Sec. V extension.
// Dependent cells occupy alternating positions of e.dep along the axis, so
// query results are not rectangles; outputs are per-cell and O(k). The
// pattern demonstrates framework extensibility and powers the pattern
// ablation bench; it is not in DefaultPatternSet().

class RRGapOnePattern : public Pattern {
 public:
  PatternType type() const override { return PatternType::kRRGapOne; }

  static Offset StrideStep(Axis axis) {
    return axis == Axis::kColumn ? Offset{0, 2} : Offset{2, 0};
  }

  // Enumerates the occupied dependent cells of `e`.
  static void ForEachDepCell(const CompressedEdge& e,
                             const std::function<void(const Cell&)>& fn) {
    const Offset step = StrideStep(e.meta.axis);
    Cell c = e.dep.head;
    while (e.dep.Contains(c)) {
      fn(c);
      c = c + step;
    }
  }

  std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                       const Dependency& d,
                                       Axis axis) const override {
    Rel rel = RelOf(d);
    if (e.pattern == PatternType::kSingle) {
      Rel erel = RelOf(e);
      if (!(erel.h == rel.h && erel.t == rel.t)) return std::nullopt;
    } else if (e.pattern == PatternType::kRRGapOne) {
      if (e.meta.axis != axis) return std::nullopt;
      if (!(e.meta.h_rel == rel.h && e.meta.t_rel == rel.t)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    // The new cell must sit exactly one stride beyond the head or tail.
    const Offset step = StrideStep(axis);
    Range merged;
    if (d.dep == e.dep.tail + step) {
      merged = Range(e.dep.head, d.dep);
    } else if (d.dep == e.dep.head - step) {
      merged = Range(d.dep, e.dep.tail);
    } else {
      return std::nullopt;
    }
    if (e.pattern == PatternType::kSingle &&
        !(axis == Axis::kColumn ? merged.width() == 1
                                : merged.height() == 1)) {
      return std::nullopt;
    }
    EdgeMeta meta;
    meta.h_rel = rel.h;
    meta.t_rel = rel.t;
    meta.axis = axis;
    meta.stride = 2;
    return MergedEdge(e, d, merged, PatternType::kRRGapOne, meta);
  }

  void FindDep(const CompressedEdge& e, const Range& r,
               std::vector<Range>* out) const override {
    auto overlap = r.Intersect(e.prec);
    if (!overlap) return;
    Cell lo = overlap->head - e.meta.t_rel;
    Cell hi = overlap->tail - e.meta.h_rel;
    Range box(CellMax(lo, e.dep.head), CellMin(hi, e.dep.tail));
    if (!DominatedBy(box.head, box.tail)) return;
    ForEachDepCell(e, [&](const Cell& c) {
      if (box.Contains(c)) out->push_back(Range(c));
    });
  }

  void FindPrec(const CompressedEdge& e, const Range& s,
                std::vector<Range>* out) const override {
    // Per-cell windows: stride gaps make the union non-rectangular when
    // the window is shorter than the stride, so no bounding shortcut.
    ForEachDepCell(e, [&](const Cell& c) {
      if (s.Contains(c)) {
        out->push_back(Range(c + e.meta.h_rel, c + e.meta.t_rel));
      }
    });
  }

  void RemoveDep(const CompressedEdge& e, const Range& s,
                 std::vector<CompressedEdge>* out) const override {
    // Decompress the survivors to Single edges — correct and simple; the
    // compressor may re-merge them later.
    ForEachDepCell(e, [&](const Cell& c) {
      if (!s.Contains(c)) {
        CompressedEdge single = MakeSingleEdge(
            Range(c + e.meta.h_rel, c + e.meta.t_rel), c, e.head_flags,
            e.tail_flags);
        out->push_back(single);
      }
    });
  }
};

}  // namespace

const Pattern& GetPattern(PatternType type) {
  static const RRPattern rr;
  static const RFPattern rf;
  static const FRPattern fr;
  static const FFPattern ff;
  static const RRChainPattern chain;
  static const RRGapOnePattern gap;
  switch (type) {
    case PatternType::kRR: return rr;
    case PatternType::kRF: return rf;
    case PatternType::kFR: return fr;
    case PatternType::kFF: return ff;
    case PatternType::kRRChain: return chain;
    case PatternType::kRRGapOne: return gap;
    case PatternType::kSingle: break;
  }
  assert(false && "Single edges have no Pattern object");
  return rr;
}

const std::vector<PatternType>& DefaultPatternSet() {
  static const std::vector<PatternType> kSet{
      PatternType::kRRChain, PatternType::kRR, PatternType::kRF,
      PatternType::kFR, PatternType::kFF};
  return kSet;
}

const std::vector<PatternType>& ExtendedPatternSet() {
  static const std::vector<PatternType> kSet{
      PatternType::kRRChain, PatternType::kRR, PatternType::kRF,
      PatternType::kFR, PatternType::kFF, PatternType::kRRGapOne};
  return kSet;
}

void FindDepOnEdge(const CompressedEdge& e, const Range& r,
                   std::vector<Range>* out) {
  if (e.pattern == PatternType::kSingle) {
    if (r.Overlaps(e.prec)) out->push_back(e.dep);
    return;
  }
  GetPattern(e.pattern).FindDep(e, r, out);
}

void FindPrecOnEdge(const CompressedEdge& e, const Range& s,
                    std::vector<Range>* out) {
  if (e.pattern == PatternType::kSingle) {
    if (s.Overlaps(e.dep)) out->push_back(e.prec);
    return;
  }
  GetPattern(e.pattern).FindPrec(e, s, out);
}

void RemoveDepOnEdge(const CompressedEdge& e, const Range& s,
                     std::vector<CompressedEdge>* out) {
  if (e.pattern == PatternType::kSingle) {
    if (!s.Overlaps(e.dep)) out->push_back(e);
    return;
  }
  if (!s.Overlaps(e.dep)) {
    out->push_back(e);
    return;
  }
  GetPattern(e.pattern).RemoveDep(e, s, out);
}

std::vector<Dependency> ReconstructDependencies(const CompressedEdge& e) {
  std::vector<Dependency> out;
  auto emit = [&](const Cell& c) {
    Dependency d;
    d.prec = WindowOf(e, c);
    d.dep = c;
    d.head_flags = e.head_flags;
    d.tail_flags = e.tail_flags;
    out.push_back(d);
  };
  if (e.pattern == PatternType::kSingle) {
    emit(e.dep.head);
    return out;
  }
  if (e.pattern == PatternType::kRRGapOne) {
    RRGapOnePattern::ForEachDepCell(e, emit);
    return out;
  }
  for (const Cell& c : EnumerateCells(e.dep)) emit(c);
  return out;
}

std::vector<Range> DirectDependents(const CompressedEdge& e, const Range& r) {
  std::vector<Range> out;
  for (const Dependency& d : ReconstructDependencies(e)) {
    if (d.prec.Overlaps(r)) out.push_back(Range(d.dep));
  }
  return out;
}

}  // namespace taco
