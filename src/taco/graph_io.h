// Persistence for compressed formula graphs.
//
// Building the compressed graph is the one-time cost TACO pays at load
// (Fig. 11); a spreadsheet system that persists the compressed graph next
// to the file skips that cost entirely on reopen. The format is a
// line-oriented text serialization of the compressed edges — one line per
// edge, human-inspectable, and independent of insertion order:
//
//   # taco-graph v1
//   RR A1:B6 C1:C4 hRel=-2,0 tRel=-1,2 axis=col stride=1 n=4 flags=0000
//   Single B1:B4 D4 n=1 flags=1100
//
// Loading reconstructs the edges directly (no re-compression), yielding a
// graph that answers queries identically to the one that was saved.

#ifndef TACO_TACO_GRAPH_IO_H_
#define TACO_TACO_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "taco/taco_graph.h"

namespace taco {

/// Serializes the live edges of `graph` to the text format above.
std::string WriteGraphText(const TacoGraph& graph);

/// Reconstructs a graph from WriteGraphText output. Options affect only
/// future insertions, not the loaded edges.
Result<TacoGraph> ReadGraphText(std::string_view text,
                                TacoOptions options = TacoOptions::Full());

/// File variants.
Status SaveGraphFile(const TacoGraph& graph, const std::string& path);
Result<TacoGraph> LoadGraphFile(const std::string& path,
                                TacoOptions options = TacoOptions::Full());

}  // namespace taco

#endif  // TACO_TACO_GRAPH_IO_H_
