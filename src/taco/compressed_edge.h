// The compressed-edge representation (Sec. II-B of the paper).
//
// A compressed edge e = (prec, dep, pattern, meta) represents a set of raw
// dependencies. `dep` is the rectangle of formula cells (always a line of
// cells — 1xN or Nx1 — or a single cell), `prec` the minimal bounding
// range of their referenced windows, and `meta` the constant-size pattern
// information that reconstructs each raw dependency:
//
//   pattern   window referenced by dependent cell d
//   -------   -------------------------------------
//   Single    prec itself (one raw dependency)
//   RR        [d + h_rel, d + t_rel]          sliding window
//   RF        [d + h_rel, t_fix]              shrinking window
//   FR        [h_fix, d + t_rel]              expanding window
//   FF        [h_fix, t_fix]                  fixed window
//   RR-Chain  [d + h_rel, d + h_rel]          unit-offset chain (Sec. V)
//   RR-GapOne RR over every other cell        stride-2 extension (Sec. V)

#ifndef TACO_TACO_COMPRESSED_EDGE_H_
#define TACO_TACO_COMPRESSED_EDGE_H_

#include <cstdint>
#include <string>

#include "common/a1.h"
#include "common/cell.h"
#include "common/range.h"

namespace taco {

/// Compression pattern tags. kSingle marks an uncompressed edge.
enum class PatternType : uint8_t {
  kSingle = 0,
  kRR = 1,
  kRF = 2,
  kFR = 3,
  kFF = 4,
  kRRChain = 5,
  kRRGapOne = 6,
};

/// Stable display name ("RR", "FF", ...).
std::string_view PatternTypeToString(PatternType type);

/// Constant-size pattern metadata. Which fields are meaningful depends on
/// the pattern; unused fields are left default.
struct EdgeMeta {
  Offset h_rel;  ///< RR/RF/RR-Chain/RR-GapOne: dep-to-window-head offset.
  Offset t_rel;  ///< RR/FR/RR-Chain/RR-GapOne: dep-to-window-tail offset.
  Cell h_fix;    ///< FR/FF: fixed window head.
  Cell t_fix;    ///< RF/FF: fixed window tail.
  /// Axis along which the dependent cells are stacked. kColumn means a
  /// vertical run of formulas (the paper's default orientation).
  Axis axis = Axis::kColumn;
  /// Distance between consecutive dependent cells along the axis: 1 for
  /// all basic patterns, 2 for RR-GapOne.
  int32_t stride = 1;

  friend bool operator==(const EdgeMeta&, const EdgeMeta&) = default;
};

/// One edge of the compressed formula graph.
struct CompressedEdge {
  Range prec;   ///< Bounding range of all referenced windows.
  Range dep;    ///< Bounding range of the dependent formula cells.
  PatternType pattern = PatternType::kSingle;
  EdgeMeta meta;
  /// Number of raw dependencies this edge represents (|E'_i|). For
  /// stride-1 patterns this equals dep.Area(); for RR-GapOne it is the
  /// number of occupied stride positions.
  uint64_t compressed_count = 1;
  /// '$' cues inherited from the formula text of the first dependency;
  /// used only by the compression heuristics.
  AbsFlags head_flags;
  AbsFlags tail_flags;

  /// "prec -> dep [pattern]" for logs and test failures.
  std::string ToString() const;
};

/// Builds the Single (uncompressed) edge for one raw dependency.
CompressedEdge MakeSingleEdge(const Range& prec, const Cell& dep,
                              AbsFlags head_flags = {},
                              AbsFlags tail_flags = {});

}  // namespace taco

#endif  // TACO_TACO_COMPRESSED_EDGE_H_
