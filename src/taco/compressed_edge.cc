#include "taco/compressed_edge.h"

namespace taco {

std::string_view PatternTypeToString(PatternType type) {
  switch (type) {
    case PatternType::kSingle: return "Single";
    case PatternType::kRR: return "RR";
    case PatternType::kRF: return "RF";
    case PatternType::kFR: return "FR";
    case PatternType::kFF: return "FF";
    case PatternType::kRRChain: return "RR-Chain";
    case PatternType::kRRGapOne: return "RR-GapOne";
  }
  return "Unknown";
}

std::string CompressedEdge::ToString() const {
  std::string out = prec.ToString() + " -> " + dep.ToString() + " [" +
                    std::string(PatternTypeToString(pattern));
  if (pattern != PatternType::kSingle && pattern != PatternType::kFF) {
    out += " hRel=" + meta.h_rel.ToString() + " tRel=" + meta.t_rel.ToString();
  }
  out += " n=" + std::to_string(compressed_count) + "]";
  return out;
}

CompressedEdge MakeSingleEdge(const Range& prec, const Cell& dep,
                              AbsFlags head_flags, AbsFlags tail_flags) {
  CompressedEdge edge;
  edge.prec = prec;
  edge.dep = Range(dep);
  edge.pattern = PatternType::kSingle;
  edge.compressed_count = 1;
  edge.head_flags = head_flags;
  edge.tail_flags = tail_flags;
  return edge;
}

}  // namespace taco
