#include "taco/taco_graph.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>

#include "formula/references.h"

namespace taco {
namespace {

// Heuristic 2 ranking: smaller is preferred. RR-Chain is the special case
// of RR (Sec. V); RR-GapOne ranks below the basic patterns because it
// compresses half as densely.
int PatternRank(PatternType type) {
  switch (type) {
    case PatternType::kRRChain: return 0;
    case PatternType::kRR: return 1;
    case PatternType::kRF: return 2;
    case PatternType::kFR: return 3;
    case PatternType::kFF: return 4;
    case PatternType::kRRGapOne: return 5;
    case PatternType::kSingle: return 6;
  }
  return 7;
}

// The pattern a '$'-flag cue implies (heuristic 3). RR cues also admit
// RR-Chain, handled by the caller.
PatternType CueToPattern(RefCue cue) {
  switch (cue) {
    case RefCue::kRelRel: return PatternType::kRR;
    case RefCue::kRelFix: return PatternType::kRF;
    case RefCue::kFixRel: return PatternType::kFR;
    case RefCue::kFixFix: return PatternType::kFF;
  }
  return PatternType::kRR;
}

bool HasAnyFlag(const Dependency& d) {
  return d.head_flags.abs_col || d.head_flags.abs_row || d.tail_flags.abs_col ||
         d.tail_flags.abs_row;
}

// Axis along which `cell` could extend the line `dep`, or nullopt when the
// merged box would not be a line growing by exactly one stride step.
std::optional<Axis> ExtensionAxis(const Range& dep, const Cell& cell) {
  Range merged = dep.BoundingUnion(Range(cell));
  if (merged.width() == 1 && merged.height() > 1) return Axis::kColumn;
  if (merged.height() == 1 && merged.width() > 1) return Axis::kRow;
  return std::nullopt;
}

}  // namespace

TacoGraph::TacoGraph(TacoOptions options) : options_(std::move(options)) {
  gap_pattern_enabled_ =
      std::find(options_.patterns.begin(), options_.patterns.end(),
                PatternType::kRRGapOne) != options_.patterns.end();
}

TacoGraph::VertexId TacoGraph::InternVertex(const Range& range) {
  auto it = vertex_by_range_.find(range);
  if (it != vertex_by_range_.end()) return it->second;
  VertexId id;
  if (!free_vertices_.empty()) {
    id = free_vertices_.back();
    free_vertices_.pop_back();
    vertices_[id] = Vertex{range, {}, {}, true};
  } else {
    id = static_cast<VertexId>(vertices_.size());
    vertices_.push_back(Vertex{range, {}, {}, true});
  }
  vertex_by_range_.emplace(range, id);
  index_.Insert(range, id);
  ++live_vertices_;
  return id;
}

void TacoGraph::RemoveVertexIfOrphan(VertexId id) {
  Vertex& vertex = vertices_[id];
  if (!vertex.alive || !vertex.out_edges.empty() || !vertex.in_edges.empty()) {
    return;
  }
  vertex.alive = false;
  --live_vertices_;
  vertex_by_range_.erase(vertex.range);
  index_.Remove(vertex.range, id);
  free_vertices_.push_back(id);
}

TacoGraph::EdgeId TacoGraph::InsertEdge(const CompressedEdge& edge) {
  VertexId prec_v = InternVertex(edge.prec);
  VertexId dep_v = InternVertex(edge.dep);
  EdgeId id;
  if (!free_edges_.empty()) {
    id = free_edges_.back();
    free_edges_.pop_back();
    edges_[id] = EdgeSlot{edge, prec_v, dep_v, true};
  } else {
    id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(EdgeSlot{edge, prec_v, dep_v, true});
  }
  vertices_[prec_v].out_edges.push_back(id);
  vertices_[dep_v].in_edges.push_back(id);
  ++live_edges_;
  return id;
}

void TacoGraph::RemoveEdge(EdgeId id) {
  EdgeSlot& slot = edges_[id];
  assert(slot.alive);
  slot.alive = false;
  --live_edges_;
  auto unlink = [id](std::vector<EdgeId>* list) {
    list->erase(std::remove(list->begin(), list->end(), id), list->end());
  };
  unlink(&vertices_[slot.prec_v].out_edges);
  unlink(&vertices_[slot.dep_v].in_edges);
  RemoveVertexIfOrphan(slot.prec_v);
  RemoveVertexIfOrphan(slot.dep_v);
  free_edges_.push_back(id);
}

void TacoGraph::FindCandidateEdges(const Cell& dep_cell,
                                   std::vector<EdgeId>* candidates) const {
  // Shift the inserted formula cell one step in all four directions (two
  // steps as well when the stride-2 pattern is on) and collect the edges
  // whose dependent vertex overlaps a shifted position.
  std::vector<Offset> shifts = {{0, -1}, {0, 1}, {-1, 0}, {1, 0}};
  if (gap_pattern_enabled_) {
    shifts.insert(shifts.end(), {{0, -2}, {0, 2}, {-2, 0}, {2, 0}});
  }
  for (const Offset& shift : shifts) {
    Cell shifted = dep_cell + shift;
    if (!shifted.IsValid()) continue;
    index_.ForEachOverlap(
        Range(shifted), [&](const Range&, RTree::EntryId id) {
          const Vertex& vertex = vertices_[static_cast<VertexId>(id)];
          for (EdgeId edge_id : vertex.in_edges) {
            if (std::find(candidates->begin(), candidates->end(), edge_id) ==
                candidates->end()) {
              candidates->push_back(edge_id);
            }
          }
        });
  }
}

bool TacoGraph::SelectMerge(const Dependency& dep,
                            const std::vector<EdgeId>& candidates,
                            CompressedEdge* merged, EdgeId* replaced) const {
  struct Scored {
    CompressedEdge edge;
    EdgeId old_edge;
    std::array<int, 5> score;  // lexicographic; smaller wins
  };
  std::optional<Scored> best;

  int order = 0;
  auto consider = [&](const CompressedEdge& candidate, EdgeId old_edge,
                      Axis axis) {
    if (options_.in_row_only) {
      // TACO-InRow: column-axis RR over same-row references only.
      if (candidate.pattern != PatternType::kRR || axis != Axis::kColumn ||
          candidate.meta.h_rel.drow != 0 || candidate.meta.t_rel.drow != 0) {
        return;
      }
    }
    std::array<int, 5> score{};
    score[0] = options_.prefer_column_axis && axis == Axis::kRow ? 1 : 0;
    score[1] = options_.prefer_special_patterns &&
                       candidate.pattern != PatternType::kRRChain
                   ? 1
                   : 0;
    if (options_.use_dollar_cues && HasAnyFlag(dep)) {
      PatternType cue = CueToPattern(ClassifyReferenceCue(
          A1Reference{dep.prec, dep.head_flags, dep.tail_flags,
                      dep.prec.IsSingleCell()},
          axis));
      bool matches = candidate.pattern == cue ||
                     (cue == PatternType::kRR &&
                      (candidate.pattern == PatternType::kRRChain ||
                       candidate.pattern == PatternType::kRRGapOne));
      score[2] = matches ? 0 : 1;
    }
    score[3] = PatternRank(candidate.pattern);
    score[4] = order++;
    if (!best || score < best->score) {
      best = Scored{candidate, old_edge, score};
    }
  };

  for (EdgeId candidate_id : candidates) {
    const EdgeSlot& slot = edges_[candidate_id];
    const CompressedEdge& cand = slot.edge;
    auto axis = ExtensionAxis(cand.dep, dep.dep);
    if (!axis) continue;
    if (cand.pattern == PatternType::kSingle) {
      for (PatternType type : options_.patterns) {
        auto result = GetPattern(type).AddDep(cand, dep, *axis);
        if (result) consider(*result, candidate_id, *axis);
      }
    } else {
      auto result = GetPattern(cand.pattern).AddDep(cand, dep, *axis);
      if (result) consider(*result, candidate_id, *axis);
    }
  }

  if (!best) return false;
  *merged = best->edge;
  *replaced = best->old_edge;
  return true;
}

Status TacoGraph::AddDependency(const Dependency& dep) {
  if (!dep.prec.IsValid() || !dep.dep.IsValid()) {
    return Status::InvalidArgument("invalid dependency " +
                                   dep.prec.ToString() + " -> " +
                                   dep.dep.ToString());
  }
  std::vector<EdgeId> candidates;
  FindCandidateEdges(dep.dep, &candidates);

  CompressedEdge merged;
  EdgeId replaced = 0;
  if (SelectMerge(dep, candidates, &merged, &replaced)) {
    RemoveEdge(replaced);
    InsertEdge(merged);
  } else {
    InsertEdge(
        MakeSingleEdge(dep.prec, dep.dep, dep.head_flags, dep.tail_flags));
  }
  ++raw_dependencies_;
  return Status::OK();
}

std::vector<Range> TacoGraph::FindDependents(const Range& input) {
  counters_ = QueryCounters{};
  std::vector<Range> result;
  RTree result_index;
  std::deque<Range> queue{input};
  std::vector<Range> found;
  std::vector<RTree::EntryId> overlapping;

  while (!queue.empty()) {
    Range prec_to_visit = queue.front();
    queue.pop_front();
    index_.ForEachOverlap(
        prec_to_visit, [&](const Range&, RTree::EntryId id) {
          const Vertex& vertex = vertices_[static_cast<VertexId>(id)];
          ++counters_.vertex_visits;
          for (EdgeId edge_id : vertex.out_edges) {
            const EdgeSlot& slot = edges_[edge_id];
            ++counters_.edge_accesses;
            found.clear();
            FindDepOnEdge(slot.edge, prec_to_visit, &found);
            for (const Range& dep_range : found) {
              // Keep only the parts not already in the result set.
              overlapping.clear();
              result_index.SearchOverlap(dep_range, &overlapping);
              std::vector<Range> pieces{dep_range};
              std::vector<Range> next;
              for (RTree::EntryId visited_id : overlapping) {
                if (pieces.empty()) break;
                next.clear();
                for (const Range& piece : pieces) {
                  SubtractRange(piece, result[visited_id], &next);
                }
                pieces.swap(next);
              }
              for (const Range& piece : pieces) {
                result_index.Insert(piece, result.size());
                result.push_back(piece);
                queue.push_back(piece);
                ++counters_.result_ranges;
              }
            }
          }
        });
  }
  return result;
}

std::vector<Range> TacoGraph::FindPrecedents(const Range& input) {
  counters_ = QueryCounters{};
  std::vector<Range> result;
  RTree result_index;
  std::deque<Range> queue{input};
  std::vector<Range> found;
  std::vector<RTree::EntryId> overlapping;

  while (!queue.empty()) {
    Range dep_to_visit = queue.front();
    queue.pop_front();
    index_.ForEachOverlap(
        dep_to_visit, [&](const Range&, RTree::EntryId id) {
          const Vertex& vertex = vertices_[static_cast<VertexId>(id)];
          ++counters_.vertex_visits;
          for (EdgeId edge_id : vertex.in_edges) {
            const EdgeSlot& slot = edges_[edge_id];
            ++counters_.edge_accesses;
            found.clear();
            FindPrecOnEdge(slot.edge, dep_to_visit, &found);
            for (const Range& prec_range : found) {
              overlapping.clear();
              result_index.SearchOverlap(prec_range, &overlapping);
              std::vector<Range> pieces{prec_range};
              std::vector<Range> next;
              for (RTree::EntryId visited_id : overlapping) {
                if (pieces.empty()) break;
                next.clear();
                for (const Range& piece : pieces) {
                  SubtractRange(piece, result[visited_id], &next);
                }
                pieces.swap(next);
              }
              for (const Range& piece : pieces) {
                result_index.Insert(piece, result.size());
                result.push_back(piece);
                queue.push_back(piece);
                ++counters_.result_ranges;
              }
            }
          }
        });
  }
  return result;
}

Status TacoGraph::RemoveFormulaCells(const Range& cells) {
  if (!cells.IsValid()) {
    return Status::InvalidArgument("invalid range " + cells.ToString());
  }
  // Gather the edges whose dependent range overlaps `cells` first; the
  // removal loop mutates the index.
  std::vector<EdgeId> targets;
  index_.ForEachOverlap(cells, [&](const Range&, RTree::EntryId id) {
    const Vertex& vertex = vertices_[static_cast<VertexId>(id)];
    for (EdgeId edge_id : vertex.in_edges) {
      if (std::find(targets.begin(), targets.end(), edge_id) ==
          targets.end()) {
        targets.push_back(edge_id);
      }
    }
  });

  std::vector<CompressedEdge> replacements;
  for (EdgeId edge_id : targets) {
    const EdgeSlot& slot = edges_[edge_id];
    replacements.clear();
    RemoveDepOnEdge(slot.edge, cells, &replacements);
    uint64_t removed_raw = slot.edge.compressed_count;
    RemoveEdge(edge_id);
    for (const CompressedEdge& replacement : replacements) {
      InsertEdge(replacement);
      removed_raw -= replacement.compressed_count;
    }
    raw_dependencies_ -= removed_raw;
  }
  return Status::OK();
}

Status TacoGraph::InsertCompressedEdgeForLoad(const CompressedEdge& edge) {
  if (!edge.prec.IsValid() || !edge.dep.IsValid()) {
    return Status::InvalidArgument("invalid edge ranges: " + edge.ToString());
  }
  if (edge.compressed_count < 1) {
    return Status::InvalidArgument("edge with zero dependencies: " +
                                   edge.ToString());
  }
  if (edge.pattern == PatternType::kSingle && !edge.dep.IsSingleCell()) {
    return Status::InvalidArgument("Single edge with multi-cell dep: " +
                                   edge.ToString());
  }
  if (edge.pattern != PatternType::kSingle &&
      edge.pattern != PatternType::kRRGapOne && !edge.dep.IsLine()) {
    return Status::InvalidArgument("compressed dep is not a line: " +
                                   edge.ToString());
  }
  // The reconstructed dependencies must all reference valid windows; this
  // also validates the metadata against the dep rectangle.
  for (const Dependency& dep : ReconstructDependencies(edge)) {
    if (!dep.prec.IsValid()) {
      return Status::InvalidArgument("edge window leaves the sheet: " +
                                     edge.ToString());
    }
  }
  InsertEdge(edge);
  raw_dependencies_ += edge.compressed_count;
  return Status::OK();
}

std::unordered_map<PatternType, PatternStat> TacoGraph::PatternStats() const {
  std::unordered_map<PatternType, PatternStat> stats;
  ForEachEdge([&stats](const CompressedEdge& edge) {
    PatternStat& stat = stats[edge.pattern];
    ++stat.edges;
    stat.dependencies += edge.compressed_count;
  });
  return stats;
}

void TacoGraph::ForEachEdge(
    const std::function<void(const CompressedEdge&)>& fn) const {
  for (const EdgeSlot& slot : edges_) {
    if (slot.alive) fn(slot.edge);
  }
}

}  // namespace taco
