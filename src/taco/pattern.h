// The pattern interface: the four key functions of Sec. III-B.
//
// Every compression pattern plugs into the TACO framework by implementing
// AddDep / FindDep / FindPrec / RemoveDep. The framework guarantees the
// documented parameter preconditions (Sec. III-B); implementations
// additionally defend by intersecting inputs with the edge's prec/dep.
//
// All four operations are O(1) for the basic patterns and RR-Chain.
// RR-GapOne's query results are inherently non-rectangular, so its outputs
// are O(k) lists of cells; it is disabled by default (Sec. V measures its
// prevalence but finds it marginal).

#ifndef TACO_TACO_PATTERN_H_
#define TACO_TACO_PATTERN_H_

#include <optional>
#include <vector>

#include "graph/dependency.h"
#include "taco/compressed_edge.h"

namespace taco {

/// One compression pattern. Implementations are stateless singletons
/// obtained via GetPattern().
class Pattern {
 public:
  virtual ~Pattern() = default;

  virtual PatternType type() const = 0;

  /// Attempts to absorb the raw dependency `d` into edge `e`, where
  /// `d.dep` extends `e.dep` by one cell along `axis` (the framework has
  /// already verified the adjacency). `e` is either a Single edge or an
  /// edge of this pattern. Returns the merged edge, or nullopt when the
  /// dependency does not fit this pattern.
  virtual std::optional<CompressedEdge> AddDep(const CompressedEdge& e,
                                               const Dependency& d,
                                               Axis axis) const = 0;

  /// Appends the direct dependents of `r` within `e` (the subset of e.dep
  /// whose windows intersect r). `r` may extend beyond e.prec; only the
  /// overlap matters. RR-Chain returns its transitive in-edge closure (a
  /// superset of the direct dependents that is always a subset of the
  /// true transitive dependents), which is what makes chains O(1) to
  /// traverse (Sec. V).
  virtual void FindDep(const CompressedEdge& e, const Range& r,
                       std::vector<Range>* out) const = 0;

  /// Appends the precedents of the cells `s` within `e` (the union of the
  /// windows of s ∩ e.dep). RR-Chain returns its transitive closure, as
  /// above.
  virtual void FindPrec(const CompressedEdge& e, const Range& s,
                        std::vector<Range>* out) const = 0;

  /// Removes the dependencies of the formula cells `s` from `e`,
  /// appending the replacement edges (zero, one, or two for the basic
  /// patterns). Remainders of size one demote to Single.
  virtual void RemoveDep(const CompressedEdge& e, const Range& s,
                         std::vector<CompressedEdge>* out) const = 0;
};

/// Returns the singleton implementation of `type`. kSingle has no Pattern
/// object (Single edges are manipulated by the framework directly);
/// requesting it is a programming error.
const Pattern& GetPattern(PatternType type);

/// The pattern set enabled by default: RR-Chain, RR, RF, FR, FF, in the
/// framework's candidate-generation order (special patterns first so the
/// heuristics can prefer them).
const std::vector<PatternType>& DefaultPatternSet();

/// Default set plus RR-GapOne (Sec. V extension), for the ablation bench.
const std::vector<PatternType>& ExtendedPatternSet();

/// Edge-level wrappers that also handle Single edges (which have no
/// Pattern object): the graph engine calls these.
void FindDepOnEdge(const CompressedEdge& e, const Range& r,
                   std::vector<Range>* out);
void FindPrecOnEdge(const CompressedEdge& e, const Range& s,
                    std::vector<Range>* out);
void RemoveDepOnEdge(const CompressedEdge& e, const Range& s,
                     std::vector<CompressedEdge>* out);

/// The raw dependencies represented by a compressed edge, reconstructed
/// from the metadata. Used by tests (losslessness oracle) and by the
/// decompression paths of baselines; O(|E'_i|).
std::vector<Dependency> ReconstructDependencies(const CompressedEdge& e);

/// Direct (single-hop) dependents of `r` in `e`, for all patterns — used
/// by tests to validate FindDep against window enumeration. For RR-Chain
/// this is the direct RR semantics, not the transitive closure.
std::vector<Range> DirectDependents(const CompressedEdge& e, const Range& r);

}  // namespace taco

#endif  // TACO_TACO_PATTERN_H_
