#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace taco {
namespace {

// Area of a bounding box as a 64-bit count of cells; boxes here are always
// valid rectangles.
uint64_t BoxArea(const Range& r) { return r.Area(); }

// Area increase caused by extending `box` to also cover `add`.
uint64_t Enlargement(const Range& box, const Range& add) {
  return BoxArea(box.BoundingUnion(add)) - BoxArea(box);
}

}  // namespace

Range RTree::Node::ComputeMbr() const {
  assert(!entries.empty());
  Range mbr = entries.front().box;
  for (size_t i = 1; i < entries.size(); ++i) {
    mbr = mbr.BoundingUnion(entries[i].box);
  }
  return mbr;
}

RTree::RTree() : root_(std::make_unique<Node>()) {}

void RTree::Insert(const Range& box, EntryId id) {
  InsertEntry(box, id);
  ++size_;
}

void RTree::InsertEntry(const Range& box, EntryId id) {
  Node* leaf = ChooseLeaf(box);
  leaf->entries.push_back(Entry{box, id, nullptr});
  std::unique_ptr<Node> sibling;
  if (leaf->entries.size() > static_cast<size_t>(kMaxEntries)) {
    sibling = SplitNode(leaf);
  }
  AdjustTree(leaf, std::move(sibling));
}

RTree::Node* RTree::ChooseLeaf(const Range& box) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    // Least enlargement; ties broken by smaller area (Guttman's rule).
    Entry* best = nullptr;
    uint64_t best_enlarge = std::numeric_limits<uint64_t>::max();
    uint64_t best_area = std::numeric_limits<uint64_t>::max();
    for (Entry& entry : node->entries) {
      uint64_t enlarge = Enlargement(entry.box, box);
      uint64_t area = BoxArea(entry.box);
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = &entry;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    assert(best != nullptr);
    node = best->child.get();
  }
  return node;
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  // Quadratic split: pick the pair of entries whose combined bounding box
  // wastes the most area as seeds, then assign the rest greedily.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  int64_t worst_waste = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      int64_t waste =
          static_cast<int64_t>(
              BoxArea(entries[i].box.BoundingUnion(entries[j].box))) -
          static_cast<int64_t>(BoxArea(entries[i].box)) -
          static_cast<int64_t>(BoxArea(entries[j].box));
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;

  Range mbr_a = entries[seed_a].box;
  Range mbr_b = entries[seed_b].box;
  std::vector<Entry> pending;
  pending.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a) {
      if (entries[i].child) entries[i].child->parent = node;
      node->entries.push_back(std::move(entries[i]));
    } else if (i == seed_b) {
      if (entries[i].child) entries[i].child->parent = sibling.get();
      sibling->entries.push_back(std::move(entries[i]));
    } else {
      pending.push_back(std::move(entries[i]));
    }
  }

  while (!pending.empty()) {
    // If one group must take all remaining entries to reach the minimum
    // fill, assign them wholesale.
    size_t remaining = pending.size();
    if (node->entries.size() + remaining == static_cast<size_t>(kMinEntries)) {
      for (Entry& entry : pending) {
        mbr_a = mbr_a.BoundingUnion(entry.box);
        if (entry.child) entry.child->parent = node;
        node->entries.push_back(std::move(entry));
      }
      break;
    }
    if (sibling->entries.size() + remaining ==
        static_cast<size_t>(kMinEntries)) {
      for (Entry& entry : pending) {
        mbr_b = mbr_b.BoundingUnion(entry.box);
        if (entry.child) entry.child->parent = sibling.get();
        sibling->entries.push_back(std::move(entry));
      }
      break;
    }

    // PickNext: the entry with the greatest preference for one group.
    size_t best_idx = 0;
    int64_t best_diff = -1;
    for (size_t i = 0; i < pending.size(); ++i) {
      int64_t d_a = static_cast<int64_t>(Enlargement(mbr_a, pending[i].box));
      int64_t d_b = static_cast<int64_t>(Enlargement(mbr_b, pending[i].box));
      int64_t diff = d_a > d_b ? d_a - d_b : d_b - d_a;
      if (diff > best_diff) {
        best_diff = diff;
        best_idx = i;
      }
    }
    Entry chosen = std::move(pending[best_idx]);
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_idx));

    uint64_t enlarge_a = Enlargement(mbr_a, chosen.box);
    uint64_t enlarge_b = Enlargement(mbr_b, chosen.box);
    bool to_a;
    if (enlarge_a != enlarge_b) {
      to_a = enlarge_a < enlarge_b;
    } else if (BoxArea(mbr_a) != BoxArea(mbr_b)) {
      to_a = BoxArea(mbr_a) < BoxArea(mbr_b);
    } else {
      to_a = node->entries.size() <= sibling->entries.size();
    }
    if (to_a) {
      mbr_a = mbr_a.BoundingUnion(chosen.box);
      if (chosen.child) chosen.child->parent = node;
      node->entries.push_back(std::move(chosen));
    } else {
      mbr_b = mbr_b.BoundingUnion(chosen.box);
      if (chosen.child) chosen.child->parent = sibling.get();
      sibling->entries.push_back(std::move(chosen));
    }
  }
  return sibling;
}

void RTree::AdjustTree(Node* node, std::unique_ptr<Node> split_sibling) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    // Refresh this node's MBR in its parent entry.
    for (Entry& entry : parent->entries) {
      if (entry.child.get() == node) {
        entry.box = node->ComputeMbr();
        break;
      }
    }
    if (split_sibling) {
      Range sibling_mbr = split_sibling->ComputeMbr();
      split_sibling->parent = parent;
      parent->entries.push_back(
          Entry{sibling_mbr, 0, std::move(split_sibling)});
      if (parent->entries.size() > static_cast<size_t>(kMaxEntries)) {
        split_sibling = SplitNode(parent);
      } else {
        split_sibling = nullptr;
      }
    }
    node = parent;
  }
  // node == root.
  if (split_sibling) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    Range old_mbr = root_->ComputeMbr();
    Range sib_mbr = split_sibling->ComputeMbr();
    root_->parent = new_root.get();
    split_sibling->parent = new_root.get();
    new_root->entries.push_back(Entry{old_mbr, 0, std::move(root_)});
    new_root->entries.push_back(Entry{sib_mbr, 0, std::move(split_sibling)});
    root_ = std::move(new_root);
  }
}

void RTree::SearchOverlap(const Range& query, std::vector<EntryId>* out) const {
  ForEachOverlap(query, [out](const Range&, EntryId id) { out->push_back(id); });
}

bool RTree::AnyOverlap(const Range& query) const {
  bool found = false;
  ForEachOverlap(query, [&found](const Range&, EntryId) {
    found = true;
    return false;  // stop at the first hit
  });
  return found;
}

RTree::Node* RTree::FindLeaf(Node* node, const Range& box, EntryId id) const {
  if (node->is_leaf) {
    for (const Entry& entry : node->entries) {
      if (entry.box == box && entry.id == id) return node;
    }
    return nullptr;
  }
  for (const Entry& entry : node->entries) {
    if (!entry.box.Contains(box)) continue;
    if (Node* found = FindLeaf(entry.child.get(), box, id)) return found;
  }
  return nullptr;
}

bool RTree::Remove(const Range& box, EntryId id) {
  Node* leaf = FindLeaf(root_.get(), box, id);
  if (leaf == nullptr) return false;
  auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                         [&](const Entry& entry) {
                           return entry.box == box && entry.id == id;
                         });
  assert(it != leaf->entries.end());
  leaf->entries.erase(it);
  --size_;
  CondenseTree(leaf);
  return true;
}

void RTree::CondenseTree(Node* leaf) {
  // Walk up, detaching underfull nodes; reinsert their leaf entries after.
  std::vector<std::unique_ptr<Node>> orphans;
  Node* node = leaf;
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    auto it = std::find_if(
        parent->entries.begin(), parent->entries.end(),
        [&](const Entry& entry) { return entry.child.get() == node; });
    assert(it != parent->entries.end());
    if (node->entries.size() < static_cast<size_t>(kMinEntries)) {
      orphans.push_back(std::move(it->child));
      parent->entries.erase(it);
    } else {
      it->box = node->ComputeMbr();
    }
    node = parent;
  }

  for (auto& orphan : orphans) {
    ReinsertSubtree(orphan.get());
  }

  // Shrink the root when it has a single internal child.
  while (!root_->is_leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries.front().child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (root_->entries.empty()) {
    root_->is_leaf = true;
  }
}

void RTree::ReinsertSubtree(Node* node) {
  if (node->is_leaf) {
    for (Entry& entry : node->entries) {
      InsertEntry(entry.box, entry.id);
    }
    return;
  }
  for (Entry& entry : node->entries) {
    ReinsertSubtree(entry.child.get());
  }
}

void RTree::Clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

int RTree::HeightForTesting() const {
  int height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->entries.front().child.get();
    ++height;
  }
  return height;
}

bool RTree::CheckInvariantsForTesting() const {
  // Walk the tree verifying parent pointers, MBRs, fill bounds, and that
  // all leaves sit at the same depth.
  size_t counted = 0;
  int leaf_depth = -1;

  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node* node = frame.node;

    if (node != root_.get()) {
      if (node->entries.size() < static_cast<size_t>(kMinEntries) ||
          node->entries.size() > static_cast<size_t>(kMaxEntries)) {
        return false;
      }
    } else if (node->entries.size() > static_cast<size_t>(kMaxEntries)) {
      return false;
    }

    if (node->is_leaf) {
      if (leaf_depth == -1) leaf_depth = frame.depth;
      if (leaf_depth != frame.depth) return false;
      counted += node->entries.size();
      continue;
    }
    for (const Entry& entry : node->entries) {
      if (entry.child == nullptr) return false;
      if (entry.child->parent != node) return false;
      if (!(entry.box == entry.child->ComputeMbr())) return false;
      stack.push_back({entry.child.get(), frame.depth + 1});
    }
  }
  return counted == size_;
}

}  // namespace taco
