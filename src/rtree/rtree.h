// A Guttman R-tree over cell ranges.
//
// The paper indexes formula-graph vertices (which are rectangles of cells)
// with an R-tree so that the vertices overlapping an input range can be
// found without scanning (Sec. II-B, IV). This is a textbook main-memory
// R-tree with quadratic split [Guttman, SIGMOD'84]: internal nodes hold
// child bounding boxes, leaves hold (range, id) entries. Deletion uses
// condense-and-reinsert.
//
// Duplicate boxes are allowed; entries are identified by (box, id) pairs.
// Overlap search is allocation-free and templated on the visitor so the
// BFS inner loops of the graph engines pay no std::function overhead.

#ifndef TACO_RTREE_RTREE_H_
#define TACO_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/range.h"

namespace taco {

/// Main-memory R-tree mapping rectangles to opaque 64-bit ids.
class RTree {
 public:
  using EntryId = uint64_t;

  /// Maximum entries per node before a split; minimum fill after splits
  /// and deletions is kMinEntries.
  static constexpr int kMaxEntries = 8;
  static constexpr int kMinEntries = 3;

  RTree();
  ~RTree() = default;

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;

  /// Inserts an entry. Duplicates (same box and id) are stored separately.
  void Insert(const Range& box, EntryId id);

  /// Removes one entry matching (box, id) exactly. Returns false when no
  /// such entry exists.
  bool Remove(const Range& box, EntryId id);

  /// Appends the ids of all entries whose box overlaps `query`.
  void SearchOverlap(const Range& query, std::vector<EntryId>* out) const;

  /// Calls `fn(box, id)` for every entry overlapping `query`. If `fn`
  /// returns bool, returning false stops the search early.
  template <typename Fn>
  void ForEachOverlap(const Range& query, Fn&& fn) const {
    if (root_) VisitOverlap(*root_, query, fn);
  }

  /// True iff at least one entry overlaps `query`.
  bool AnyOverlap(const Range& query) const;

  /// Number of stored entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all entries.
  void Clear();

  /// Height of the tree (1 for a leaf-only root). Exposed for tests.
  int HeightForTesting() const;

  /// Validates structural invariants (MBR correctness, fill factors,
  /// entry count). Exposed for tests.
  bool CheckInvariantsForTesting() const;

 private:
  struct Node;

  struct Entry {
    Range box;
    // Leaf level: the user id. Internal level: unused (child holds data).
    EntryId id = 0;
    std::unique_ptr<Node> child;  // null at leaf level
  };

  struct Node {
    bool is_leaf = true;
    Node* parent = nullptr;
    std::vector<Entry> entries;

    Range ComputeMbr() const;
  };

  // Calls fn(box, id) per overlapping leaf entry; supports early exit when
  // fn returns bool.
  template <typename Fn>
  static bool VisitOverlap(const Node& node, const Range& query, Fn&& fn) {
    for (const Entry& entry : node.entries) {
      if (!entry.box.Overlaps(query)) continue;
      if (node.is_leaf) {
        if constexpr (std::is_convertible_v<
                          decltype(fn(entry.box, entry.id)), bool>) {
          if (!fn(entry.box, entry.id)) return false;
        } else {
          fn(entry.box, entry.id);
        }
      } else {
        if (!VisitOverlap(*entry.child, query, fn)) return false;
      }
    }
    return true;
  }

  Node* ChooseLeaf(const Range& box) const;
  // Splits `node` in place (quadratic split), returning the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node);
  // Recomputes ancestor MBRs and propagates splits up to the root.
  void AdjustTree(Node* node, std::unique_ptr<Node> split_sibling);

  Node* FindLeaf(Node* node, const Range& box, EntryId id) const;
  void CondenseTree(Node* leaf);
  // Reinserts all leaf-level entries under `node` (used by CondenseTree).
  void ReinsertSubtree(Node* node);
  void InsertEntry(const Range& box, EntryId id);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace taco

#endif  // TACO_RTREE_RTREE_H_
