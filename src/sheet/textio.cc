#include "sheet/textio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/a1.h"

namespace taco {
namespace {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status LineError(size_t line_no, std::string_view detail) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            std::string(detail));
}

// Parses the right-hand side of a line into the given cell.
Status ParseContent(Sheet* sheet, const Cell& cell, std::string_view rhs,
                    size_t line_no) {
  if (rhs.empty()) {
    return LineError(line_no, "missing cell content");
  }
  if (rhs[0] == '=') {
    Status s = sheet->SetFormula(cell, rhs.substr(1));
    if (!s.ok()) return LineError(line_no, s.ToString());
    return Status::OK();
  }
  if (rhs[0] == '"') {
    // Quoted string; "" escapes a quote. Must span the whole remainder.
    std::string value;
    size_t i = 1;
    bool closed = false;
    while (i < rhs.size()) {
      if (rhs[i] == '"') {
        if (i + 1 < rhs.size() && rhs[i + 1] == '"') {
          value += '"';
          i += 2;
        } else {
          closed = true;
          ++i;
          break;
        }
      } else {
        value += rhs[i];
        ++i;
      }
    }
    if (!closed || i != rhs.size()) {
      return LineError(line_no, "malformed string literal");
    }
    return sheet->SetText(cell, std::move(value));
  }
  if (rhs == "TRUE" || rhs == "true") {
    return sheet->SetBoolean(cell, true);
  }
  if (rhs == "FALSE" || rhs == "false") {
    return sheet->SetBoolean(cell, false);
  }
  std::string buffer(rhs);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) {
    return LineError(line_no,
                     "cannot parse cell content '" + buffer + "' as a number");
  }
  return sheet->SetNumber(cell, value);
}

}  // namespace

std::string WriteSheetText(const Sheet& sheet) {
  std::ostringstream out;
  out << "# tsheet v1";
  if (!sheet.name().empty()) out << " name=" << sheet.name();
  out << "\n";
  sheet.ForEachCellColumnMajor(
      [&out](const Cell& cell, const CellContent& content) {
        out << CellToA1(cell) << " = " << content.ToString() << "\n";
      });
  return out.str();
}

Result<Sheet> ReadSheetText(std::string_view text) {
  Sheet sheet;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    line = TrimWhitespace(line);
    if (line.empty() || line[0] == '#') continue;

    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return LineError(line_no, "expected '<cell> = <content>'");
    }
    std::string_view cell_text = TrimWhitespace(line.substr(0, eq));
    auto cell = ParseCellA1(cell_text);
    if (!cell.ok()) {
      return LineError(line_no, cell.status().ToString());
    }
    // Content keeps leading '=' for formulas: "C1 = =SUM(A1:A3)".
    std::string_view rhs = TrimWhitespace(line.substr(eq + 1));
    TACO_RETURN_IF_ERROR(ParseContent(&sheet, *cell, rhs, line_no));
  }
  return sheet;
}

Status SaveSheetFile(const Sheet& sheet, const std::string& path) {
  // Write-then-rename so a concurrent load (the workbook service reloads
  // parked sessions while others save) never observes a partial file. The
  // temp name is unique per writer so concurrent saves to one path can't
  // interleave inside the same temp file; last rename wins. fsync before
  // the rename and sync the directory after it: this is the durability
  // floor every caller gets — the session checkpoint counts on the save
  // being on disk before the WAL rotates, and direct callers (examples,
  // the differential oracle) deserve a crash-safe save too. The storage
  // engines' WriteFileAtomic keeps the same contract.
  static std::atomic<uint64_t> save_counter{0};
  const std::string tmp_path = path + ".tmp." +
                               std::to_string(::getpid()) + "." +
                               std::to_string(save_counter.fetch_add(1));
  const std::string data = WriteSheetText(sheet);
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp_path +
                           "' for writing: " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IoError("failed writing '" + tmp_path +
                             "': " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::IoError("fsync '" + tmp_path +
                           "': " + std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp_path.c_str());
    return Status::IoError("cannot rename '" + tmp_path + "' to '" + path +
                           "': " + std::strerror(err));
  }
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IoError("open dir '" + dir +
                           "': " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    int err = errno;
    ::close(dir_fd);
    return Status::IoError("fsync dir '" + dir +
                           "': " + std::strerror(err));
  }
  ::close(dir_fd);
  return Status::OK();
}

Result<Sheet> LoadSheetFile(const std::string& path, uint64_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // Refuse oversized files up front: the size check costs one stat and
  // keeps a corrupt or hostile path from ballooning the process.
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  if (!ec && size > max_bytes) {
    return Status::DataLoss("'" + path + "' is " + std::to_string(size) +
                            " bytes, over the load limit of " +
                            std::to_string(max_bytes));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto sheet = ReadSheetText(buffer.str());
  if (!sheet.ok()) return sheet;
  sheet->set_name(std::filesystem::path(path).stem().string());
  return sheet;
}

}  // namespace taco
