// The content stored in one spreadsheet cell.

#ifndef TACO_SHEET_CELL_CONTENT_H_
#define TACO_SHEET_CELL_CONTENT_H_

#include <memory>
#include <string>
#include <variant>

#include "formula/ast.h"

namespace taco {

/// A parsed formula: canonical source text (without the leading '=') plus
/// its AST. The AST is shared so cells produced by autofill from the same
/// source can be copied cheaply and CellContent stays copyable.
struct FormulaCell {
  std::string text;
  std::shared_ptr<const Expr> ast;
};

/// What a cell holds: nothing, a literal, or a formula. Literal types are
/// the three spreadsheet scalars (number, text, boolean).
class CellContent {
 public:
  CellContent() = default;
  explicit CellContent(double number) : repr_(number) {}
  explicit CellContent(std::string text) : repr_(std::move(text)) {}
  explicit CellContent(bool boolean) : repr_(boolean) {}
  explicit CellContent(FormulaCell formula) : repr_(std::move(formula)) {}

  bool IsBlank() const { return std::holds_alternative<std::monostate>(repr_); }
  bool IsNumber() const { return std::holds_alternative<double>(repr_); }
  bool IsText() const { return std::holds_alternative<std::string>(repr_); }
  bool IsBoolean() const { return std::holds_alternative<bool>(repr_); }
  bool IsFormula() const { return std::holds_alternative<FormulaCell>(repr_); }

  double number() const { return std::get<double>(repr_); }
  const std::string& text() const { return std::get<std::string>(repr_); }
  bool boolean() const { return std::get<bool>(repr_); }
  const FormulaCell& formula() const { return std::get<FormulaCell>(repr_); }

  /// Renders the content as it would appear in the formula bar: formulas
  /// with a leading '=', strings quoted, blanks as "".
  std::string ToString() const;

 private:
  std::variant<std::monostate, double, std::string, bool, FormulaCell> repr_;
};

}  // namespace taco

#endif  // TACO_SHEET_CELL_CONTENT_H_
