// Sparse spreadsheet model.
//
// A Sheet is a sparse map from cell positions to contents. It knows nothing
// about dependency graphs or evaluation; those layers consume it. Formula
// cells keep both their canonical text and parsed AST so that reference
// extraction (graph construction) and evaluation need no re-parsing.

#ifndef TACO_SHEET_SHEET_H_
#define TACO_SHEET_SHEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/cell.h"
#include "common/range.h"
#include "common/status.h"
#include "sheet/cell_content.h"

namespace taco {

/// A single sparse sheet of cells.
class Sheet {
 public:
  Sheet() = default;

  /// Optional display name (file stem for loaded sheets).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Sets a literal value. Replaces any existing content.
  Status SetNumber(const Cell& cell, double value);
  Status SetText(const Cell& cell, std::string value);
  Status SetBoolean(const Cell& cell, bool value);

  /// Parses `text` (without the leading '=') and stores it as a formula.
  /// Fails with ParseError on malformed input; the cell is unchanged.
  Status SetFormula(const Cell& cell, std::string_view text);

  /// Stores an already-parsed formula (used by autofill and loaders).
  Status SetFormulaCell(const Cell& cell, FormulaCell formula);

  /// Pre-sizes the cell map for `cells` entries — loaders that know the
  /// final count (the binary snapshot reader) skip every rehash.
  void Reserve(size_t cells) { cells_.reserve(cells); }

  /// Bulk-load insert: stores `content` at `cell` WITHOUT the
  /// replace-existing bookkeeping of the Set* paths (one hash probe, no
  /// Clear). Only valid while loading into positions not yet occupied —
  /// an occupied cell is left unchanged and reported as AlreadyExists so
  /// a corrupt duplicate-bearing file cannot skew the formula count.
  Status AdoptCell(const Cell& cell, CellContent content);

  /// Removes the content of one cell (no-op when blank).
  Status Clear(const Cell& cell);

  /// Removes the contents of every cell in `range`.
  Status ClearRange(const Range& range);

  /// Returns the content at `cell`, or nullptr when blank.
  const CellContent* Get(const Cell& cell) const;

  /// True iff the cell holds a formula.
  bool IsFormulaCell(const Cell& cell) const;

  size_t cell_count() const { return cells_.size(); }
  size_t formula_cell_count() const { return formula_count_; }

  /// Bucket count of the cell map — the memory-visible footprint the
  /// post-ClearRange shrink heuristic manages (unordered_map::erase
  /// alone never returns bucket memory).
  size_t bucket_count() const { return cells_.bucket_count(); }

  /// Tables at or below this many buckets never shrink.
  static constexpr size_t kShrinkMinBuckets = 1024;

  /// The minimal bounding rectangle of all non-blank cells; nullopt when
  /// the sheet is empty.
  std::optional<Range> UsedRange() const;

  /// Visits every non-blank cell in column-major order (column by column,
  /// top to bottom). Column-major order matters: the paper loads
  /// spreadsheets by columns so the greedy compressor sees column runs of
  /// formulas consecutively (Sec. VI-A).
  void ForEachCellColumnMajor(
      const std::function<void(const Cell&, const CellContent&)>& fn) const;

  /// Visits only formula cells, column-major.
  void ForEachFormulaCellColumnMajor(
      const std::function<void(const Cell&, const FormulaCell&)>& fn) const;

 private:
  /// Rehashes the cell map down after a bulk clear leaves it sparse, so
  /// a sheet that briefly held a huge region doesn't keep the bucket
  /// table (and the O(buckets) iteration cost) forever.
  void MaybeShrink();

  std::string name_;
  std::unordered_map<Cell, CellContent> cells_;
  size_t formula_count_ = 0;
};

/// Fills every cell of `target` with the source cell's content, shifting
/// relative references by the displacement from `source` to each target
/// cell — the paper's autofill, the primary generator of tabular locality.
/// Formula cells whose shifted references would leave the sheet produce an
/// OutOfRange error (the first such error aborts the fill). The source
/// cell may lie inside `target`; its own content is preserved. A blank
/// source clears the target cells.
Status Autofill(Sheet* sheet, const Cell& source, const Range& target);

}  // namespace taco

#endif  // TACO_SHEET_SHEET_H_
