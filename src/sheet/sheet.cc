#include "sheet/sheet.h"

#include <algorithm>

#include "formula/parser.h"
#include "formula/references.h"

namespace taco {
namespace {

Status CheckCell(const Cell& cell) {
  if (!cell.IsValid()) {
    return Status::OutOfRange("cell " + cell.ToString() +
                              " is outside the sheet bounds");
  }
  return Status::OK();
}

}  // namespace

std::string CellContent::ToString() const {
  if (IsBlank()) return "";
  if (IsNumber()) {
    // Reuse the formula printer's number formatting for consistency.
    NumberExpr expr(number());
    return ExprToString(expr);
  }
  if (IsText()) {
    std::string quoted = "\"";
    for (char ch : text()) {
      if (ch == '"') quoted += '"';  // escape as ""
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  }
  if (IsBoolean()) return boolean() ? "TRUE" : "FALSE";
  return "=" + formula().text;
}

Status Sheet::SetNumber(const Cell& cell, double value) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  TACO_RETURN_IF_ERROR(Clear(cell));
  cells_[cell] = CellContent(value);
  return Status::OK();
}

Status Sheet::SetText(const Cell& cell, std::string value) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  TACO_RETURN_IF_ERROR(Clear(cell));
  cells_[cell] = CellContent(std::move(value));
  return Status::OK();
}

Status Sheet::SetBoolean(const Cell& cell, bool value) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  TACO_RETURN_IF_ERROR(Clear(cell));
  cells_[cell] = CellContent(value);
  return Status::OK();
}

Status Sheet::SetFormula(const Cell& cell, std::string_view text) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  auto ast = ParseFormula(text);
  if (!ast.ok()) return ast.status();
  FormulaCell formula;
  // Store the canonical printing so equal formulas compare equal textually.
  formula.text = ExprToString(**ast);
  formula.ast = std::shared_ptr<const Expr>(std::move(*ast));
  return SetFormulaCell(cell, std::move(formula));
}

Status Sheet::AdoptCell(const Cell& cell, CellContent content) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  if (content.IsBlank()) {
    return Status::InvalidArgument("cannot adopt blank content");
  }
  bool is_formula = content.IsFormula();
  auto [it, inserted] = cells_.emplace(cell, std::move(content));
  if (!inserted) {
    return Status::AlreadyExists("cell " + cell.ToString() +
                                 " adopted twice");
  }
  if (is_formula) ++formula_count_;
  return Status::OK();
}

Status Sheet::SetFormulaCell(const Cell& cell, FormulaCell formula) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  if (formula.ast == nullptr) {
    return Status::InvalidArgument("formula cell requires a parsed AST");
  }
  TACO_RETURN_IF_ERROR(Clear(cell));
  cells_[cell] = CellContent(std::move(formula));
  ++formula_count_;
  return Status::OK();
}

Status Sheet::Clear(const Cell& cell) {
  TACO_RETURN_IF_ERROR(CheckCell(cell));
  auto it = cells_.find(cell);
  if (it != cells_.end()) {
    if (it->second.IsFormula()) --formula_count_;
    cells_.erase(it);
  }
  return Status::OK();
}

Status Sheet::ClearRange(const Range& range) {
  if (!range.IsValid()) {
    return Status::OutOfRange("range " + range.ToString() + " is invalid");
  }
  // Sparse sheets can be much smaller than the cleared rectangle; iterate
  // whichever side is cheaper.
  if (range.Area() > cells_.size()) {
    for (auto it = cells_.begin(); it != cells_.end();) {
      if (range.Contains(it->first)) {
        if (it->second.IsFormula()) --formula_count_;
        it = cells_.erase(it);
      } else {
        ++it;
      }
    }
    MaybeShrink();
    return Status::OK();
  }
  for (int32_t col = range.head.col; col <= range.tail.col; ++col) {
    for (int32_t row = range.head.row; row <= range.tail.row; ++row) {
      TACO_RETURN_IF_ERROR(Clear(Cell{col, row}));
    }
  }
  MaybeShrink();
  return Status::OK();
}

void Sheet::MaybeShrink() {
  // The 1/8 occupancy threshold makes shrinking unreachable without a
  // preceding ~8x growth or mass erasure, so the amortized rehash cost
  // on edit-heavy workloads is nil. Single-cell Clear never shrinks —
  // only ClearRange (the bulk path) checks.
  if (cells_.bucket_count() > kShrinkMinBuckets &&
      cells_.size() < cells_.bucket_count() / 8) {
    cells_.rehash(cells_.size() * 2);
  }
}

const CellContent* Sheet::Get(const Cell& cell) const {
  auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

bool Sheet::IsFormulaCell(const Cell& cell) const {
  const CellContent* content = Get(cell);
  return content != nullptr && content->IsFormula();
}

std::optional<Range> Sheet::UsedRange() const {
  if (cells_.empty()) return std::nullopt;
  Cell lo{kMaxCol, kMaxRow};
  Cell hi{1, 1};
  for (const auto& [cell, content] : cells_) {
    lo = CellMin(lo, cell);
    hi = CellMax(hi, cell);
  }
  return Range(lo, hi);
}

void Sheet::ForEachCellColumnMajor(
    const std::function<void(const Cell&, const CellContent&)>& fn) const {
  std::vector<const std::pair<const Cell, CellContent>*> entries;
  entries.reserve(cells_.size());
  for (const auto& entry : cells_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : entries) fn(entry->first, entry->second);
}

void Sheet::ForEachFormulaCellColumnMajor(
    const std::function<void(const Cell&, const FormulaCell&)>& fn) const {
  ForEachCellColumnMajor([&fn](const Cell& cell, const CellContent& content) {
    if (content.IsFormula()) fn(cell, content.formula());
  });
}

Status Autofill(Sheet* sheet, const Cell& source, const Range& target) {
  if (!target.IsValid()) {
    return Status::OutOfRange("autofill target " + target.ToString() +
                              " is invalid");
  }
  TACO_RETURN_IF_ERROR(CheckCell(source));

  // Copy the source content: inserts below may rehash the cell map and
  // would invalidate a pointer into it.
  const CellContent* source_content = sheet->Get(source);
  std::optional<CellContent> copy;
  if (source_content != nullptr) copy = *source_content;
  const CellContent* content = copy ? &*copy : nullptr;

  for (const Cell& cell : EnumerateCells(target)) {
    if (cell == source) continue;
    if (content == nullptr) {
      TACO_RETURN_IF_ERROR(sheet->Clear(cell));
      continue;
    }
    if (!content->IsFormula()) {
      // Literals copy unchanged (Ctrl-drag semantics).
      if (content->IsNumber()) {
        TACO_RETURN_IF_ERROR(sheet->SetNumber(cell, content->number()));
      } else if (content->IsText()) {
        TACO_RETURN_IF_ERROR(sheet->SetText(cell, content->text()));
      } else {
        TACO_RETURN_IF_ERROR(sheet->SetBoolean(cell, content->boolean()));
      }
      continue;
    }
    Offset offset = cell - source;
    auto shifted = ShiftExprForAutofill(*content->formula().ast, offset);
    if (!shifted.ok()) return shifted.status();
    FormulaCell formula;
    formula.text = ExprToString(**shifted);
    formula.ast = std::shared_ptr<const Expr>(std::move(*shifted));
    TACO_RETURN_IF_ERROR(sheet->SetFormulaCell(cell, std::move(formula)));
  }
  return Status::OK();
}

}  // namespace taco
