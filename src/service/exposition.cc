#include "service/exposition.h"

#include <string>
#include <vector>

#include "obs/exposition.h"
#include "obs/histogram.h"
#include "obs/log.h"
#include "obs/process_stats.h"
#include "service/metrics.h"
#include "service/workbook_service.h"

namespace taco {
namespace {

using obs::Labels;
using obs::PromBuilder;

constexpr size_t kOps = static_cast<size_t>(ServiceOp::kOpCount);

/// The ops whose recalc aggregates are meaningful (fixed list so the
/// exposition layout never depends on traffic).
constexpr ServiceOp kMutatingOps[] = {ServiceOp::kSet, ServiceOp::kFormula,
                                      ServiceOp::kClear, ServiceOp::kBatch};

std::string OpLabel(ServiceOp op) { return std::string(ServiceOpName(op)); }

}  // namespace

std::string RenderServiceExposition(WorkbookService& service) {
  ServiceMetrics& metrics = service.metrics();
  PromBuilder b;

  // Per-op aggregates, snapshotted once and reused by every family.
  std::vector<obs::HistogramSnapshot> hists(kOps);
  std::vector<OpStats> stats(kOps);
  for (size_t i = 0; i < kOps; ++i) {
    auto op = static_cast<ServiceOp>(i);
    hists[i] = metrics.Histogram(op);
    stats[i] = metrics.Get(op);
  }

  b.Family("taco_op_latency_seconds",
           "Operation wall-clock latency (includes lock wait).",
           "histogram");
  for (size_t i = 0; i < kOps; ++i) {
    b.Histogram("taco_op_latency_seconds",
                {{"op", OpLabel(static_cast<ServiceOp>(i))}}, hists[i]);
  }

  // Precomputed quantiles as a SEPARATE gauge family: Prometheus forbids
  // mixing summary-style quantile series into a histogram family of the
  // same name, and scrapers without histogram math still want p99.
  b.Family("taco_op_latency_quantile_seconds",
           "Interpolated latency quantiles from the op histogram.",
           "gauge");
  static constexpr struct { double q; const char* label; } kQuantiles[] = {
      {0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};
  for (size_t i = 0; i < kOps; ++i) {
    for (const auto& [q, label] : kQuantiles) {
      b.Sample("taco_op_latency_quantile_seconds",
               {{"op", OpLabel(static_cast<ServiceOp>(i))},
                {"quantile", label}},
               hists[i].QuantileNs(q) / 1e9);
    }
  }

  b.Family("taco_ops_total", "Operations served, by op.", "counter");
  for (size_t i = 0; i < kOps; ++i) {
    b.Sample("taco_ops_total", {{"op", OpLabel(static_cast<ServiceOp>(i))}},
             static_cast<double>(stats[i].count));
  }

  b.Family("taco_op_errors_total", "Operations that returned an error.",
           "counter");
  for (size_t i = 0; i < kOps; ++i) {
    b.Sample("taco_op_errors_total",
             {{"op", OpLabel(static_cast<ServiceOp>(i))}},
             static_cast<double>(stats[i].errors));
  }

  b.Family("taco_recalc_dirty_cells_total",
           "Dirty formula cells identified by FindDependents.", "counter");
  for (ServiceOp op : kMutatingOps) {
    b.Sample("taco_recalc_dirty_cells_total", {{"op", OpLabel(op)}},
             static_cast<double>(stats[static_cast<size_t>(op)].dirty_cells));
  }

  b.Family("taco_recalc_find_dependents_seconds_total",
           "Time spent in the formula-graph dependents query.", "counter");
  for (ServiceOp op : kMutatingOps) {
    b.Sample("taco_recalc_find_dependents_seconds_total",
             {{"op", OpLabel(op)}},
             stats[static_cast<size_t>(op)].find_dependents_ms / 1e3);
  }

  b.Family("taco_recalc_eval_seconds_total",
           "Time spent re-evaluating dirty formulas.", "counter");
  for (ServiceOp op : kMutatingOps) {
    b.Sample("taco_recalc_eval_seconds_total", {{"op", OpLabel(op)}},
             stats[static_cast<size_t>(op)].eval_ms / 1e3);
  }

  b.Family("taco_recalc_cells_skipped_total",
           "Dirty formula cells pruned by value-change cutoff (prior value "
           "restored instead of re-evaluated).",
           "counter");
  uint64_t skipped_all = 0;
  uint64_t recalculated_all = 0;
  for (ServiceOp op : kMutatingOps) {
    const OpStats& os = stats[static_cast<size_t>(op)];
    skipped_all += os.cells_skipped;
    recalculated_all += os.recalculated;
    b.Sample("taco_recalc_cells_skipped_total", {{"op", OpLabel(op)}},
             static_cast<double>(os.cells_skipped));
  }
  // The headline cutoff win as a ready-made ratio: skipped / (skipped +
  // evaluated) across all mutating ops. 0 when cutoff never pruned.
  b.Family("taco_recalc_skipped_fraction",
           "Fraction of dirty formula cells cutoff pruned instead of "
           "re-evaluating, over the service lifetime.",
           "gauge");
  b.Sample("taco_recalc_skipped_fraction", {},
           skipped_all + recalculated_all > 0
               ? static_cast<double>(skipped_all) /
                     static_cast<double>(skipped_all + recalculated_all)
               : 0.0);

  const TransportCounters& t = metrics.transport();
  b.Family("taco_transport_connections_accepted_total",
           "Socket connections ever accepted.", "counter");
  b.Sample("taco_transport_connections_accepted_total", {},
           static_cast<double>(t.accepted.load(std::memory_order_relaxed)));
  b.Family("taco_transport_connections_rejected_total",
           "Connections refused over the client cap.", "counter");
  b.Sample("taco_transport_connections_rejected_total", {},
           static_cast<double>(t.rejected.load(std::memory_order_relaxed)));
  b.Family("taco_transport_connections_open",
           "Currently attached socket clients.", "gauge");
  b.Sample("taco_transport_connections_open", {},
           static_cast<double>(t.open.load(std::memory_order_relaxed)));
  b.Family("taco_transport_commands_total",
           "Framed commands dispatched over sockets.", "counter");
  b.Sample("taco_transport_commands_total", {},
           static_cast<double>(t.commands.load(std::memory_order_relaxed)));
  b.Family("taco_transport_oversized_lines_total",
           "Lines dropped for exceeding the length cap.", "counter");
  b.Sample("taco_transport_oversized_lines_total", {},
           static_cast<double>(t.oversized.load(std::memory_order_relaxed)));
  b.Family("taco_transport_idle_closed_total",
           "Connections closed by the idle timeout.", "counter");
  b.Sample("taco_transport_idle_closed_total", {},
           static_cast<double>(t.idle_closed.load(std::memory_order_relaxed)));

  const StorageCounters& s = metrics.storage();
  b.Family("taco_storage_checkpoints_total",
           "Snapshot-and-rotate checkpoints completed.", "counter");
  b.Sample("taco_storage_checkpoints_total", {},
           static_cast<double>(s.checkpoints.load(std::memory_order_relaxed)));
  b.Family("taco_storage_wal_records_total", "WAL records ever appended.",
           "counter");
  b.Sample("taco_storage_wal_records_total", {},
           static_cast<double>(s.wal_records.load(std::memory_order_relaxed)));
  b.Family("taco_storage_wal_bytes_total", "WAL bytes ever appended.",
           "counter");
  b.Sample("taco_storage_wal_bytes_total", {},
           static_cast<double>(s.wal_bytes.load(std::memory_order_relaxed)));
  b.Family("taco_storage_recoveries_total",
           "Sessions recovered from snapshot + WAL tail.", "counter");
  b.Sample("taco_storage_recoveries_total", {},
           static_cast<double>(s.recoveries.load(std::memory_order_relaxed)));
  b.Family("taco_storage_recovered_records_total",
           "WAL records replayed during recovery.", "counter");
  b.Sample(
      "taco_storage_recovered_records_total", {},
      static_cast<double>(s.recovered_records.load(std::memory_order_relaxed)));

  // Group-commit families. All zero (but present) without --group-commit,
  // so dashboards never have to special-case the flag.
  const WalGroupCounters& g = metrics.wal_group();
  b.Family("taco_wal_group_flushes_total",
           "Group-commit fsync rounds completed (one per file per round).",
           "counter");
  b.Sample("taco_wal_group_flushes_total", {},
           static_cast<double>(g.flushes.load(std::memory_order_relaxed)));
  b.Family("taco_wal_group_flush_failures_total",
           "Group-commit rounds whose fsync failed.", "counter");
  b.Sample(
      "taco_wal_group_flush_failures_total", {},
      static_cast<double>(g.flush_failures.load(std::memory_order_relaxed)));
  b.Family("taco_wal_group_appends_total",
           "WAL appends acknowledged through a group flush.", "counter");
  b.Sample("taco_wal_group_appends_total", {},
           static_cast<double>(g.appends.load(std::memory_order_relaxed)));
  b.Family("taco_wal_group_flush_seconds",
           "Latency of one group fsync round.", "histogram");
  b.Histogram("taco_wal_group_flush_seconds", {},
              metrics.GroupFlushHistogram());
  // Appends-per-flush as a hand-rendered power-of-two histogram: the
  // direct measure of coalescing (count≈sum means no batching; a fat
  // le="8".."64" tail means sessions genuinely share fsyncs). Buckets are
  // cumulative per the exposition format; _sum is total appends and
  // _count total flushes, so sum/count is the mean group size.
  b.Family("taco_wal_group_size", "WAL appends coalesced per group flush.",
           "histogram");
  uint64_t size_cumulative = 0;
  for (size_t i = 0; i <= WalGroupCounters::kSizeBuckets; ++i) {
    size_cumulative += g.size_buckets[i].load(std::memory_order_relaxed);
    std::string le = i < WalGroupCounters::kSizeBuckets
                         ? std::to_string(uint64_t{1} << i)
                         : "+Inf";
    b.Sample("taco_wal_group_size_bucket", {{"le", le}},
             static_cast<double>(size_cumulative));
  }
  b.Sample("taco_wal_group_size_sum", {},
           static_cast<double>(g.appends.load(std::memory_order_relaxed)));
  b.Sample("taco_wal_group_size_count", {},
           static_cast<double>(g.flushes.load(std::memory_order_relaxed)));

  b.Family("taco_sessions_resident", "Sessions resident in memory.", "gauge");
  b.Sample("taco_sessions_resident", {},
           static_cast<double>(service.resident_sessions()));
  b.Family("taco_sessions_parked",
           "Sessions parked to disk by the residency bound.", "gauge");
  b.Sample("taco_sessions_parked", {},
           static_cast<double>(service.parked_sessions()));
  b.Family("taco_sessions_evicted_total",
           "Sessions ever saved-and-parked by the LRU bound.", "counter");
  b.Sample("taco_sessions_evicted_total", {},
           static_cast<double>(service.evictions()));

  b.Family("taco_trace_spans_total", "Command trace spans ever recorded.",
           "counter");
  b.Sample("taco_trace_spans_total", {},
           static_cast<double>(metrics.trace().recorded()));
  b.Family("taco_trace_spans_overwritten_total",
           "Trace spans lost to ring overwrite (recorded - capacity).",
           "counter");
  b.Sample("taco_trace_spans_overwritten_total", {},
           static_cast<double>(metrics.trace().overwritten()));

  // Structured-log loss visibility: the sink is bounded and drop-on-full
  // by design, so the drop counter IS the alert signal. Both series
  // render as 0 when no logger is configured — the scrape layout never
  // depends on flags.
  const obs::Logger* logger = service.logger();
  b.Family("taco_log_events_total",
           "Structured log events accepted into the sink queue.",
           "counter");
  b.Sample("taco_log_events_total", {},
           logger != nullptr
               ? static_cast<double>(logger->events_logged())
               : 0.0);
  b.Family("taco_log_dropped_total",
           "Structured log events dropped because the queue was full.",
           "counter");
  b.Sample("taco_log_dropped_total", {},
           logger != nullptr
               ? static_cast<double>(logger->events_dropped())
               : 0.0);

  // Process introspection (-1 on non-Linux / read failure).
  obs::ProcessStats proc = obs::SampleProcessStats();
  b.Family("taco_process_resident_memory_bytes",
           "Resident set size of this process.", "gauge");
  b.Sample("taco_process_resident_memory_bytes", {},
           static_cast<double>(proc.rss_bytes));
  b.Family("taco_process_open_fds",
           "Open file descriptors held by this process.", "gauge");
  b.Sample("taco_process_open_fds", {},
           static_cast<double>(proc.open_fds));
  b.Family("taco_process_threads", "Threads in this process.", "gauge");
  b.Sample("taco_process_threads", {}, static_cast<double>(proc.threads));
  b.Family("taco_process_uptime_seconds",
           "Seconds since this process started.", "gauge");
  b.Sample("taco_process_uptime_seconds", {}, proc.uptime_seconds);

  // Per-session gauges. SessionNames() is sorted, so the series order is
  // deterministic for a given session population.
  struct SessionRow {
    std::string name;
    SessionStats stats;
  };
  std::vector<SessionRow> rows;
  for (const std::string& name : service.SessionNames()) {
    auto session = service.Get(name);
    if (!session.ok()) continue;  // Closed between listing and lookup.
    rows.push_back({name, (*session)->Stats()});
  }
  b.Family("taco_session_cells", "Non-blank cells in the session sheet.",
           "gauge");
  for (const auto& row : rows) {
    b.Sample("taco_session_cells", {{"session", row.name}},
             static_cast<double>(row.stats.cells));
  }
  b.Family("taco_session_formula_cells", "Formula cells in the session sheet.",
           "gauge");
  for (const auto& row : rows) {
    b.Sample("taco_session_formula_cells", {{"session", row.name}},
             static_cast<double>(row.stats.formula_cells));
  }
  b.Family("taco_session_graph_edges",
           "Dependency edges in the session formula graph.", "gauge");
  for (const auto& row : rows) {
    b.Sample("taco_session_graph_edges", {{"session", row.name}},
             static_cast<double>(row.stats.graph_edges));
  }
  b.Family("taco_session_version_chain_depth",
           "Delta links behind the latest published version (1 = full "
           "snapshot).",
           "gauge");
  for (const auto& row : rows) {
    b.Sample("taco_session_version_chain_depth", {{"session", row.name}},
             static_cast<double>(row.stats.version_chain_depth));
  }
  b.Family("taco_session_version", "Latest published MVCC version id.",
           "gauge");
  for (const auto& row : rows) {
    b.Sample("taco_session_version", {{"session", row.name}},
             static_cast<double>(row.stats.version));
  }
  b.Family("taco_session_versions_published_total",
           "MVCC versions published over the session lifetime.", "counter");
  for (const auto& row : rows) {
    b.Sample("taco_session_versions_published_total",
             {{"session", row.name}},
             static_cast<double>(row.stats.versions_published));
  }
  b.Family("taco_session_wal_bytes", "Current WAL file size.", "gauge");
  for (const auto& row : rows) {
    b.Sample("taco_session_wal_bytes", {{"session", row.name}},
             static_cast<double>(row.stats.wal_bytes));
  }
  b.Family("taco_session_reads_versioned_total",
           "Reads served lock-free from a published version.", "counter");
  for (const auto& row : rows) {
    b.Sample("taco_session_reads_versioned_total", {{"session", row.name}},
             static_cast<double>(row.stats.reads_versioned));
  }
  b.Family("taco_session_reads_locked_total",
           "Reads served under the session lock.", "counter");
  for (const auto& row : rows) {
    b.Sample("taco_session_reads_locked_total", {{"session", row.name}},
             static_cast<double>(row.stats.reads_locked));
  }

  return std::move(b).Finish();
}

}  // namespace taco
