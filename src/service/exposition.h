// Prometheus exposition over a live WorkbookService.
//
// One function renders everything a scrape wants: per-op latency
// histograms (+ precomputed quantile gauges), traffic/error counters,
// recalc phase totals, transport/storage counters, and per-session
// gauges (cells, versions, WAL bytes, read-path split). Served by the
// METRICS protocol verb and by taco_serve's HTTP GET /metrics listener
// — both return these bytes, so a scrape sees the same truth as a
// protocol client.
//
// The layout is CONSTANT: every op family emits a series for every
// ServiceOp whether or not it has traffic, and families appear in a
// fixed order. Scrape output therefore differs across transports and
// runs only in sample VALUES, which is what makes byte-level protocol
// conformance (after number scrubbing) testable at all.

#ifndef TACO_SERVICE_EXPOSITION_H_
#define TACO_SERVICE_EXPOSITION_H_

#include <string>

namespace taco {

class WorkbookService;

/// Renders the full text-format (0.0.4) exposition of `service`.
/// Thread-safe; takes only short internal locks (histogram snapshots
/// are lock-free merges; per-session stats take each session's mutex
/// briefly). Never blocks the lock-free read path.
std::string RenderServiceExposition(WorkbookService& service);

}  // namespace taco

#endif  // TACO_SERVICE_EXPOSITION_H_
