// Line-oriented text command protocol over the workbook service.
//
// One command per line; BATCH is the one multi-line form (a header with
// an edit count, followed by that many edit lines). Responses are single
// "OK ...", "VALUE ...", or "ERR <Code>: ..." lines, except STATS, which
// returns a multi-line report. The grammar (docs/architecture.md):
//
//   OPEN <session> [backend]          create or attach (recovers a WAL)
//   LOAD <session> <path> [backend]   read a snapshot file (+ WAL tail)
//   SAVE <session> [path]             write the bound / given path
//   CHECKPOINT <session> [path]       SAVE + WAL rotation, by its
//                                     durability name
//   STORAGE <session>                 storage engine / WAL report
//   CLOSE <session>                   drop from the registry (and WAL)
//   SET <session> <cell> <value>      number, or text (quotes optional)
//   FORMULA <session> <cell> <src>    formula without the leading '='
//   GET <session> <cell>              -> VALUE <cell> <display form>
//   GETRANGE <session> <range>        -> OK range <range> version=<v>
//                                        cells=<n>, then one VALUE line
//                                        per non-blank cell, then END —
//                                        all cells from ONE published
//                                        version (never torn mid-recalc)
//   CLEAR <session> <range>
//   BATCH <session> <n>               header; then n lines of
//     SET <cell> <value> | FORMULA <cell> <src> | CLEAR <range>
//   RECALC <session> [serial|parallel]  query / switch the recalc path
//   EXPLAIN <session> <cell-or-range> -> OK explain ..., then the dry-run
//                                        recalc plan (PLAN / WAVE / EST
//                                        lines), then END — commits
//                                        nothing
//   STATS [session]                   service / session report
//   LIST                              resident session names
//   METRICS                           -> OK metrics, then the Prometheus
//                                        text exposition, then END
//   TRACE [n]                         -> OK trace ..., then the newest n
//                                        (default all) span lines, END
//
// Every command is minted a process-unique correlation id (rid) for its
// duration; trace spans and structured log events it produces carry it,
// and services started with rid-on-error annotate ERR responses with a
// trailing " rid=<n>" so a client-visible failure joins those records.
//
// The processor is stateless and thread-safe: a complete command (header
// plus any BATCH body lines) goes in as one string, the response comes
// back as one string. Framing — collecting the BATCH body lines — is the
// transport's job (taco_serve does it for stdin).

#ifndef TACO_SERVICE_PROTOCOL_H_
#define TACO_SERVICE_PROTOCOL_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "service/workbook_service.h"

namespace taco {

/// Transport-agnostic response emission. Execute() returns each response
/// as ONE string (multi-line for service STATS); a ResponseWriter's
/// contract is that one Emit call delivers that whole response — plus
/// the terminating newline — as one atomic unit on the wire, so two
/// threads sharing a transport can never interleave mid-response.
/// Returns false when the transport is gone (peer hung up); the caller
/// should stop emitting.
class ResponseWriter {
 public:
  virtual ~ResponseWriter() = default;
  virtual bool Emit(std::string_view response) = 0;
};

/// ResponseWriter over a stdio stream (taco_serve's stdin mode, script
/// replay). One fwrite + flush per response: a response is visible to
/// the reader as soon as Emit returns, never partially.
class StdioResponseWriter : public ResponseWriter {
 public:
  explicit StdioResponseWriter(std::FILE* out) : out_(out) {}
  bool Emit(std::string_view response) override;

 private:
  std::FILE* out_;
};

class CommandProcessor {
 public:
  /// Upper bound on edits per BATCH. A header asking for more is a
  /// protocol error (and frames zero body lines), so a hostile count
  /// can neither make the transport swallow the rest of the stream nor
  /// reserve unbounded memory.
  static constexpr int kMaxBatchEdits = 65536;

  /// Upper bound on the area of a GETRANGE rectangle. The response is
  /// proportional to the NON-BLANK cells, but enumeration visits every
  /// cell of the rectangle, so a hostile A1:ZZZ9999999 must be refused
  /// rather than walked.
  static constexpr uint64_t kMaxGetRangeCells = 65536;

  /// `service` must outlive the processor.
  explicit CommandProcessor(WorkbookService* service) : service_(service) {}

  /// Executes one complete command (multi-line for BATCH). Never fails at
  /// the C++ level: protocol and engine errors come back as "ERR ..."
  /// response text, keeping the wire protocol uniform.
  std::string Execute(std::string_view command_text);

  /// Number of body lines the transport must still read after this
  /// header line to complete the command (only BATCH needs any); 0 for
  /// every other command, including malformed ones (their error surfaces
  /// when the header is executed). Returns -1 for a BATCH header whose
  /// count is unusable (negative, non-numeric, or over kMaxBatchEdits):
  /// the frame boundary is unknowable, so the only safe transport
  /// response is to report the error (Execute still produces it) and
  /// close the stream — re-interpreting the body lines as commands
  /// would silently address other sessions.
  static int ExtraBodyLines(std::string_view header_line);

  /// The ordering key a transport should dispatch this command under:
  /// the session name (second token) for session-addressed commands, the
  /// command word itself for session-less ones (LIST, STATS). Commands
  /// with equal keys must execute in submission order; taco_serve feeds
  /// this to ThreadPool::Submit's keyed overload. The returned view
  /// aliases `header_line`.
  static std::string_view DispatchKey(std::string_view header_line);

  /// Response framing for remote clients: almost every response is one
  /// line, but the service-wide STATS report and GETRANGE span several.
  /// A response whose FIRST line satisfies this predicate continues
  /// until a lone terminator line (kResponseTerminator). SocketClient
  /// uses it to know when a reply is complete.
  static bool ResponseContinues(std::string_view first_line);
  static constexpr std::string_view kResponseTerminator = "END";

 private:
  /// Admin-verb metering around ExecuteInner; Execute wraps THIS with
  /// the rid scope so the histogram sample and the correlation id cover
  /// the same window.
  std::string ExecuteMetered(std::string_view command_text);

  /// The dispatch body behind Execute (which wraps it with admin-verb
  /// metering — session-addressed data ops meter inside the session).
  std::string ExecuteInner(std::string_view command_text);

  WorkbookService* service_;
};

}  // namespace taco

#endif  // TACO_SERVICE_PROTOCOL_H_
