// A small fixed-size worker pool with per-key queue affinity.
//
// The workbook service needs two properties from its executor: commands
// against different sessions should run in parallel, while commands
// against the SAME session must apply in submission order (a text
// protocol has no other way to express ordering). Instead of one shared
// queue — which would let two edits to one session race to its lock and
// apply out of order — each worker owns a queue and keyed submissions
// hash to a fixed worker. Same key, same worker, same order.

#ifndef TACO_SERVICE_THREAD_POOL_H_
#define TACO_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace taco {

/// Fixed pool of workers, one task queue per worker.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains every queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` on the worker owning `key`. Tasks with equal keys
  /// execute in submission order.
  void Submit(std::string_view key, std::function<void()> task);

  /// Enqueues `task` on the least-loaded-ish worker (round robin); no
  /// ordering guarantee relative to other tasks.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(size_t index, std::function<void()> task);
  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace taco

#endif  // TACO_SERVICE_THREAD_POOL_H_
