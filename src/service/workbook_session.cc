#include "service/workbook_session.h"

#include <algorithm>
#include <utility>

#include "common/a1.h"
#include "common/ascii.h"
#include "common/clock.h"
#include "obs/rid.h"
#include "baselines/antifreeze.h"
#include "baselines/calcgraph.h"
#include "baselines/cellgraph.h"
#include "baselines/excellike.h"
#include "graph/nocomp_graph.h"
#include "sheet/textio.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

/// Per-thread cache of the last version a reader resolved, keyed by the
/// owning session's process-unique serial. A read whose session still
/// publishes the cached id runs without touching any shared cache line:
/// the refcount (and libstdc++'s atomic-shared_ptr spinlock) is only
/// paid once per published version per thread, not once per read.
struct TlsVersionCache {
  uint64_t session_serial = 0;
  uint64_t id = 0;
  std::shared_ptr<const ValueVersion> version;
};
thread_local TlsVersionCache tls_version_cache;

std::atomic<uint64_t> session_serial_counter{0};

/// Stable per-thread shard index for the sharded read counter.
unsigned ThreadReadShard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// The trace span's "what" column: the touched cell/range for single
/// edits, the edit count for batches.
std::string MutationDetail(ServiceOp op, std::span<const Edit> edits) {
  if (op == ServiceOp::kBatch || edits.size() != 1) {
    return "edits=" + std::to_string(edits.size());
  }
  const Edit& edit = edits.front();
  return edit.kind == Edit::Kind::kClearRange ? RangeToA1(edit.range)
                                              : CellToA1(edit.cell);
}

}  // namespace

Result<std::unique_ptr<DependencyGraph>> MakeGraphBackend(
    std::string_view backend) {
  std::string key = ToLowerAscii(backend);
  if (key.empty() || key == "taco" || key == "taco-full") {
    return std::unique_ptr<DependencyGraph>(
        std::make_unique<TacoGraph>(TacoOptions::Full()));
  }
  if (key == "taco-inrow") {
    return std::unique_ptr<DependencyGraph>(
        std::make_unique<TacoGraph>(TacoOptions::InRow()));
  }
  if (key == "nocomp") {
    return std::unique_ptr<DependencyGraph>(std::make_unique<NoCompGraph>());
  }
  if (key == "excellike") {
    return std::unique_ptr<DependencyGraph>(
        std::make_unique<ExcelLikeGraph>());
  }
  if (key == "calcgraph") {
    return std::unique_ptr<DependencyGraph>(std::make_unique<CalcGraph>());
  }
  if (key == "cellgraph") {
    return std::unique_ptr<DependencyGraph>(std::make_unique<CellGraph>());
  }
  if (key == "antifreeze") {
    return std::unique_ptr<DependencyGraph>(
        std::make_unique<AntifreezeGraph>());
  }
  return Status::InvalidArgument("unknown graph backend '" +
                                 std::string(backend) + "'");
}

WorkbookSession::WorkbookSession(std::string name, Sheet sheet,
                                 std::unique_ptr<DependencyGraph> graph,
                                 ServiceMetrics* metrics)
    : name_(std::move(name)),
      sheet_(std::move(sheet)),
      graph_(std::move(graph)),
      engine_(&sheet_, graph_.get()),
      metrics_(metrics),
      serial_(session_serial_counter.fetch_add(1) + 1) {
  sheet_.set_name(name_);
}

Status WorkbookSession::LogToWal(std::span<const Edit> edits,
                                 GroupCommitTicket* ticket) {
  if (edits.empty()) return Status::OK();
  if (wal_ == nullptr) {
    if (wal_path_.empty()) return Status::OK();  // WAL disabled.
    // Lazy creation: the header records the CURRENT bound path (so
    // recovery knows which snapshot these records extend) and the graph
    // backend (so recovery rebuilds the same implementation).
    auto wal = WriteAheadLog::Create(wal_path_, wal_options_,
                                     {bound_path_, backend_key_});
    if (!wal.ok()) return wal.status();
    wal_ = std::move(*wal);
  }
  uint64_t before = wal_->bytes();
  TACO_RETURN_IF_ERROR(wal_->Append(edits, ticket));
  wal_live_records_ += 1;
  if (metrics_ != nullptr) {
    metrics_->storage().wal_records.fetch_add(1);
    metrics_->storage().wal_bytes.fetch_add(wal_->bytes() - before);
  }
  return Status::OK();
}

template <typename Fn>
Result<RecalcResult> WorkbookSession::Mutate(ServiceOp op,
                                             std::span<const Edit> edits,
                                             Fn&& fn) {
  auto start = SteadyNow();
  op_epoch_.fetch_add(1);
  // Phase timings for the trace span. Lock wait is measured explicitly
  // (queueing behind another writer is a real, reportable phase);
  // find/eval come from the recalc outcome, fsync from the WAL handle.
  uint64_t lock_wait_ns = 0;
  uint64_t publish_ns = 0;
  uint64_t wal_fsync_ns = 0;
  // Group commit: the append happens under mu_, but the durability wait
  // happens on this ticket AFTER mu_ is released, so other writers of
  // this session can get their records into the same flush round.
  GroupCommitTicket wal_ticket;
  uint64_t wal_epoch = 0;
  // A failed batch may still have applied (and recalculated) the edits
  // before the failing one — batches are not atomic — and that work must
  // show up in the session counters and metrics, not vanish with the
  // error. Single edits apply nothing on failure (partial stays zero).
  RecalcResult partial;
  Result<RecalcResult> result = [&]() -> Result<RecalcResult> {
    auto lock_start = SteadyNow();
    std::lock_guard<std::mutex> lock(mu_);
    lock_wait_ns = NsSince(lock_start);
    if (wal_failed_) {
      // An earlier append failed, so the log is missing acknowledged
      // edits. Accepting more would widen the gap silently; refuse until
      // a CHECKPOINT folds the unlogged state into a snapshot.
      return Status::DataLoss(
          "session '" + name_ +
          "' has edits the WAL could not record; mutations are refused "
          "until a successful CHECKPOINT re-establishes durability");
    }
    Result<RecalcResult> r = fn(&partial);
    const RecalcResult& outcome = r.ok() ? r.value() : partial;
    if (r.ok() || outcome.edits_applied > 0) ops_.fetch_add(1);
    // Only actual edits make the session dirty — a successful empty
    // batch must not force a pointless save.
    if (outcome.edits_applied > 0) {
      dirty_ = true;
      edits_ += outcome.edits_applied;
      recalc_passes_ += outcome.recalc_passes;
      dirty_cells_ += outcome.dirty_cells;
      waves_ += outcome.waves;
      max_wave_cells_ = std::max(max_wave_cells_, outcome.max_wave_cells);
      cells_skipped_ += outcome.cells_skipped_cutoff;
      // Durability before acknowledgement: the prefix of `edits` that
      // actually applied is logged before the result leaves the lock. A
      // batch that failed midway logs exactly its applied prefix, so
      // recovery replays what this session's state really contains.
      size_t applied = std::min<size_t>(outcome.edits_applied, edits.size());
      Status logged = LogToWal(edits.subspan(0, applied), &wal_ticket);
      // Timing is harvested only from a SUCCESSFUL append: a failed or
      // partial one must not attribute stale fsync time to this span.
      if (logged.ok() && wal_ != nullptr) wal_fsync_ns = wal_->last_sync_ns();
      // Publish the post-commit version even when logging failed: the
      // in-memory state DID change, and readers must see committed
      // state, not the pre-edit version of a sheet that moved on.
      auto publish_start = SteadyNow();
      PublishVersion(edits.subspan(0, applied), outcome);
      publish_ns = NsSince(publish_start);
      if (!logged.ok()) {
        // Applied in memory but not durable: the client must see an
        // error, not an acknowledgement the WAL cannot back — and the
        // session latches wal_failed_ so the gap cannot widen.
        wal_failed_ = true;
        return Status(logged.code(),
                      "edit applied but not logged: " + logged.message());
      }
      wal_epoch = checkpoint_epoch_;
    }
    return r;
  }();
  if (wal_ticket.armed()) {
    // The group-commit durability wait: mu_ is released, so concurrent
    // writers append behind the committer while this edit waits its
    // round. The ack below never outruns the flush — same contract as
    // the inline fsync, shared across every waiter of the round.
    auto wait_start = SteadyNow();
    Status flushed = wal_ticket.Wait();
    wal_fsync_ns = NsSince(wait_start);
    if (!flushed.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (checkpoint_epoch_ == wal_epoch) {
        // The flush failed and no checkpoint intervened: the applied
        // edit exists only in memory. Latch, and turn an OK outcome
        // into the same applied-but-not-logged error the inline path
        // reports (a failed batch keeps its own error; the latch still
        // guards the gap).
        wal_failed_ = true;
        if (result.ok()) {
          result = Status(flushed.code(), "edit applied but not logged: " +
                                              flushed.message());
        }
      }
      // Epoch moved: a successful checkpoint folded the edit into its
      // snapshot before the flush failed — the ack is backed by disk.
    }
  }
  if (metrics_ != nullptr) {
    const RecalcResult* outcome =
        result.ok() ? &result.value()
                    : (partial.edits_applied > 0 ? &partial : nullptr);
    uint64_t total_ns = NsSince(start);
    metrics_->Record(op, total_ns, result.ok(), outcome);

    obs::TraceSpan span;
    span.rid = obs::CurrentRid();
    span.op = ServiceOpName(op);
    span.session = name_;
    span.detail = MutationDetail(op, edits);
    span.ok = result.ok();
    span.total_ns = total_ns;
    span.lock_wait_ns = lock_wait_ns;
    span.publish_ns = publish_ns;
    span.wal_fsync_ns = wal_fsync_ns;
    if (outcome != nullptr) {
      span.find_dependents_ns = outcome->find_dependents_ns;
      span.eval_ns = outcome->eval_ns;
      span.dirty_cells = outcome->dirty_cells;
      span.waves = outcome->waves;
    }
    // The remainder: edit application, graph mutation, counter updates,
    // and the return path. Clamped — phases are measured independently
    // of the total, so rounding can put their sum a hair over it.
    uint64_t accounted = span.lock_wait_ns + span.find_dependents_ns +
                         span.eval_ns + span.publish_ns + span.wal_fsync_ns;
    span.respond_ns = total_ns > accounted ? total_ns - accounted : 0;

    if (logger_ != nullptr) {
      // The slow-op log event joins the trace span (same rid) so an
      // operator can pivot from either record to the other.
      uint64_t threshold = metrics_->trace().slow_threshold_ns();
      if (threshold > 0 && total_ns >= threshold) {
        logger_->Log(obs::LogLevel::kWarn, "op.slow",
                     {{"op", span.op},
                      {"session", name_},
                      {"detail", span.detail},
                      {"ok", span.ok},
                      {"total_us", total_ns / 1000},
                      {"dirty", span.dirty_cells},
                      {"waves", span.waves}});
      } else if (logger_->enabled(obs::LogLevel::kDebug)) {
        // Per-mutation debug event: the logging-overhead bench drives
        // this path; production sinks run at info and never build it.
        logger_->Log(obs::LogLevel::kDebug, "op.apply",
                     {{"op", span.op},
                      {"session", name_},
                      {"detail", span.detail},
                      {"ok", span.ok},
                      {"total_us", total_ns / 1000},
                      {"dirty", span.dirty_cells}});
      }
    }
    metrics_->trace().Record(std::move(span));
  }
  return result;
}

Result<RecalcResult> WorkbookSession::SetNumber(const Cell& cell,
                                                double value) {
  Edit edit = Edit::SetNumber(cell, value);
  return Mutate(ServiceOp::kSet, {&edit, 1}, [&](RecalcResult*) {
    return engine_.SetNumber(cell, value);
  });
}

Result<RecalcResult> WorkbookSession::SetText(const Cell& cell,
                                              std::string value) {
  Edit edit = Edit::SetText(cell, value);
  return Mutate(ServiceOp::kSet, {&edit, 1}, [&](RecalcResult*) {
    return engine_.SetText(cell, std::move(value));
  });
}

Result<RecalcResult> WorkbookSession::SetFormula(const Cell& cell,
                                                 std::string_view text) {
  Edit edit = Edit::SetFormula(cell, std::string(text));
  return Mutate(ServiceOp::kFormula, {&edit, 1}, [&](RecalcResult*) {
    return engine_.SetFormula(cell, text);
  });
}

Result<RecalcResult> WorkbookSession::ClearRange(const Range& range) {
  Edit edit = Edit::ClearRange(range);
  return Mutate(ServiceOp::kClear, {&edit, 1}, [&](RecalcResult*) {
    return engine_.ClearRange(range);
  });
}

Result<RecalcResult> WorkbookSession::ApplyBatch(const EditBatch& batch,
                                                 RecalcResult* partial) {
  return Mutate(ServiceOp::kBatch, batch, [&](RecalcResult* inner) {
    Result<RecalcResult> r = engine_.ApplyBatch(batch, inner);
    if (partial != nullptr) *partial = *inner;
    return r;
  });
}

RecalcEngine::ExplainInfo WorkbookSession::Explain(const Range& target) {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.Explain(target);
}

void WorkbookSession::EnableParallelRecalc(RecalcExecutor* executor) {
  std::lock_guard<std::mutex> lock(mu_);
  executor_ = executor;
  engine_.set_executor(executor);
  if (executor != nullptr) engine_.set_mode(RecalcMode::kParallel);
}

Status WorkbookSession::SetRecalcMode(RecalcMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode == RecalcMode::kParallel && executor_ == nullptr) {
    return Status::InvalidArgument(
        "session '" + name_ +
        "' has no recalc executor (service started without recalc "
        "threads); parallel mode is unavailable");
  }
  engine_.set_mode(mode);
  return Status::OK();
}

RecalcMode WorkbookSession::recalc_mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.mode();
}

void WorkbookSession::SetCutoff(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  engine_.set_cutoff(enabled);
}

bool WorkbookSession::cutoff() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.cutoff();
}

void WorkbookSession::PublishVersion(std::span<const Edit> applied,
                                     const RecalcResult& outcome) {
  if (!versioned_reads_) return;
  std::vector<Range> touched = outcome.dirty;
  touched.reserve(touched.size() + applied.size());
  for (const Edit& edit : applied) {
    touched.push_back(edit.kind == Edit::Kind::kClearRange ? edit.range
                                                           : Range(edit.cell));
  }
  ++versions_published_;
  auto version = engine_.PublishVersion(touched);
  uint64_t id = version->id();
  published_.store(std::move(version), std::memory_order_release);
  // The id is stored AFTER the pointer: a reader that sees the new id
  // and misses its thread-local cache loads published_ and gets this
  // version or a newer one, never an older one.
  published_id_.store(id, std::memory_order_release);
}

const ValueVersion* WorkbookSession::AcquireVersion() {
  uint64_t id = published_id_.load(std::memory_order_acquire);
  if (id == 0) return nullptr;
  TlsVersionCache& cache = tls_version_cache;
  if (cache.session_serial == serial_ && cache.id == id) {
    return cache.version.get();
  }
  auto version = published_.load(std::memory_order_acquire);
  if (version == nullptr) return nullptr;  // Raced with a disable.
  cache.session_serial = serial_;
  cache.id = version->id();
  cache.version = std::move(version);
  return cache.version.get();
}

void WorkbookSession::EnableVersionedReads(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  versioned_reads_ = enabled;
  if (!enabled) {
    // Id first: a reader seeing 0 falls back to the lock without ever
    // touching published_. Stale thread-local caches revalidate against
    // the id, so they go cold with it.
    published_id_.store(0, std::memory_order_release);
    published_.store(nullptr, std::memory_order_release);
  }
}

Value WorkbookSession::GetValue(const Cell& cell) {
  auto start = SteadyNow();
  Value value;
  if (auto version = AcquireVersion()) {
    // The lock-free path: reads of an immutable chain. No evaluator-
    // cache mutation, no waiting behind a recalc.
    value = version->Lookup(cell);
    reads_versioned_[ThreadReadShard() % kReadCountShards].v.fetch_add(
        1, std::memory_order_relaxed);
  } else {
    op_epoch_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    value = engine_.GetValue(cell);
    reads_locked_.fetch_add(1, std::memory_order_relaxed);
  }
  if (metrics_ != nullptr) {
    // Error values (out-of-bounds reads, #CYCLE! and friends) count as
    // errors, so the STATS error column reflects what clients saw.
    metrics_->Record(ServiceOp::kGet, NsSince(start),
                     /*ok=*/!value.is_error());
  }
  return value;
}

RangeSnapshot WorkbookSession::GetRange(const Range& range) {
  auto start = SteadyNow();
  RangeSnapshot snapshot;
  bool any_error = false;
  auto append = [&](const Cell& cell, Value value) {
    if (value.is_blank()) return;
    if (value.is_error()) any_error = true;
    snapshot.values.emplace_back(cell, std::move(value));
  };
  if (auto version = AcquireVersion()) {
    // Every cell resolves against ONE version: a concurrent commit
    // publishes a new pointer but never mutates this one, so the values
    // below are a consistent cut even mid-recalc.
    snapshot.version = version->id();
    for (const Cell& cell : EnumerateCells(range)) {
      append(cell, version->Lookup(cell));
    }
    reads_versioned_[ThreadReadShard() % kReadCountShards].v.fetch_add(
        1, std::memory_order_relaxed);
  } else {
    op_epoch_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);  // One hold for the whole range.
    for (const Cell& cell : EnumerateCells(range)) {
      append(cell, engine_.GetValue(cell));
    }
    reads_locked_.fetch_add(1, std::memory_order_relaxed);
  }
  if (metrics_ != nullptr) {
    metrics_->Record(ServiceOp::kGetRange, NsSince(start),
                     /*ok=*/!any_error);
  }
  return snapshot;
}

std::string WorkbookSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteSheetText(sheet_);
}

void WorkbookSession::ConfigureStorage(StorageEngine* engine) {
  std::lock_guard<std::mutex> lock(mu_);
  storage_ = engine;
}

void WorkbookSession::ArmWal(std::string wal_path, WalOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_path_ = std::move(wal_path);
  wal_options_ = options;
}

void WorkbookSession::AdoptWal(std::unique_ptr<WriteAheadLog> wal,
                               const WalRecovery& recovery) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_path_ = wal->path();
  wal_ = std::move(wal);
  wal_live_records_ = recovery.records;
  recovered_records_ = recovery.records;
  // Replayed records postdate the snapshot: until the next checkpoint
  // folds them in, this session has state only the WAL holds.
  if (recovery.records > 0) dirty_ = true;
}

Status WorkbookSession::Save(const std::string& path, ServiceOp op) {
  auto start = SteadyNow();
  Status status = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    std::string target = path.empty() ? bound_path_ : path;
    if (target.empty()) {
      return Status::InvalidArgument("session '" + name_ +
                                     "' has no bound path; pass one to SAVE");
    }
    Status s = storage_ != nullptr
                   ? storage_->SaveSnapshot(sheet_, target, {backend_key_})
                   : SaveSheetFile(sheet_, target);
    if (!s.ok()) return s;
    // Rotate the WAL: its records are now folded into the snapshot, and
    // the fresh header names it so recovery starts from the right base.
    // A failed rotation is surfaced as the checkpoint's error — and
    // only a FULLY successful checkpoint updates the session state, so
    // STORAGE never reports clean-with-live-records. It is NOT a
    // lost-data state either way: the old log simply replays onto the
    // OLD snapshot path it names, reproducing the acknowledged state.
    if (wal_ != nullptr) {
      TACO_RETURN_IF_ERROR(wal_->Rotate({target, backend_key_}));
      wal_live_records_ = 0;
    } else if (!wal_path_.empty()) {
      // Nothing logged yet, but a stale file from a previous incarnation
      // may exist (e.g. recovery was skipped by a LOAD); re-point it.
      auto wal = WriteAheadLog::Create(wal_path_, wal_options_,
                                       {target, backend_key_});
      if (!wal.ok()) return wal.status();
      wal_ = std::move(*wal);
      wal_live_records_ = 0;
    }
    bound_path_ = target;
    dirty_ = false;
    // A full checkpoint re-establishes the recovery contract: the new
    // snapshot contains every in-memory edit (logged or not) and the
    // rotated log extends it, so the data-loss latch can clear. The
    // epoch bump tells racing group-flush waiters their edit is safe in
    // this snapshot even if their flush comes back failed.
    wal_failed_ = false;
    ++checkpoint_epoch_;
    if (metrics_ != nullptr) metrics_->storage().checkpoints.fetch_add(1);
    return Status::OK();
  }();
  if (metrics_ != nullptr) {
    metrics_->Record(op, NsSince(start), status.ok());
  }
  if (logger_ != nullptr) {
    if (status.ok()) {
      logger_->Log(obs::LogLevel::kInfo, "session.checkpoint",
                   {{"session", name_},
                    {"op", ServiceOpName(op)},
                    {"path", bound_path()}});
    } else {
      logger_->Log(obs::LogLevel::kError, "session.checkpoint_failed",
                   {{"session", name_},
                    {"op", ServiceOpName(op)},
                    {"error", status.message()}});
    }
  }
  return status;
}

std::string WorkbookSession::bound_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_path_;
}

void WorkbookSession::BindPath(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  bound_path_ = std::move(path);
}

SessionStats WorkbookSession::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats stats;
  stats.name = name_;
  stats.backend = graph_->Name();
  stats.path = bound_path_;
  stats.cells = sheet_.cell_count();
  stats.formula_cells = sheet_.formula_cell_count();
  stats.graph_vertices = graph_->NumVertices();
  stats.graph_edges = graph_->NumEdges();
  // Mutations count into ops_ directly; reads are folded in from their
  // own counters so the read path never touches a second shared line.
  uint64_t reads_versioned = 0;
  for (const PaddedCount& shard : reads_versioned_) {
    reads_versioned += shard.v.load(std::memory_order_relaxed);
  }
  stats.ops = ops_.load(std::memory_order_relaxed) + reads_versioned +
              reads_locked_.load(std::memory_order_relaxed);
  stats.edits = edits_;
  stats.recalc_passes = recalc_passes_;
  stats.dirty_cells = dirty_cells_;
  stats.dirty = dirty_;
  stats.recalc_mode = engine_.mode();
  stats.waves = waves_;
  stats.max_wave_cells = max_wave_cells_;
  stats.cutoff = engine_.cutoff();
  stats.cells_skipped = cells_skipped_;
  stats.storage = storage_ != nullptr ? std::string(storage_->name()) : "text";
  stats.wal_path = wal_path_;
  stats.wal_records = wal_live_records_;
  stats.wal_bytes = wal_ != nullptr ? wal_->bytes() : 0;
  stats.recovered_records = recovered_records_;
  stats.wal_failed = wal_failed_;
  auto version = published_.load(std::memory_order_acquire);
  stats.version = version != nullptr ? version->id() : 0;
  stats.version_chain_depth = version != nullptr ? version->depth() : 0;
  stats.versions_published = versions_published_;
  stats.reads_versioned = reads_versioned;
  stats.reads_locked = reads_locked_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace taco
