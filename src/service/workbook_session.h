// One live workbook: Sheet + pluggable DependencyGraph + RecalcEngine
// behind a per-session mutex, with an MVCC read path beside it.
//
// A session is the unit of isolation in the workbook service: every
// MUTATION takes the session lock, so concurrent writers of one
// workbook serialize (spreadsheet recalc is inherently ordered) while
// different workbooks proceed in parallel. READS do not queue behind
// that lock: each committed mutation publishes an immutable ValueVersion
// (under the lock, at the recalc commit point), and GetValue/GetRange
// serve from the latest published version via an atomic shared_ptr load
// — no mutex, no evaluator-cache mutation, and never a torn mid-recalc
// state. Only a never-published session (no mutation since creation or
// reload) falls back to the locked read path. Sessions never share
// mutable state with each other; the only cross-session object is the
// metrics sink, which is internally synchronized.

#ifndef TACO_SERVICE_WORKBOOK_SESSION_H_
#define TACO_SERVICE_WORKBOOK_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "eval/recalc.h"
#include "graph/dependency_graph.h"
#include "obs/log.h"
#include "service/metrics.h"
#include "sheet/sheet.h"
#include "store/storage_engine.h"
#include "store/wal.h"

namespace taco {

/// Point-in-time counters of one session (STATS <name>).
struct SessionStats {
  std::string name;
  std::string backend;        ///< Graph implementation name.
  std::string path;           ///< Bound file, empty when in-memory only.
  size_t cells = 0;
  size_t formula_cells = 0;
  size_t graph_vertices = 0;
  size_t graph_edges = 0;
  uint64_t ops = 0;           ///< Mutating + read operations served.
  uint64_t edits = 0;         ///< Individual edits applied (batch members).
  uint64_t recalc_passes = 0;
  uint64_t dirty_cells = 0;   ///< Cumulative dirty-set size.
  bool dirty = false;         ///< Unsaved changes since load/save.
  RecalcMode recalc_mode = RecalcMode::kSerial;
  uint64_t waves = 0;           ///< Cumulative scheduler waves executed.
  uint64_t max_wave_cells = 0;  ///< Largest wave any recalc produced.
  bool cutoff = false;          ///< Value-change cutoff enabled.
  uint64_t cells_skipped = 0;   ///< Cumulative cells pruned by cutoff.
  std::string storage;          ///< Storage engine name ("text"/"binary").
  std::string wal_path;         ///< WAL file, empty when WAL is disabled.
  uint64_t wal_records = 0;     ///< Records live in the WAL right now.
  uint64_t wal_bytes = 0;       ///< Current WAL file size.
  uint64_t recovered_records = 0;  ///< Records replayed at open.
  bool wal_failed = false;      ///< Sticky: a WAL append failed; mutations
                                ///  are refused until a CHECKPOINT.
  uint64_t version = 0;            ///< Latest published value version id.
  uint64_t version_chain_depth = 0;  ///< Delta links behind the latest
                                     ///  version (1 = full snapshot).
  uint64_t versions_published = 0; ///< Versions published over the lifetime.
  uint64_t reads_versioned = 0;    ///< Reads served lock-free.
  uint64_t reads_locked = 0;       ///< Reads served under the lock.
};

/// One consistent bulk read (GETRANGE): every value comes from a single
/// published version — or one hold of the session lock on the fallback
/// path — so the cells can never mix two commits.
struct RangeSnapshot {
  uint64_t version = 0;  ///< Version id served; 0 = locked fallback.
  std::vector<std::pair<Cell, Value>> values;  ///< Non-blank cells, in
                                               ///  EnumerateCells order.
};

/// A named spreadsheet session. Thread-safe; all public operations lock.
class WorkbookSession {
 public:
  /// Takes ownership of `graph`, which must already reflect `sheet`
  /// (callers use BuildGraphFromSheet; an empty sheet needs no build).
  /// `metrics` is optional and must outlive the session when given.
  WorkbookSession(std::string name, Sheet sheet,
                  std::unique_ptr<DependencyGraph> graph,
                  ServiceMetrics* metrics = nullptr);

  WorkbookSession(const WorkbookSession&) = delete;
  WorkbookSession& operator=(const WorkbookSession&) = delete;

  const std::string& name() const { return name_; }

  /// Mutations; each returns the merged recalc outcome.
  Result<RecalcResult> SetNumber(const Cell& cell, double value);
  Result<RecalcResult> SetText(const Cell& cell, std::string value);
  Result<RecalcResult> SetFormula(const Cell& cell, std::string_view text);
  Result<RecalcResult> ClearRange(const Range& range);

  /// Applies `batch` with ONE merged dirty-set computation and recalc
  /// (RecalcEngine::ApplyBatch) — N edits, one graph sweep. On failure,
  /// a non-null `partial` receives the outcome of the edits that did
  /// apply (batches are not atomic; see RecalcEngine::ApplyBatch).
  Result<RecalcResult> ApplyBatch(const EditBatch& batch,
                                  RecalcResult* partial = nullptr);

  /// The EXPLAIN dry run: what a mutation of `target` would dirty and
  /// how the active recalc path would schedule it. Takes the session
  /// lock (the graph must not move underneath the closure query) but
  /// mutates nothing — no WAL append, no version publish, no recalc.
  RecalcEngine::ExplainInfo Explain(const Range& target);

  /// The current value of one cell. Lock-free once a version has been
  /// published (every mutation publishes); the locked engine path serves
  /// only never-published sessions.
  Value GetValue(const Cell& cell);

  /// Every non-blank cell of `range`, read from ONE published version
  /// (or one hold of the lock before the first publication). The caller
  /// bounds the range area; this enumerates every cell of it.
  RangeSnapshot GetRange(const Range& range);

  /// Toggles the MVCC read path (default on). Turning it off drops the
  /// published version and stops publishing, so every read takes the
  /// lock — the pre-MVCC behavior, kept for benchmark baselines.
  void EnableVersionedReads(bool enabled);

  /// Plugs in the service's shared wave executor and switches the engine
  /// to parallel recalc. `executor` must outlive the session (the
  /// service owns both). Called by the service before the session is
  /// published; safe to call on a live session too (takes the lock).
  void EnableParallelRecalc(RecalcExecutor* executor);

  /// Switches the recalc path. Parallel mode requires an executor
  /// (EnableParallelRecalc / a service configured with recalc threads);
  /// without one this fails with FailedPrecondition-like InvalidArgument
  /// rather than silently staying serial.
  Status SetRecalcMode(RecalcMode mode);
  RecalcMode recalc_mode() const;

  /// Toggles value-change cutoff recalculation (default off; see
  /// eval/cutoff.h). Works in both serial and parallel modes and keeps
  /// results cell-for-cell identical to full recalc.
  void SetCutoff(bool enabled);
  bool cutoff() const;

  /// Serializes the sheet in .tsheet format.
  std::string Snapshot() const;

  /// Plugs in the service's shared storage engine; `engine` must outlive
  /// the session. Without one, Save falls back to the text format.
  void ConfigureStorage(StorageEngine* engine);

  /// Arms write-ahead logging: the log file is created lazily (its
  /// header recording the bound path of that moment) on the first
  /// mutation, so fresh sessions pay no I/O until they change. Called by
  /// the service before the session is published.
  void ArmWal(std::string wal_path, WalOptions options);

  /// Adopts an already-open log (the recovery path). When `recovery`
  /// replayed records, the session starts dirty: its snapshot does not
  /// yet contain those edits.
  void AdoptWal(std::unique_ptr<WriteAheadLog> wal,
                const WalRecovery& recovery);

  /// Saves to `path` (or the bound path when empty) and clears the dirty
  /// flag. Binding: a successful save remembers `path` for next time.
  /// With storage configured this is a full checkpoint: snapshot via
  /// temp-then-rename+fsync, then WAL rotation (the fresh log's header
  /// records the snapshot path), so recovery never replays edits the
  /// snapshot already holds.
  /// `op` selects the metrics row this save records under — SAVE and
  /// CHECKPOINT are the same code path but distinct operator actions,
  /// and each must be visible in its own STATS/exposition row.
  Status Save(const std::string& path = "", ServiceOp op = ServiceOp::kSave);

  /// Alias of Save under its durability name (the CHECKPOINT verb).
  Status Checkpoint(const std::string& path = "") {
    return Save(path, ServiceOp::kCheckpoint);
  }

  /// File this session was loaded from / last saved to ("" if none).
  std::string bound_path() const;

  /// Binds `path` without saving (used by LOAD right after reading it).
  void BindPath(std::string path);

  SessionStats Stats() const;

  /// LRU bookkeeping for the service's resident-set bound.
  uint64_t last_access() const { return last_access_.load(); }
  void Touch(uint64_t tick) { last_access_.store(tick); }

  /// Monotonic count of operations served; the evictor compares epochs
  /// around save-and-park to detect a session that became hot again.
  uint64_t op_epoch() const { return op_epoch_.load(); }

  /// The MakeGraphBackend key this session was created with. Set once by
  /// the service before the session is published; parking remembers it
  /// so a reload keeps the same graph implementation.
  const std::string& backend_key() const { return backend_key_; }
  void set_backend_key(std::string key) { backend_key_ = std::move(key); }

  /// Attaches the service's structured logger (may be null). Like
  /// `metrics`, the pointer is read without the session lock on the
  /// mutation path, so it must be set before the session is published
  /// and must outlive the session.
  void set_logger(obs::Logger* logger) { logger_ = logger; }

 private:
  template <typename Fn>
  Result<RecalcResult> Mutate(ServiceOp op, std::span<const Edit> edits,
                              Fn&& fn);

  /// Publishes the post-commit ValueVersion covering the applied edits'
  /// rectangles plus the recalc's dirty ranges. Called under mu_, after
  /// the commit (serial or parallel — the wave barrier has passed), so
  /// the version readers acquire is always fully committed state.
  void PublishVersion(std::span<const Edit> applied,
                      const RecalcResult& outcome);

  /// The reader-side acquire: the latest published version, or null when
  /// the session has never published (or the MVCC path is disabled).
  /// Readers check the plain atomic `published_id_` first and reuse a
  /// thread-local cached shared_ptr when it is current, so the hot path
  /// touches no shared cache line at all — libstdc++'s atomic
  /// shared_ptr load takes a pooled spinlock plus two refcount RMWs,
  /// which under read fan-out costs more than the session mutex it was
  /// meant to replace. Returns a RAW pointer into that thread-local
  /// cache (pinned until this thread's next AcquireVersion call):
  /// returning the shared_ptr by value would put two refcount RMWs on
  /// the shared control block back on every read.
  const ValueVersion* AcquireVersion();

  /// Appends the acknowledged prefix of `edits` to the WAL (opening an
  /// armed log on first use). Called under mu_. A failure here surfaces
  /// to the client: the edit is applied in memory but NOT durable, and
  /// acknowledging it would break the recovery contract. Under group
  /// commit, `ticket` comes back armed and the durability wait happens
  /// on it AFTER mu_ is released, so concurrent mutations of this
  /// session can write their records while this one waits its flush.
  Status LogToWal(std::span<const Edit> edits, GroupCommitTicket* ticket);

  const std::string name_;
  mutable std::mutex mu_;
  Sheet sheet_;
  std::unique_ptr<DependencyGraph> graph_;
  RecalcEngine engine_;
  RecalcExecutor* executor_ = nullptr;  ///< Shared; owned by the service.
  StorageEngine* storage_ = nullptr;    ///< Shared; owned by the service.
  std::unique_ptr<WriteAheadLog> wal_;  ///< Open log; null until first use.
  std::string wal_path_;                ///< Armed path; empty = disabled.
  WalOptions wal_options_;
  uint64_t wal_live_records_ = 0;  ///< Records a crash would replay now.
  uint64_t recovered_records_ = 0;
  std::string bound_path_;
  bool dirty_ = false;
  /// Sticky data-loss latch: a WAL append failed, so in-memory state is
  /// ahead of the log. Further mutations are refused (kDataLoss) until a
  /// successful CHECKPOINT writes a snapshot that contains the unlogged
  /// edits and rotates the log.
  bool wal_failed_ = false;
  /// Bumped by every successful checkpoint (under mu_). A group-flush
  /// waiter re-checks it before latching wal_failed_: when a checkpoint
  /// raced in between the append and the failed flush, the snapshot
  /// already holds the edit — it IS durable, and latching (or erroring
  /// the ack) would report a loss that didn't happen.
  uint64_t checkpoint_epoch_ = 0;
  bool versioned_reads_ = true;
  uint64_t versions_published_ = 0;
  std::atomic<uint64_t> ops_{0};  ///< Mutations only; Stats() adds reads.
  uint64_t edits_ = 0;
  uint64_t recalc_passes_ = 0;
  uint64_t dirty_cells_ = 0;
  uint64_t waves_ = 0;
  uint64_t max_wave_cells_ = 0;
  uint64_t cells_skipped_ = 0;
  ServiceMetrics* metrics_;
  obs::Logger* logger_ = nullptr;  ///< Shared; owned by the caller.
  std::string backend_key_;
  std::atomic<uint64_t> last_access_{0};
  std::atomic<uint64_t> op_epoch_{0};
  /// The MVCC slot: writers release-store the freshly built version
  /// under mu_, then release-store its id into `published_id_`; readers
  /// check the id (one plain atomic load) and only touch the shared_ptr
  /// when their thread-local cache is stale. Id 0 = nothing published.
  std::atomic<std::shared_ptr<const ValueVersion>> published_;
  std::atomic<uint64_t> published_id_{0};
  /// Process-unique session identity for the thread-local version cache
  /// (a reused heap address must not revalidate a dead cache entry).
  const uint64_t serial_;
  /// Versioned-read count, sharded by thread (padded lines) — the only
  /// write the lock-free read path makes must not be a shared line N
  /// readers serialize on. The locked counter needs no shards: that
  /// path is mutex-serialized anyway.
  struct alignas(64) PaddedCount {
    std::atomic<uint64_t> v{0};
  };
  static constexpr size_t kReadCountShards = 8;
  PaddedCount reads_versioned_[kReadCountShards];
  std::atomic<uint64_t> reads_locked_{0};
};

/// Creates the graph backend selected by `backend` ("taco", "taco-inrow",
/// "nocomp", "excellike", "calcgraph", "cellgraph", "antifreeze");
/// case-insensitive. Fails with InvalidArgument on unknown names.
Result<std::unique_ptr<DependencyGraph>> MakeGraphBackend(
    std::string_view backend);

}  // namespace taco

#endif  // TACO_SERVICE_WORKBOOK_SESSION_H_
