// Service-level operation metrics.
//
// Every session operation records its wall-clock latency (including lock
// wait, so contention shows up) into a lock-free log-bucketed histogram —
// one per ServiceOp — so STATS and the Prometheus exposition can report
// p50/p95/p99/max, not just a mean that hides tail behavior. Mutating
// operations additionally record the recalc outcome: dirty-set size and
// FindDependents time — the quantity the paper's latency budget is about.
// A TraceRing holds the most recent per-command phase breakdowns.

#ifndef TACO_SERVICE_METRICS_H_
#define TACO_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "eval/recalc.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace taco {

/// The operations the service meters, one row of STATS each.
enum class ServiceOp : uint8_t {
  kOpen = 0,
  kLoad,
  kSave,
  kClose,
  kSet,       ///< SetNumber / SetText
  kFormula,
  kGet,
  kGetRange,  ///< Bulk versioned read (GETRANGE).
  kClear,
  kBatch,
  kRecalc,      ///< RECALC admin verb.
  kCheckpoint,  ///< CHECKPOINT admin verb (snapshot + WAL rotate).
  kStats,       ///< STATS admin verb.
  kStorage,     ///< STORAGE admin verb.
  kList,        ///< LIST admin verb.
  kMetrics,     ///< METRICS exposition verb (+ HTTP /metrics scrapes).
  kTrace,       ///< TRACE span-dump verb.
  kExplain,     ///< EXPLAIN recalc-plan dry-run verb.
  kOpCount,     ///< Sentinel; not an operation.
};

std::string_view ServiceOpName(ServiceOp op);

/// Latency + recalc aggregates for one ServiceOp. Latency figures are
/// derived from the op's histogram snapshot; quantiles interpolate
/// within log buckets (~26% bucket ratio).
struct OpStats {
  uint64_t count = 0;
  uint64_t errors = 0;
  double total_ms = 0;
  double max_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t dirty_cells = 0;           ///< Sum of per-op dirty-set sizes.
  uint64_t max_dirty_cells = 0;
  uint64_t recalculated = 0;
  uint64_t recalc_passes = 0;
  double find_dependents_ms = 0;
  double eval_ms = 0;                 ///< Re-evaluation phase time.
  uint64_t waves = 0;                 ///< Scheduler waves executed.
  uint64_t cells_skipped = 0;         ///< Cells pruned by cutoff recalc.

  double MeanMs() const { return count ? total_ms / double(count) : 0; }
};

/// Socket-transport counters, bumped lock-free by taco_net's SocketServer
/// and rendered on the service-wide STATS report. All zero when the
/// service only ever speaks stdin/stdout.
struct TransportCounters {
  std::atomic<uint64_t> accepted{0};      ///< Connections ever accepted.
  std::atomic<uint64_t> rejected{0};      ///< Refused over max-clients.
  std::atomic<int64_t> open{0};           ///< Currently attached clients.
  std::atomic<uint64_t> commands{0};      ///< Framed commands dispatched.
  std::atomic<uint64_t> oversized{0};     ///< Lines dropped for length.
  std::atomic<uint64_t> idle_closed{0};   ///< Closed by the idle timeout.
};

/// Storage-layer counters, bumped lock-free by sessions (WAL appends,
/// checkpoints) and the service (recoveries), rendered on the
/// service-wide STATS report. All zero when persistence is never used.
struct StorageCounters {
  std::atomic<uint64_t> checkpoints{0};        ///< Snapshot+rotate saves.
  std::atomic<uint64_t> wal_records{0};        ///< Records ever appended.
  std::atomic<uint64_t> wal_bytes{0};          ///< Bytes ever appended.
  std::atomic<uint64_t> recoveries{0};         ///< Sessions recovered.
  std::atomic<uint64_t> recovered_records{0};  ///< Records replayed.
};

/// Group-commit counters, bumped by the committer thread's flush
/// observer. `size_buckets` is a power-of-two histogram of appends per
/// flush (le 1,2,4,8,16,32,64,+Inf) — the direct measure of how much
/// coalescing the workload is getting. All zero without --group-commit.
struct WalGroupCounters {
  static constexpr size_t kSizeBuckets = 7;  ///< le 1,2,4,...,64; +Inf extra.
  std::atomic<uint64_t> flushes{0};          ///< Group fsync rounds.
  std::atomic<uint64_t> flush_failures{0};   ///< Rounds whose fsync failed.
  std::atomic<uint64_t> appends{0};          ///< Appends acked via groups.
  std::atomic<uint64_t> size_buckets[kSizeBuckets + 1]{};
};

/// Thread-safe metrics sink shared by every session of a service.
class ServiceMetrics {
 public:
  explicit ServiceMetrics(size_t trace_capacity = 256)
      : trace_(trace_capacity) {}

  /// Records one completed operation taking `elapsed_ns` wall-clock
  /// nanoseconds; `result` adds recalc aggregates for mutating ops (pass
  /// nullptr for reads / failed ops). The latency sample and error count
  /// go to lock-free per-op structures on EVERY path: the MVCC read path
  /// serves millions of ops/s across threads, and funneling them through
  /// mu_ would serialize the very path that exists to avoid a lock. Only
  /// the recalc aggregates (edit-rate, result != nullptr) take mu_.
  void Record(ServiceOp op, uint64_t elapsed_ns, bool ok,
              const RecalcResult* result = nullptr);

  /// Snapshot of one op's aggregates (quantiles from the histogram).
  OpStats Get(ServiceOp op) const;

  /// Merged histogram snapshot for one op, for exposition rendering.
  obs::HistogramSnapshot Histogram(ServiceOp op) const {
    return histograms_[static_cast<size_t>(op)].Snapshot();
  }

  /// Fixed-width text report, one line per op with traffic (for STATS).
  std::string Report() const;

  obs::TraceRing& trace() { return trace_; }
  const obs::TraceRing& trace() const { return trace_; }

  TransportCounters& transport() { return transport_; }
  const TransportCounters& transport() const { return transport_; }

  StorageCounters& storage() { return storage_; }
  const StorageCounters& storage() const { return storage_; }

  WalGroupCounters& wal_group() { return wal_group_; }
  const WalGroupCounters& wal_group() const { return wal_group_; }

  /// Records one group-commit flush round: `appends` records shared the
  /// fsync that took `flush_ns`. Lock-free (committer-thread hot path).
  void RecordGroupFlush(uint64_t appends, uint64_t flush_ns, bool ok) {
    wal_group_.flushes.fetch_add(1, std::memory_order_relaxed);
    if (!ok) wal_group_.flush_failures.fetch_add(1, std::memory_order_relaxed);
    wal_group_.appends.fetch_add(appends, std::memory_order_relaxed);
    size_t bucket = 0;
    while (bucket < WalGroupCounters::kSizeBuckets &&
           appends > (uint64_t{1} << bucket)) {
      ++bucket;
    }
    wal_group_.size_buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    wal_group_flush_.Record(flush_ns);
  }

  /// Merged flush-latency histogram snapshot (group fsync rounds).
  obs::HistogramSnapshot GroupFlushHistogram() const {
    return wal_group_flush_.Snapshot();
  }

 private:
  /// Per-op recalc aggregates (mutating ops only); latency lives in the
  /// histograms, never here.
  struct RecalcStats {
    uint64_t dirty_cells = 0;
    uint64_t max_dirty_cells = 0;
    uint64_t recalculated = 0;
    uint64_t recalc_passes = 0;
    double find_dependents_ms = 0;
    double eval_ms = 0;
    uint64_t waves = 0;
    uint64_t cells_skipped = 0;
  };

  static constexpr size_t kOps = static_cast<size_t>(ServiceOp::kOpCount);

  std::array<obs::LatencyHistogram, kOps> histograms_;
  std::array<std::atomic<uint64_t>, kOps> errors_{};
  mutable std::mutex mu_;
  std::array<RecalcStats, kOps> recalc_;
  obs::TraceRing trace_;
  TransportCounters transport_;
  StorageCounters storage_;
  WalGroupCounters wal_group_;
  obs::LatencyHistogram wal_group_flush_;  ///< Per-round fsync latency.
};

}  // namespace taco

#endif  // TACO_SERVICE_METRICS_H_
