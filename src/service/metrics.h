// Service-level operation metrics.
//
// Every session operation records its wall-clock latency (including lock
// wait, so contention shows up) and, for mutating operations, the recalc
// outcome: dirty-set size and FindDependents time — the quantity the
// paper's latency budget is about. STATS renders the aggregate report.

#ifndef TACO_SERVICE_METRICS_H_
#define TACO_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "eval/recalc.h"

namespace taco {

/// The operations the service meters, one row of STATS each.
enum class ServiceOp : uint8_t {
  kOpen = 0,
  kLoad,
  kSave,
  kClose,
  kSet,       ///< SetNumber / SetText
  kFormula,
  kGet,
  kGetRange,  ///< Bulk versioned read (GETRANGE).
  kClear,
  kBatch,
  kOpCount,   ///< Sentinel; not an operation.
};

std::string_view ServiceOpName(ServiceOp op);

/// Latency + recalc aggregates for one ServiceOp.
struct OpStats {
  uint64_t count = 0;
  uint64_t errors = 0;
  double total_ms = 0;
  double max_ms = 0;
  uint64_t dirty_cells = 0;           ///< Sum of per-op dirty-set sizes.
  uint64_t max_dirty_cells = 0;
  uint64_t recalculated = 0;
  uint64_t recalc_passes = 0;
  double find_dependents_ms = 0;
  double eval_ms = 0;                 ///< Re-evaluation phase time.
  uint64_t waves = 0;                 ///< Scheduler waves executed.

  double MeanMs() const { return count ? total_ms / double(count) : 0; }
};

/// Socket-transport counters, bumped lock-free by taco_net's SocketServer
/// and rendered on the service-wide STATS report. All zero when the
/// service only ever speaks stdin/stdout.
struct TransportCounters {
  std::atomic<uint64_t> accepted{0};      ///< Connections ever accepted.
  std::atomic<uint64_t> rejected{0};      ///< Refused over max-clients.
  std::atomic<int64_t> open{0};           ///< Currently attached clients.
  std::atomic<uint64_t> commands{0};      ///< Framed commands dispatched.
  std::atomic<uint64_t> oversized{0};     ///< Lines dropped for length.
  std::atomic<uint64_t> idle_closed{0};   ///< Closed by the idle timeout.
};

/// Storage-layer counters, bumped lock-free by sessions (WAL appends,
/// checkpoints) and the service (recoveries), rendered on the
/// service-wide STATS report. All zero when persistence is never used.
struct StorageCounters {
  std::atomic<uint64_t> checkpoints{0};        ///< Snapshot+rotate saves.
  std::atomic<uint64_t> wal_records{0};        ///< Records ever appended.
  std::atomic<uint64_t> wal_bytes{0};          ///< Bytes ever appended.
  std::atomic<uint64_t> recoveries{0};         ///< Sessions recovered.
  std::atomic<uint64_t> recovered_records{0};  ///< Records replayed.
};

/// Thread-safe metrics sink shared by every session of a service.
class ServiceMetrics {
 public:
  /// Records one completed operation; `result` adds recalc aggregates for
  /// mutating ops (pass nullptr for reads / failed ops). GET/GETRANGE
  /// records go to lock-free atomic counters: the MVCC read path serves
  /// millions of ops/s across threads, and funneling them through mu_
  /// would serialize the very path that exists to avoid a lock.
  void Record(ServiceOp op, double elapsed_ms, bool ok,
              const RecalcResult* result = nullptr);

  /// Snapshot of one op's aggregates (read ops merged in).
  OpStats Get(ServiceOp op) const;

  /// Fixed-width text report, one line per op with traffic (for STATS).
  std::string Report() const;

  TransportCounters& transport() { return transport_; }
  const TransportCounters& transport() const { return transport_; }

  StorageCounters& storage() { return storage_; }
  const StorageCounters& storage() const { return storage_; }

 private:
  /// Latency/error aggregates for one read op, all relaxed atomics
  /// (cross-counter consistency is not worth a read-path lock; Get()
  /// reassembles a close-enough OpStats). Time is kept in integer
  /// nanoseconds so accumulation is a fetch_add, not a CAS loop. The
  /// counters are SHARDED by thread (cache-line padded): N readers
  /// bumping one shared line would serialize on cache-line ownership at
  /// exactly the fan-out the lock-free path is built for.
  struct alignas(64) ReadShard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> total_ns{0};
    std::atomic<uint64_t> max_ns{0};
  };
  static constexpr size_t kReadShards = 16;  // Power of two.
  struct ReadCounters {
    ReadShard shards[kReadShards];
  };

  static bool IsReadOp(ServiceOp op) {
    return op == ServiceOp::kGet || op == ServiceOp::kGetRange;
  }
  ReadCounters& ReadSlot(ServiceOp op) {
    return reads_[op == ServiceOp::kGetRange ? 1 : 0];
  }
  const ReadCounters& ReadSlot(ServiceOp op) const {
    return reads_[op == ServiceOp::kGetRange ? 1 : 0];
  }

  mutable std::mutex mu_;
  std::array<OpStats, static_cast<size_t>(ServiceOp::kOpCount)> stats_;
  ReadCounters reads_[2];  ///< [0] = kGet, [1] = kGetRange.
  TransportCounters transport_;
  StorageCounters storage_;
};

}  // namespace taco

#endif  // TACO_SERVICE_METRICS_H_
