#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace taco {

std::string_view ServiceOpName(ServiceOp op) {
  switch (op) {
    case ServiceOp::kOpen:    return "OPEN";
    case ServiceOp::kLoad:    return "LOAD";
    case ServiceOp::kSave:    return "SAVE";
    case ServiceOp::kClose:   return "CLOSE";
    case ServiceOp::kSet:     return "SET";
    case ServiceOp::kFormula: return "FORMULA";
    case ServiceOp::kGet:     return "GET";
    case ServiceOp::kClear:   return "CLEAR";
    case ServiceOp::kBatch:   return "BATCH";
    case ServiceOp::kOpCount: break;
  }
  return "?";
}

void ServiceMetrics::Record(ServiceOp op, double elapsed_ms, bool ok,
                            const RecalcResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[static_cast<size_t>(op)];
  ++s.count;
  if (!ok) ++s.errors;
  s.total_ms += elapsed_ms;
  s.max_ms = std::max(s.max_ms, elapsed_ms);
  if (result != nullptr) {
    s.dirty_cells += result->dirty_cells;
    s.max_dirty_cells = std::max(s.max_dirty_cells, result->dirty_cells);
    s.recalculated += result->recalculated;
    s.recalc_passes += result->recalc_passes;
    s.find_dependents_ms += result->find_dependents_ms;
    s.eval_ms += result->eval_ms;
    s.waves += result->waves;
  }
}

OpStats ServiceMetrics::Get(ServiceOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_[static_cast<size_t>(op)];
}

std::string ServiceMetrics::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      "op       count errors  mean_ms   max_ms dirty_cells max_dirty "
      "recalced passes finddep_ms    eval_ms  waves\n";
  char line[224];
  for (size_t i = 0; i < stats_.size(); ++i) {
    const OpStats& s = stats_[i];
    if (s.count == 0) continue;
    std::snprintf(
        line, sizeof(line),
        "%-8s %5llu %6llu %8.3f %8.3f %11llu %9llu %8llu %6llu %10.3f "
        "%10.3f %6llu\n",
        std::string(ServiceOpName(static_cast<ServiceOp>(i))).c_str(),
        static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.errors),
        s.count ? s.total_ms / double(s.count) : 0.0, s.max_ms,
        static_cast<unsigned long long>(s.dirty_cells),
        static_cast<unsigned long long>(s.max_dirty_cells),
        static_cast<unsigned long long>(s.recalculated),
        static_cast<unsigned long long>(s.recalc_passes),
        s.find_dependents_ms, s.eval_ms,
        static_cast<unsigned long long>(s.waves));
    out += line;
  }
  return out;
}

}  // namespace taco
