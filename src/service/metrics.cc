#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace taco {

std::string_view ServiceOpName(ServiceOp op) {
  switch (op) {
    case ServiceOp::kOpen:       return "OPEN";
    case ServiceOp::kLoad:       return "LOAD";
    case ServiceOp::kSave:       return "SAVE";
    case ServiceOp::kClose:      return "CLOSE";
    case ServiceOp::kSet:        return "SET";
    case ServiceOp::kFormula:    return "FORMULA";
    case ServiceOp::kGet:        return "GET";
    case ServiceOp::kGetRange:   return "GETRANGE";
    case ServiceOp::kClear:      return "CLEAR";
    case ServiceOp::kBatch:      return "BATCH";
    case ServiceOp::kRecalc:     return "RECALC";
    case ServiceOp::kCheckpoint: return "CHECKPOINT";
    case ServiceOp::kStats:      return "STATS";
    case ServiceOp::kStorage:    return "STORAGE";
    case ServiceOp::kList:       return "LIST";
    case ServiceOp::kMetrics:    return "METRICS";
    case ServiceOp::kTrace:      return "TRACE";
    case ServiceOp::kExplain:    return "EXPLAIN";
    case ServiceOp::kOpCount: break;
  }
  return "?";
}

void ServiceMetrics::Record(ServiceOp op, uint64_t elapsed_ns, bool ok,
                            const RecalcResult* result) {
  size_t i = static_cast<size_t>(op);
  histograms_[i].Record(elapsed_ns);
  if (!ok) errors_[i].fetch_add(1, std::memory_order_relaxed);
  if (result == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  RecalcStats& s = recalc_[i];
  s.dirty_cells += result->dirty_cells;
  s.max_dirty_cells = std::max(s.max_dirty_cells, result->dirty_cells);
  s.recalculated += result->recalculated;
  s.recalc_passes += result->recalc_passes;
  s.find_dependents_ms += result->find_dependents_ms;
  s.eval_ms += result->eval_ms;
  s.waves += result->waves;
  s.cells_skipped += result->cells_skipped_cutoff;
}

OpStats ServiceMetrics::Get(ServiceOp op) const {
  size_t i = static_cast<size_t>(op);
  obs::HistogramSnapshot h = histograms_[i].Snapshot();
  OpStats s;
  s.count = h.count;
  s.errors = errors_[i].load(std::memory_order_relaxed);
  s.total_ms = static_cast<double>(h.sum_ns) / 1e6;
  s.max_ms = static_cast<double>(h.max_ns) / 1e6;
  s.p50_ms = h.QuantileNs(0.50) / 1e6;
  s.p95_ms = h.QuantileNs(0.95) / 1e6;
  s.p99_ms = h.QuantileNs(0.99) / 1e6;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const RecalcStats& r = recalc_[i];
    s.dirty_cells = r.dirty_cells;
    s.max_dirty_cells = r.max_dirty_cells;
    s.recalculated = r.recalculated;
    s.recalc_passes = r.recalc_passes;
    s.find_dependents_ms = r.find_dependents_ms;
    s.eval_ms = r.eval_ms;
    s.waves = r.waves;
    s.cells_skipped = r.cells_skipped;
  }
  return s;
}

std::string ServiceMetrics::Report() const {
  std::string out =
      "op         count errors  mean_ms   p50_ms   p95_ms   p99_ms   max_ms "
      "dirty_cells max_dirty recalced passes finddep_ms    eval_ms  waves "
      "skipped\n";
  char line[320];
  for (size_t i = 0; i < kOps; ++i) {
    OpStats s = Get(static_cast<ServiceOp>(i));
    if (s.count == 0) continue;
    std::snprintf(
        line, sizeof(line),
        "%-10s %5llu %6llu %8.3f %8.3f %8.3f %8.3f %8.3f %11llu %9llu "
        "%8llu %6llu %10.3f %10.3f %6llu %7llu\n",
        std::string(ServiceOpName(static_cast<ServiceOp>(i))).c_str(),
        static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.errors), s.MeanMs(), s.p50_ms,
        s.p95_ms, s.p99_ms, s.max_ms,
        static_cast<unsigned long long>(s.dirty_cells),
        static_cast<unsigned long long>(s.max_dirty_cells),
        static_cast<unsigned long long>(s.recalculated),
        static_cast<unsigned long long>(s.recalc_passes),
        s.find_dependents_ms, s.eval_ms,
        static_cast<unsigned long long>(s.waves),
        static_cast<unsigned long long>(s.cells_skipped));
    out += line;
  }
  return out;
}

}  // namespace taco
