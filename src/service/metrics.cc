#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace taco {
namespace {

/// Stable per-thread shard index: assigned round-robin on first use, so
/// concurrent readers land on distinct (padded) counter lines.
unsigned ThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

std::string_view ServiceOpName(ServiceOp op) {
  switch (op) {
    case ServiceOp::kOpen:    return "OPEN";
    case ServiceOp::kLoad:    return "LOAD";
    case ServiceOp::kSave:    return "SAVE";
    case ServiceOp::kClose:   return "CLOSE";
    case ServiceOp::kSet:     return "SET";
    case ServiceOp::kFormula: return "FORMULA";
    case ServiceOp::kGet:     return "GET";
    case ServiceOp::kGetRange: return "GETRANGE";
    case ServiceOp::kClear:   return "CLEAR";
    case ServiceOp::kBatch:   return "BATCH";
    case ServiceOp::kOpCount: break;
  }
  return "?";
}

void ServiceMetrics::Record(ServiceOp op, double elapsed_ms, bool ok,
                            const RecalcResult* result) {
  if (IsReadOp(op) && result == nullptr) {
    ReadShard& r = ReadSlot(op).shards[ThreadShard() % kReadShards];
    r.count.fetch_add(1, std::memory_order_relaxed);
    if (!ok) r.errors.fetch_add(1, std::memory_order_relaxed);
    auto ns = static_cast<uint64_t>(elapsed_ms * 1e6);
    r.total_ns.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = r.max_ns.load(std::memory_order_relaxed);
    while (prev < ns && !r.max_ns.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[static_cast<size_t>(op)];
  ++s.count;
  if (!ok) ++s.errors;
  s.total_ms += elapsed_ms;
  s.max_ms = std::max(s.max_ms, elapsed_ms);
  if (result != nullptr) {
    s.dirty_cells += result->dirty_cells;
    s.max_dirty_cells = std::max(s.max_dirty_cells, result->dirty_cells);
    s.recalculated += result->recalculated;
    s.recalc_passes += result->recalc_passes;
    s.find_dependents_ms += result->find_dependents_ms;
    s.eval_ms += result->eval_ms;
    s.waves += result->waves;
  }
}

OpStats ServiceMetrics::Get(ServiceOp op) const {
  OpStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_[static_cast<size_t>(op)];
  }
  if (IsReadOp(op)) {
    for (const ReadShard& r : ReadSlot(op).shards) {
      s.count += r.count.load(std::memory_order_relaxed);
      s.errors += r.errors.load(std::memory_order_relaxed);
      s.total_ms += double(r.total_ns.load(std::memory_order_relaxed)) / 1e6;
      s.max_ms = std::max(
          s.max_ms, double(r.max_ns.load(std::memory_order_relaxed)) / 1e6);
    }
  }
  return s;
}

std::string ServiceMetrics::Report() const {
  std::string out =
      "op       count errors  mean_ms   max_ms dirty_cells max_dirty "
      "recalced passes finddep_ms    eval_ms  waves\n";
  char line[224];
  for (size_t i = 0; i < stats_.size(); ++i) {
    OpStats s = Get(static_cast<ServiceOp>(i));
    if (s.count == 0) continue;
    std::snprintf(
        line, sizeof(line),
        "%-8s %5llu %6llu %8.3f %8.3f %11llu %9llu %8llu %6llu %10.3f "
        "%10.3f %6llu\n",
        std::string(ServiceOpName(static_cast<ServiceOp>(i))).c_str(),
        static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.errors),
        s.count ? s.total_ms / double(s.count) : 0.0, s.max_ms,
        static_cast<unsigned long long>(s.dirty_cells),
        static_cast<unsigned long long>(s.max_dirty_cells),
        static_cast<unsigned long long>(s.recalculated),
        static_cast<unsigned long long>(s.recalc_passes),
        s.find_dependents_ms, s.eval_ms,
        static_cast<unsigned long long>(s.waves));
    out += line;
  }
  return out;
}

}  // namespace taco
