#include "service/workbook_service.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/clock.h"
#include "sheet/textio.h"
#include "store/wal.h"

namespace taco {

WorkbookService::WorkbookService(WorkbookServiceOptions options)
    : options_(std::move(options)), metrics_(options_.trace_spans) {
  if (options_.slow_op_ms > 0) {
    metrics_.trace().set_slow_threshold_ns(
        static_cast<uint64_t>(options_.slow_op_ms * 1e6));
  }
  int shards = std::max(1, options_.shards);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // An unknown store name falls back to text (the constructor cannot
  // fail); taco_serve validates its --store flag before getting here.
  auto engine = MakeStorageEngine(options_.store, options_.storage);
  if (!engine.ok()) {
    engine = MakeStorageEngine("text", options_.storage);
  }
  storage_ = std::move(*engine);
  if (wal_enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.wal_dir, ec);
    if (options_.group_commit) {
      GroupCommitOptions gc;
      gc.max_delay_us = options_.group_commit_max_delay_us;
      // Fires on the committer thread, once per file per flush round.
      // RecordGroupFlush is lock-free and Log never re-enters the store,
      // so the observer can't stall or deadlock the flush pipeline.
      gc.observer = [this](const GroupFlushStats& f) {
        metrics_.RecordGroupFlush(f.appends, f.flush_ns, f.ok);
        if (obs::Logger* logger = options_.logger; logger != nullptr) {
          logger->Log(f.ok ? obs::LogLevel::kDebug : obs::LogLevel::kError,
                      "wal.group_flush",
                      {{"path", f.path},
                       {"appends", std::to_string(f.appends)},
                       {"flush_us", std::to_string(f.flush_ns / 1000)},
                       {"ok", f.ok ? "true" : "false"},
                       {"error", f.error}});
        }
      };
      group_committer_ = std::make_unique<GroupCommitter>(std::move(gc));
    }
  }
  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  if (options_.recalc_threads > 0) {
    recalc_pool_ = std::make_unique<ThreadPool>(options_.recalc_threads);
    SchedulerOptions sched = options_.scheduler;
    sched.threads = options_.recalc_threads;
    recalc_scheduler_ =
        std::make_unique<RecalcScheduler>(recalc_pool_.get(), sched);
  }
}

WorkbookService::Shard& WorkbookService::ShardFor(const std::string& name) {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

const WorkbookService::Shard& WorkbookService::ShardFor(
    const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

void WorkbookService::Touch(WorkbookSession& session) {
  session.Touch(lru_clock_.fetch_add(1) + 1);
}

std::string WorkbookService::WalPathFor(const std::string& name) const {
  if (!wal_enabled()) return "";
  // Escape anything a filesystem (or this escaping itself) could
  // misread, so distinct protocol names map to distinct files.
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string file;
  file.reserve(name.size());
  for (unsigned char c : name) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (safe) {
      file.push_back(static_cast<char>(c));
    } else {
      file.push_back('%');
      file.push_back(kHex[c >> 4]);
      file.push_back(kHex[c & 0xF]);
    }
  }
  return (std::filesystem::path(options_.wal_dir) / (file + ".wal"))
      .string();
}

WalOptions WorkbookService::WalOptionsFor(const std::string& name) const {
  WalOptions wal = options_.wal;
  wal.group_commit = group_committer_.get();
  if (obs::Logger* logger = options_.logger; logger != nullptr) {
    // The observer fires on the appending (session) thread; Log is
    // lock-free and never re-enters the store, so this is safe inside
    // the WAL's own failure path.
    wal.observer = [logger, name](WalEvent event, const std::string& path,
                                  const std::string& detail) {
      switch (event) {
        case WalEvent::kRotate:
          logger->Log(obs::LogLevel::kInfo, "wal.rotate",
                      {{"session", name},
                       {"path", path},
                       {"snapshot", detail}});
          break;
        case WalEvent::kAppendFailure:
          logger->Log(obs::LogLevel::kError, "wal.append_failed",
                      {{"session", name},
                       {"path", path},
                       {"error", detail}});
          break;
      }
    };
  }
  return wal;
}

std::optional<WorkbookService::ParkedEntry> WorkbookService::TakeParked(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(parked_mu_);
  auto it = parked_.find(name);
  if (it == parked_.end()) return std::nullopt;
  ParkedEntry entry = std::move(it->second);
  parked_.erase(it);
  return entry;
}

Result<std::shared_ptr<WorkbookSession>> WorkbookService::MakeSession(
    const std::string& name, Sheet sheet, std::string_view backend) {
  std::string key =
      backend.empty() ? options_.default_backend : std::string(backend);
  auto graph = MakeGraphBackend(key);
  if (!graph.ok()) return graph.status();
  TACO_RETURN_IF_ERROR(BuildGraphFromSheet(sheet, graph->get()));
  auto session = std::make_shared<WorkbookSession>(
      name, std::move(sheet), std::move(*graph), &metrics_);
  session->set_backend_key(std::move(key));
  session->ConfigureStorage(storage_.get());
  session->set_logger(options_.logger);
  if (wal_enabled()) {
    // Lazy arming: a fresh session creates its log file on its first
    // mutation, so this costs no I/O here (important for the in-lock
    // empty-session fast path). Recovered sessions AdoptWal afterwards,
    // replacing the armed path with the already-open log.
    session->ArmWal(WalPathFor(name), WalOptionsFor(name));
  }
  if (recalc_scheduler_ != nullptr) {
    session->EnableParallelRecalc(recalc_scheduler_.get());
  }
  if (options_.cutoff) session->SetCutoff(true);
  Touch(*session);
  return session;
}

Result<std::shared_ptr<WorkbookSession>>
WorkbookService::LoadSessionFromStorage(const std::string& name,
                                        const std::string& base_path,
                                        std::string_view backend,
                                        bool replay_wal) {
  const std::string wal_path = WalPathFor(name);
  const bool wal_exists =
      !wal_path.empty() && std::filesystem::exists(wal_path);
  std::string snapshot_path = base_path;
  std::string backend_key(backend);
  if (replay_wal && wal_exists) {
    auto header = WriteAheadLog::PeekHeader(wal_path);
    if (!header.ok()) return header.status();
    if (base_path.empty()) {
      // OPEN-style (crash) recovery: the log knows its own base
      // snapshot AND the backend the session was created with — like a
      // parked reload, recovery must not let the first opener's
      // requested backend change an existing session's implementation.
      snapshot_path = header->snapshot_path;
      if (!header->backend.empty()) backend_key = header->backend;
    } else if (header->snapshot_path == base_path) {
      // LOAD of the very file this log extends: recovery, not a fresh
      // import. Unless the caller explicitly chose a backend, restore
      // the one the log records — a recovered session must not silently
      // come back on the default implementation.
      if (backend_key.empty()) backend_key = header->backend;
    } else {
      // LOAD of a file this log does not extend: the caller's explicit
      // file wins and the stale log is reset below. (Replaying edits
      // recorded against a different snapshot would corrupt the sheet.)
      replay_wal = false;
    }
  }

  Sheet sheet;
  if (!snapshot_path.empty()) {
    SnapshotMeta snapshot_meta;
    auto loaded = storage_->LoadSnapshot(snapshot_path, &snapshot_meta);
    if (!loaded.ok()) return loaded.status();
    sheet = std::move(*loaded);
    // The snapshot itself may record the saving session's backend (the
    // binary format does). It ranks below an explicit caller choice and
    // below the WAL header — the log is newer than its base snapshot —
    // but beats silently falling back to the service default.
    if (backend_key.empty()) backend_key = snapshot_meta.backend;
  }

  std::unique_ptr<WriteAheadLog> wal;
  WalRecovery recovery;
  if (!wal_path.empty() && replay_wal && wal_exists) {
    // Replay the acknowledged tail onto the snapshot. Torn final
    // records truncate silently (never acknowledged); interior
    // corruption fails the whole open with DataLoss — better NotFound
    // than a silently wrong sheet. (Open only ever trims the torn
    // tail, so a later failure below leaves the log's data intact.)
    auto opened = WriteAheadLog::Open(
        wal_path, WalOptionsFor(name),
        [&sheet](const EditBatch& batch) {
          for (const Edit& edit : batch) {
            TACO_RETURN_IF_ERROR(ApplyEditToSheet(&sheet, edit));
          }
          return Status::OK();
        },
        &recovery);
    if (!opened.ok()) return opened.status();
    wal = std::move(*opened);
  }

  auto session = MakeSession(name, std::move(sheet), backend_key);
  if (!session.ok()) return session;
  if (!wal_path.empty() && wal == nullptr) {
    // Create (or reset, in the LOAD-mismatch case) the log only now
    // that the session definitely exists: a failed load/build must
    // neither destroy an existing log's acknowledged records nor leave
    // a stray log that would flip a later OPEN into recovery mode.
    auto created = WriteAheadLog::Create(
        wal_path, WalOptionsFor(name),
        {snapshot_path, (*session)->backend_key()});
    if (!created.ok()) return created.status();
    wal = std::move(*created);
  }
  if (!snapshot_path.empty()) (*session)->BindPath(snapshot_path);
  if (wal != nullptr) (*session)->AdoptWal(std::move(wal), recovery);
  if (recovery.records > 0) {
    metrics_.storage().recoveries.fetch_add(1);
    metrics_.storage().recovered_records.fetch_add(recovery.records);
  }
  if (obs::Logger* logger = options_.logger; logger != nullptr) {
    logger->Log(obs::LogLevel::kInfo, "session.load",
                {{"session", name},
                 {"path", snapshot_path},
                 {"backend", (*session)->backend_key()},
                 {"recovered_records", recovery.records}});
    if (recovery.records > 0) {
      logger->Log(obs::LogLevel::kInfo, "session.recover",
                  {{"session", name},
                   {"records", recovery.records},
                   {"wal", wal_path}});
    }
  }
  return session;
}

Result<std::shared_ptr<WorkbookSession>> WorkbookService::OpenImpl(
    const std::string& name, std::string_view backend,
    bool create_if_missing) {
  // The lookup/create/claim transition runs under the shard lock, but
  // the HEAVY part of a parked reload — file I/O and graph build — runs
  // outside it behind an InFlight placeholder, so a big reload stalls
  // only requests for the same name, not the whole shard. Lock order
  // here and in MaybeEvict is always shard.mu before parked_mu_; the
  // placeholder's mutex is only ever taken with no registry lock held.
  Shard& shard = ShardFor(name);
  for (;;) {
    std::shared_ptr<InFlight> flight;
    std::optional<ParkedEntry> parked;
    bool recover_from_wal = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.sessions.find(name);
      if (it != shard.sessions.end()) {
        Touch(*it->second);
        return it->second;
      }
      auto pending = shard.pending.find(name);
      if (pending != shard.pending.end()) {
        flight = pending->second;  // Someone's load; wait below, unlocked.
      } else {
        // Parked? Reload from the remembered file — always with the
        // backend the session was created with, exactly like a resident
        // hit ignores a requested backend: `backend` only applies when a
        // session is CREATED, so OPEN's effect cannot depend on eviction
        // timing.
        parked = TakeParked(name);
        if (!parked.has_value()) {
          // Crash recovery: a WAL left by a previous process means this
          // name has durable state even though the registry has never
          // heard of it. Recovering replays real I/O, so it runs behind
          // a placeholder like any reload (the existence probe is one
          // stat — cheap enough for the lock).
          recover_from_wal =
              create_if_missing && wal_enabled() &&
              std::filesystem::exists(WalPathFor(name));
          if (!recover_from_wal) {
            if (!create_if_missing) {
              return Status::NotFound("no session named '" + name + "'");
            }
            // Creating an EMPTY session does no file I/O and builds no
            // graph (its WAL is armed lazily), so it stays under the
            // lock and the lookup-or-create transition remains atomic.
            auto session = MakeSession(name, Sheet(), backend);
            if (!session.ok()) return session;
            shard.sessions.emplace(name, *session);
            resident_count_.fetch_add(1);
            if (obs::Logger* logger = options_.logger;
                logger != nullptr) {
              logger->Log(obs::LogLevel::kInfo, "session.open",
                          {{"session", name},
                           {"backend", (*session)->backend_key()}});
            }
            return session;
          }
        }
        flight = std::make_shared<InFlight>();
        shard.pending.emplace(name, flight);
      }
    }

    if (!parked.has_value() && !recover_from_wal) {
      // Another request owns the load. Its success is our session; its
      // failure re-parked the entry (or a LOAD failed), so re-run the
      // whole transition rather than guessing what state it left.
      std::unique_lock<std::mutex> wait_lock(flight->mu);
      flight->cv.wait(wait_lock, [&] { return flight->done; });
      if (flight->result.ok()) {
        Touch(**flight->result);
        return flight->result;
      }
      continue;
    }

    // We claimed the reload: snapshot + WAL replay outside the shard
    // lock. A failed parked reload restores the parked entry — the saved
    // data must stay reachable, not be shadowed by a fresh empty session
    // next try. (A failed WAL recovery keeps the log on disk for the
    // same reason.)
    auto result =
        parked.has_value()
            ? LoadSessionFromStorage(name, parked->path, parked->backend,
                                     /*replay_wal=*/wal_enabled())
            : LoadSessionFromStorage(name, "", backend,
                                     /*replay_wal=*/true);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.pending.erase(name);
      if (result.ok()) {
        shard.sessions.emplace(name, *result);
        resident_count_.fetch_add(1);
      } else if (parked.has_value()) {
        std::lock_guard<std::mutex> parked_lock(parked_mu_);
        parked_.emplace(name, *parked);
      }
    }
    {
      std::lock_guard<std::mutex> done_lock(flight->mu);
      flight->done = true;
      flight->result = result;
    }
    flight->cv.notify_all();
    return result;
  }
}

Result<std::shared_ptr<WorkbookSession>> WorkbookService::Open(
    const std::string& name, std::string_view backend) {
  auto start = SteadyNow();
  auto result = OpenImpl(name, backend, /*create_if_missing=*/true);
  metrics_.Record(ServiceOp::kOpen, NsSince(start), result.ok());
  if (result.ok()) MaybeEvict();
  return result;
}

Result<std::shared_ptr<WorkbookSession>> WorkbookService::Get(
    const std::string& name) {
  auto result = OpenImpl(name, "", /*create_if_missing=*/false);
  if (result.ok()) MaybeEvict();  // A parked reload may breach the cap.
  return result;
}

Result<std::shared_ptr<WorkbookSession>> WorkbookService::Load(
    const std::string& name, const std::string& path,
    std::string_view backend) {
  auto start = SteadyNow();
  auto result = [&]() -> Result<std::shared_ptr<WorkbookSession>> {
    Shard& shard = ShardFor(name);
    std::shared_ptr<InFlight> flight;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      // An in-flight load/reload counts as existing: LOAD must not race
      // a reload of the same name into two sessions.
      if (shard.sessions.contains(name) || shard.pending.contains(name)) {
        return Status::AlreadyExists("session '" + name + "' is open");
      }
      flight = std::make_shared<InFlight>();
      shard.pending.emplace(name, flight);
    }
    // File read + graph build happen outside the shard lock; same-name
    // requests wait on the placeholder, other names proceed. When a WAL
    // for this name extends `path`, its acknowledged tail is replayed on
    // top (LOAD performs recovery too); a WAL recorded against some
    // OTHER snapshot is reset — the operator explicitly chose this file.
    auto loaded_result =
        LoadSessionFromStorage(name, path, backend, /*replay_wal=*/true);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.pending.erase(name);
      if (loaded_result.ok()) {
        shard.sessions.emplace(name, *loaded_result);
        resident_count_.fetch_add(1);
        // LOAD replaces any stale parked entry for this name. (A failed
        // LOAD leaves it alone: the parked data stays reachable.)
        std::lock_guard<std::mutex> parked_lock(parked_mu_);
        parked_.erase(name);
      }
    }
    {
      std::lock_guard<std::mutex> done_lock(flight->mu);
      flight->done = true;
      flight->result = loaded_result;
    }
    flight->cv.notify_all();
    return loaded_result;
  }();
  metrics_.Record(ServiceOp::kLoad, NsSince(start), result.ok());
  if (result.ok()) MaybeEvict();
  return result;
}

Status WorkbookService::Save(const std::string& name,
                             const std::string& path) {
  // A parked session is by definition saved-and-clean at its parked
  // path, so SAVE to that path (or no path) is already satisfied —
  // don't pay a full reload just to rewrite identical bytes. (A racing
  // un-park between this check and Get is fine: Get then saves live.)
  {
    std::lock_guard<std::mutex> lock(parked_mu_);
    auto it = parked_.find(name);
    if (it != parked_.end() &&
        (path.empty() || path == it->second.path)) {
      metrics_.Record(ServiceOp::kSave, 0, /*ok=*/true);
      return Status::OK();
    }
  }
  auto session = Get(name);
  if (!session.ok()) return session.status();
  return (*session)->Save(path);  // Session records SAVE metrics itself.
}

Status WorkbookService::Close(const std::string& name) {
  auto start = SteadyNow();
  Status status = [&] {
    for (;;) {
      std::shared_ptr<InFlight> flight;
      {
        Shard& shard = ShardFor(name);
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.sessions.erase(name) > 0) {
          resident_count_.fetch_sub(1);
          return Status::OK();
        }
        auto pending = shard.pending.find(name);
        if (pending != shard.pending.end()) flight = pending->second;
      }
      if (flight != nullptr) {
        // A load in flight: the name exists, it just isn't published
        // yet. Wait for the loader, then close whatever it produced.
        std::unique_lock<std::mutex> wait_lock(flight->mu);
        flight->cv.wait(wait_lock, [&] { return flight->done; });
        continue;
      }
      std::lock_guard<std::mutex> lock(parked_mu_);
      if (parked_.erase(name) > 0) return Status::OK();
      return Status::NotFound("no session named '" + name + "'");
    }
  }();
  if (status.ok() && wal_enabled()) {
    // CLOSE drops unsaved changes by contract, and that includes the
    // log: a closed name must stay closed, not resurrect from its WAL
    // on the next OPEN. (In-flight holders of the session keep writing
    // to the unlinked inode harmlessly.)
    std::error_code ec;
    std::filesystem::remove(WalPathFor(name), ec);
  }
  if (obs::Logger* logger = options_.logger;
      logger != nullptr && status.ok()) {
    logger->Log(obs::LogLevel::kInfo, "session.close", {{"session", name}});
  }
  metrics_.Record(ServiceOp::kClose, NsSince(start), status.ok());
  return status;
}

std::vector<std::string> WorkbookService::SessionNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, session] : shard->sessions) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t WorkbookService::resident_sessions() const {
  return resident_count_.load();
}

size_t WorkbookService::parked_sessions() const {
  std::lock_guard<std::mutex> lock(parked_mu_);
  return parked_.size();
}

void WorkbookService::MaybeEvict() {
  if (options_.max_resident_sessions == 0) return;
  // Single flight: a concurrent sweep is already draining the backlog,
  // and two sweeps would pin each other's victims (use_count re-check).
  bool expected = false;
  if (!evicting_.compare_exchange_strong(expected, true)) return;
  struct ClearFlag {
    std::atomic<bool>& flag;
    ~ClearFlag() { flag.store(false); }
  } clear_flag{evicting_};
  // Sessions to leave alone this sweep: an unsavable victim must not be
  // re-picked forever while savable candidates exist. Holding shared_ptr
  // (not raw pointers) keeps the skip identities valid even if a
  // concurrent Close releases a session mid-sweep.
  std::vector<std::shared_ptr<WorkbookSession>> skip;
  // Bounded attempts: every resident session may turn out unevictable
  // (no backing file / unsavable), and the cap is soft in that case.
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (resident_sessions() <= options_.max_resident_sessions) return;

    // Pick the least-recently-used session that has a backing file and
    // isn't black-listed from an earlier failed save (at its current
    // epoch — any new activity makes it eligible again).
    std::shared_ptr<WorkbookSession> victim;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [name, session] : shard->sessions) {
        if (session->bound_path().empty()) continue;
        if (std::find(skip.begin(), skip.end(), session) != skip.end()) {
          continue;
        }
        {
          std::lock_guard<std::mutex> unsavable_lock(unsavable_mu_);
          auto it = unsavable_.find(name);
          if (it != unsavable_.end()) {
            if (it->second == session->op_epoch()) continue;
            unsavable_.erase(it);  // Changed since the failure: retry.
          }
        }
        if (!victim || session->last_access() < victim->last_access()) {
          victim = session;
        }
      }
    }
    if (!victim) return;  // Nothing evictable: soft cap, stay resident.

    // The epoch pins the session's operation count across the save: any
    // client op (via a pointer obtained before this sweep) bumps it, and
    // a changed epoch below aborts the park so the edit is not lost to a
    // reload of the pre-edit file.
    uint64_t stamp = victim->last_access();
    uint64_t epoch = victim->op_epoch();
    // A clean victim's bound file is already current — no save needed.
    if (victim->Stats().dirty && !victim->Save().ok()) {
      // Unsavable: pin, try the next LRU — and remember the failure so
      // later sweeps don't repeat the doomed disk write every request.
      skip.push_back(victim);
      std::lock_guard<std::mutex> unsavable_lock(unsavable_mu_);
      if (unsavable_.size() > 1024) unsavable_.clear();  // Stale-name bound.
      unsavable_[victim->name()] = victim->op_epoch();
      continue;
    }

    // Park only if nobody touched it while we were saving; otherwise it
    // is hot (or freshly edited) again and the next attempt picks a
    // better victim. Erase and park under the shard lock so no window
    // exists where the name is neither resident nor parked (an Open then
    // would create it empty). The use_count()==2 condition (the map's
    // reference plus our local one) means no client still holds this
    // session: new references are only handed out under the shard lock
    // we hold, so an in-flight client can never mutate a session after
    // it is parked — the lost-edit window is closed, not just narrowed.
    Shard& shard = ShardFor(victim->name());
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.sessions.find(victim->name());
      if (it == shard.sessions.end() || it->second != victim ||
          victim->last_access() != stamp || victim->op_epoch() != epoch ||
          victim.use_count() != 2 || victim->Stats().dirty) {
        // Hot again, or a client still pins it: don't re-pick (and
        // re-save) the same victim for the rest of this sweep.
        skip.push_back(victim);
        continue;
      }
      shard.sessions.erase(it);
      resident_count_.fetch_sub(1);
      std::lock_guard<std::mutex> parked_lock(parked_mu_);
      parked_[victim->name()] = {victim->bound_path(),
                                 victim->backend_key()};
    }
    evictions_.fetch_add(1);
    if (obs::Logger* logger = options_.logger; logger != nullptr) {
      logger->Log(obs::LogLevel::kInfo, "session.evict",
                  {{"session", victim->name()},
                   {"path", victim->bound_path()}});
    }
  }
}

}  // namespace taco
