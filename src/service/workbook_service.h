// The workbook service: a concurrent registry of WorkbookSessions.
//
// Layout: session names hash into a fixed set of shards, each a mutex +
// name->session map, so unrelated opens/lookups do not contend on one
// lock. Sessions are handed out as shared_ptr — a request keeps its
// session alive even if another client closes or the LRU evicts it
// concurrently.
//
// Residency: the number of live sessions is LRU-bounded
// (`max_resident_sessions`). When the cap is exceeded, the
// least-recently-used file-bound session is saved and "parked": dropped
// from its shard while the service remembers name -> path, so the next
// request for that name transparently reloads it. Sessions without a
// backing file cannot be parked losslessly and are pinned resident (the
// cap is soft; STATS exposes the pressure).
//
// Execution: requests can be dispatched through the owned ThreadPool,
// whose per-key affinity keeps commands of one session in submission
// order while different sessions run in parallel (see thread_pool.h).

#ifndef TACO_SERVICE_WORKBOOK_SERVICE_H_
#define TACO_SERVICE_WORKBOOK_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/recalc_scheduler.h"
#include "sched/thread_pool.h"
#include "service/metrics.h"
#include "service/workbook_session.h"

namespace taco {

struct WorkbookServiceOptions {
  int shards = 8;                    ///< Session-map shards (>= 1).
  size_t max_resident_sessions = 64; ///< LRU bound; 0 = unbounded.
  int worker_threads = 4;            ///< Command ThreadPool size.
  std::string default_backend = "taco";  ///< Graph for OPEN without one.

  /// Width of the shared parallel-recalc pool. 0 disables the wave
  /// scheduler entirely: sessions recalc serially and RECALC <s>
  /// parallel is rejected. When > 0, sessions start in parallel mode.
  /// This pool is deliberately distinct from the command pool — a wave
  /// barrier inside a command worker would deadlock a saturated pool.
  int recalc_threads = 0;

  /// Wave-scheduler tuning (budgets, inline thresholds); `threads` is
  /// overridden by `recalc_threads`.
  SchedulerOptions scheduler;

  /// Start every session with value-change cutoff recalculation enabled
  /// (taco_serve --cutoff; RECALC <s> cutoff on|off toggles per session).
  /// Works with or without the wave scheduler.
  bool cutoff = false;

  /// Persistence backend for every session: "text" (.tsheet, the
  /// compatibility format) or "binary" (compact CRC-checked snapshots).
  /// Unknown names fall back to text (taco_serve validates its flag
  /// before construction).
  std::string store = "text";

  /// Directory for per-session write-ahead logs. Empty disables WAL:
  /// no durability between saves, exactly the pre-storage behavior.
  /// When set, every acknowledged edit is logged (and fsynced) before
  /// its response, and OPEN/LOAD recover snapshot + WAL tail.
  std::string wal_dir;

  /// Snapshot load bounds (max file size).
  StorageOptions storage;

  /// WAL tuning (fsync discipline, record bounds).
  WalOptions wal;

  /// Cross-session group commit (taco_serve --group-commit): a shared
  /// committer thread coalesces WAL appends from all sessions into one
  /// fsync per file per flush round. Sessions release their lock before
  /// blocking on the flush, so concurrent writers of one workbook share
  /// a single fsync instead of paying one each — same fsync-before-ack
  /// crash consistency, >5x durable edit throughput under concurrency.
  bool group_commit = false;

  /// Extra committer coalescing window in microseconds (taco_serve
  /// --group-commit-max-delay-us). 0 = natural batching only: appends
  /// arriving while a round's fsyncs run join the next round.
  uint32_t group_commit_max_delay_us = 0;

  /// Capacity of the per-service trace ring the TRACE verb reads from
  /// (most recent mutating commands, phase-by-phase).
  size_t trace_spans = 256;

  /// Mutations whose total latency reaches this many milliseconds are
  /// mirrored to stderr as one structured span line (taco_serve
  /// --slow-op-ms). 0 disables. Fractional values work: thresholds
  /// below one millisecond are meaningful on the paper's workloads.
  double slow_op_ms = 0;

  /// Structured event log for the whole service (taco_serve --log-file).
  /// Non-owning; must outlive the service. Null disables event logging
  /// entirely (sessions and the WAL observer check before formatting).
  obs::Logger* logger = nullptr;

  /// When set, every "ERR ..." protocol response carries a trailing
  /// " rid=<n>" so a client-visible failure can be joined against the
  /// trace span and log events minted under the same correlation id.
  /// Off by default: the annotation is a wire-format change.
  bool annotate_errors_with_rid = false;
};

/// Owns many independent workbook sessions and serves them concurrently.
/// All public methods are thread-safe.
class WorkbookService {
 public:
  explicit WorkbookService(WorkbookServiceOptions options = {});

  /// Returns the session named `name`, creating an empty one (with
  /// `backend`, or the default) if it does not exist. Reloads a parked
  /// session from its file. `backend` applies only when the session is
  /// created; an existing session — resident or parked — keeps the
  /// backend it was created with (close it to change backends).
  Result<std::shared_ptr<WorkbookSession>> Open(const std::string& name,
                                                std::string_view backend = "");

  /// Returns an existing (or parked) session; NotFound otherwise.
  Result<std::shared_ptr<WorkbookSession>> Get(const std::string& name);

  /// Loads a .tsheet file into a new session bound to `path`.
  /// AlreadyExists when `name` is taken.
  Result<std::shared_ptr<WorkbookSession>> Load(const std::string& name,
                                                const std::string& path,
                                                std::string_view backend = "");

  /// Saves the named session (to `path`, or its bound path).
  Status Save(const std::string& name, const std::string& path = "");

  /// Drops the session from the registry. Unsaved changes are lost
  /// (protocol clients SAVE first); in-flight holders keep their pointer.
  Status Close(const std::string& name);

  /// Names of resident sessions (sorted; parked sessions excluded).
  std::vector<std::string> SessionNames() const;

  size_t resident_sessions() const;
  size_t parked_sessions() const;
  uint64_t evictions() const { return evictions_.load(); }

  ServiceMetrics& metrics() { return metrics_; }
  ThreadPool& pool() { return *pool_; }
  const WorkbookServiceOptions& options() const { return options_; }

  /// The service-wide structured event log (null when disabled).
  obs::Logger* logger() const { return options_.logger; }
  bool annotate_errors_with_rid() const {
    return options_.annotate_errors_with_rid;
  }

  /// The storage engine every session persists through.
  StorageEngine& storage() { return *storage_; }
  const StorageEngine& storage() const { return *storage_; }
  bool wal_enabled() const { return !options_.wal_dir.empty(); }

  /// The WAL file a session named `name` uses (empty when WAL is off).
  /// Names are filesystem-escaped, so any protocol-legal session name
  /// maps to a distinct file inside wal_dir.
  std::string WalPathFor(const std::string& name) const;

  /// The shared wave executor (null when recalc_threads == 0).
  RecalcScheduler* recalc_scheduler() { return recalc_scheduler_.get(); }
  int recalc_threads() const {
    return recalc_pool_ ? recalc_pool_->num_threads() : 0;
  }

 private:
  /// A load/reload in progress for one name: inserted under the shard
  /// lock before the file I/O + graph build start, so same-name requests
  /// wait on the placeholder (outside the shard lock) instead of
  /// stalling the whole shard behind the disk.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<std::shared_ptr<WorkbookSession>> result{
        Status::Internal("load still in flight")};
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<WorkbookSession>> sessions;
    /// Names with a load/reload in progress (heavy work runs outside
    /// shard.mu). A name is never in `sessions` and `pending` at once.
    std::unordered_map<std::string, std::shared_ptr<InFlight>> pending;
  };

  /// What the registry remembers about an evicted session: enough to
  /// transparently bring it back exactly as it was.
  struct ParkedEntry {
    std::string path;
    std::string backend;
  };

  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  /// Stamps `session` with the next LRU tick.
  void Touch(WorkbookSession& session);

  /// Creates a session around `sheet` with `backend`, building its graph.
  Result<std::shared_ptr<WorkbookSession>> MakeSession(
      const std::string& name, Sheet sheet, std::string_view backend);

  /// The storage-side of OPEN/LOAD/reload, run OUTSIDE registry locks:
  /// loads the base snapshot (WAL header path, or `base_path` when
  /// given), replays the WAL tail onto it (`replay_wal`), or resets the
  /// log when the caller explicitly chose a different file (LOAD to a
  /// path the log does not extend). Torn tails truncate silently;
  /// interior WAL corruption and snapshot CRC failures surface as
  /// statuses and the session is not created.
  Result<std::shared_ptr<WorkbookSession>> LoadSessionFromStorage(
      const std::string& name, const std::string& base_path,
      std::string_view backend, bool replay_wal);

  /// The shared lookup/reload/create transition behind Open and Get,
  /// atomic per shard. With `create_if_missing` false, a name that is
  /// neither resident nor parked is NotFound instead of created.
  Result<std::shared_ptr<WorkbookSession>> OpenImpl(const std::string& name,
                                                    std::string_view backend,
                                                    bool create_if_missing);

  /// If over the residency cap, saves + parks LRU file-bound sessions.
  void MaybeEvict();

  /// Looks up (and erases) the parked entry for `name`.
  std::optional<ParkedEntry> TakeParked(const std::string& name);

  /// The per-session WAL options: the service-wide tuning plus (when a
  /// logger is configured) an observer that turns rotations and append
  /// failures into structured log events tagged with the session name.
  WalOptions WalOptionsFor(const std::string& name) const;

  WorkbookServiceOptions options_;
  /// The shared group-commit thread (null unless options_.group_commit
  /// and WAL are both on). Declared before the shards so it is
  /// destroyed AFTER them: session WALs drain their last tickets
  /// through it from their destructors. Its metrics/log observer is
  /// only reachable while a flush is pending, and every pending flush
  /// has a waiter holding its session (and thus this service) in use,
  /// so the later-destroyed members it touches are safe.
  std::unique_ptr<GroupCommitter> group_committer_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> lru_clock_{0};
  std::atomic<uint64_t> evictions_{0};
  /// Tracks the map sizes so the per-op residency check (MaybeEvict's
  /// fast path) doesn't have to lock every shard just to count.
  std::atomic<size_t> resident_count_{0};

  mutable std::mutex parked_mu_;
  std::unordered_map<std::string, ParkedEntry> parked_;

  /// Sessions whose eviction save failed, with the op epoch at failure:
  /// skipped by later sweeps until they change again, so a session with
  /// a broken bound path doesn't put a failing disk write on every
  /// request while the service sits over the (soft) cap.
  std::mutex unsavable_mu_;
  std::unordered_map<std::string, uint64_t> unsavable_;

  /// Single-flight guard for MaybeEvict: overlapping sweeps would veto
  /// each other's park re-checks (each holds the victim's shared_ptr,
  /// breaking the sole-reference condition) and duplicate scans/saves.
  std::atomic<bool> evicting_{false};

  ServiceMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<StorageEngine> storage_;

  /// Dedicated executor for intra-session parallel recalc, shared by all
  /// sessions (the scheduler holds no per-pass state). Never the command
  /// pool: wave barriers must not wait on queue slots held by the very
  /// commands that issued them.
  std::unique_ptr<ThreadPool> recalc_pool_;
  std::unique_ptr<RecalcScheduler> recalc_scheduler_;
};

}  // namespace taco

#endif  // TACO_SERVICE_WORKBOOK_SERVICE_H_
