// taco_serve: the workbook service speaking its text protocol — over
// stdin/stdout by default (one request line in, one response out,
// suitable for piping and scripting), or as a real TCP daemon with
// --listen <port> (src/net/socket_server.h): N concurrent clients share
// the same sessions, metrics, and recalc pools the stdin loop uses.
//
//   $ ./taco_serve [--threads N] [--recalc-threads N] [--cutoff]
//                  [--backend NAME]
//                  [--max-resident N] [--metrics-port P] [--slow-op-ms T]
//                  [--log-file PATH] [--log-level L] [--log-format F]
//                  [script]
//   $ ./taco_serve --listen 7013 [--bind ADDR] [--max-clients N]
//                  [--idle-timeout-ms M] [--metrics-port P]
//                  [--drain-grace-ms M] [--rid-errors]
//
// --metrics-port also serves /healthz (process liveness) and /readyz
// (traffic readiness: 503 while draining after a shutdown signal, for
// --drain-grace-ms milliseconds before connections are torn down).
// --log-file writes structured events (JSON lines by default; "text"
// for logfmt) through a non-blocking bounded queue; SIGHUP reopens the
// file for logrotate without losing events.
//
// Stdin mode responses are printed in request order, but execution is
// dispatched onto the service's worker pool: commands for different
// sessions run in parallel, commands for one session keep their order
// (per-key queue affinity, see thread_pool.h). In listen mode each
// connection executes its commands in arrival order on its own thread;
// SIGINT/SIGTERM shut down gracefully (in-flight commands finish and
// their responses are written before connections close).
//
// Diagnostics go to stderr; stdout carries only protocol responses.

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/ascii.h"
#include "net/socket_server.h"
#include "obs/log.h"
#include "service/exposition.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

using namespace taco;

namespace {

int ParseIntArg(const char* text, int fallback) {
  int value = std::atoi(text);
  return value > 0 ? value : fallback;
}

/// Self-pipe for signal-safe shutdown: the handler only writes a byte;
/// main blocks reading the other end, then drains the server properly.
/// 'S' asks for shutdown, 'H' (SIGHUP) asks for a log-file reopen.
int g_signal_pipe[2] = {-1, -1};

/// True from the shutdown signal until connections are torn down;
/// /readyz answers 503 while set so load balancers stop routing here
/// during the --drain-grace-ms window.
std::atomic<bool> g_draining{false};

extern "C" void HandleShutdownSignal(int /*signo*/) {
  char byte = 'S';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

extern "C" void HandleReopenSignal(int /*signo*/) {
  char byte = 'H';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Starts the HTTP listener when --metrics-port was given: /metrics
/// (Prometheus exposition), /healthz (process liveness), /readyz
/// (traffic readiness — 503 while draining). Returns null (and logs) on
/// failure — a daemon that can serve traffic but not scrapes should say
/// so and keep serving, while the stdin mode treats a broken flag as
/// fatal (the caller decides).
std::unique_ptr<SocketServer> StartMetricsServer(WorkbookService* service,
                                                 const std::string& bind,
                                                 uint16_t port) {
  SocketServerOptions opts;
  opts.bind_address = bind;
  opts.port = port;
  // Scrapes are short and serial; a small cap keeps a misbehaving
  // scraper from holding fds the protocol listener wants.
  opts.max_clients = 8;
  opts.idle_timeout_ms = 10000;
  opts.http_handler = [service](std::string_view path) -> HttpReply {
    HttpReply reply;
    if (path == "/metrics") {
      reply.body = RenderServiceExposition(*service);
    } else if (path == "/healthz") {
      // Liveness: answering at all is the signal.
      reply.content_type = "text/plain; charset=utf-8";
      reply.body = "ok\n";
    } else if (path == "/readyz") {
      reply.content_type = "text/plain; charset=utf-8";
      if (g_draining.load(std::memory_order_relaxed)) {
        reply.status = 503;
        reply.body = "draining\n";
      } else {
        reply.body = "ready\n";
      }
    } else {
      reply.status = 404;
      reply.body = "try /metrics, /healthz, or /readyz\n";
    }
    return reply;
  };
  auto server = std::make_unique<SocketServer>(service, opts);
  Status status = server->Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot serve /metrics: %s\n",
                 status.ToString().c_str());
    return nullptr;
  }
  std::fprintf(stderr, "taco_serve metrics on http://%s:%u/metrics\n",
               bind.c_str(), server->port());
  return server;
}

int RunListenMode(WorkbookService* service, const SocketServerOptions& opts,
                  const std::string& metrics_bind, int metrics_port,
                  obs::Logger* logger, int drain_grace_ms) {
  SocketServer server(service, opts);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot listen: %s\n", status.ToString().c_str());
    return 1;
  }
  std::unique_ptr<SocketServer> metrics_server;
  if (metrics_port > 0) {
    metrics_server = StartMetricsServer(service, metrics_bind,
                                        static_cast<uint16_t>(metrics_port));
    if (metrics_server == nullptr) return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  struct sigaction reopen {};
  reopen.sa_handler = HandleReopenSignal;
  sigemptyset(&reopen.sa_mask);
  ::sigaction(SIGHUP, &reopen, nullptr);

  std::fprintf(stderr,
               "taco_serve listening on %s:%u (max_clients=%d "
               "idle_timeout_ms=%d workers=%d recalc_workers=%d)\n",
               opts.bind_address.c_str(), server.port(), opts.max_clients,
               opts.idle_timeout_ms, service->pool().num_threads(),
               service->recalc_threads());
  if (logger != nullptr) {
    logger->Log(obs::LogLevel::kInfo, "server.start",
                {{"bind", opts.bind_address},
                 {"port", static_cast<uint64_t>(server.port())},
                 {"max_clients", static_cast<uint64_t>(opts.max_clients)}});
  }

  for (;;) {
    char byte;
    ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Pipe gone: treat as shutdown.
    if (byte == 'H') {
      // logrotate moved the file; swap to the new inode without losing
      // queued events (the writer performs the reopen between drains).
      if (logger != nullptr) {
        logger->RequestReopen();
        logger->Log(obs::LogLevel::kInfo, "log.reopen",
                    {{"path", logger->path()}});
      }
      continue;
    }
    break;  // 'S': shutdown.
  }

  // Drain: flip /readyz to 503 first so orchestrators stop routing new
  // work here, give them the grace window to notice, then tear down.
  g_draining.store(true, std::memory_order_relaxed);
  std::fprintf(stderr, "shutdown signal: draining %d connection(s)\n",
               server.open_connections());
  if (logger != nullptr) {
    logger->Log(
        obs::LogLevel::kInfo, "server.drain",
        {{"connections", static_cast<uint64_t>(server.open_connections())},
         {"grace_ms", static_cast<uint64_t>(drain_grace_ms)}});
  }
  if (drain_grace_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_grace_ms));
  }
  server.Shutdown();
  const TransportCounters& t = service->metrics().transport();
  std::fprintf(stderr,
               "taco_serve done (connections=%llu commands=%llu)\n",
               static_cast<unsigned long long>(t.accepted.load()),
               static_cast<unsigned long long>(t.commands.load()));
  if (logger != nullptr) {
    logger->Log(obs::LogLevel::kInfo, "server.stop",
                {{"connections", t.accepted.load()},
                 {"commands", t.commands.load()}});
    logger->Flush();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  WorkbookServiceOptions options;
  SocketServerOptions socket_options;
  bool listen_mode = false;
  int metrics_port = 0;
  int drain_grace_ms = 0;
  obs::Logger::Options log_options;
  std::string log_file;
  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.worker_threads = ParseIntArg(argv[++i], options.worker_threads);
    } else if (std::strcmp(argv[i], "--recalc-threads") == 0 && i + 1 < argc) {
      // 0 (the default) keeps the wave scheduler off, so the value must
      // parse fully — a typo silently becoming 0 would disable parallel
      // recalc without a trace (same hazard as --max-resident below).
      const char* text = argv[++i];
      char* end = nullptr;
      long value = std::strtol(text, &end, 10);
      if (end != text && *end == '\0' && value >= 0) {
        options.recalc_threads = static_cast<int>(value);
      } else {
        std::fprintf(stderr,
                     "ignoring --recalc-threads '%s' (not a non-negative "
                     "integer); keeping %d\n",
                     text, options.recalc_threads);
      }
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      options.default_backend = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      // Validate here: the service constructor cannot fail, and a typo
      // silently falling back to text would be a durability surprise.
      const char* store = argv[++i];
      if (!MakeStorageEngine(store).ok()) {
        std::fprintf(stderr, "--store needs 'text' or 'binary', got '%s'\n",
                     store);
        return 1;
      }
      options.store = store;
    } else if (std::strcmp(argv[i], "--wal-dir") == 0 && i + 1 < argc) {
      // Fail up front on an unusable directory: discovering it per-edit
      // would leave every acknowledged edit applied in memory but not
      // durable — the opposite of what the flag promises.
      options.wal_dir = argv[++i];
      std::error_code ec;
      std::filesystem::create_directories(options.wal_dir, ec);
      if (ec || ::access(options.wal_dir.c_str(), W_OK | X_OK) != 0) {
        std::fprintf(stderr, "--wal-dir '%s' is not a writable directory\n",
                     options.wal_dir.c_str());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--max-resident") == 0 && i + 1 < argc) {
      // 0 is meaningful here (disables the LRU bound entirely), so the
      // value must parse fully — '6O' silently becoming 0 would turn a
      // requested tight cap into no cap at all.
      const char* text = argv[++i];
      char* end = nullptr;
      long value = std::strtol(text, &end, 10);
      if (end != text && *end == '\0' && value >= 0) {
        options.max_resident_sessions = static_cast<size_t>(value);
      } else {
        std::fprintf(stderr,
                     "ignoring --max-resident '%s' (not a non-negative "
                     "integer); keeping %zu\n",
                     text, options.max_resident_sessions);
      }
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      int port = ParseIntArg(argv[++i], -1);
      if (port < 1 || port > 65535) {
        std::fprintf(stderr, "--listen needs a port in [1, 65535]\n");
        return 1;
      }
      socket_options.port = static_cast<uint16_t>(port);
      listen_mode = true;
    } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      socket_options.bind_address = argv[++i];
    } else if (std::strcmp(argv[i], "--max-clients") == 0 && i + 1 < argc) {
      socket_options.max_clients =
          ParseIntArg(argv[++i], socket_options.max_clients);
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0 &&
               i + 1 < argc) {
      socket_options.idle_timeout_ms =
          ParseIntArg(argv[++i], socket_options.idle_timeout_ms);
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      int port = ParseIntArg(argv[++i], -1);
      if (port < 1 || port > 65535) {
        std::fprintf(stderr, "--metrics-port needs a port in [1, 65535]\n");
        return 1;
      }
      metrics_port = port;
    } else if (std::strcmp(argv[i], "--slow-op-ms") == 0 && i + 1 < argc) {
      // 0 (the default) disables slow-op logging, so the value must
      // parse fully; fractional thresholds are meaningful (a 200µs read
      // is slow for this service).
      const char* text = argv[++i];
      char* end = nullptr;
      double value = std::strtod(text, &end);
      if (end != text && *end == '\0' && value >= 0) {
        options.slow_op_ms = value;
      } else {
        std::fprintf(stderr,
                     "ignoring --slow-op-ms '%s' (not a non-negative "
                     "number); keeping %g\n",
                     text, options.slow_op_ms);
      }
    } else if (std::strcmp(argv[i], "--log-file") == 0 && i + 1 < argc) {
      log_file = argv[++i];
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      if (!obs::ParseLogLevel(text, &log_options.level)) {
        std::fprintf(stderr,
                     "--log-level needs debug|info|warn|error, got '%s'\n",
                     text);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--log-format") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      if (!obs::ParseLogFormat(text, &log_options.format)) {
        std::fprintf(stderr, "--log-format needs json|text, got '%s'\n",
                     text);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--cutoff") == 0) {
      options.cutoff = true;
    } else if (std::strcmp(argv[i], "--group-commit") == 0) {
      options.group_commit = true;
    } else if (std::strcmp(argv[i], "--group-commit-max-delay-us") == 0 &&
               i + 1 < argc) {
      // 0 is meaningful (natural batching only), so parse fully rather
      // than letting a typo silently drop the coalescing window.
      const char* text = argv[++i];
      char* end = nullptr;
      long value = std::strtol(text, &end, 10);
      if (end != text && *end == '\0' && value >= 0 && value <= 1000000) {
        options.group_commit_max_delay_us = static_cast<uint32_t>(value);
      } else {
        std::fprintf(stderr,
                     "ignoring --group-commit-max-delay-us '%s' (needs an "
                     "integer in [0, 1000000]); keeping %u\n",
                     text, options.group_commit_max_delay_us);
      }
    } else if (std::strcmp(argv[i], "--rid-errors") == 0) {
      options.annotate_errors_with_rid = true;
    } else if (std::strcmp(argv[i], "--drain-grace-ms") == 0 &&
               i + 1 < argc) {
      drain_grace_ms = ParseIntArg(argv[++i], 0);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(
          stderr,
          "usage: taco_serve [--threads N] [--recalc-threads N] [--cutoff] "
          "[--backend NAME] [--store text|binary] [--wal-dir DIR] "
          "[--group-commit] [--group-commit-max-delay-us U] "
          "[--max-resident N] [--metrics-port PORT] [--slow-op-ms T] "
          "[--log-file PATH] [--log-level debug|info|warn|error] "
          "[--log-format json|text] [--rid-errors] [script]\n"
          "       taco_serve --listen PORT [--bind ADDR] [--max-clients N] "
          "[--idle-timeout-ms M] [--drain-grace-ms M] [...]\n");
      return 0;
    } else {
      script_path = argv[i];
    }
  }

  // The logger outlives the service (sessions keep a raw pointer); its
  // destructor flushes whatever the queue still holds.
  std::unique_ptr<obs::Logger> logger;
  if (!log_file.empty()) {
    log_options.path = log_file;
    logger = obs::Logger::Open(log_options);
    if (logger == nullptr) {
      std::fprintf(stderr, "cannot open --log-file '%s'\n",
                   log_file.c_str());
      return 1;
    }
    options.logger = logger.get();
  }

  WorkbookService service(options);

  if (listen_mode) {
    if (script_path != nullptr) {
      std::fprintf(stderr, "--listen and a script file are exclusive\n");
      return 1;
    }
    return RunListenMode(&service, socket_options,
                         socket_options.bind_address, metrics_port,
                         logger.get(), drain_grace_ms);
  }

  // In stdin mode the scrape listener rides along so interactive runs
  // can be watched live; it binds loopback (stdin mode has no --bind).
  std::unique_ptr<SocketServer> metrics_server;
  if (metrics_port > 0) {
    metrics_server = StartMetricsServer(&service, "127.0.0.1",
                                        static_cast<uint16_t>(metrics_port));
    if (metrics_server == nullptr) return 1;
  }

  CommandProcessor processor(&service);

  std::istream* input = &std::cin;
  std::ifstream script;
  if (script_path != nullptr) {
    script.open(script_path);
    if (!script) {
      std::fprintf(stderr, "cannot open script '%s'\n", script_path);
      return 1;
    }
    input = &script;
  }

  std::fprintf(stderr,
               "taco_serve ready (workers=%d recalc_workers=%d cutoff=%s "
               "backend=%s store=%s wal=%s group_commit=%s "
               "max_resident=%zu)\n",
               service.pool().num_threads(), service.recalc_threads(),
               options.cutoff ? "on" : "off",
               options.default_backend.c_str(),
               std::string(service.storage().name()).c_str(),
               options.wal_dir.empty() ? "(off)" : options.wal_dir.c_str(),
               options.group_commit && !options.wal_dir.empty() ? "on"
                                                                : "off",
               options.max_resident_sessions);

  // Responses print in request order: each command's future joins the
  // back of the queue, and the queue drains from the front. Emission
  // goes through the ResponseWriter so a response is always delivered
  // whole (same contract the socket transport relies on).
  StdioResponseWriter writer(stdout);
  std::deque<std::future<std::string>> pending;
  auto drain = [&](size_t keep) {
    while (pending.size() > keep) {
      writer.Emit(pending.front().get());
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(*input, line)) {
    // QUIT/EXIT end the loop (stdin EOF does too).
    std::string_view word(line);
    word = word.substr(0, word.find_first_of(" \t\r"));
    if (EqualsIgnoreCaseAscii(word, "QUIT") ||
        EqualsIgnoreCaseAscii(word, "EXIT")) {
      break;
    }

    // A BATCH header owns the next n lines; ship them as one command. An
    // unframeable header (-1) poisons the stream — the body length is
    // unknown, so report the error and stop rather than misread edit
    // lines as commands.
    std::string command = line;
    int extra = CommandProcessor::ExtraBodyLines(line);
    if (extra < 0) {
      drain(0);
      writer.Emit(processor.Execute(command));
      break;
    }
    for (; extra > 0; --extra) {
      std::string body_line;
      if (!std::getline(*input, body_line)) break;
      command += "\n" + body_line;
    }

    // Dispatch keyed by the session name so one session's commands stay
    // ordered; the processor owns the grammar, so it owns the key too.
    std::string_view key = CommandProcessor::DispatchKey(line);

    auto task = std::make_shared<std::packaged_task<std::string()>>(
        [&processor, command] { return processor.Execute(command); });
    pending.push_back(task->get_future());
    service.pool().Submit(key, [task] { (*task)(); });

    // Keep the pipeline shallow enough that a slow command applies
    // backpressure instead of queueing unbounded futures.
    drain(64);
  }
  drain(0);
  return 0;
}
