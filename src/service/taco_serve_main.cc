// taco_serve: the workbook service speaking its text protocol over
// stdin/stdout — one request line in (plus BATCH body lines), one
// response out, suitable for piping, scripting, or wrapping in a socket
// server. Responses are printed in request order, but execution is
// dispatched onto the service's worker pool: commands for different
// sessions run in parallel, commands for one session keep their order
// (per-key queue affinity, see thread_pool.h).
//
//   $ ./taco_serve [--threads N] [--recalc-threads N] [--backend NAME]
//                  [--max-resident N] [script]
//   OPEN sales
//   SET sales A1 41.5
//   FORMULA sales B1 SUM(A1:A9)*2
//   GET sales B1
//   STATS
//   QUIT
//
// Diagnostics go to stderr; stdout carries only protocol responses.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>

#include "common/ascii.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

using namespace taco;

namespace {

int ParseIntArg(const char* text, int fallback) {
  int value = std::atoi(text);
  return value > 0 ? value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  WorkbookServiceOptions options;
  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.worker_threads = ParseIntArg(argv[++i], options.worker_threads);
    } else if (std::strcmp(argv[i], "--recalc-threads") == 0 && i + 1 < argc) {
      // 0 (the default) keeps the wave scheduler off, so the value must
      // parse fully — a typo silently becoming 0 would disable parallel
      // recalc without a trace (same hazard as --max-resident below).
      const char* text = argv[++i];
      char* end = nullptr;
      long value = std::strtol(text, &end, 10);
      if (end != text && *end == '\0' && value >= 0) {
        options.recalc_threads = static_cast<int>(value);
      } else {
        std::fprintf(stderr,
                     "ignoring --recalc-threads '%s' (not a non-negative "
                     "integer); keeping %d\n",
                     text, options.recalc_threads);
      }
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      options.default_backend = argv[++i];
    } else if (std::strcmp(argv[i], "--max-resident") == 0 && i + 1 < argc) {
      // 0 is meaningful here (disables the LRU bound entirely), so the
      // value must parse fully — '6O' silently becoming 0 would turn a
      // requested tight cap into no cap at all.
      const char* text = argv[++i];
      char* end = nullptr;
      long value = std::strtol(text, &end, 10);
      if (end != text && *end == '\0' && value >= 0) {
        options.max_resident_sessions = static_cast<size_t>(value);
      } else {
        std::fprintf(stderr,
                     "ignoring --max-resident '%s' (not a non-negative "
                     "integer); keeping %zu\n",
                     text, options.max_resident_sessions);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: taco_serve [--threads N] [--recalc-threads N] "
                   "[--backend NAME] [--max-resident N] [script]\n");
      return 0;
    } else {
      script_path = argv[i];
    }
  }

  WorkbookService service(options);
  CommandProcessor processor(&service);

  std::istream* input = &std::cin;
  std::ifstream script;
  if (script_path != nullptr) {
    script.open(script_path);
    if (!script) {
      std::fprintf(stderr, "cannot open script '%s'\n", script_path);
      return 1;
    }
    input = &script;
  }

  std::fprintf(stderr,
               "taco_serve ready (workers=%d recalc_workers=%d backend=%s "
               "max_resident=%zu)\n",
               service.pool().num_threads(), service.recalc_threads(),
               options.default_backend.c_str(),
               options.max_resident_sessions);

  // Responses print in request order: each command's future joins the
  // back of the queue, and the queue drains from the front.
  std::deque<std::future<std::string>> pending;
  auto drain = [&](size_t keep) {
    while (pending.size() > keep) {
      std::printf("%s\n", pending.front().get().c_str());
      pending.pop_front();
    }
    std::fflush(stdout);
  };

  std::string line;
  while (std::getline(*input, line)) {
    // QUIT/EXIT end the loop (stdin EOF does too).
    std::string_view word(line);
    word = word.substr(0, word.find_first_of(" \t\r"));
    if (EqualsIgnoreCaseAscii(word, "QUIT") ||
        EqualsIgnoreCaseAscii(word, "EXIT")) {
      break;
    }

    // A BATCH header owns the next n lines; ship them as one command. An
    // unframeable header (-1) poisons the stream — the body length is
    // unknown, so report the error and stop rather than misread edit
    // lines as commands.
    std::string command = line;
    int extra = CommandProcessor::ExtraBodyLines(line);
    if (extra < 0) {
      drain(0);
      std::printf("%s\n", processor.Execute(command).c_str());
      std::fflush(stdout);
      break;
    }
    for (; extra > 0; --extra) {
      std::string body_line;
      if (!std::getline(*input, body_line)) break;
      command += "\n" + body_line;
    }

    // Dispatch keyed by the session name so one session's commands stay
    // ordered; the processor owns the grammar, so it owns the key too.
    std::string_view key = CommandProcessor::DispatchKey(line);

    auto task = std::make_shared<std::packaged_task<std::string()>>(
        [&processor, command] { return processor.Execute(command); });
    pending.push_back(task->get_future());
    service.pool().Submit(key, [task] { (*task)(); });

    // Keep the pipeline shallow enough that a slow command applies
    // backpressure instead of queueing unbounded futures.
    drain(64);
  }
  drain(0);
  return 0;
}
