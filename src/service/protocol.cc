#include "service/protocol.h"

#include <charconv>
#include <cstdio>
#include <string>
#include <vector>

#include "common/a1.h"
#include "common/ascii.h"
#include "common/clock.h"
#include "obs/rid.h"
#include "service/exposition.h"

namespace taco {
namespace {

std::string_view TrimCr(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.remove_suffix(1);
  }
  return line;
}

/// Pops the next whitespace-delimited token off `rest`.
std::string_view NextToken(std::string_view* rest) {
  size_t begin = rest->find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    *rest = {};
    return {};
  }
  size_t end = rest->find_first_of(" \t", begin);
  std::string_view token = rest->substr(
      begin, end == std::string_view::npos ? std::string_view::npos
                                           : end - begin);
  *rest = end == std::string_view::npos ? std::string_view{}
                                        : rest->substr(end);
  return token;
}

/// The rest of the line with surrounding whitespace removed — used for
/// values and formula sources, which may contain spaces.
std::string_view Remainder(std::string_view rest) {
  size_t begin = rest.find_first_not_of(" \t");
  if (begin == std::string_view::npos) return {};
  size_t end = rest.find_last_not_of(" \t");
  return rest.substr(begin, end - begin + 1);
}

inline bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return EqualsIgnoreCaseAscii(a, b);
}

std::string ErrLine(const Status& status) {
  return "ERR " + std::string(StatusCodeToString(status.code())) + ": " +
         status.message();
}

std::string ErrUsage(std::string_view usage) {
  return "ERR InvalidArgument: usage: " + std::string(usage);
}

std::string FormatRecalc(const char* verb, const RecalcResult& r) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "OK %s edits=%llu dirty=%llu recalced=%llu passes=%llu "
                "find_ms=%.3f",
                verb, static_cast<unsigned long long>(r.edits_applied),
                static_cast<unsigned long long>(r.dirty_cells),
                static_cast<unsigned long long>(r.recalculated),
                static_cast<unsigned long long>(r.recalc_passes),
                r.find_dependents_ms);
  return buffer;
}

/// Parses one edit line of a BATCH body (SET / FORMULA / CLEAR without a
/// session name). Returns the error response on failure.
Result<Edit> ParseEditLine(std::string_view line) {
  std::string_view rest = TrimCr(line);
  std::string_view op = NextToken(&rest);
  if (EqualsIgnoreCase(op, "SET")) {
    std::string_view cell_text = NextToken(&rest);
    std::string_view value = Remainder(rest);
    auto cell = ParseCellA1(cell_text);
    if (!cell.ok()) return cell.status();
    if (value.empty()) {
      return Status::InvalidArgument("SET needs a value");
    }
    double number = 0;
    auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), number);
    if (ec == std::errc() && ptr == value.data() + value.size()) {
      return Edit::SetNumber(*cell, number);
    }
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    return Edit::SetText(*cell, std::string(value));
  }
  if (EqualsIgnoreCase(op, "FORMULA")) {
    std::string_view cell_text = NextToken(&rest);
    std::string_view src = Remainder(rest);
    auto cell = ParseCellA1(cell_text);
    if (!cell.ok()) return cell.status();
    if (src.empty()) return Status::InvalidArgument("FORMULA needs a source");
    if (src.front() == '=') src.remove_prefix(1);  // Leading '=' tolerated.
    return Edit::SetFormula(*cell, std::string(src));
  }
  if (EqualsIgnoreCase(op, "CLEAR")) {
    std::string_view range_text = NextToken(&rest);
    auto ref = ParseA1(range_text);
    if (!ref.ok()) return ref.status();
    return Edit::ClearRange(ref->range);
  }
  return Status::InvalidArgument("unknown batch edit '" + std::string(op) +
                                 "' (SET/FORMULA/CLEAR)");
}

// Built with string appends, not a fixed buffer: names and paths are
// client-controlled and must never silently truncate the response.
std::string SessionStatsReport(const SessionStats& stats) {
  std::string out = "OK session=" + stats.name;
  out += " backend=" + stats.backend;
  out += " cells=" + std::to_string(stats.cells);
  out += " formulas=" + std::to_string(stats.formula_cells);
  out += " vertices=" + std::to_string(stats.graph_vertices);
  out += " edges=" + std::to_string(stats.graph_edges);
  out += " ops=" + std::to_string(stats.ops);
  out += " edits=" + std::to_string(stats.edits);
  out += " recalc_passes=" + std::to_string(stats.recalc_passes);
  out += " dirty_cells=" + std::to_string(stats.dirty_cells);
  out += " unsaved=" + std::to_string(stats.dirty ? 1 : 0);
  out += std::string(" recalc_mode=") +
         (stats.recalc_mode == RecalcMode::kParallel ? "parallel" : "serial");
  out += " waves=" + std::to_string(stats.waves);
  out += " max_wave_cells=" + std::to_string(stats.max_wave_cells);
  out += std::string(" cutoff=") + (stats.cutoff ? "on" : "off");
  out += " cells_skipped=" + std::to_string(stats.cells_skipped);
  out += " version=" + std::to_string(stats.version);
  out += " versions=" + std::to_string(stats.versions_published);
  out += " reads_versioned=" + std::to_string(stats.reads_versioned);
  out += " reads_locked=" + std::to_string(stats.reads_locked);
  out += " wal_failed=" + std::to_string(stats.wal_failed ? 1 : 0);
  out += " path=" + (stats.path.empty() ? "(none)" : stats.path);
  return out;
}

std::string SessionStorageReport(const SessionStats& stats) {
  std::string out = "OK storage session=" + stats.name;
  out += " engine=" + stats.storage;
  out += " wal=" + (stats.wal_path.empty() ? "(none)" : stats.wal_path);
  out += " wal_records=" + std::to_string(stats.wal_records);
  out += " wal_bytes=" + std::to_string(stats.wal_bytes);
  out += " recovered=" + std::to_string(stats.recovered_records);
  out += " unsaved=" + std::to_string(stats.dirty ? 1 : 0);
  out += " wal_failed=" + std::to_string(stats.wal_failed ? 1 : 0);
  out += " path=" + (stats.path.empty() ? "(none)" : stats.path);
  return out;
}

}  // namespace

bool StdioResponseWriter::Emit(std::string_view response) {
  // One buffered write + one flush: the reader on the other end of the
  // pipe sees complete responses only, and an error (closed pipe) stops
  // the transport instead of silently dropping output.
  if (std::fwrite(response.data(), 1, response.size(), out_) !=
      response.size()) {
    return false;
  }
  if (std::fputc('\n', out_) == EOF) return false;
  return std::fflush(out_) == 0;
}

bool CommandProcessor::ResponseContinues(std::string_view first_line) {
  // Five responses span multiple lines: the service-wide STATS report
  // ("OK service ..."), GETRANGE ("OK range ..."), the Prometheus
  // exposition ("OK metrics"), the span dump ("OK trace ..."), and the
  // recalc-plan dry run ("OK explain ..."); a session report is
  // "OK session=..." and stays one line. Every multi-line form ends
  // with the lone terminator line.
  return first_line.starts_with("OK service") ||
         first_line.starts_with("OK range") ||
         first_line.starts_with("OK metrics") ||
         first_line.starts_with("OK trace") ||
         first_line.starts_with("OK explain");
}

std::string_view CommandProcessor::DispatchKey(std::string_view header_line) {
  std::string_view rest = TrimCr(header_line);
  std::string_view cmd = NextToken(&rest);
  std::string_view name = NextToken(&rest);
  return name.empty() ? cmd : name;
}

int CommandProcessor::ExtraBodyLines(std::string_view header_line) {
  std::string_view rest = TrimCr(header_line);
  std::string_view cmd = NextToken(&rest);
  if (!EqualsIgnoreCase(cmd, "BATCH")) return 0;
  NextToken(&rest);  // Session name.
  std::string_view count_text = NextToken(&rest);
  int count = 0;
  auto [ptr, ec] = std::from_chars(
      count_text.data(), count_text.data() + count_text.size(), count);
  if (ec != std::errc() || ptr != count_text.data() + count_text.size() ||
      count < 0 || count > kMaxBatchEdits) {
    return -1;  // Unframeable: report the error and close the stream.
  }
  return count;
}

std::string CommandProcessor::Execute(std::string_view command_text) {
  // Mint the request's correlation id before any work: everything this
  // command touches — trace spans, log events, slow-op mirrors — joins
  // on it. The scope covers metering too, so an admin verb's histogram
  // sample and its log events describe the same window.
  uint64_t rid = obs::NextRid();
  obs::RidScope rid_scope(rid);
  std::string response = ExecuteMetered(command_text);
  // The optional client-visible half of the join: services started with
  // rid-on-error append the id to ERR lines so a support ticket quoting
  // the response pinpoints the span and log lines. OFF by default — the
  // annotation is nondeterministic text, and transcript-diffing clients
  // (the conformance suite) compare responses byte-for-byte.
  if (service_->annotate_errors_with_rid() && response.starts_with("ERR")) {
    response += " rid=" + std::to_string(rid);
  }
  return response;
}

std::string CommandProcessor::ExecuteMetered(std::string_view command_text) {
  // Admin verbs run entirely at this layer and would otherwise bypass
  // ServiceMetrics; meter them around the dispatch. Session-addressed
  // data ops and SAVE/CHECKPOINT/OPEN/LOAD/CLOSE record inside the
  // session/service (with lock wait), so they are NOT re-metered here —
  // one op, one histogram sample. A verb's own sample lands AFTER its
  // response is built: the first STATS never shows a STATS row, every
  // later one does, identically on every transport.
  std::string_view header = TrimCr(
      command_text.substr(0, command_text.find('\n')));
  std::string_view cmd = NextToken(&header);
  ServiceOp admin_op = ServiceOp::kOpCount;
  if (EqualsIgnoreCase(cmd, "STATS")) {
    admin_op = ServiceOp::kStats;
  } else if (EqualsIgnoreCase(cmd, "RECALC")) {
    admin_op = ServiceOp::kRecalc;
  } else if (EqualsIgnoreCase(cmd, "STORAGE")) {
    admin_op = ServiceOp::kStorage;
  } else if (EqualsIgnoreCase(cmd, "LIST")) {
    admin_op = ServiceOp::kList;
  } else if (EqualsIgnoreCase(cmd, "METRICS")) {
    admin_op = ServiceOp::kMetrics;
  } else if (EqualsIgnoreCase(cmd, "TRACE")) {
    admin_op = ServiceOp::kTrace;
  } else if (EqualsIgnoreCase(cmd, "EXPLAIN")) {
    admin_op = ServiceOp::kExplain;
  }
  if (admin_op == ServiceOp::kOpCount) return ExecuteInner(command_text);
  auto start = SteadyNow();
  std::string response = ExecuteInner(command_text);
  service_->metrics().Record(admin_op, NsSince(start),
                             /*ok=*/!response.starts_with("ERR"));
  return response;
}

std::string CommandProcessor::ExecuteInner(std::string_view command_text) {
  // Split the header from any BATCH body lines.
  size_t newline = command_text.find('\n');
  std::string_view header = TrimCr(command_text.substr(0, newline));
  std::string_view body =
      newline == std::string_view::npos ? std::string_view{}
                                        : command_text.substr(newline + 1);

  std::string_view rest = header;
  std::string_view cmd = NextToken(&rest);
  if (cmd.empty() || cmd.front() == '#') return "OK";

  if (EqualsIgnoreCase(cmd, "OPEN")) {
    std::string_view name = NextToken(&rest);
    std::string_view backend = NextToken(&rest);
    if (name.empty()) return ErrUsage("OPEN <session> [backend]");
    auto session = service_->Open(std::string(name), backend);
    if (!session.ok()) return ErrLine(session.status());
    return "OK opened " + std::string(name) +
           " backend=" + (*session)->Stats().backend;
  }
  if (EqualsIgnoreCase(cmd, "LOAD")) {
    std::string_view name = NextToken(&rest);
    std::string_view path = NextToken(&rest);
    std::string_view backend = NextToken(&rest);
    if (name.empty() || path.empty()) {
      return ErrUsage("LOAD <session> <path> [backend]");
    }
    auto session = service_->Load(std::string(name), std::string(path),
                                  backend);
    if (!session.ok()) return ErrLine(session.status());
    SessionStats stats = (*session)->Stats();
    return "OK loaded " + stats.name + " cells=" +
           std::to_string(stats.cells) + " formulas=" +
           std::to_string(stats.formula_cells) + " backend=" +
           stats.backend;
  }
  if (EqualsIgnoreCase(cmd, "SAVE")) {
    std::string_view name = NextToken(&rest);
    std::string_view path = NextToken(&rest);
    if (name.empty()) return ErrUsage("SAVE <session> [path]");
    Status status = service_->Save(std::string(name), std::string(path));
    if (!status.ok()) return ErrLine(status);
    return "OK saved " + std::string(name);
  }
  if (EqualsIgnoreCase(cmd, "CHECKPOINT")) {
    // SAVE under its durability name: snapshot + WAL rotation. Kept as a
    // distinct verb so clients managing recovery cost (bounding the WAL
    // tail) read as what they are, and so the response reports where the
    // durable state now lives.
    std::string_view name = NextToken(&rest);
    std::string_view path = NextToken(&rest);
    if (name.empty()) return ErrUsage("CHECKPOINT <session> [path]");
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    Status status = (*session)->Checkpoint(std::string(path));
    if (!status.ok()) return ErrLine(status);
    SessionStats stats = (*session)->Stats();
    return "OK checkpoint " + std::string(name) + " path=" + stats.path;
  }
  if (EqualsIgnoreCase(cmd, "STORAGE")) {
    std::string_view name = NextToken(&rest);
    if (name.empty()) return ErrUsage("STORAGE <session>");
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    return SessionStorageReport((*session)->Stats());
  }
  if (EqualsIgnoreCase(cmd, "CLOSE")) {
    std::string_view name = NextToken(&rest);
    if (name.empty()) return ErrUsage("CLOSE <session>");
    Status status = service_->Close(std::string(name));
    if (!status.ok()) return ErrLine(status);
    return "OK closed " + std::string(name);
  }
  if (EqualsIgnoreCase(cmd, "LIST")) {
    std::string out = "OK sessions";
    for (const std::string& name : service_->SessionNames()) {
      out += " " + name;
    }
    return out;
  }
  if (EqualsIgnoreCase(cmd, "STATS")) {
    std::string_view name = NextToken(&rest);
    if (!name.empty()) {
      auto session = service_->Get(std::string(name));
      if (!session.ok()) return ErrLine(session.status());
      return SessionStatsReport((*session)->Stats());
    }
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "OK service resident=%zu parked=%zu evictions=%llu "
                  "workers=%d recalc_workers=%d\n",
                  service_->resident_sessions(), service_->parked_sessions(),
                  static_cast<unsigned long long>(service_->evictions()),
                  service_->pool().num_threads(),
                  service_->recalc_threads());
    const TransportCounters& t = service_->metrics().transport();
    char conn[192];
    std::snprintf(conn, sizeof(conn),
                  "connections open=%lld accepted=%llu rejected=%llu "
                  "commands=%llu oversized=%llu idle_closed=%llu\n",
                  static_cast<long long>(t.open.load()),
                  static_cast<unsigned long long>(t.accepted.load()),
                  static_cast<unsigned long long>(t.rejected.load()),
                  static_cast<unsigned long long>(t.commands.load()),
                  static_cast<unsigned long long>(t.oversized.load()),
                  static_cast<unsigned long long>(t.idle_closed.load()));
    const StorageCounters& st = service_->metrics().storage();
    char storage[224];
    std::snprintf(
        storage, sizeof(storage),
        "storage engine=%s checkpoints=%llu wal_records=%llu "
        "wal_bytes=%llu recoveries=%llu recovered_records=%llu\n",
        std::string(service_->storage().name()).c_str(),
        static_cast<unsigned long long>(st.checkpoints.load()),
        static_cast<unsigned long long>(st.wal_records.load()),
        static_cast<unsigned long long>(st.wal_bytes.load()),
        static_cast<unsigned long long>(st.recoveries.load()),
        static_cast<unsigned long long>(st.recovered_records.load()));
    const WalGroupCounters& gc = service_->metrics().wal_group();
    const unsigned long long gc_flushes = gc.flushes.load();
    const unsigned long long gc_appends = gc.appends.load();
    char wal_group[192];
    std::snprintf(
        wal_group, sizeof(wal_group),
        "wal_group enabled=%d flushes=%llu appends=%llu failures=%llu "
        "mean_size=%.2f\n",
        service_->options().group_commit ? 1 : 0, gc_flushes, gc_appends,
        static_cast<unsigned long long>(gc.flush_failures.load()),
        gc_flushes ? static_cast<double>(gc_appends) / gc_flushes : 0.0);
    // Silent-loss accounting: both sinks that can drop data under load
    // (the bounded log ring, the trace ring's wrap-around) report here,
    // so "no drops" is an observable fact rather than an assumption.
    const obs::Logger* logger = service_->logger();
    const obs::TraceRing& ring = service_->metrics().trace();
    char observability[192];
    std::snprintf(
        observability, sizeof(observability),
        "observability log_events=%llu log_dropped=%llu "
        "trace_recorded=%llu trace_overwritten=%llu\n",
        static_cast<unsigned long long>(
            logger != nullptr ? logger->events_logged() : 0),
        static_cast<unsigned long long>(
            logger != nullptr ? logger->events_dropped() : 0),
        static_cast<unsigned long long>(ring.recorded()),
        static_cast<unsigned long long>(ring.overwritten()));
    return buffer + std::string(conn) + storage + wal_group + observability +
           service_->metrics().Report() + "END";
  }
  if (EqualsIgnoreCase(cmd, "RECALC")) {
    constexpr const char* kRecalcUsage =
        "RECALC <session> [serial|parallel] [cutoff on|off]";
    std::string_view name = NextToken(&rest);
    if (name.empty()) return ErrUsage(kRecalcUsage);
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    // Options parse left to right; the mode switch and the cutoff toggle
    // compose in one command ("RECALC s parallel cutoff on").
    for (std::string_view token = NextToken(&rest); !token.empty();
         token = NextToken(&rest)) {
      if (EqualsIgnoreCase(token, "serial") ||
          EqualsIgnoreCase(token, "parallel")) {
        Status status = (*session)->SetRecalcMode(
            EqualsIgnoreCase(token, "serial") ? RecalcMode::kSerial
                                              : RecalcMode::kParallel);
        if (!status.ok()) return ErrLine(status);
        continue;
      }
      if (EqualsIgnoreCase(token, "cutoff")) {
        std::string_view state = NextToken(&rest);
        if (EqualsIgnoreCase(state, "on")) {
          (*session)->SetCutoff(true);
        } else if (EqualsIgnoreCase(state, "off")) {
          (*session)->SetCutoff(false);
        } else {
          return ErrUsage(kRecalcUsage);
        }
        continue;
      }
      return ErrUsage(kRecalcUsage);
    }
    bool parallel = (*session)->recalc_mode() == RecalcMode::kParallel;
    return "OK recalc " + std::string(name) +
           " mode=" + (parallel ? "parallel" : "serial") +
           " threads=" + std::to_string(service_->recalc_threads()) +
           " cutoff=" + ((*session)->cutoff() ? "on" : "off");
  }
  if (EqualsIgnoreCase(cmd, "METRICS")) {
    // The same bytes taco_serve's HTTP /metrics listener serves: one
    // renderer, two transports. The exposition already terminates every
    // line, so the protocol terminator lands on its own line directly.
    return "OK metrics\n" + RenderServiceExposition(*service_) +
           std::string(kResponseTerminator);
  }
  if (EqualsIgnoreCase(cmd, "TRACE")) {
    std::string_view count_text = NextToken(&rest);
    int n = 0;  // 0 = everything the ring holds.
    if (!count_text.empty()) {
      auto [ptr, ec] = std::from_chars(
          count_text.data(), count_text.data() + count_text.size(), n);
      if (ec != std::errc() ||
          ptr != count_text.data() + count_text.size() || n < 0) {
        return ErrUsage("TRACE [n]");
      }
    }
    obs::TraceRing& ring = service_->metrics().trace();
    std::vector<obs::TraceSpan> spans =
        ring.Newest(static_cast<size_t>(n));
    std::string out = "OK trace spans=" + std::to_string(spans.size()) +
                      " recorded=" + std::to_string(ring.recorded()) +
                      " capacity=" + std::to_string(ring.capacity());
    for (const obs::TraceSpan& span : spans) {
      out += "\n" + span.ToLine();
    }
    out += "\n";
    out += kResponseTerminator;
    return out;
  }
  if (EqualsIgnoreCase(cmd, "EXPLAIN")) {
    // The dry run: what a mutation of <cell-or-range> WOULD dirty and
    // how the active recalc path would schedule it — closure size,
    // per-wave cell counts, the serial-vs-parallel decision and the
    // threshold that made it — committing nothing. The plan is produced
    // by the same code paths a real mutation would take (FindDependents
    // + the scheduler's decision tree), so it matches execution
    // wave-for-wave.
    std::string_view name = NextToken(&rest);
    std::string_view range_text = NextToken(&rest);
    if (name.empty() || range_text.empty()) {
      return ErrUsage("EXPLAIN <session> <cell-or-range>");
    }
    auto ref = ParseA1(range_text);
    if (!ref.ok()) return ErrLine(ref.status());
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    RecalcEngine::ExplainInfo info = (*session)->Explain(ref->range);
    const RecalcPlan& plan = info.plan;

    std::string out = "OK explain session=" + std::string(name) +
                      " target=" + ref->range.ToString() +
                      std::string(" mode=") +
                      (info.parallel_active ? "parallel" : "serial") +
                      " seeds=" + std::to_string(info.seeds.size()) +
                      " dirty_ranges=" + std::to_string(info.dirty.size()) +
                      " dirty_cells=" + std::to_string(info.dirty_cells) +
                      std::string(" cutoff=") + (info.cutoff ? "on" : "off") +
                      " find_us=" +
                      std::to_string(info.find_dependents_ns / 1000);
    out += "\nPLAN granularity=" + std::string(plan.granularity_name()) +
           " decision=" + plan.decision +
           " width=" + std::to_string(plan.width) +
           " formulas=" + std::to_string(plan.dirty_formulas) +
           " edges=" + std::to_string(plan.edges) +
           " waves=" + std::to_string(plan.waves()) +
           " max_wave_cells=" + std::to_string(plan.max_wave_cells()) +
           " cycle_cells=" + std::to_string(plan.cycle_cells);
    for (size_t i = 0; i < plan.wave_cells.size(); ++i) {
      out += "\nWAVE " + std::to_string(i + 1) +
             " cells=" + std::to_string(plan.wave_cells[i]);
      // cutoff_eligible is the planner's UPPER BOUND on prunable cells:
      // those with no direct seed input. How many actually skip depends
      // on runtime value comparisons a dry run cannot make.
      if (plan.cutoff && i < plan.wave_cutoff_eligible.size()) {
        out += " cutoff_eligible=" +
               std::to_string(plan.wave_cutoff_eligible[i]);
      }
    }
    // Phase-time estimates from recent history: scale the per-dirty-cell
    // eval cost and the mean fsync of the newest spans to this plan.
    // Estimates, not promises — cache state and contention move them.
    std::vector<obs::TraceSpan> recent =
        service_->metrics().trace().Newest(32);
    uint64_t eval_ns = 0, eval_cells = 0, fsync_ns = 0, basis = 0;
    for (const obs::TraceSpan& span : recent) {
      if (span.dirty_cells == 0) continue;
      ++basis;
      eval_ns += span.eval_ns;
      eval_cells += span.dirty_cells;
      fsync_ns += span.wal_fsync_ns;
    }
    uint64_t est_eval_us =
        eval_cells > 0 ? eval_ns * plan.dirty_formulas / eval_cells / 1000
                       : 0;
    uint64_t est_fsync_us = basis > 0 ? fsync_ns / basis / 1000 : 0;
    out += "\nEST basis_spans=" + std::to_string(basis) +
           " est_eval_us=" + std::to_string(est_eval_us) +
           " est_fsync_us=" + std::to_string(est_fsync_us);
    out += "\n";
    out += kResponseTerminator;
    return out;
  }

  // Everything below addresses one session.
  if (EqualsIgnoreCase(cmd, "GET")) {
    std::string_view name = NextToken(&rest);
    std::string_view cell_text = NextToken(&rest);
    if (name.empty() || cell_text.empty()) {
      return ErrUsage("GET <session> <cell>");
    }
    auto cell = ParseCellA1(cell_text);
    if (!cell.ok()) return ErrLine(cell.status());
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    Value value = (*session)->GetValue(*cell);
    return "VALUE " + cell->ToString() + " " + value.ToString();
  }
  if (EqualsIgnoreCase(cmd, "GETRANGE")) {
    std::string_view name = NextToken(&rest);
    std::string_view range_text = NextToken(&rest);
    if (name.empty() || range_text.empty()) {
      return ErrUsage("GETRANGE <session> <range>");
    }
    auto ref = ParseA1(range_text);
    if (!ref.ok()) return ErrLine(ref.status());
    if (ref->range.Area() > kMaxGetRangeCells) {
      return "ERR InvalidArgument: range " + ref->range.ToString() +
             " covers " + std::to_string(ref->range.Area()) +
             " cells, over the GETRANGE limit of " +
             std::to_string(kMaxGetRangeCells);
    }
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    RangeSnapshot snapshot = (*session)->GetRange(ref->range);
    // Multi-line: header, one VALUE line per non-blank cell (in
    // EnumerateCells order — the version makes them one consistent
    // cut), then the terminator SocketClient frames on. version=0 means
    // the session had never published and the lock served the read.
    std::string out = "OK range " + ref->range.ToString() +
                      " version=" + std::to_string(snapshot.version) +
                      " cells=" + std::to_string(snapshot.values.size());
    for (const auto& [cell, value] : snapshot.values) {
      out += "\nVALUE " + cell.ToString() + " " + value.ToString();
    }
    out += "\n";
    out += kResponseTerminator;
    return out;
  }
  if (EqualsIgnoreCase(cmd, "SET") || EqualsIgnoreCase(cmd, "FORMULA") ||
      EqualsIgnoreCase(cmd, "CLEAR")) {
    std::string_view name = NextToken(&rest);
    if (name.empty()) {
      return ErrUsage(std::string(cmd) + " <session> ...");
    }
    // Reuse the batch edit parser (same grammar minus the session name)
    // and parse BEFORE resolving the session: malformed traffic must not
    // trigger LRU touches or parked reloads.
    std::string edit_line = std::string(cmd) + std::string(rest);
    auto edit = ParseEditLine(edit_line);
    if (!edit.ok()) return ErrLine(edit.status());
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    Result<RecalcResult> result = [&]() -> Result<RecalcResult> {
      switch (edit->kind) {
        case Edit::Kind::kSetNumber:
          return (*session)->SetNumber(edit->cell, edit->number);
        case Edit::Kind::kSetText:
          return (*session)->SetText(edit->cell, edit->text);
        case Edit::Kind::kSetFormula:
          return (*session)->SetFormula(edit->cell, edit->text);
        case Edit::Kind::kClearRange:
          return (*session)->ClearRange(edit->range);
      }
      return Status::Internal("unreachable");
    }();
    if (!result.ok()) return ErrLine(result.status());
    return FormatRecalc(EqualsIgnoreCase(cmd, "CLEAR") ? "cleared" : "set",
                        *result);
  }
  if (EqualsIgnoreCase(cmd, "BATCH")) {
    std::string_view name = NextToken(&rest);
    std::string_view count_text = NextToken(&rest);
    int count = -1;
    if (!count_text.empty()) {
      auto [ptr, ec] = std::from_chars(
          count_text.data(), count_text.data() + count_text.size(), count);
      if (ec != std::errc() || ptr != count_text.data() + count_text.size()) {
        count = -1;
      }
    }
    if (name.empty() || count < 0) {
      return ErrUsage("BATCH <session> <n>, then n edit lines");
    }
    if (count > kMaxBatchEdits) {
      return "ERR InvalidArgument: batch of " + std::to_string(count) +
             " edits exceeds the limit of " +
             std::to_string(kMaxBatchEdits);
    }
    EditBatch batch;
    batch.reserve(count);
    std::string_view lines = body;
    for (int i = 0; i < count; ++i) {
      size_t eol = lines.find('\n');
      std::string_view line = lines.substr(0, eol);
      lines = eol == std::string_view::npos ? std::string_view{}
                                            : lines.substr(eol + 1);
      auto edit = ParseEditLine(line);
      if (!edit.ok()) {
        return ErrLine(Status(edit.status().code(),
                              "batch line " + std::to_string(i + 1) + ": " +
                                  edit.status().message()));
      }
      batch.push_back(std::move(*edit));
    }
    auto session = service_->Get(std::string(name));
    if (!session.ok()) return ErrLine(session.status());
    RecalcResult partial;
    auto result = (*session)->ApplyBatch(batch, &partial);
    if (!result.ok()) {
      // Unlike every other ERR, a failed batch may have changed state:
      // say exactly how much so the client doesn't blindly retry the
      // whole batch and double-apply the prefix.
      return ErrLine(result.status()) + " (applied " +
             std::to_string(partial.edits_applied) + " of " +
             std::to_string(batch.size()) +
             " edits before the error; applied edits remain in effect)";
    }
    return FormatRecalc("batch", *result);
  }

  return "ERR InvalidArgument: unknown command '" + std::string(cmd) +
         "' (OPEN/LOAD/SAVE/CHECKPOINT/STORAGE/CLOSE/SET/FORMULA/GET/"
         "GETRANGE/CLEAR/BATCH/RECALC/EXPLAIN/STATS/LIST/METRICS/TRACE)";
}

}  // namespace taco
