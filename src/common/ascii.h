// ASCII-only case helpers. Locale-free and safe on any char value
// (std::tolower on a negative plain char is UB); protocol keywords,
// backend names, and env values are all ASCII by contract.

#ifndef TACO_COMMON_ASCII_H_
#define TACO_COMMON_ASCII_H_

#include <string>
#include <string_view>

namespace taco {

inline char ToLowerAsciiChar(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

inline std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToLowerAsciiChar(c);
  return out;
}

inline bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAsciiChar(a[i]) != ToLowerAsciiChar(b[i])) return false;
  }
  return true;
}

}  // namespace taco

#endif  // TACO_COMMON_ASCII_H_
