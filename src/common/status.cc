#include "common/status.h"

namespace taco {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace taco
