#include "common/range_set.h"

#include <algorithm>

namespace taco {

std::vector<Range> DisjointifyRanges(std::span<const Range> ranges) {
  std::vector<Range> out;
  for (const Range& r : ranges) {
    // Keep only the parts of r not already covered.
    std::vector<Range> pieces{r};
    std::vector<Range> next;
    for (const Range& existing : out) {
      if (pieces.empty()) break;
      next.clear();
      for (const Range& piece : pieces) {
        SubtractRange(piece, existing, &next);
      }
      pieces.swap(next);
    }
    out.insert(out.end(), pieces.begin(), pieces.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CoveredCellCount(std::span<const Range> ranges) {
  uint64_t total = 0;
  for (const Range& r : DisjointifyRanges(ranges)) {
    total += r.Area();
  }
  return total;
}

bool SameCellSet(std::span<const Range> a, std::span<const Range> b) {
  std::vector<Range> da = DisjointifyRanges(a);
  std::vector<Range> db = DisjointifyRanges(b);
  // Equal cell counts plus mutual coverage implies set equality; coverage
  // is checked by subtracting one set from the other.
  uint64_t count_a = 0, count_b = 0;
  for (const Range& r : da) count_a += r.Area();
  for (const Range& r : db) count_b += r.Area();
  if (count_a != count_b) return false;
  for (const Range& r : da) {
    if (!SubtractRanges(r, db).empty()) return false;
  }
  return true;
}

bool CoversCell(std::span<const Range> ranges, const Cell& cell) {
  for (const Range& r : ranges) {
    if (r.Contains(cell)) return true;
  }
  return false;
}

}  // namespace taco
