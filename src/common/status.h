// Status / Result<T> error handling for the TACO library.
//
// Library code reports recoverable errors through Status (or Result<T> when
// a value is produced) instead of exceptions, following the conventions of
// C++ database engines. A Status is cheap to copy in the OK case (no
// allocation) and carries a code plus a human-readable message otherwise.

#ifndef TACO_COMMON_STATUS_H_
#define TACO_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace taco {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Lookup target does not exist.
  kAlreadyExists = 3,     ///< Insert target already present.
  kOutOfRange = 4,        ///< Coordinate outside the sheet bounds.
  kParseError = 5,        ///< Formula / file text could not be parsed.
  kEvalError = 6,         ///< Formula evaluation failed (e.g. #DIV/0!).
  kInternal = 7,          ///< Invariant violation inside the library.
  kIoError = 8,           ///< Filesystem-level failure.
  kUnsupported = 9,       ///< Feature intentionally not implemented.
  kUnavailable = 10,      ///< Service cannot take the request right now
                          ///< (at capacity, shutting down, idle-closed).
  kDataLoss = 11,         ///< Persisted data is corrupt, truncated, or
                          ///< oversized (storage-layer integrity failure).
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that produces no value.
///
/// The OK state is represented by a null payload pointer, so returning
/// Status::OK() never allocates.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be StatusCode::kOk; use OK() for success.
  Status(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk);
    payload_ = std::make_shared<Payload>(Payload{code, std::move(message)});
  }

  /// Returns the singleton-like OK status.
  static Status OK() { return Status(); }

  /// Factory helpers, one per error code.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return payload_ == nullptr; }

  /// The status code; kOk iff ok().
  StatusCode code() const {
    return payload_ ? payload_->code : StatusCode::kOk;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return payload_ ? payload_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Payload {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Payload> payload_;
};

/// Outcome of an operation that produces a T on success.
///
/// Result is either a value or a non-OK Status. Accessing the value of a
/// failed Result is a programming error (checked by assert).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is present, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates an expression returning Status and propagates failure to the
/// caller. For use inside functions that themselves return Status.
#define TACO_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::taco::Status _taco_status = (expr);       \
    if (!_taco_status.ok()) return _taco_status; \
  } while (false)

/// Evaluates an expression returning Result<T>, propagating failure and
/// otherwise binding the value to `lhs`.
#define TACO_ASSIGN_OR_RETURN(lhs, expr)            \
  auto _taco_result_##__LINE__ = (expr);            \
  if (!_taco_result_##__LINE__.ok())                \
    return _taco_result_##__LINE__.status();        \
  lhs = std::move(_taco_result_##__LINE__).value()

}  // namespace taco

#endif  // TACO_COMMON_STATUS_H_
