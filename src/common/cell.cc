#include "common/cell.h"

#include "common/a1.h"

namespace taco {

std::string Offset::ToString() const {
  return "(" + std::to_string(dcol) + "," + std::to_string(drow) + ")";
}

std::string Cell::ToString() const {
  if (IsValid()) return CellToA1(*this);
  return "(" + std::to_string(col) + "," + std::to_string(row) + ")";
}

}  // namespace taco
