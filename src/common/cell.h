// Cell coordinates and cell offsets.
//
// Following the paper, a cell position is a pair (col, row) of 1-based
// integer indices; column "A" is 1 and row "1" is 1. An Offset is the
// componentwise difference of two cells and is the representation of the
// relative positions (hRel / tRel) in compressed-edge metadata.

#ifndef TACO_COMMON_CELL_H_
#define TACO_COMMON_CELL_H_

#include <cstdint>
#include <functional>
#include <string>

namespace taco {

/// Largest supported column index (xlsx limit, column "XFD").
inline constexpr int32_t kMaxCol = 16384;
/// Largest supported row index (xlsx limit).
inline constexpr int32_t kMaxRow = 1048576;

/// A relative displacement between two cells: (dcol, drow).
struct Offset {
  int32_t dcol = 0;
  int32_t drow = 0;

  friend bool operator==(const Offset&, const Offset&) = default;

  Offset operator-() const { return Offset{-dcol, -drow}; }

  /// Renders as "(dcol,drow)" for logs and test failure messages.
  std::string ToString() const;
};

/// A 1-based (column, row) cell position.
struct Cell {
  int32_t col = 1;
  int32_t row = 1;

  friend bool operator==(const Cell&, const Cell&) = default;

  /// True iff the position lies inside the supported sheet bounds.
  bool IsValid() const {
    return col >= 1 && col <= kMaxCol && row >= 1 && row <= kMaxRow;
  }

  /// Componentwise translation.
  Cell operator+(const Offset& o) const {
    return Cell{col + o.dcol, row + o.drow};
  }
  Cell operator-(const Offset& o) const {
    return Cell{col - o.dcol, row - o.drow};
  }

  /// The displacement from `other` to this cell.
  Offset operator-(const Cell& other) const {
    return Offset{col - other.col, row - other.row};
  }

  /// Renders in A1 notation (e.g. "B7") when valid, "(col,row)" otherwise.
  std::string ToString() const;
};

/// Total order for use in ordered containers: column-major, then row.
inline bool operator<(const Cell& a, const Cell& b) {
  if (a.col != b.col) return a.col < b.col;
  return a.row < b.row;
}

/// Componentwise dominance: a is at-or-before b in both dimensions. This is
/// the partial order used by the pattern window algebra (head <= tail).
inline bool DominatedBy(const Cell& a, const Cell& b) {
  return a.col <= b.col && a.row <= b.row;
}

/// Componentwise min / max, used to normalize and merge rectangles.
inline Cell CellMin(const Cell& a, const Cell& b) {
  return Cell{a.col < b.col ? a.col : b.col, a.row < b.row ? a.row : b.row};
}
inline Cell CellMax(const Cell& a, const Cell& b) {
  return Cell{a.col > b.col ? a.col : b.col, a.row > b.row ? a.row : b.row};
}

}  // namespace taco

namespace std {
template <>
struct hash<taco::Cell> {
  size_t operator()(const taco::Cell& c) const noexcept {
    // Columns fit in 15 bits and rows in 21; pack into one word.
    return std::hash<uint64_t>()((static_cast<uint64_t>(c.col) << 32) |
                                 static_cast<uint32_t>(c.row));
  }
};
template <>
struct hash<taco::Offset> {
  size_t operator()(const taco::Offset& o) const noexcept {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(static_cast<uint32_t>(o.dcol)) << 32) |
        static_cast<uint32_t>(o.drow));
  }
};
}  // namespace std

#endif  // TACO_COMMON_CELL_H_
