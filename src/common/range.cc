#include "common/range.h"

#include "common/a1.h"

namespace taco {

std::string Range::ToString() const {
  if (IsSingleCell()) return head.ToString();
  return head.ToString() + ":" + tail.ToString();
}

bool operator<(const Range& a, const Range& b) {
  if (!(a.head == b.head)) return a.head < b.head;
  return a.tail < b.tail;
}

void SubtractRange(const Range& a, const Range& b, std::vector<Range>* out) {
  std::optional<Range> overlap = a.Intersect(b);
  if (!overlap) {
    out->push_back(a);
    return;
  }
  const Range& o = *overlap;
  // Slice off full-width strips above and below the overlap, then the
  // left/right slivers beside it. The four pieces are pairwise disjoint and
  // together with `o` tile `a` exactly.
  if (a.head.row < o.head.row) {
    out->push_back(Range(a.head.col, a.head.row, a.tail.col, o.head.row - 1));
  }
  if (o.tail.row < a.tail.row) {
    out->push_back(Range(a.head.col, o.tail.row + 1, a.tail.col, a.tail.row));
  }
  if (a.head.col < o.head.col) {
    out->push_back(Range(a.head.col, o.head.row, o.head.col - 1, o.tail.row));
  }
  if (o.tail.col < a.tail.col) {
    out->push_back(Range(o.tail.col + 1, o.head.row, a.tail.col, o.tail.row));
  }
}

std::vector<Range> SubtractRanges(const Range& a,
                                  std::span<const Range> subtrahends) {
  std::vector<Range> remaining{a};
  std::vector<Range> next;
  for (const Range& b : subtrahends) {
    if (remaining.empty()) break;
    next.clear();
    for (const Range& piece : remaining) {
      SubtractRange(piece, b, &next);
    }
    remaining.swap(next);
  }
  return remaining;
}

std::vector<Cell> EnumerateCells(const Range& r) {
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(r.Area()));
  for (int32_t col = r.head.col; col <= r.tail.col; ++col) {
    for (int32_t row = r.head.row; row <= r.tail.row; ++row) {
      cells.push_back(Cell{col, row});
    }
  }
  return cells;
}

}  // namespace taco
