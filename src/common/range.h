// Rectangular cell ranges and their algebra.
//
// A Range is the inclusive rectangle [head, tail] identified by its top-left
// (head) and bottom-right (tail) cells, exactly as in the paper (Sec. II-A).
// The operations here back every higher layer: the minimal bounding union
// (the paper's ⊕ operator), intersection and containment (findDep/findPrec),
// exact rectangle subtraction (removeDep and the BFS visited-set
// difference), and axis adjacency (candidate-edge discovery).

#ifndef TACO_COMMON_RANGE_H_
#define TACO_COMMON_RANGE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/cell.h"

namespace taco {

/// Axis along which dependencies are laid out / compressed.
enum class Axis : uint8_t {
  kColumn = 0,  ///< Dependents stacked vertically (a column of formulas).
  kRow = 1,     ///< Dependents laid out horizontally (a row of formulas).
};

/// Returns the other axis.
inline Axis OtherAxis(Axis a) {
  return a == Axis::kColumn ? Axis::kRow : Axis::kColumn;
}

/// An inclusive rectangle of cells.
struct Range {
  Cell head;  ///< Top-left corner.
  Cell tail;  ///< Bottom-right corner.

  Range() = default;
  Range(Cell h, Cell t) : head(h), tail(t) {}
  /// The single-cell range {c}.
  explicit Range(Cell c) : head(c), tail(c) {}
  /// Convenience constructor from raw coordinates.
  Range(int32_t col1, int32_t row1, int32_t col2, int32_t row2)
      : head{col1, row1}, tail{col2, row2} {}

  friend bool operator==(const Range&, const Range&) = default;

  /// True iff head and tail are ordered and inside the sheet bounds.
  bool IsValid() const {
    return head.IsValid() && tail.IsValid() && DominatedBy(head, tail);
  }

  int32_t width() const { return tail.col - head.col + 1; }
  int32_t height() const { return tail.row - head.row + 1; }

  /// Number of cells covered. Valid ranges only.
  uint64_t Area() const {
    return static_cast<uint64_t>(width()) * static_cast<uint64_t>(height());
  }

  bool IsSingleCell() const { return head == tail; }

  /// True when the range is one cell wide or tall, i.e. a line of cells.
  /// Compressed-edge dependents are always lines (DESIGN.md §3.1).
  bool IsLine() const { return width() == 1 || height() == 1; }

  bool Contains(const Cell& c) const {
    return DominatedBy(head, c) && DominatedBy(c, tail);
  }
  bool Contains(const Range& r) const {
    return DominatedBy(head, r.head) && DominatedBy(r.tail, tail);
  }
  bool Overlaps(const Range& r) const {
    return head.col <= r.tail.col && r.head.col <= tail.col &&
           head.row <= r.tail.row && r.head.row <= tail.row;
  }

  /// The overlap rectangle, or nullopt when disjoint.
  std::optional<Range> Intersect(const Range& r) const {
    Range out(CellMax(head, r.head), CellMin(tail, r.tail));
    if (!DominatedBy(out.head, out.tail)) return std::nullopt;
    return out;
  }

  /// The minimal bounding range of this and `r` — the paper's ⊕ operator.
  Range BoundingUnion(const Range& r) const {
    return Range(CellMin(head, r.head), CellMax(tail, r.tail));
  }

  /// Translates the whole rectangle.
  Range Shifted(const Offset& o) const {
    return Range(head + o, tail + o);
  }

  /// True iff this and `r` are disjoint but share an edge along `axis`
  /// with identical extent on the other axis — the precondition for
  /// merging two dependent ranges into a longer line of formula cells.
  bool TouchesOnAxis(const Range& r, Axis axis) const {
    if (axis == Axis::kColumn) {
      // Vertically stacked: same columns, rows abut.
      return head.col == r.head.col && tail.col == r.tail.col &&
             (r.head.row == tail.row + 1 || head.row == r.tail.row + 1);
    }
    return head.row == r.head.row && tail.row == r.tail.row &&
           (r.head.col == tail.col + 1 || head.col == r.tail.col + 1);
  }

  /// Renders in A1 notation (e.g. "A1:B3", or "B2" for a single cell).
  std::string ToString() const;
};

/// Total order (column-major on head, then tail) for ordered containers
/// and deterministic iteration in tests.
bool operator<(const Range& a, const Range& b);

/// Subtracts rectangle `b` from rectangle `a`, appending to `out` up to
/// four disjoint rectangles that exactly cover a \ b. Appends `a` itself
/// when they do not overlap.
void SubtractRange(const Range& a, const Range& b, std::vector<Range>* out);

/// Subtracts every rectangle in `subtrahends` from `a`, returning disjoint
/// rectangles that exactly cover the remainder. The result is empty when
/// `a` is fully covered.
std::vector<Range> SubtractRanges(const Range& a,
                                  std::span<const Range> subtrahends);

/// Enumerates every cell of `r` in column-major order. Intended for tests
/// and brute-force oracles; production code never materializes ranges.
std::vector<Cell> EnumerateCells(const Range& r);

}  // namespace taco

namespace std {
template <>
struct hash<taco::Range> {
  size_t operator()(const taco::Range& r) const noexcept {
    size_t h1 = std::hash<taco::Cell>()(r.head);
    size_t h2 = std::hash<taco::Cell>()(r.tail);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
}  // namespace std

#endif  // TACO_COMMON_RANGE_H_
