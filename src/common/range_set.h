// Helpers for treating a list of rectangles as a cell set.

#ifndef TACO_COMMON_RANGE_SET_H_
#define TACO_COMMON_RANGE_SET_H_

#include <span>
#include <vector>

#include "common/range.h"

namespace taco {

/// Rewrites `ranges` as disjoint rectangles covering the same cell set
/// (later duplicates of covered area are trimmed away). Output order is
/// deterministic (sorted).
std::vector<Range> DisjointifyRanges(std::span<const Range> ranges);

/// Total number of cells covered by `ranges`, counting overlaps once.
uint64_t CoveredCellCount(std::span<const Range> ranges);

/// True iff the two lists cover exactly the same set of cells.
bool SameCellSet(std::span<const Range> a, std::span<const Range> b);

/// True iff `cell` is covered by any range in `ranges` (linear scan).
bool CoversCell(std::span<const Range> ranges, const Cell& cell);

}  // namespace taco

#endif  // TACO_COMMON_RANGE_SET_H_
