#include "common/a1.h"

#include <cctype>

namespace taco {
namespace {

// Parses "[$]LETTERS[$]NUMBER" starting at *pos, advancing *pos past the
// consumed text. Returns the cell and its flags.
struct CornerParse {
  Cell cell;
  AbsFlags flags;
};

Result<CornerParse> ParseCorner(std::string_view text, size_t* pos) {
  CornerParse out;
  size_t i = *pos;
  if (i < text.size() && text[i] == '$') {
    out.flags.abs_col = true;
    ++i;
  }
  size_t letters_begin = i;
  while (i < text.size() && std::isalpha(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == letters_begin) {
    return Status::ParseError("expected column letters in '" +
                              std::string(text) + "'");
  }
  auto col = LettersToColumn(text.substr(letters_begin, i - letters_begin));
  if (!col.ok()) return col.status();

  if (i < text.size() && text[i] == '$') {
    out.flags.abs_row = true;
    ++i;
  }
  size_t digits_begin = i;
  int64_t row = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    row = row * 10 + (text[i] - '0');
    if (row > kMaxRow) {
      return Status::ParseError("row out of range in '" + std::string(text) +
                                "'");
    }
    ++i;
  }
  if (i == digits_begin || row < 1) {
    return Status::ParseError("expected row number in '" + std::string(text) +
                              "'");
  }
  out.cell = Cell{*col, static_cast<int32_t>(row)};
  *pos = i;
  return out;
}

}  // namespace

std::string ColumnToLetters(int32_t col) {
  std::string out;
  while (col > 0) {
    int32_t rem = (col - 1) % 26;
    out.insert(out.begin(), static_cast<char>('A' + rem));
    col = (col - 1) / 26;
  }
  return out;
}

Result<int32_t> LettersToColumn(std::string_view letters) {
  if (letters.empty()) {
    return Status::ParseError("empty column letters");
  }
  int64_t col = 0;
  for (char ch : letters) {
    if (!std::isalpha(static_cast<unsigned char>(ch))) {
      return Status::ParseError("invalid column letter '" +
                                std::string(1, ch) + "'");
    }
    col = col * 26 + (std::toupper(static_cast<unsigned char>(ch)) - 'A' + 1);
    if (col > kMaxCol) {
      return Status::ParseError("column out of range: '" +
                                std::string(letters) + "'");
    }
  }
  return static_cast<int32_t>(col);
}

Result<Cell> ParseCellA1(std::string_view text) {
  size_t pos = 0;
  auto corner = ParseCorner(text, &pos);
  if (!corner.ok()) return corner.status();
  if (pos != text.size()) {
    return Status::ParseError("trailing characters in cell reference '" +
                              std::string(text) + "'");
  }
  return corner->cell;
}

Result<A1Reference> ParseA1(std::string_view text) {
  size_t pos = 0;
  auto head = ParseCorner(text, &pos);
  if (!head.ok()) return head.status();

  A1Reference ref;
  if (pos == text.size()) {
    ref.range = Range(head->cell);
    ref.head_flags = head->flags;
    ref.tail_flags = head->flags;
    ref.is_single_cell = true;
    return ref;
  }
  if (text[pos] != ':') {
    return Status::ParseError("expected ':' in range reference '" +
                              std::string(text) + "'");
  }
  ++pos;
  auto tail = ParseCorner(text, &pos);
  if (!tail.ok()) return tail.status();
  if (pos != text.size()) {
    return Status::ParseError("trailing characters in range reference '" +
                              std::string(text) + "'");
  }
  // Normalize reversed corners so the stored rectangle is always valid.
  ref.range = Range(CellMin(head->cell, tail->cell),
                    CellMax(head->cell, tail->cell));
  ref.head_flags = head->flags;
  ref.tail_flags = tail->flags;
  ref.is_single_cell = false;
  return ref;
}

std::string CellToA1(const Cell& cell, AbsFlags flags) {
  std::string out;
  if (flags.abs_col) out += '$';
  out += ColumnToLetters(cell.col);
  if (flags.abs_row) out += '$';
  out += std::to_string(cell.row);
  return out;
}

std::string RangeToA1(const Range& range, AbsFlags head_flags,
                      AbsFlags tail_flags) {
  if (range.IsSingleCell() && head_flags == tail_flags) {
    return CellToA1(range.head, head_flags);
  }
  return CellToA1(range.head, head_flags) + ":" +
         CellToA1(range.tail, tail_flags);
}

}  // namespace taco
