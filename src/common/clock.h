// Tiny wall-clock helpers shared by the timing-reporting layers.

#ifndef TACO_COMMON_CLOCK_H_
#define TACO_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace taco {

using SteadyTime = std::chrono::steady_clock::time_point;

inline SteadyTime SteadyNow() { return std::chrono::steady_clock::now(); }

/// Milliseconds elapsed since `start`.
inline double MsSince(SteadyTime start) {
  return std::chrono::duration<double, std::milli>(SteadyNow() - start)
      .count();
}

/// Integer nanoseconds elapsed since `start`. Latency metering keeps ns
/// end-to-end: a double-milliseconds hop silently erases the
/// sub-millisecond structure the read path lives in.
inline uint64_t NsSince(SteadyTime start) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyNow() -
                                                                 start)
                .count();
  return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

}  // namespace taco

#endif  // TACO_COMMON_CLOCK_H_
