// Tiny wall-clock helpers shared by the timing-reporting layers.

#ifndef TACO_COMMON_CLOCK_H_
#define TACO_COMMON_CLOCK_H_

#include <chrono>

namespace taco {

using SteadyTime = std::chrono::steady_clock::time_point;

inline SteadyTime SteadyNow() { return std::chrono::steady_clock::now(); }

/// Milliseconds elapsed since `start`.
inline double MsSince(SteadyTime start) {
  return std::chrono::duration<double, std::milli>(SteadyNow() - start)
      .count();
}

}  // namespace taco

#endif  // TACO_COMMON_CLOCK_H_
