// A1 spreadsheet notation: parsing and printing.
//
// Cells are written as column letters followed by a row number ("B7"),
// ranges as "head:tail" ("A1:B3"). Either coordinate of either corner may
// carry a '$' absolute marker ("$B$1:B4"); the markers do not change the
// referenced rectangle but record whether autofill would keep the
// coordinate fixed. TACO's compression heuristics use them as cues for
// choosing between the RR/RF/FR/FF patterns (Sec. IV-A).

#ifndef TACO_COMMON_A1_H_
#define TACO_COMMON_A1_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/cell.h"
#include "common/range.h"
#include "common/status.h"

namespace taco {

/// Absolute-marker flags for one corner of a reference.
struct AbsFlags {
  bool abs_col = false;  ///< '$' before the column letters.
  bool abs_row = false;  ///< '$' before the row number.

  friend bool operator==(const AbsFlags&, const AbsFlags&) = default;
};

/// A parsed A1 reference: the rectangle plus its corner '$' flags.
struct A1Reference {
  Range range;
  AbsFlags head_flags;
  AbsFlags tail_flags;
  bool is_single_cell = false;  ///< Written without ':' (e.g. "B7").

  friend bool operator==(const A1Reference&, const A1Reference&) = default;
};

/// Converts a 1-based column index to letters (1 -> "A", 28 -> "AB").
/// Requires 1 <= col <= kMaxCol.
std::string ColumnToLetters(int32_t col);

/// Converts column letters to a 1-based index ("A" -> 1, case-insensitive).
/// Fails on empty input, non-letters, or overflow past kMaxCol.
Result<int32_t> LettersToColumn(std::string_view letters);

/// Parses a single cell like "B7" or "$B$7". The whole string must be
/// consumed.
Result<Cell> ParseCellA1(std::string_view text);

/// Parses a cell or range reference with optional '$' markers, e.g.
/// "B7", "$A$1:C9", "A1:$B2". Normalizes a reversed corner order
/// ("B3:A1") into a valid rectangle; flags follow their textual corner.
Result<A1Reference> ParseA1(std::string_view text);

/// Prints a cell in A1 notation; `flags` adds '$' markers.
std::string CellToA1(const Cell& cell, AbsFlags flags = {});

/// Prints a range in A1 notation; single-cell ranges print without ':'.
std::string RangeToA1(const Range& range, AbsFlags head_flags = {},
                      AbsFlags tail_flags = {});

}  // namespace taco

#endif  // TACO_COMMON_A1_H_
