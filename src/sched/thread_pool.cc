#include "sched/thread_pool.h"

#include <algorithm>
#include <utility>

namespace taco {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true);
  for (auto& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mu);
    queue->cv.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::string_view key, std::function<void()> task) {
  Enqueue(std::hash<std::string_view>{}(key) % queues_.size(),
          std::move(task));
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(next_queue_.fetch_add(1) % queues_.size(), std::move(task));
}

void ThreadPool::Submit(WaitGroup* group, std::function<void()> task) {
  // Add BEFORE the task is queued: a Wait racing the submission must see
  // the task as outstanding, never a zero count between queue and run.
  group->Add(1);
  Submit([group, task = std::move(task)] {
    task();
    group->Done();
  });
}

void ThreadPool::Enqueue(size_t index, std::function<void()> task) {
  Queue& queue = *queues_[index];
  {
    std::lock_guard<std::mutex> lock(queue.mu);
    queue.tasks.push_back(std::move(task));
  }
  queue.cv.notify_one();
}

void ThreadPool::WorkerLoop(size_t index) {
  Queue& queue = *queues_[index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue.mu);
      queue.cv.wait(lock, [&] {
        return shutdown_.load() || !queue.tasks.empty();
      });
      if (queue.tasks.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    task();
  }
}

}  // namespace taco
