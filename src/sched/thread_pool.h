// A small fixed-size worker pool with per-key queue affinity, plus the
// WaitGroup completion primitive the recalc scheduler's wave barriers
// are built on.
//
// The workbook service needs two properties from its executor: commands
// against different sessions should run in parallel, while commands
// against the SAME session must apply in submission order (a text
// protocol has no other way to express ordering). Instead of one shared
// queue — which would let two edits to one session race to its lock and
// apply out of order — each worker owns a queue and keyed submissions
// hash to a fixed worker. Same key, same worker, same order.
//
// The recalc scheduler needs a third property: submit a batch of tasks
// and block until ALL of them have finished (a wave barrier). WaitGroup
// provides it without coupling the pool to any scheduler type.

#ifndef TACO_SCHED_THREAD_POOL_H_
#define TACO_SCHED_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace taco {

/// Counts outstanding tasks and lets one thread block until they all
/// complete — the Go-style wait group, sized down to what the wave
/// scheduler needs. Add before (or while) tasks are submitted, Done once
/// per finished task, Wait until the count returns to zero. A WaitGroup
/// is reusable: after Wait returns it can count a fresh batch.
///
/// The caller must not let the count go negative (Done without Add), and
/// must not destroy the group while tasks still hold it.
class WaitGroup {
 public:
  /// Registers `n` tasks that Wait must block on.
  void Add(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  /// Marks one task complete; wakes waiters when the count reaches zero.
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  /// Blocks until every added task has called Done. Returns immediately
  /// when nothing is outstanding.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

/// Fixed pool of workers, one task queue per worker.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains every queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` on the worker owning `key`. Tasks with equal keys
  /// execute in submission order.
  void Submit(std::string_view key, std::function<void()> task);

  /// Enqueues `task` on the least-loaded-ish worker (round robin); no
  /// ordering guarantee relative to other tasks.
  void Submit(std::function<void()> task);

  /// Enqueues `task` under `group`: the group is Add'ed before the task
  /// is queued and Done'd after it runs, so `group->Wait()` blocks until
  /// every task submitted under it has finished. Round-robin placement
  /// like the unkeyed Submit — N consecutive submissions land on N
  /// distinct workers (N <= pool size), which is what the wave
  /// scheduler's per-context tasks need.
  void Submit(WaitGroup* group, std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(size_t index, std::function<void()> task);
  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace taco

#endif  // TACO_SCHED_THREAD_POOL_H_
