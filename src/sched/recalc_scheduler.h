// The parallel recalculation scheduler: wave-based execution of the
// dirty subgraph.
//
// After a batch of edits, RecalcEngine knows WHAT to re-evaluate (the
// merged dirty ranges from FindDependents) but the serial path runs the
// re-evaluations on one thread. Dependent-cell recomputation is a
// topological traversal of the dirty subgraph, which parallelizes
// naturally by level: every formula in wave k depends — among dirty
// cells — only on formulas in waves < k, so one wave's cells can be
// evaluated concurrently and the next wave starts after a barrier.
//
// Planning granularities, chosen per pass by budget:
//   * Cell-granular (the default): each dirty formula cell is a node;
//     its direct precedents come from its parsed references, intersected
//     with the dirty set through a per-column row index. Kahn-style
//     ready counts partition the nodes into waves. Bounded by
//     `max_cells` nodes and `max_edges` expanded (cell-level) edges.
//   * Range-granular (the fallback): when per-cell expansion would
//     exceed the budget, the disjoint dirty RANGES become the nodes and
//     an R-tree over them resolves reference overlaps into range-level
//     edges. A range is one unit of work (its cells evaluate in
//     enumeration order inside one task), so intra-range chains cost
//     nothing to schedule.
//   * Serial inline: dirty sets below `min_parallel_cells`, or plans
//     whose shape defeats both granularities, evaluate on the calling
//     thread exactly like RecalcMode::kSerial.
//
// Determinism contract — parallel results are CELL-FOR-CELL IDENTICAL
// to serial recalc, errors and #CYCLE! included:
//   * Acyclic dirty formulas are pure functions of committed inputs:
//     same AST, same operand values, same result, on any thread. A wave
//     cell's dirty precedents are committed by earlier waves' barriers;
//     its clean precedents never change during the pass (a formula that
//     transitively depends on an edit is dirty by definition), so
//     worker-local lazy evaluation of clean cells is race-free and
//     yields the serial values.
//   * Workers never write the shared evaluator. Each worker evaluates
//     into a private overlay evaluator (read-through to the shared
//     cache); the scheduler commits a wave's results single-threaded
//     after the wave's WaitGroup barrier.
//   * Cells on or downstream of reference cycles never become ready in
//     Kahn's algorithm. These leftovers are evaluated serially, in the
//     same dirty-range enumeration order as the serial path, AFTER all
//     waves — so cycle detection sees the same first-touch order and
//     reports exactly the serial #CYCLE! pattern. (An intra-range cycle
//     in range-granular mode stays inside one task, which evaluates the
//     range in enumeration order — again the serial order.)
//
// This determinism is what makes the MVCC read path mode-independent:
// when Execute returns, the shared evaluator cache holds exactly the
// values a serial pass would have produced, so the ValueVersion the
// session publishes at this commit point (RecalcEngine::PublishVersion,
// still under the session lock) is identical whichever path ran — the
// final barrier doubles as the version boundary readers observe.
//
// The scheduler holds no per-pass state: one instance is safely shared
// by every session of a service, and concurrent Execute calls interleave
// on the shared ThreadPool without blocking each other's progress.

#ifndef TACO_SCHED_RECALC_SCHEDULER_H_
#define TACO_SCHED_RECALC_SCHEDULER_H_

#include <cstdint>
#include <span>

#include "eval/cutoff.h"
#include "eval/recalc.h"
#include "sched/thread_pool.h"

namespace taco {

struct SchedulerOptions {
  /// Wave-execution width: tasks per wave (clamped to the pool size).
  int threads = 4;

  /// Dirty sets smaller than this (formula cells) evaluate serially
  /// inline — planning overhead would exceed the work.
  uint64_t min_parallel_cells = 64;

  /// Waves smaller than this evaluate inline on the calling thread
  /// instead of paying task dispatch (chain-shaped subgraphs produce
  /// thousands of single-cell waves).
  uint64_t min_parallel_wave = 32;

  /// Cell-granular planning budgets; exceeding either falls back to
  /// range-granular leveling. `max_cells` bounds the node arrays (dirty
  /// AREA, so a sparse million-cell rectangle cannot allocate a node per
  /// blank cell); `max_edges` bounds per-cell precedent expansion (a
  /// SUM over a dirty column expands to one edge per dirty cell in it).
  uint64_t max_cells = 1u << 20;
  uint64_t max_edges = 4u << 20;

  /// Range-granular budget: more disjoint dirty ranges than this and the
  /// pass just runs serial inline (edge discovery would dominate).
  uint64_t max_ranges = 4096;
};

/// Wave-based RecalcExecutor over a shared ThreadPool. The pool must
/// outlive the scheduler and must NOT be the pool the caller itself runs
/// on (a wave barrier inside a pool task would deadlock a fully loaded
/// pool); the workbook service keeps a dedicated recalc pool for this.
class RecalcScheduler : public RecalcExecutor {
 public:
  /// `pool` may be null, which degrades every pass to serial inline.
  explicit RecalcScheduler(ThreadPool* pool, SchedulerOptions options = {});

  /// `cutoff` non-null enables value-change cutoff for the pass (see
  /// eval/cutoff.h for the contract): waves are pruned at nodes whose
  /// dirty precedents all committed unchanged, in both granularities.
  /// The width/min_parallel_cells serial short-circuits don't apply
  /// under cutoff — small or width-1 passes still build waves and
  /// evaluate them inline so pruning can happen. Results remain
  /// cell-for-cell identical to an un-cut pass by construction.
  Outcome Execute(const Sheet& sheet, Evaluator* evaluator,
                  std::span<const Range> dirty,
                  const CutoffContext* cutoff) override;

  /// The EXPLAIN dry run: replays Execute's exact decision tree — same
  /// thresholds, checked in the same order, including the cell-granular
  /// edge expansion and its budget fallback — but evaluates nothing and
  /// touches no evaluator.  Guaranteed to match a subsequent Execute on
  /// the same sheet + dirty set wave-for-wave. With `cutoff` it also
  /// reports the per-wave upper bound of prunable cells (nodes with no
  /// direct seed input) in `wave_cutoff_eligible`.
  RecalcPlan Plan(const Sheet& sheet, std::span<const Range> dirty,
                  std::span<const Range> seeds, bool cutoff) const override;

  const SchedulerOptions& options() const { return options_; }

 private:
  /// The cell-granular cutoff wave loop: prune-prime first (workers read
  /// the shared cache), then dispatch or inline the remaining nodes,
  /// then the compare-and-mark commit.
  Outcome ExecuteCellCutoff(const CellWavePlan& plan, const Sheet& sheet,
                            Evaluator* evaluator, const CutoffContext& cutoff,
                            int width);

  ThreadPool* pool_;
  SchedulerOptions options_;
};

}  // namespace taco

#endif  // TACO_SCHED_RECALC_SCHEDULER_H_
