#include "sched/recalc_scheduler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/range_set.h"
#include "eval/cutoff.h"
#include "eval/evaluator.h"
#include "formula/references.h"
#include "rtree/rtree.h"
#include "sheet/sheet.h"

namespace taco {
namespace {

/// One worker's private evaluation context: an overlay evaluator that
/// reads through to the engine's shared cache but writes only locally.
/// Contexts persist across the waves of one pass, so a worker re-reads
/// its own earlier results without a base-cache hop; they are discarded
/// at the end of the pass.
struct WorkerContext {
  explicit WorkerContext(const Sheet& sheet, const Evaluator* base)
      : eval(&sheet, base) {}
  Evaluator eval;
};

/// Builds the per-pass worker contexts (lazily — serial passes never
/// allocate them).
std::vector<std::unique_ptr<WorkerContext>> MakeContexts(
    int n, const Sheet& sheet, const Evaluator* base) {
  std::vector<std::unique_ptr<WorkerContext>> contexts;
  contexts.reserve(n);
  for (int i = 0; i < n; ++i) {
    contexts.push_back(std::make_unique<WorkerContext>(sheet, base));
  }
  return contexts;
}

/// Formats "lhs(value)cmp rhs(threshold)" decision tokens for plans.
std::string Decision(const char* format, uint64_t a, uint64_t b) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), format, a, b);
  return buffer;
}

/// Bounded formula count for plan reporting on the paths that never
/// enumerate nodes (serial fast-outs); `max_area` keeps a dry run from
/// outlasting the pass it describes.
uint64_t CountFormulasBounded(const Sheet& sheet, std::span<const Range> dirty,
                              uint64_t max_area) {
  uint64_t formulas = 0;
  uint64_t scanned = 0;
  for (const Range& range : dirty) {
    scanned += range.Area();
    if (scanned > max_area) break;
    for (const Cell& cell : EnumerateCells(range)) {
      if (sheet.IsFormulaCell(cell)) ++formulas;
    }
  }
  return formulas;
}

}  // namespace

RecalcScheduler::RecalcScheduler(ThreadPool* pool, SchedulerOptions options)
    : pool_(pool), options_(options) {}

RecalcExecutor::Outcome RecalcScheduler::ExecuteCellCutoff(
    const CellWavePlan& plan, const Sheet& sheet, Evaluator* evaluator,
    const CutoffContext& cutoff, int width) {
  Outcome outcome;
  const int n = static_cast<int>(plan.nodes.size());
  outcome.dirty_formulas = static_cast<uint64_t>(n);

  // A node evaluates when it was edited, reads a seed, had no captured
  // prior, or a dirty precedent committed a changed value (marked as
  // earlier waves commit). Everything else restores its prior value.
  std::vector<char> needs_eval(n);
  for (int i = 0; i < n; ++i) {
    needs_eval[i] = plan.forced[i] != 0 ||
                    cutoff.prior.find(plan.nodes[i]) == cutoff.prior.end();
  }
  // An evaluated node whose committed value differs from its prior (or
  // that had none) un-prunes every dependent.
  auto mark_if_changed = [&](int idx, const Value& now) {
    auto it = cutoff.prior.find(plan.nodes[idx]);
    if (it != cutoff.prior.end() && now == it->second) return;
    for (int d : plan.adj[idx]) needs_eval[d] = 1;
  };

  std::vector<std::unique_ptr<WorkerContext>> contexts;
  std::vector<Value> values(n);
  std::vector<int> eval_list;
  WaitGroup group;
  for (const std::vector<int>& wave : plan.waves) {
    ++outcome.waves;
    outcome.max_wave_cells =
        std::max<uint64_t>(outcome.max_wave_cells, wave.size());
    // Prune BEFORE dispatching the wave's workers: pruned nodes prime
    // the shared cache, which workers read through — the restore must be
    // visible to them and must not race them. Within a wave the nodes
    // are independent, so prime-then-evaluate order is semantics-free.
    eval_list.clear();
    for (int idx : wave) {
      if (needs_eval[idx]) {
        eval_list.push_back(idx);
        continue;
      }
      evaluator->Prime(plan.nodes[idx], cutoff.prior.at(plan.nodes[idx]));
      ++outcome.cells_skipped_cutoff;
    }
    if (pool_ == nullptr || width <= 1 ||
        eval_list.size() < options_.min_parallel_wave) {
      for (int idx : eval_list) {
        Value now = evaluator->EvaluateCell(plan.nodes[idx]);
        ++outcome.recalculated;
        mark_if_changed(idx, now);
      }
      continue;
    }
    if (contexts.empty()) contexts = MakeContexts(width, sheet, evaluator);
    const int tasks = std::min<int>(width, static_cast<int>(eval_list.size()));
    for (int c = 0; c < tasks; ++c) {
      pool_->Submit(&group, [&, c, tasks] {
        Evaluator& eval = contexts[c]->eval;
        for (size_t pos = c; pos < eval_list.size();
             pos += static_cast<size_t>(tasks)) {
          const int idx = eval_list[pos];
          values[idx] = eval.EvaluateCell(plan.nodes[idx]);
        }
      });
    }
    auto barrier_start = SteadyNow();
    group.Wait();
    outcome.barrier_wait_ns += NsSince(barrier_start);
    // Single-threaded commit: workers never touch the shared cache.
    // Compare before the move steals the value.
    for (int idx : eval_list) {
      mark_if_changed(idx, values[idx]);
      evaluator->Prime(plan.nodes[idx], std::move(values[idx]));
      ++outcome.recalculated;
    }
  }
  // Cycle members and their downstream dependents replay un-cut, in
  // serial node order — cutoff never applies to them.
  for (int idx : plan.leftover) {
    evaluator->EvaluateCell(plan.nodes[idx]);
    ++outcome.recalculated;
  }
  return outcome;
}

RecalcExecutor::Outcome RecalcScheduler::Execute(const Sheet& sheet,
                                                 Evaluator* evaluator,
                                                 std::span<const Range> dirty,
                                                 const CutoffContext* cutoff) {
  Outcome outcome;

  // ----- Serial fast paths -------------------------------------------------
  // Evaluates `cells` on the calling thread via the shared evaluator —
  // bit-identical to RecalcMode::kSerial by construction.
  auto eval_serial_range = [&](const Range& range) {
    for (const Cell& cell : EnumerateCells(range)) {
      if (sheet.IsFormulaCell(cell)) {
        evaluator->EvaluateCell(cell);
        ++outcome.recalculated;
      }
    }
  };

  uint64_t dirty_area = 0;
  for (const Range& range : dirty) dirty_area += range.Area();

  const int width =
      pool_ == nullptr
          ? 1
          : std::max(1, std::min(options_.threads, pool_->num_threads()));
  // With cutoff the width/min_parallel_cells short-circuits don't apply:
  // a serial pass still wants the wave structure so it can prune (waves
  // just evaluate inline). Without cutoff, tiny sets skip planning.
  if (cutoff == nullptr &&
      (width <= 1 || dirty_area < options_.min_parallel_cells)) {
    for (const Range& range : dirty) eval_serial_range(range);
    outcome.dirty_formulas = outcome.recalculated;
    return outcome;
  }

  // ----- Plan: enumerate dirty formula cells in serial order ---------------
  // (Shared by both granularities; the serial path visits cells in
  // exactly this order, which is what the leftover pass must replay.)
  const bool cell_granular = dirty_area <= options_.max_cells &&
                             dirty.size() <= options_.max_ranges;
  if (!cell_granular && dirty.size() > options_.max_ranges) {
    // Too fragmented for either plan: edge discovery would dominate, and
    // without a wave structure cutoff has nothing to prune.
    for (const Range& range : dirty) eval_serial_range(range);
    outcome.dirty_formulas = outcome.recalculated;
    return outcome;
  }

  if (cell_granular) {
    // Nodes: every dirty formula cell, in dirty-range enumeration order.
    std::vector<Cell> nodes;
    std::vector<const Expr*> asts;
    CollectDirtyFormulaCells(sheet, dirty, &nodes, &asts);
    const int n = static_cast<int>(nodes.size());
    if (cutoff == nullptr &&
        static_cast<uint64_t>(n) < options_.min_parallel_cells) {
      for (int i = 0; i < n; ++i) evaluator->EvaluateCell(nodes[i]);
      outcome.recalculated = n;
      outcome.dirty_formulas = n;
      return outcome;
    }

    CellWavePlan plan = BuildCellWavePlan(
        std::move(nodes), std::move(asts),
        cutoff != nullptr ? std::span<const Range>(cutoff->seeds)
                          : std::span<const Range>(),
        options_.max_edges);

    if (!plan.over_budget) {
      if (cutoff != nullptr) {
        return ExecuteCellCutoff(plan, sheet, evaluator, *cutoff, width);
      }
      std::vector<std::unique_ptr<WorkerContext>> contexts;
      std::vector<Value> values(n);
      WaitGroup group;
      for (const std::vector<int>& wave : plan.waves) {
        ++outcome.waves;
        outcome.max_wave_cells =
            std::max<uint64_t>(outcome.max_wave_cells, wave.size());
        if (wave.size() < options_.min_parallel_wave) {
          for (int idx : wave) evaluator->EvaluateCell(plan.nodes[idx]);
          continue;
        }
        if (contexts.empty()) {
          contexts = MakeContexts(width, sheet, evaluator);
        }
        // Strided assignment balances skewed per-cell costs (e.g. the
        // growing SUM($A$1:Ar) of an FR column) across workers.
        const int tasks = std::min<int>(width, static_cast<int>(wave.size()));
        for (int c = 0; c < tasks; ++c) {
          pool_->Submit(&group, [&, c, tasks] {
            Evaluator& eval = contexts[c]->eval;
            for (size_t pos = c; pos < wave.size();
                 pos += static_cast<size_t>(tasks)) {
              const int idx = wave[pos];
              values[idx] = eval.EvaluateCell(plan.nodes[idx]);
            }
          });
        }
        auto barrier_start = SteadyNow();
        group.Wait();
        outcome.barrier_wait_ns += NsSince(barrier_start);
        // Single-threaded commit: workers never touch the shared cache.
        for (int idx : wave) {
          evaluator->Prime(plan.nodes[idx], std::move(values[idx]));
        }
      }
      // Cycle members and their downstream dependents, in serial order.
      for (int idx : plan.leftover) evaluator->EvaluateCell(plan.nodes[idx]);
      outcome.recalculated = n;
      outcome.dirty_formulas = n;
      return outcome;
    }
    // Edge budget blown: fall through to range-granular leveling.
  }

  // ----- Range-granular fallback -------------------------------------------
  // Nodes are the disjoint dirty ranges; an R-tree over them turns each
  // reference range into range-level edges. One range is one unit of
  // work (its formulas evaluate in enumeration order within a task).
  // Under cutoff a RANGE is also the pruning unit: it skips only when
  // every formula cell in it has a captured prior and no seed input, and
  // it re-marks dependent ranges when ANY of its cells commits changed.
  const int m = static_cast<int>(dirty.size());
  RTree index;
  for (int j = 0; j < m; ++j) index.Insert(dirty[j], j);

  std::vector<uint64_t> formulas(m, 0);
  std::vector<std::vector<int>> adj(m);
  std::vector<int> indeg(m, 0);
  std::vector<char> needs_eval(m, 0);
  std::unordered_set<uint64_t> edge_seen;
  std::vector<A1Reference> refs;
  for (int j = 0; j < m; ++j) {
    for (const Cell& cell : EnumerateCells(dirty[j])) {
      const CellContent* content = sheet.Get(cell);
      if (content == nullptr || !content->IsFormula()) continue;
      ++formulas[j];
      if (cutoff != nullptr && needs_eval[j] == 0 &&
          (CoversCell(cutoff->seeds, cell) ||
           cutoff->prior.find(cell) == cutoff->prior.end())) {
        needs_eval[j] = 1;
      }
      refs.clear();
      ExtractReferences(*content->formula().ast, &refs);
      for (const A1Reference& ref : refs) {
        if (!ref.range.IsValid()) continue;
        if (cutoff != nullptr && needs_eval[j] == 0) {
          for (const Range& seed : cutoff->seeds) {
            if (ref.range.Overlaps(seed)) {
              needs_eval[j] = 1;
              break;
            }
          }
        }
        index.ForEachOverlap(ref.range, [&](const Range&, RTree::EntryId id) {
          const int i = static_cast<int>(id);
          // Intra-range dependencies are resolved by in-order evaluation
          // inside the range's task, so self-edges don't schedule.
          if (i == j) return;
          uint64_t key = (static_cast<uint64_t>(i) << 32) |
                         static_cast<uint32_t>(j);
          if (!edge_seen.insert(key).second) return;
          adj[i].push_back(j);
          ++indeg[j];
        });
      }
    }
  }
  for (int j = 0; j < m; ++j) outcome.dirty_formulas += formulas[j];

  std::vector<int> leftover;
  std::vector<std::vector<int>> waves = BuildWaves(adj, &indeg, &leftover);

  // Cutoff-aware serial evaluation of one range: evaluates in
  // enumeration order like eval_serial_range, additionally reporting
  // whether any cell's committed value differs from its prior.
  auto eval_range_compare = [&](int j) {
    bool changed = false;
    for (const Cell& cell : EnumerateCells(dirty[j])) {
      if (!sheet.IsFormulaCell(cell)) continue;
      Value now = evaluator->EvaluateCell(cell);
      ++outcome.recalculated;
      auto it = cutoff->prior.find(cell);
      if (it == cutoff->prior.end() || !(now == it->second)) changed = true;
    }
    return changed;
  };

  std::vector<std::unique_ptr<WorkerContext>> contexts;
  // Per-range results, committed after each wave's barrier.
  std::vector<std::vector<std::pair<Cell, Value>>> results(m);
  std::vector<int> eval_list;
  WaitGroup group;
  for (const std::vector<int>& wave : waves) {
    ++outcome.waves;
    uint64_t wave_cells = 0;
    for (int j : wave) wave_cells += formulas[j];
    outcome.max_wave_cells = std::max(outcome.max_wave_cells, wave_cells);

    uint64_t eval_cells = 0;
    eval_list.clear();
    if (cutoff != nullptr) {
      // Prune before dispatch (workers read the shared cache).
      for (int j : wave) {
        if (needs_eval[j]) {
          eval_list.push_back(j);
          eval_cells += formulas[j];
          continue;
        }
        for (const Cell& cell : EnumerateCells(dirty[j])) {
          if (!sheet.IsFormulaCell(cell)) continue;
          evaluator->Prime(cell, cutoff->prior.at(cell));
          ++outcome.cells_skipped_cutoff;
        }
      }
    } else {
      eval_list.assign(wave.begin(), wave.end());
      eval_cells = wave_cells;
    }

    auto mark_dependents = [&](int j) {
      for (int d : adj[j]) needs_eval[d] = 1;
    };

    if (eval_cells < options_.min_parallel_wave || eval_list.size() == 1 ||
        pool_ == nullptr || width <= 1) {
      for (int j : eval_list) {
        if (cutoff != nullptr) {
          if (eval_range_compare(j)) mark_dependents(j);
        } else {
          eval_serial_range(dirty[j]);
        }
      }
      continue;
    }
    if (contexts.empty()) contexts = MakeContexts(width, sheet, evaluator);
    const int tasks = std::min<int>(width, static_cast<int>(eval_list.size()));
    for (int c = 0; c < tasks; ++c) {
      pool_->Submit(&group, [&, c, tasks] {
        Evaluator& eval = contexts[c]->eval;
        for (size_t pos = c; pos < eval_list.size();
             pos += static_cast<size_t>(tasks)) {
          const int j = eval_list[pos];
          for (const Cell& cell : EnumerateCells(dirty[j])) {
            if (sheet.IsFormulaCell(cell)) {
              results[j].emplace_back(cell, eval.EvaluateCell(cell));
            }
          }
        }
      });
    }
    auto barrier_start = SteadyNow();
    group.Wait();
    outcome.barrier_wait_ns += NsSince(barrier_start);
    for (int j : eval_list) {
      bool changed = false;
      for (auto& [cell, value] : results[j]) {
        if (cutoff != nullptr) {
          auto it = cutoff->prior.find(cell);
          if (it == cutoff->prior.end() || !(value == it->second)) {
            changed = true;
          }
        }
        evaluator->Prime(cell, std::move(value));
        ++outcome.recalculated;
      }
      if (cutoff != nullptr && changed) mark_dependents(j);
      results[j].clear();
      results[j].shrink_to_fit();
    }
  }
  // Mutually-referencing ranges (cross-range cycles), in serial order —
  // never pruned.
  for (int j : leftover) eval_serial_range(dirty[j]);
  return outcome;
}

RecalcPlan RecalcScheduler::Plan(const Sheet& sheet,
                                 std::span<const Range> dirty,
                                 std::span<const Range> seeds,
                                 bool cutoff) const {
  // IMPORTANT: every branch below replays the corresponding branch of
  // Execute — same thresholds, same order.  Changing one side without
  // the other breaks the EXPLAIN-matches-execution guarantee that
  // explain_test.cc pins down.
  RecalcPlan plan;
  plan.cutoff = cutoff;
  plan.dirty_ranges = dirty.size();
  for (const Range& range : dirty) plan.dirty_area += range.Area();

  const int width =
      pool_ == nullptr
          ? 1
          : std::max(1, std::min(options_.threads, pool_->num_threads()));
  plan.width = width;

  // Mirrors Execute: the serial short-circuits only apply without
  // cutoff (a cutoff pass builds waves regardless, evaluating them
  // inline when the width or set size wouldn't pay for dispatch).
  if (!cutoff) {
    if (width <= 1) {
      plan.decision = Decision("width(%" PRIu64 ")<=1 no_pool(%" PRIu64 ")",
                               static_cast<uint64_t>(width),
                               static_cast<uint64_t>(pool_ == nullptr ? 1
                                                                      : 0));
      plan.dirty_formulas =
          CountFormulasBounded(sheet, dirty, options_.max_cells);
      return plan;
    }
    if (plan.dirty_area < options_.min_parallel_cells) {
      plan.decision =
          Decision("dirty_area(%" PRIu64 ")<min_parallel_cells(%" PRIu64 ")",
                   plan.dirty_area, options_.min_parallel_cells);
      plan.dirty_formulas =
          CountFormulasBounded(sheet, dirty, options_.max_cells);
      return plan;
    }
  }

  const bool cell_granular = plan.dirty_area <= options_.max_cells &&
                             dirty.size() <= options_.max_ranges;
  if (!cell_granular && dirty.size() > options_.max_ranges) {
    plan.decision =
        Decision("dirty_ranges(%" PRIu64 ")>max_ranges(%" PRIu64 ")",
                 static_cast<uint64_t>(dirty.size()), options_.max_ranges);
    plan.dirty_formulas =
        CountFormulasBounded(sheet, dirty, options_.max_cells);
    return plan;
  }

  if (cell_granular) {
    std::vector<Cell> nodes;
    std::vector<const Expr*> asts;
    CollectDirtyFormulaCells(sheet, dirty, &nodes, &asts);
    const int n = static_cast<int>(nodes.size());
    plan.dirty_formulas = static_cast<uint64_t>(n);
    if (!cutoff && static_cast<uint64_t>(n) < options_.min_parallel_cells) {
      plan.decision =
          Decision("dirty_formulas(%" PRIu64 ")<min_parallel_cells(%" PRIu64
                   ")",
                   static_cast<uint64_t>(n), options_.min_parallel_cells);
      return plan;
    }

    CellWavePlan cells = BuildCellWavePlan(
        std::move(nodes), std::move(asts),
        cutoff ? seeds : std::span<const Range>(), options_.max_edges);
    plan.edges = cells.edges;

    if (!cells.over_budget) {
      plan.granularity = RecalcPlan::Granularity::kCellGranular;
      plan.decision = Decision("edges(%" PRIu64 ")<=max_edges(%" PRIu64 ")",
                               cells.edges, options_.max_edges);
      plan.wave_cells.reserve(cells.waves.size());
      if (cutoff) plan.wave_cutoff_eligible.reserve(cells.waves.size());
      for (const std::vector<int>& wave : cells.waves) {
        plan.wave_cells.push_back(wave.size());
        if (cutoff) {
          // Upper bound: nodes with no direct seed input MAY skip when
          // their dirty precedents all commit unchanged (and a prior
          // value is cached — unknowable in a dry run).
          uint64_t eligible = 0;
          for (int idx : wave) {
            if (cells.forced[idx] == 0) ++eligible;
          }
          plan.wave_cutoff_eligible.push_back(eligible);
        }
      }
      plan.cycle_cells = cells.leftover.size();
      return plan;
    }
    plan.decision = Decision("edges(%" PRIu64 ")>max_edges(%" PRIu64 ")",
                             cells.edges, options_.max_edges);
  } else {
    plan.decision = Decision("dirty_area(%" PRIu64 ")>max_cells(%" PRIu64 ")",
                             plan.dirty_area, options_.max_cells);
  }

  // Range-granular: mirror Execute's R-tree edge discovery.
  plan.granularity = RecalcPlan::Granularity::kRangeGranular;
  const int m = static_cast<int>(dirty.size());
  RTree index;
  for (int j = 0; j < m; ++j) index.Insert(dirty[j], j);

  std::vector<uint64_t> formulas(m, 0);
  std::vector<std::vector<int>> adj(m);
  std::vector<int> indeg(m, 0);
  std::vector<char> forced(m, 0);
  std::unordered_set<uint64_t> edge_seen;
  std::vector<A1Reference> refs;
  for (int j = 0; j < m; ++j) {
    for (const Cell& cell : EnumerateCells(dirty[j])) {
      const CellContent* content = sheet.Get(cell);
      if (content == nullptr || !content->IsFormula()) continue;
      ++formulas[j];
      if (cutoff && forced[j] == 0 && CoversCell(seeds, cell)) forced[j] = 1;
      refs.clear();
      ExtractReferences(*content->formula().ast, &refs);
      for (const A1Reference& ref : refs) {
        if (!ref.range.IsValid()) continue;
        if (cutoff && forced[j] == 0) {
          for (const Range& seed : seeds) {
            if (ref.range.Overlaps(seed)) {
              forced[j] = 1;
              break;
            }
          }
        }
        index.ForEachOverlap(ref.range, [&](const Range&, RTree::EntryId id) {
          const int i = static_cast<int>(id);
          if (i == j) return;
          uint64_t key = (static_cast<uint64_t>(i) << 32) |
                         static_cast<uint32_t>(j);
          if (!edge_seen.insert(key).second) return;
          adj[i].push_back(j);
          ++indeg[j];
        });
      }
    }
  }
  plan.dirty_formulas = 0;
  for (int j = 0; j < m; ++j) plan.dirty_formulas += formulas[j];
  plan.edges = edge_seen.size();

  std::vector<int> leftover;
  std::vector<std::vector<int>> waves = BuildWaves(adj, &indeg, &leftover);
  plan.wave_cells.reserve(waves.size());
  if (cutoff) plan.wave_cutoff_eligible.reserve(waves.size());
  for (const std::vector<int>& wave : waves) {
    uint64_t wave_cells = 0;
    uint64_t eligible = 0;
    for (int j : wave) {
      wave_cells += formulas[j];
      if (forced[j] == 0) eligible += formulas[j];
    }
    plan.wave_cells.push_back(wave_cells);
    if (cutoff) plan.wave_cutoff_eligible.push_back(eligible);
  }
  for (int j : leftover) plan.cycle_cells += formulas[j];
  return plan;
}

}  // namespace taco
