#include "sched/recalc_scheduler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "eval/evaluator.h"
#include "formula/references.h"
#include "rtree/rtree.h"
#include "sheet/sheet.h"

namespace taco {
namespace {

/// One worker's private evaluation context: an overlay evaluator that
/// reads through to the engine's shared cache but writes only locally.
/// Contexts persist across the waves of one pass, so a worker re-reads
/// its own earlier results without a base-cache hop; they are discarded
/// at the end of the pass.
struct WorkerContext {
  explicit WorkerContext(const Sheet& sheet, const Evaluator* base)
      : eval(&sheet, base) {}
  Evaluator eval;
};

/// Builds the per-pass worker contexts (lazily — serial passes never
/// allocate them).
std::vector<std::unique_ptr<WorkerContext>> MakeContexts(
    int n, const Sheet& sheet, const Evaluator* base) {
  std::vector<std::unique_ptr<WorkerContext>> contexts;
  contexts.reserve(n);
  for (int i = 0; i < n; ++i) {
    contexts.push_back(std::make_unique<WorkerContext>(sheet, base));
  }
  return contexts;
}

/// Partitions Kahn-style ready counts into waves. `adj[p]` lists the
/// nodes depending on p; `indeg` is consumed. Waves come out sorted by
/// node index so the partition is canonical regardless of adjacency
/// discovery order. Nodes still blocked at the end (on or downstream of
/// a cycle) are returned through `leftover`, in node order.
std::vector<std::vector<int>> BuildWaves(
    const std::vector<std::vector<int>>& adj, std::vector<int>* indeg,
    std::vector<int>* leftover) {
  const int n = static_cast<int>(indeg->size());
  std::vector<std::vector<int>> waves;
  std::vector<int> current;
  for (int i = 0; i < n; ++i) {
    if ((*indeg)[i] == 0) current.push_back(i);
  }
  int scheduled = 0;
  while (!current.empty()) {
    scheduled += static_cast<int>(current.size());
    std::vector<int> next;
    for (int node : current) {
      for (int dependent : adj[node]) {
        if (--(*indeg)[dependent] == 0) next.push_back(dependent);
      }
    }
    std::sort(next.begin(), next.end());
    waves.push_back(std::move(current));
    current = std::move(next);
  }
  if (scheduled < n) {
    leftover->reserve(n - scheduled);
    for (int i = 0; i < n; ++i) {
      if ((*indeg)[i] > 0) leftover->push_back(i);
    }
  }
  return waves;
}

/// Formats "lhs(value)cmp rhs(threshold)" decision tokens for plans.
std::string Decision(const char* format, uint64_t a, uint64_t b) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), format, a, b);
  return buffer;
}

/// Bounded formula count for plan reporting on the paths that never
/// enumerate nodes (serial fast-outs); `max_area` keeps a dry run from
/// outlasting the pass it describes.
uint64_t CountFormulasBounded(const Sheet& sheet, std::span<const Range> dirty,
                              uint64_t max_area) {
  uint64_t formulas = 0;
  uint64_t scanned = 0;
  for (const Range& range : dirty) {
    scanned += range.Area();
    if (scanned > max_area) break;
    for (const Cell& cell : EnumerateCells(range)) {
      if (sheet.IsFormulaCell(cell)) ++formulas;
    }
  }
  return formulas;
}

}  // namespace

RecalcScheduler::RecalcScheduler(ThreadPool* pool, SchedulerOptions options)
    : pool_(pool), options_(options) {}

RecalcExecutor::Outcome RecalcScheduler::Execute(const Sheet& sheet,
                                                 Evaluator* evaluator,
                                                 std::span<const Range> dirty) {
  Outcome outcome;

  // ----- Serial fast paths -------------------------------------------------
  // Evaluates `cells` on the calling thread via the shared evaluator —
  // bit-identical to RecalcMode::kSerial by construction.
  auto eval_serial_range = [&](const Range& range) {
    for (const Cell& cell : EnumerateCells(range)) {
      if (sheet.IsFormulaCell(cell)) {
        evaluator->EvaluateCell(cell);
        ++outcome.recalculated;
      }
    }
  };

  uint64_t dirty_area = 0;
  for (const Range& range : dirty) dirty_area += range.Area();

  const int width =
      pool_ == nullptr
          ? 1
          : std::max(1, std::min(options_.threads, pool_->num_threads()));
  if (width <= 1 || dirty_area < options_.min_parallel_cells) {
    for (const Range& range : dirty) eval_serial_range(range);
    return outcome;
  }

  // ----- Plan: enumerate dirty formula cells in serial order ---------------
  // (Shared by both granularities; the serial path visits cells in
  // exactly this order, which is what the leftover pass must replay.)
  const bool cell_granular = dirty_area <= options_.max_cells &&
                             dirty.size() <= options_.max_ranges;
  if (!cell_granular && dirty.size() > options_.max_ranges) {
    // Too fragmented for either plan: edge discovery would dominate.
    for (const Range& range : dirty) eval_serial_range(range);
    return outcome;
  }

  if (cell_granular) {
    // Nodes: every dirty formula cell, in dirty-range enumeration order.
    std::vector<Cell> nodes;
    std::vector<const Expr*> asts;
    for (const Range& range : dirty) {
      for (const Cell& cell : EnumerateCells(range)) {
        const CellContent* content = sheet.Get(cell);
        if (content != nullptr && content->IsFormula()) {
          nodes.push_back(cell);
          asts.push_back(content->formula().ast.get());
        }
      }
    }
    const int n = static_cast<int>(nodes.size());
    if (static_cast<uint64_t>(n) < options_.min_parallel_cells) {
      for (int i = 0; i < n; ++i) evaluator->EvaluateCell(nodes[i]);
      outcome.recalculated = n;
      return outcome;
    }

    // Per-column row index over the dirty nodes, for reference-range
    // intersection: ordered by column so a wide reference only visits
    // columns that actually hold dirty cells.
    std::map<int32_t, std::vector<std::pair<int32_t, int>>> columns;
    for (int i = 0; i < n; ++i) {
      columns[nodes[i].col].emplace_back(nodes[i].row, i);
    }
    for (auto& [col, rows] : columns) std::sort(rows.begin(), rows.end());

    // Expand each node's references into cell-level dirty edges
    // (precedent -> dependent), bounded by the edge budget.
    std::vector<std::vector<int>> adj(n);
    std::vector<int> indeg(n, 0);
    uint64_t edges = 0;
    bool over_budget = false;
    std::vector<A1Reference> refs;
    for (int d = 0; d < n && !over_budget; ++d) {
      refs.clear();
      ExtractReferences(*asts[d], &refs);
      for (const A1Reference& ref : refs) {
        const Range& r = ref.range;
        if (!r.IsValid()) continue;
        for (auto it = columns.lower_bound(r.head.col);
             it != columns.end() && it->first <= r.tail.col; ++it) {
          const auto& rows = it->second;
          auto lo = std::lower_bound(rows.begin(), rows.end(),
                                     std::make_pair(r.head.row, -1));
          for (auto row_it = lo;
               row_it != rows.end() && row_it->first <= r.tail.row;
               ++row_it) {
            // Duplicate references produce duplicate edges; indegree and
            // adjacency stay matched, so Kahn still converges. A
            // self-reference blocks its own node forever — exactly the
            // serial #CYCLE! case, resolved by the leftover pass.
            adj[row_it->second].push_back(d);
            ++indeg[d];
            if (++edges > options_.max_edges) {
              over_budget = true;
              break;
            }
          }
          if (over_budget) break;
        }
        if (over_budget) break;
      }
    }

    if (!over_budget) {
      std::vector<int> leftover;
      std::vector<std::vector<int>> waves =
          BuildWaves(adj, &indeg, &leftover);

      std::vector<std::unique_ptr<WorkerContext>> contexts;
      std::vector<Value> values(n);
      WaitGroup group;
      for (const std::vector<int>& wave : waves) {
        ++outcome.waves;
        outcome.max_wave_cells =
            std::max<uint64_t>(outcome.max_wave_cells, wave.size());
        if (wave.size() < options_.min_parallel_wave) {
          for (int idx : wave) evaluator->EvaluateCell(nodes[idx]);
          continue;
        }
        if (contexts.empty()) {
          contexts = MakeContexts(width, sheet, evaluator);
        }
        // Strided assignment balances skewed per-cell costs (e.g. the
        // growing SUM($A$1:Ar) of an FR column) across workers.
        const int tasks = std::min<int>(width, static_cast<int>(wave.size()));
        for (int c = 0; c < tasks; ++c) {
          pool_->Submit(&group, [&, c, tasks] {
            Evaluator& eval = contexts[c]->eval;
            for (size_t pos = c; pos < wave.size();
                 pos += static_cast<size_t>(tasks)) {
              const int idx = wave[pos];
              values[idx] = eval.EvaluateCell(nodes[idx]);
            }
          });
        }
        auto barrier_start = SteadyNow();
        group.Wait();
        outcome.barrier_wait_ns += NsSince(barrier_start);
        // Single-threaded commit: workers never touch the shared cache.
        for (int idx : wave) {
          evaluator->Prime(nodes[idx], std::move(values[idx]));
        }
      }
      // Cycle members and their downstream dependents, in serial order.
      for (int idx : leftover) evaluator->EvaluateCell(nodes[idx]);
      outcome.recalculated = n;
      return outcome;
    }
    // Edge budget blown: fall through to range-granular leveling.
  }

  // ----- Range-granular fallback -------------------------------------------
  // Nodes are the disjoint dirty ranges; an R-tree over them turns each
  // reference range into range-level edges. One range is one unit of
  // work (its formulas evaluate in enumeration order within a task).
  const int m = static_cast<int>(dirty.size());
  RTree index;
  for (int j = 0; j < m; ++j) index.Insert(dirty[j], j);

  std::vector<uint64_t> formulas(m, 0);
  std::vector<std::vector<int>> adj(m);
  std::vector<int> indeg(m, 0);
  std::unordered_set<uint64_t> edge_seen;
  std::vector<A1Reference> refs;
  for (int j = 0; j < m; ++j) {
    for (const Cell& cell : EnumerateCells(dirty[j])) {
      const CellContent* content = sheet.Get(cell);
      if (content == nullptr || !content->IsFormula()) continue;
      ++formulas[j];
      refs.clear();
      ExtractReferences(*content->formula().ast, &refs);
      for (const A1Reference& ref : refs) {
        if (!ref.range.IsValid()) continue;
        index.ForEachOverlap(ref.range, [&](const Range&, RTree::EntryId id) {
          const int i = static_cast<int>(id);
          // Intra-range dependencies are resolved by in-order evaluation
          // inside the range's task, so self-edges don't schedule.
          if (i == j) return;
          uint64_t key = (static_cast<uint64_t>(i) << 32) |
                         static_cast<uint32_t>(j);
          if (!edge_seen.insert(key).second) return;
          adj[i].push_back(j);
          ++indeg[j];
        });
      }
    }
  }

  std::vector<int> leftover;
  std::vector<std::vector<int>> waves = BuildWaves(adj, &indeg, &leftover);

  std::vector<std::unique_ptr<WorkerContext>> contexts;
  // Per-range results, committed after each wave's barrier.
  std::vector<std::vector<std::pair<Cell, Value>>> results(m);
  WaitGroup group;
  for (const std::vector<int>& wave : waves) {
    ++outcome.waves;
    uint64_t wave_cells = 0;
    for (int j : wave) wave_cells += formulas[j];
    outcome.max_wave_cells = std::max(outcome.max_wave_cells, wave_cells);
    if (wave_cells < options_.min_parallel_wave || wave.size() == 1) {
      for (int j : wave) eval_serial_range(dirty[j]);
      continue;
    }
    if (contexts.empty()) contexts = MakeContexts(width, sheet, evaluator);
    const int tasks = std::min<int>(width, static_cast<int>(wave.size()));
    for (int c = 0; c < tasks; ++c) {
      pool_->Submit(&group, [&, c, tasks] {
        Evaluator& eval = contexts[c]->eval;
        for (size_t pos = c; pos < wave.size();
             pos += static_cast<size_t>(tasks)) {
          const int j = wave[pos];
          for (const Cell& cell : EnumerateCells(dirty[j])) {
            if (sheet.IsFormulaCell(cell)) {
              results[j].emplace_back(cell, eval.EvaluateCell(cell));
            }
          }
        }
      });
    }
    auto barrier_start = SteadyNow();
    group.Wait();
    outcome.barrier_wait_ns += NsSince(barrier_start);
    for (int j : wave) {
      for (auto& [cell, value] : results[j]) {
        evaluator->Prime(cell, std::move(value));
        ++outcome.recalculated;
      }
      results[j].clear();
      results[j].shrink_to_fit();
    }
  }
  // Mutually-referencing ranges (cross-range cycles), in serial order.
  for (int j : leftover) eval_serial_range(dirty[j]);
  return outcome;
}

RecalcPlan RecalcScheduler::Plan(const Sheet& sheet,
                                 std::span<const Range> dirty) const {
  // IMPORTANT: every branch below replays the corresponding branch of
  // Execute — same thresholds, same order.  Changing one side without
  // the other breaks the EXPLAIN-matches-execution guarantee that
  // explain_test.cc pins down.
  RecalcPlan plan;
  plan.dirty_ranges = dirty.size();
  for (const Range& range : dirty) plan.dirty_area += range.Area();

  const int width =
      pool_ == nullptr
          ? 1
          : std::max(1, std::min(options_.threads, pool_->num_threads()));
  plan.width = width;

  if (width <= 1) {
    plan.decision = Decision("width(%" PRIu64 ")<=1 no_pool(%" PRIu64 ")",
                             static_cast<uint64_t>(width),
                             static_cast<uint64_t>(pool_ == nullptr ? 1 : 0));
    plan.dirty_formulas =
        CountFormulasBounded(sheet, dirty, options_.max_cells);
    return plan;
  }
  if (plan.dirty_area < options_.min_parallel_cells) {
    plan.decision =
        Decision("dirty_area(%" PRIu64 ")<min_parallel_cells(%" PRIu64 ")",
                 plan.dirty_area, options_.min_parallel_cells);
    plan.dirty_formulas =
        CountFormulasBounded(sheet, dirty, options_.max_cells);
    return plan;
  }

  const bool cell_granular = plan.dirty_area <= options_.max_cells &&
                             dirty.size() <= options_.max_ranges;
  if (!cell_granular && dirty.size() > options_.max_ranges) {
    plan.decision =
        Decision("dirty_ranges(%" PRIu64 ")>max_ranges(%" PRIu64 ")",
                 static_cast<uint64_t>(dirty.size()), options_.max_ranges);
    plan.dirty_formulas =
        CountFormulasBounded(sheet, dirty, options_.max_cells);
    return plan;
  }

  if (cell_granular) {
    std::vector<Cell> nodes;
    std::vector<const Expr*> asts;
    for (const Range& range : dirty) {
      for (const Cell& cell : EnumerateCells(range)) {
        const CellContent* content = sheet.Get(cell);
        if (content != nullptr && content->IsFormula()) {
          nodes.push_back(cell);
          asts.push_back(content->formula().ast.get());
        }
      }
    }
    const int n = static_cast<int>(nodes.size());
    plan.dirty_formulas = static_cast<uint64_t>(n);
    if (static_cast<uint64_t>(n) < options_.min_parallel_cells) {
      plan.decision =
          Decision("dirty_formulas(%" PRIu64 ")<min_parallel_cells(%" PRIu64
                   ")",
                   static_cast<uint64_t>(n), options_.min_parallel_cells);
      return plan;
    }

    std::map<int32_t, std::vector<std::pair<int32_t, int>>> columns;
    for (int i = 0; i < n; ++i) {
      columns[nodes[i].col].emplace_back(nodes[i].row, i);
    }
    for (auto& [col, rows] : columns) std::sort(rows.begin(), rows.end());

    std::vector<std::vector<int>> adj(n);
    std::vector<int> indeg(n, 0);
    uint64_t edges = 0;
    bool over_budget = false;
    std::vector<A1Reference> refs;
    for (int d = 0; d < n && !over_budget; ++d) {
      refs.clear();
      ExtractReferences(*asts[d], &refs);
      for (const A1Reference& ref : refs) {
        const Range& r = ref.range;
        if (!r.IsValid()) continue;
        for (auto it = columns.lower_bound(r.head.col);
             it != columns.end() && it->first <= r.tail.col; ++it) {
          const auto& rows = it->second;
          auto lo = std::lower_bound(rows.begin(), rows.end(),
                                     std::make_pair(r.head.row, -1));
          for (auto row_it = lo;
               row_it != rows.end() && row_it->first <= r.tail.row;
               ++row_it) {
            adj[row_it->second].push_back(d);
            ++indeg[d];
            if (++edges > options_.max_edges) {
              over_budget = true;
              break;
            }
          }
          if (over_budget) break;
        }
        if (over_budget) break;
      }
    }
    plan.edges = edges;

    if (!over_budget) {
      plan.granularity = RecalcPlan::Granularity::kCellGranular;
      plan.decision = Decision("edges(%" PRIu64 ")<=max_edges(%" PRIu64 ")",
                               edges, options_.max_edges);
      std::vector<int> leftover;
      std::vector<std::vector<int>> waves =
          BuildWaves(adj, &indeg, &leftover);
      plan.wave_cells.reserve(waves.size());
      for (const std::vector<int>& wave : waves) {
        plan.wave_cells.push_back(wave.size());
      }
      plan.cycle_cells = leftover.size();
      return plan;
    }
    plan.decision = Decision("edges(%" PRIu64 ")>max_edges(%" PRIu64 ")",
                             edges, options_.max_edges);
  } else {
    plan.decision = Decision("dirty_area(%" PRIu64 ")>max_cells(%" PRIu64 ")",
                             plan.dirty_area, options_.max_cells);
  }

  // Range-granular: mirror Execute's R-tree edge discovery.
  plan.granularity = RecalcPlan::Granularity::kRangeGranular;
  const int m = static_cast<int>(dirty.size());
  RTree index;
  for (int j = 0; j < m; ++j) index.Insert(dirty[j], j);

  std::vector<uint64_t> formulas(m, 0);
  std::vector<std::vector<int>> adj(m);
  std::vector<int> indeg(m, 0);
  std::unordered_set<uint64_t> edge_seen;
  std::vector<A1Reference> refs;
  for (int j = 0; j < m; ++j) {
    for (const Cell& cell : EnumerateCells(dirty[j])) {
      const CellContent* content = sheet.Get(cell);
      if (content == nullptr || !content->IsFormula()) continue;
      ++formulas[j];
      refs.clear();
      ExtractReferences(*content->formula().ast, &refs);
      for (const A1Reference& ref : refs) {
        if (!ref.range.IsValid()) continue;
        index.ForEachOverlap(ref.range, [&](const Range&, RTree::EntryId id) {
          const int i = static_cast<int>(id);
          if (i == j) return;
          uint64_t key = (static_cast<uint64_t>(i) << 32) |
                         static_cast<uint32_t>(j);
          if (!edge_seen.insert(key).second) return;
          adj[i].push_back(j);
          ++indeg[j];
        });
      }
    }
  }
  plan.dirty_formulas = 0;
  for (int j = 0; j < m; ++j) plan.dirty_formulas += formulas[j];
  plan.edges = edge_seen.size();

  std::vector<int> leftover;
  std::vector<std::vector<int>> waves = BuildWaves(adj, &indeg, &leftover);
  plan.wave_cells.reserve(waves.size());
  for (const std::vector<int>& wave : waves) {
    uint64_t wave_cells = 0;
    for (int j : wave) wave_cells += formulas[j];
    plan.wave_cells.push_back(wave_cells);
  }
  for (int j : leftover) plan.cycle_cells += formulas[j];
  return plan;
}

}  // namespace taco
