// Lock-free log-bucketed latency histograms.
//
// The service's hot paths (MVCC reads, socket command dispatch) record a
// latency sample on every operation, so the recorder must cost a handful
// of relaxed atomic adds and never a lock: N readers funneled through a
// histogram mutex would re-serialize the very path the MVCC layer exists
// to keep lock-free. Samples land in logarithmic buckets — 5 per decade
// from 1µs to ~63s, 40 buckets — which is enough resolution to report
// p50/p95/p99 within ~26% (one bucket ratio) across the entire range an
// interactive recalc service can plausibly produce, from a cache-hit
// versioned GET to a paper-scale full-sheet recalculation.
//
// Sharding: each histogram keeps `kShards` cache-line-padded copies of
// its counters and a thread picks one by a stable round-robin slot, so
// concurrent recorders on different cores do not serialize on cache-line
// ownership of one bucket array. Snapshot() merges the shards; it is a
// relaxed read (scrapes tolerate a sample's worth of skew — consistency
// across counters is not worth a read-path fence).
//
// Time is integer nanoseconds end-to-end. The previous aggregates went
// through a `double` milliseconds field, which silently flushed
// sub-millisecond reads toward zero once accumulated; a 5µs read must
// land in a nonzero bucket (tests assert exactly that).

#ifndef TACO_OBS_HISTOGRAM_H_
#define TACO_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace taco::obs {

/// A merged point-in-time view of one histogram (plain integers; safe to
/// copy, compare, and render without touching the live atomics).
struct HistogramSnapshot {
  /// One counter per finite bucket plus the overflow bucket.
  static constexpr size_t kBuckets = 40;

  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t max_ns = 0;
  std::array<uint64_t, kBuckets + 1> buckets{};  ///< [kBuckets] = overflow.

  /// Interpolated quantile in nanoseconds, q in [0, 1]. Positions inside
  /// a bucket interpolate linearly between its bounds; the overflow
  /// bucket interpolates toward max_ns. Empty snapshots return 0.
  double QuantileNs(double q) const;

  double MeanNs() const {
    return count ? static_cast<double>(sum_ns) / static_cast<double>(count)
                 : 0.0;
  }

  /// Merges `other` into this snapshot (bucket-wise sum, max of max).
  void Merge(const HistogramSnapshot& other);
};

/// Thread-safe latency histogram; Record is lock-free and wait-free on
/// every architecture with native 64-bit fetch_add (the max update is a
/// bounded CAS loop). Zero-initialized; no dynamic allocation.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  /// Upper bound (exclusive) of bucket i in nanoseconds:
  /// 1000 * 10^(i/5), i.e. 1µs, 1.58µs, 2.51µs, ... ~63s. Samples at or
  /// over the last bound land in the overflow bucket.
  static const std::array<uint64_t, kBuckets>& BucketBoundsNs();

  /// Index of the bucket `ns` falls into (kBuckets = overflow).
  static size_t BucketIndex(uint64_t ns);

  void Record(uint64_t ns);

  /// Merged view across shards (relaxed reads; see file comment).
  HistogramSnapshot Snapshot() const;

 private:
  /// One shard's counters, padded so two shards never share a cache
  /// line. The bucket array itself spans several lines, but distinct
  /// threads use distinct shards, so there is no cross-thread sharing —
  /// false or true — on any of them.
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> max_ns{0};
    std::atomic<uint64_t> buckets[kBuckets + 1]{};
  };
  static constexpr size_t kShards = 8;  // Power of two.

  Shard& ShardForThisThread();

  Shard shards_[kShards];
};

}  // namespace taco::obs

#endif  // TACO_OBS_HISTOGRAM_H_
