#include "obs/exposition.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace taco::obs {
namespace {

bool NameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool NameChar(char c) { return NameStartChar(c) || (c >= '0' && c <= '9'); }

/// Renders a sample value: integers exactly (uint64 counts round-trip),
/// everything else with enough digits to preserve microsecond structure
/// in seconds-unit values.
std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || !NameStartChar(name[0])) return false;
  for (char c : name) {
    if (!NameChar(c)) return false;
  }
  return true;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void PromBuilder::Family(std::string_view name, std::string_view help,
                         std::string_view type) {
  assert(IsValidMetricName(name));
  out_ += "# HELP ";
  out_.append(name);
  out_ += ' ';
  // HELP text escapes backslash and newline (but not quotes).
  for (char c : help) {
    if (c == '\\') {
      out_ += "\\\\";
    } else if (c == '\n') {
      out_ += "\\n";
    } else {
      out_ += c;
    }
  }
  out_ += "\n# TYPE ";
  out_.append(name);
  out_ += ' ';
  out_.append(type);
  out_ += '\n';
}

void PromBuilder::Sample(std::string_view name, const Labels& labels,
                         double value) {
  assert(IsValidMetricName(name));
  out_.append(name);
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [key, val] : labels) {
      assert(IsValidMetricName(key) && key.find(':') == std::string::npos);
      if (!first) out_ += ',';
      first = false;
      out_ += key;
      out_ += "=\"";
      out_ += EscapeLabelValue(val);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  out_ += FormatValue(value);
  out_ += '\n';
}

void PromBuilder::Histogram(std::string_view name, const Labels& labels,
                            const HistogramSnapshot& snapshot) {
  const auto& bounds = LatencyHistogram::BucketBoundsNs();
  Labels with_le = labels;
  with_le.emplace_back("le", "");
  uint64_t cumulative = 0;
  std::string bucket_name(name);
  bucket_name += "_bucket";
  for (size_t i = 0; i < bounds.size(); ++i) {
    cumulative += snapshot.buckets[i];
    char le[32];
    // le is the bound in SECONDS. Bounds are exact integer ns, so %.9g
    // renders them without noise (e.g. 1µs -> "1e-06").
    std::snprintf(le, sizeof(le), "%.9g",
                  static_cast<double>(bounds[i]) / 1e9);
    with_le.back().second = le;
    Sample(bucket_name, with_le, static_cast<double>(cumulative));
  }
  cumulative += snapshot.buckets[LatencyHistogram::kBuckets];
  with_le.back().second = "+Inf";
  Sample(bucket_name, with_le, static_cast<double>(cumulative));
  Sample(std::string(name) + "_sum", labels,
         static_cast<double>(snapshot.sum_ns) / 1e9);
  // _count is the bucket total, NOT snapshot.count: a snapshot taken
  // mid-Record can hold a bucket increment whose count increment is not
  // visible yet (relaxed reads, by design), and +Inf != _count would
  // make the scrape internally inconsistent. The bucket sum is what the
  // buckets actually say; count catches up by the next scrape.
  Sample(std::string(name) + "_count", labels,
         static_cast<double>(cumulative));
}

std::string PromBuilder::Finish() && { return std::move(out_); }

}  // namespace taco::obs
