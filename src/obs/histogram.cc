#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace taco::obs {
namespace {

/// Stable per-thread shard slot, assigned round-robin on first use so
/// concurrent recorders land on distinct padded shards.
unsigned ThreadSlot() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::array<uint64_t, LatencyHistogram::kBuckets> ComputeBounds() {
  std::array<uint64_t, LatencyHistogram::kBuckets> bounds{};
  for (size_t i = 0; i < bounds.size(); ++i) {
    // 5 buckets per decade starting at 1µs. Rounding to integer ns keeps
    // the bounds exact and monotonic (the ratio is ~1.585, far above
    // 1 ns granularity everywhere in range).
    bounds[i] = static_cast<uint64_t>(
        std::llround(1000.0 * std::pow(10.0, static_cast<double>(i) / 5.0)));
  }
  return bounds;
}

}  // namespace

const std::array<uint64_t, LatencyHistogram::kBuckets>&
LatencyHistogram::BucketBoundsNs() {
  static const std::array<uint64_t, kBuckets> bounds = ComputeBounds();
  return bounds;
}

size_t LatencyHistogram::BucketIndex(uint64_t ns) {
  const auto& bounds = BucketBoundsNs();
  // Branch-light binary search: 40 bounds resolve in 6 comparisons, all
  // over one read-shared cache-resident array.
  size_t lo = 0;
  size_t hi = bounds.size();  // == kBuckets, the overflow index.
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (ns < bounds[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

LatencyHistogram::Shard& LatencyHistogram::ShardForThisThread() {
  return shards_[ThreadSlot() % kShards];
}

void LatencyHistogram::Record(uint64_t ns) {
  Shard& shard = ShardForThisThread();
  shard.buckets[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = shard.max_ns.load(std::memory_order_relaxed);
  while (prev < ns && !shard.max_ns.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const Shard& shard : shards_) {
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
    snapshot.max_ns = std::max(snapshot.max_ns,
                               shard.max_ns.load(std::memory_order_relaxed));
    for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
      snapshot.buckets[i] +=
          shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::QuantileNs(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The sample at (0-based) rank q*(count-1), located by cumulative
  // bucket counts and interpolated linearly inside its bucket.
  double rank = q * static_cast<double>(count - 1);
  const auto& bounds = LatencyHistogram::BucketBoundsNs();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    double begin = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (rank >= static_cast<double>(cumulative)) continue;
    double lower =
        i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    // The overflow bucket has no upper bound; the observed max is the
    // tightest honest one. Also cap finite buckets at max_ns so a lone
    // sample reports its (known) exact maximum rather than its bucket
    // ceiling.
    double upper = i < bounds.size()
                       ? static_cast<double>(bounds[i])
                       : static_cast<double>(max_ns);
    upper = std::min(upper, static_cast<double>(max_ns));
    if (upper < lower) upper = lower;
    double fraction =
        (rank - begin + 0.5) / static_cast<double>(buckets[i]);
    fraction = std::clamp(fraction, 0.0, 1.0);
    return lower + (upper - lower) * fraction;
  }
  return static_cast<double>(max_ns);
}

}  // namespace taco::obs
