#include "obs/process_stats.h"

#include <cstdio>
#include <cstring>
#include <string>

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>
#endif

namespace taco::obs {

#ifdef __linux__
namespace {

bool ReadSmallFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  out->assign(buf, n);
  return n > 0;
}

int64_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int64_t count = 0;
  while (struct dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  closedir(dir);
  // The scan itself holds one fd open; don't count it.
  return count > 0 ? count - 1 : count;
}

}  // namespace

ProcessStats SampleProcessStats() {
  ProcessStats stats;

  std::string statm;
  if (ReadSmallFile("/proc/self/statm", &statm)) {
    // statm: size resident shared ... (in pages).
    unsigned long long size_pages = 0, resident_pages = 0;
    if (std::sscanf(statm.c_str(), "%llu %llu", &size_pages,
                    &resident_pages) == 2) {
      stats.rss_bytes = static_cast<int64_t>(resident_pages) *
                        static_cast<int64_t>(sysconf(_SC_PAGESIZE));
    }
  }

  stats.open_fds = CountOpenFds();

  std::string stat;
  if (ReadSmallFile("/proc/self/stat", &stat)) {
    // The comm field is parenthesised and may itself contain spaces or
    // parens, so split after the LAST ')'.  Counting from the token
    // after it: state=1 ... num_threads=18 ... starttime=20.
    size_t close = stat.rfind(')');
    if (close != std::string::npos) {
      const char* p = stat.c_str() + close + 1;
      long long threads = -1;
      unsigned long long starttime_ticks = 0;
      int field = 0;
      while (*p != '\0' && field < 20) {
        while (*p == ' ') ++p;
        ++field;
        if (field == 18) std::sscanf(p, "%lld", &threads);
        if (field == 20) std::sscanf(p, "%llu", &starttime_ticks);
        while (*p != '\0' && *p != ' ') ++p;
      }
      stats.threads = threads;

      std::string uptime;
      double system_uptime = 0.0;
      if (starttime_ticks > 0 && ReadSmallFile("/proc/uptime", &uptime) &&
          std::sscanf(uptime.c_str(), "%lf", &system_uptime) == 1) {
        double start_seconds = static_cast<double>(starttime_ticks) /
                               static_cast<double>(sysconf(_SC_CLK_TCK));
        double up = system_uptime - start_seconds;
        stats.uptime_seconds = up > 0.0 ? up : 0.0;
      }
    }
  }

  return stats;
}

#else  // !__linux__

ProcessStats SampleProcessStats() { return ProcessStats{}; }

#endif

}  // namespace taco::obs
