#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <cstring>

#include "obs/rid.h"

namespace taco::obs {

namespace {

/// Bounded in-place appender: formats into a caller-owned buffer and
/// silently truncates on overflow (a cut log line beats a blocked
/// request).  Leaves room for nothing — the caller sizes the buffer.
class Appender {
 public:
  Appender(char* buf, size_t cap) : buf_(buf), cap_(cap) {}

  void PutChar(char c) {
    if (len_ < cap_) buf_[len_++] = c;
  }
  void PutRaw(std::string_view s) {
    size_t n = s.size();
    if (len_ + n > cap_) n = cap_ - len_;
    std::memcpy(buf_ + len_, s.data(), n);
    len_ += n;
  }
  void PutU64(uint64_t v) {
    char tmp[20];
    int n = std::snprintf(tmp, sizeof(tmp), "%" PRIu64, v);
    PutRaw(std::string_view(tmp, static_cast<size_t>(n)));
  }
  void PutI64(int64_t v) {
    char tmp[21];
    int n = std::snprintf(tmp, sizeof(tmp), "%" PRId64, v);
    PutRaw(std::string_view(tmp, static_cast<size_t>(n)));
  }
  void PutF64(double v) {
    char tmp[32];
    int n = std::snprintf(tmp, sizeof(tmp), "%.6g", v);
    PutRaw(std::string_view(tmp, static_cast<size_t>(n)));
  }
  /// JSON string body: escapes quote, backslash, and control bytes.
  void PutJsonEscaped(std::string_view s) {
    for (char c : s) {
      unsigned char u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        PutChar('\\');
        PutChar(c);
      } else if (c == '\n') {
        PutRaw("\\n");
      } else if (c == '\t') {
        PutRaw("\\t");
      } else if (c == '\r') {
        PutRaw("\\r");
      } else if (u < 0x20) {
        char tmp[8];
        std::snprintf(tmp, sizeof(tmp), "\\u%04x", u);
        PutRaw(tmp);
      } else {
        PutChar(c);
      }
    }
  }

  size_t len() const { return len_; }

 private:
  char* buf_;
  size_t cap_;
  size_t len_ = 0;
};

bool TextNeedsQuoting(std::string_view s) {
  if (s.empty()) return true;
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (c == ' ' || c == '"' || c == '=' || u < 0x20) return true;
  }
  return false;
}

void PutTextValue(Appender* out, std::string_view s) {
  if (!TextNeedsQuoting(s)) {
    out->PutRaw(s);
    return;
  }
  out->PutChar('"');
  out->PutJsonEscaped(s);  // same escapes read fine in logfmt
  out->PutChar('"');
}

uint64_t WallClockMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") { *out = LogLevel::kDebug; return true; }
  if (text == "info")  { *out = LogLevel::kInfo;  return true; }
  if (text == "warn")  { *out = LogLevel::kWarn;  return true; }
  if (text == "error") { *out = LogLevel::kError; return true; }
  return false;
}

std::string_view LogFormatName(LogFormat format) {
  switch (format) {
    case LogFormat::kJson: return "json";
    case LogFormat::kText: return "text";
  }
  return "?";
}

bool ParseLogFormat(std::string_view text, LogFormat* out) {
  if (text == "json") { *out = LogFormat::kJson; return true; }
  if (text == "text" || text == "logfmt") {
    *out = LogFormat::kText;
    return true;
  }
  return false;
}

std::unique_ptr<Logger> Logger::Open(Options options) {
  std::unique_ptr<Logger> logger(new Logger(std::move(options)));
  if (!logger->OpenSink()) return nullptr;
  logger->writer_ = std::thread([raw = logger.get()] { raw->WriterLoop(); });
  return logger;
}

Logger::Logger(Options options)
    : level_(static_cast<int>(options.level)),
      format_(options.format),
      path_(std::move(options.path)) {
  capacity_ = RoundUpPow2(options.queue_slots < 2 ? 2 : options.queue_slots);
  slot_bytes_ = options.max_event_bytes < 64 ? 64 : options.max_event_bytes;
  slots_ = std::vector<Slot>(capacity_);
  payloads_ = std::make_unique<char[]>(capacity_ * slot_bytes_);
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool Logger::OpenSink() {
  if (path_.empty()) {
    out_ = stderr;
    return true;
  }
  out_ = std::fopen(path_.c_str(), "a");
  return out_ != nullptr;
}

Logger::~Logger() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (out_ != nullptr && out_ != stderr) std::fclose(out_);
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;

  // Format the whole line on the caller's stack, then copy into a slot.
  char local[1024];
  size_t budget = slot_bytes_ < sizeof(local) ? slot_bytes_ : sizeof(local);
  Appender out(local, budget - 1);  // reserve the trailing newline
  uint64_t rid = CurrentRid();
  uint64_t ts = WallClockMicros();

  if (format_ == LogFormat::kJson) {
    out.PutRaw("{\"ts_us\":");
    out.PutU64(ts);
    out.PutRaw(",\"level\":\"");
    out.PutRaw(LogLevelName(level));
    out.PutRaw("\",\"event\":\"");
    out.PutJsonEscaped(event);
    out.PutChar('"');
    if (rid != 0) {
      out.PutRaw(",\"rid\":");
      out.PutU64(rid);
    }
    for (const LogField& f : fields) {
      out.PutRaw(",\"");
      out.PutJsonEscaped(f.key);
      out.PutRaw("\":");
      switch (f.type) {
        case LogField::Type::kStr:
          out.PutChar('"');
          out.PutJsonEscaped(f.str);
          out.PutChar('"');
          break;
        case LogField::Type::kU64: out.PutU64(f.u64); break;
        case LogField::Type::kI64: out.PutI64(f.i64); break;
        case LogField::Type::kF64: out.PutF64(f.f64); break;
        case LogField::Type::kBool:
          out.PutRaw(f.b ? "true" : "false");
          break;
      }
    }
    out.PutChar('}');
  } else {
    out.PutRaw("ts_us=");
    out.PutU64(ts);
    out.PutRaw(" level=");
    out.PutRaw(LogLevelName(level));
    out.PutRaw(" event=");
    PutTextValue(&out, event);
    if (rid != 0) {
      out.PutRaw(" rid=");
      out.PutU64(rid);
    }
    for (const LogField& f : fields) {
      out.PutChar(' ');
      out.PutRaw(f.key);
      out.PutChar('=');
      switch (f.type) {
        case LogField::Type::kStr: PutTextValue(&out, f.str); break;
        case LogField::Type::kU64: out.PutU64(f.u64); break;
        case LogField::Type::kI64: out.PutI64(f.i64); break;
        case LogField::Type::kF64: out.PutF64(f.f64); break;
        case LogField::Type::kBool:
          out.PutRaw(f.b ? "true" : "false");
          break;
      }
    }
  }

  // Claim a slot (Vyukov MPMC enqueue, drop-on-full).
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Slot* slot = nullptr;
  for (;;) {
    slot = &slots_[pos & (capacity_ - 1)];
    uint64_t seq = slot->seq.load(std::memory_order_acquire);
    intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      // Full lap behind the consumer: ring is full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }

  char* payload = payloads_.get() + (pos & (capacity_ - 1)) * slot_bytes_;
  size_t len = out.len();
  std::memcpy(payload, local, len);
  payload[len] = '\n';
  slot->len = static_cast<uint32_t>(len + 1);
  slot->seq.store(pos + 1, std::memory_order_release);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // Only pay the notify syscall when the writer is parked; a busy
  // writer re-polls the ring itself. The publish/sleep interleaving can
  // still lose a wakeup (store buffer delays our seq publish past the
  // idle check), which the writer's bounded wait_for absorbs: a missed
  // notify delays a drain by at most one 20ms tick, never loses it.
  if (writer_idle_.load(std::memory_order_seq_cst)) {
    wake_cv_.notify_one();
  }
}

bool Logger::HasReady() const {
  const Slot& slot = slots_[dequeue_pos_ & (capacity_ - 1)];
  return slot.seq.load(std::memory_order_acquire) == dequeue_pos_ + 1;
}

size_t Logger::DrainReady() {
  // Honour a pending reopen before writing the next batch so events
  // emitted after RequestReopen land in the fresh file.
  if (reopen_.exchange(false, std::memory_order_acq_rel) &&
      !path_.empty()) {
    if (out_ != nullptr && out_ != stderr) std::fclose(out_);
    out_ = std::fopen(path_.c_str(), "a");
    if (out_ == nullptr) out_ = stderr;  // degraded, but events survive
  }
  size_t n = 0;
  while (true) {
    Slot& slot = slots_[dequeue_pos_ & (capacity_ - 1)];
    if (slot.seq.load(std::memory_order_acquire) != dequeue_pos_ + 1) break;
    const char* payload =
        payloads_.get() + (dequeue_pos_ & (capacity_ - 1)) * slot_bytes_;
    std::fwrite(payload, 1, slot.len, out_);
    slot.seq.store(dequeue_pos_ + capacity_, std::memory_order_release);
    ++dequeue_pos_;
    ++n;
  }
  if (n > 0) std::fflush(out_);
  written_.store(dequeue_pos_, std::memory_order_release);
  return n;
}

void Logger::WriterLoop() {
  for (;;) {
    size_t wrote = DrainReady();
    std::unique_lock<std::mutex> lock(mu_);
    if (wrote > 0) flush_cv_.notify_all();
    if (stop_.load(std::memory_order_acquire) && !HasReady() &&
        !reopen_.load(std::memory_order_acquire)) {
      flush_cv_.notify_all();
      break;
    }
    writer_idle_.store(true, std::memory_order_seq_cst);
    if (!HasReady()) {
      wake_cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
    writer_idle_.store(false, std::memory_order_relaxed);
  }
}

void Logger::Flush() {
  uint64_t target = enqueue_pos_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(mu_);
  wake_cv_.notify_all();
  flush_cv_.wait(lock, [&] {
    if (reopen_.load(std::memory_order_acquire)) {
      wake_cv_.notify_all();
      return false;
    }
    if (written_.load(std::memory_order_acquire) < target) {
      wake_cv_.notify_all();
      return false;
    }
    return true;
  });
}

}  // namespace taco::obs
