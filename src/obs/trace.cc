#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace taco::obs {
namespace {

uint64_t ToUs(uint64_t ns) { return ns / 1000; }

}  // namespace

std::string TraceSpan::ToLine() const {
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "span seq=%" PRIu64 " rid=%" PRIu64
      " op=%s session=%s detail=%s ok=%d total_us=%" PRIu64
      " lock_us=%" PRIu64 " find_us=%" PRIu64 " eval_us=%" PRIu64
      " publish_us=%" PRIu64 " fsync_us=%" PRIu64 " respond_us=%" PRIu64
      " dirty=%" PRIu64 " waves=%" PRIu64,
      seq, rid, op.c_str(), session.c_str(),
      detail.empty() ? "-" : detail.c_str(),
      ok ? 1 : 0, ToUs(total_ns), ToUs(lock_wait_ns), ToUs(find_dependents_ns),
      ToUs(eval_ns), ToUs(publish_ns), ToUs(wal_fsync_ns), ToUs(respond_ns),
      dirty_cells, waves);
  return buffer;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Record(TraceSpan span) {
  uint64_t threshold = slow_threshold_ns();
  std::string slow_line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    span.seq = next_seq_++;
    if (threshold > 0 && span.total_ns >= threshold) {
      slow_line = span.ToLine();
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(span));
    } else {
      ring_[(span.seq - 1) % capacity_] = std::move(span);
    }
  }
  // The stderr write happens outside the lock: a blocked stderr (full
  // pipe) must slow the one offending thread, not every mutator.
  if (!slow_line.empty()) {
    std::fprintf(stderr, "taco_serve: slow-op %s\n", slow_line.c_str());
  }
}

std::vector<TraceSpan> TraceRing::Newest(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t held = ring_.size();
  if (n == 0 || n > held) n = held;
  std::vector<TraceSpan> out;
  out.reserve(n);
  // seq is assigned 1,2,3,... and slot (seq-1) % capacity holds the
  // span, so the newest is at (next_seq_ - 2) % capacity once full.
  for (size_t i = 0; i < n; ++i) {
    uint64_t seq = next_seq_ - 1 - i;           // Newest first.
    out.push_back(ring_[(seq - 1) % capacity_]);
  }
  return out;
}

uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t TraceRing::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = next_seq_ - 1;
  return total > capacity_ ? total - capacity_ : 0;
}

}  // namespace taco::obs
