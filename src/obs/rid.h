// Request correlation ids.
//
// A rid is a process-unique identifier minted once per protocol command
// and threaded through everything that command touches: trace spans,
// structured log events, slow-op stderr mirrors, and (optionally) the
// ERR response the client sees.  Joining on rid is what turns a p99
// spike in a histogram into "this command, on this session, took this
// wave plan".
//
// The current rid travels in a thread_local so deep layers (the session
// mutate path, the WAL observer) pick it up without parameter plumbing.
// Commands that hop threads must re-establish the scope on the worker;
// the protocol layer executes a command entirely on one thread, so in
// practice a RidScope at the top of CommandProcessor::Execute covers
// the whole request.
#ifndef TACO_OBS_RID_H_
#define TACO_OBS_RID_H_

#include <atomic>
#include <cstdint>

namespace taco::obs {

namespace internal {
inline std::atomic<uint64_t> g_next_rid{1};
inline thread_local uint64_t t_current_rid = 0;
}  // namespace internal

/// Mints a fresh process-unique rid.  Never returns 0 (0 means "no
/// request context").
inline uint64_t NextRid() {
  return internal::g_next_rid.fetch_add(1, std::memory_order_relaxed);
}

/// The rid of the request running on this thread, or 0 outside any
/// request scope.
inline uint64_t CurrentRid() { return internal::t_current_rid; }

/// RAII request scope: installs `rid` as the thread's current rid and
/// restores the previous value on destruction (scopes nest).
class RidScope {
 public:
  explicit RidScope(uint64_t rid) : prev_(internal::t_current_rid) {
    internal::t_current_rid = rid;
  }
  ~RidScope() { internal::t_current_rid = prev_; }

  RidScope(const RidScope&) = delete;
  RidScope& operator=(const RidScope&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace taco::obs

#endif  // TACO_OBS_RID_H_
