// Process-level introspection gauges for the Prometheus exposition and
// the health endpoints: resident set size, open file descriptors,
// thread count, and uptime.  Linux-only readings from /proc; on other
// platforms (or on read failure) gauges report -1 / 0 rather than
// failing the scrape.
#ifndef TACO_OBS_PROCESS_STATS_H_
#define TACO_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace taco::obs {

struct ProcessStats {
  int64_t rss_bytes = -1;
  int64_t open_fds = -1;
  int64_t threads = -1;
  double uptime_seconds = 0.0;
};

/// Samples the current process.  Cheap (three small /proc reads plus a
/// directory scan) but not free — call it per scrape, not per request.
ProcessStats SampleProcessStats();

}  // namespace taco::obs

#endif  // TACO_OBS_PROCESS_STATS_H_
