// Per-command trace spans: where one mutating command's time went.
//
// A latency histogram says *that* p99 moved; a span says *why*: each
// mutating command records a phase breakdown — lock wait, FindDependents
// (the paper's graph query), wave evaluation, version publish, WAL fsync,
// respond — into a fixed-size ring. The two graph phases are deliberately
// separate quantities: FindDependents cost is a property of the formula
// graph representation (the paper's subject) while evaluation cost is a
// property of the recompute strategy, and an operator tuning one must be
// able to see it apart from the other.
//
// The ring is a per-service, mutex-guarded circular buffer. Mutating
// commands already serialize per session and run at edit rate (not the
// lock-free read rate), so a short critical section per span is noise;
// the read path never records spans. TRACE <n> dumps the newest spans,
// and a slow-op threshold mirrors any span over it to stderr as one
// structured line — the "why was that edit slow" record that survives
// even when nobody was scraping.

#ifndef TACO_OBS_TRACE_H_
#define TACO_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace taco::obs {

/// One completed command's breakdown. All times in integer nanoseconds;
/// phases are disjoint and sum to at most total_ns (respond_ns absorbs
/// the remainder: result formatting and the return path to the caller).
struct TraceSpan {
  uint64_t seq = 0;          ///< Ring-assigned, monotonic per service.
  uint64_t rid = 0;          ///< Request correlation id; 0 = none.
  std::string op;            ///< Protocol verb ("SET", "BATCH", ...).
  std::string session;       ///< Session name.
  std::string detail;        ///< Cell/range text, or edit count for BATCH.
  bool ok = true;
  uint64_t total_ns = 0;
  uint64_t lock_wait_ns = 0;        ///< Queueing behind the session mutex.
  uint64_t find_dependents_ns = 0;  ///< Graph query (dirty-set identify).
  uint64_t eval_ns = 0;             ///< Re-evaluation (serial or waves).
  uint64_t publish_ns = 0;          ///< MVCC version build + publish.
  uint64_t wal_fsync_ns = 0;        ///< Durability wait: the inline WAL
                                    ///  fsync, or — under group commit —
                                    ///  the wait for the shared flush.
  uint64_t respond_ns = 0;          ///< Everything else (ack path).
  uint64_t dirty_cells = 0;
  uint64_t waves = 0;               ///< 0 = serial evaluation.

  /// Single-line structured rendering ("span seq=3 op=SET ... total_us=…"),
  /// used verbatim by TRACE responses and the slow-op stderr log. Integer
  /// microseconds: coarse enough to read, fine enough for a 5µs phase.
  std::string ToLine() const;
};

/// Fixed-capacity ring of the most recent spans. Thread-safe.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 256);

  /// Stores `span` (assigning its seq), evicting the oldest when full.
  /// When a slow threshold is set and total_ns reaches it, the span is
  /// also written to stderr as one ToLine() record.
  void Record(TraceSpan span);

  /// The newest `n` spans, newest first. n = 0 returns everything held.
  std::vector<TraceSpan> Newest(size_t n) const;

  /// Slow-op mirror threshold in nanoseconds; 0 disables (default).
  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  /// Spans ever recorded (not just those still held).
  uint64_t recorded() const;
  /// Spans evicted by ring wrap-around — the ring's silent-loss
  /// counter, surfaced in STATS and the Prometheus exposition.
  uint64_t overwritten() const;

 private:
  const size_t capacity_;
  std::atomic<uint64_t> slow_threshold_ns_{0};
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;  ///< Circular once full.
  uint64_t next_seq_ = 1;        ///< Also: count of spans ever recorded + 1.
};

}  // namespace taco::obs

#endif  // TACO_OBS_TRACE_H_
