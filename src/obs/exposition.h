// Prometheus text-exposition rendering (text format version 0.0.4).
//
// A small append-only builder producing scrape-ready output:
//
//   # HELP taco_ops_total Operations served.
//   # TYPE taco_ops_total counter
//   taco_ops_total{op="SET"} 41
//   ...
//
// The builder owns the grammar so every caller gets it right by
// construction: metric/label name charset is validated (debug-asserted),
// label values are escaped (backslash, quote, newline), each family
// emits exactly one HELP/TYPE pair before its samples, and histograms
// render the full convention — cumulative `_bucket{le="..."}` series
// with an `+Inf` terminal, `_sum`, and `_count` — with `le` in seconds,
// the Prometheus base unit for time. Duplicate series are a scrape-time
// error in Prometheus; the conformance test enforces uniqueness over
// everything the service exposes.

#ifndef TACO_OBS_EXPOSITION_H_
#define TACO_OBS_EXPOSITION_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace taco::obs {

/// label name -> value pairs, rendered in the order given.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Escapes a label value per the text format: backslash, double quote,
/// and newline become \\, \", and \n.
std::string EscapeLabelValue(std::string_view value);

/// True when `name` matches the metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* (label names: same minus ':').
bool IsValidMetricName(std::string_view name);

class PromBuilder {
 public:
  /// Starts a family: emits the HELP and TYPE lines. Every subsequent
  /// Sample/Histogram call for this family must use the same `name`.
  /// `type` is "counter", "gauge", "histogram", or "untyped".
  void Family(std::string_view name, std::string_view help,
              std::string_view type);

  /// One sample line: name{labels} value. Values render with enough
  /// precision to round-trip a uint64 count exactly when integral.
  void Sample(std::string_view name, const Labels& labels, double value);

  /// The full histogram convention for one label set: cumulative
  /// buckets (le in SECONDS, ns bounds converted), +Inf, _sum, _count.
  /// Call Family(name, help, "histogram") first.
  void Histogram(std::string_view name, const Labels& labels,
                 const HistogramSnapshot& snapshot);

  /// The rendered exposition. Ends with a newline (required: the text
  /// format terminates every line, including the last).
  std::string Finish() &&;

 private:
  std::string out_;
};

}  // namespace taco::obs

#endif  // TACO_OBS_EXPOSITION_H_
