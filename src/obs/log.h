// Structured logging: leveled JSON-lines / logfmt events through a
// bounded asynchronous sink.
//
// Design constraints (in order):
//   1. The emit fast path never blocks and never allocates.  Events are
//      formatted into a stack buffer and copied into a preallocated
//      ring slot; when the ring is full the event is dropped and a
//      relaxed counter incremented.  A logging burst can lose events —
//      it can never stall a mutation.
//   2. A single background writer thread drains the ring to the sink
//      (a file or stderr), so fwrite/fflush syscalls happen off the
//      request path.
//   3. SIGHUP-driven reopen (logrotate): RequestReopen() sets a flag the
//      writer honours between drains, so no event is lost across the
//      swap — everything accepted before the reopen lands in the old
//      file or the new one, never nowhere.
//
// The ring is a Vyukov-style bounded MPMC queue specialised to a single
// consumer: producers claim a slot with a CAS on the enqueue cursor and
// publish it by storing the slot's sequence number; the writer consumes
// in order and recycles slots by bumping the sequence one full lap.
#ifndef TACO_OBS_LOG_H_
#define TACO_OBS_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace taco::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);
bool ParseLogLevel(std::string_view text, LogLevel* out);

enum class LogFormat : int { kJson = 0, kText = 1 };

std::string_view LogFormatName(LogFormat format);
bool ParseLogFormat(std::string_view text, LogFormat* out);

/// One key/value pair of a structured event.  Construction is trivial
/// (no allocation); the referenced strings must outlive the Log() call
/// that uses them, which is all the emit path needs.
struct LogField {
  enum class Type { kStr, kU64, kI64, kF64, kBool };

  LogField(std::string_view k, std::string_view v)
      : key(k), type(Type::kStr), str(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), type(Type::kStr), str(v == nullptr ? "" : v) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), type(Type::kStr), str(v) {}
  LogField(std::string_view k, bool v) : key(k), type(Type::kBool), b(v) {}
  LogField(std::string_view k, double v) : key(k), type(Type::kF64), f64(v) {}
  LogField(std::string_view k, int v)
      : key(k), type(Type::kI64), i64(v) {}
  LogField(std::string_view k, long v)
      : key(k), type(Type::kI64), i64(v) {}
  LogField(std::string_view k, long long v)
      : key(k), type(Type::kI64), i64(v) {}
  LogField(std::string_view k, unsigned v)
      : key(k), type(Type::kU64), u64(v) {}
  LogField(std::string_view k, unsigned long v)
      : key(k), type(Type::kU64), u64(v) {}
  LogField(std::string_view k, unsigned long long v)
      : key(k), type(Type::kU64), u64(v) {}

  std::string_view key;
  Type type;
  std::string_view str;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  bool b = false;
};

class Logger {
 public:
  struct Options {
    LogLevel level = LogLevel::kInfo;
    LogFormat format = LogFormat::kJson;
    /// Sink path; empty writes to stderr (and RequestReopen is a no-op).
    std::string path;
    /// Ring capacity in events; rounded up to a power of two.
    size_t queue_slots = 1024;
    /// Per-event payload budget; longer lines are truncated, not split.
    size_t max_event_bytes = 512;
  };

  /// Opens the sink and starts the writer thread.  Returns nullptr if
  /// a file path was given but could not be opened for append.
  static std::unique_ptr<Logger> Open(Options options);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// True when `level` would be emitted — use to skip building fields
  /// for disabled levels.
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Emits one event.  Non-blocking: formats into a stack buffer,
  /// copies into a ring slot, returns.  Drops (and counts) when the
  /// ring is full.  The current thread's rid (obs/rid.h) is attached
  /// automatically when non-zero.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  /// Asks the writer to close and reopen the file sink (logrotate /
  /// SIGHUP).  Async-signal-safe: just an atomic store.
  void RequestReopen() { reopen_.store(true, std::memory_order_release); }

  /// Blocks until every event accepted before this call has been
  /// written to the sink and any pending reopen has been performed.
  /// Test/shutdown helper — never called on the hot path.
  void Flush();

  /// Events accepted into the ring (== eventually written).
  uint64_t events_logged() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Events dropped because the ring was full.
  uint64_t events_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  LogFormat format() const { return format_; }
  const std::string& path() const { return path_; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    uint32_t len = 0;
  };

  explicit Logger(Options options);
  bool OpenSink();
  void WriterLoop();
  /// Drains every ready slot; returns the number written.
  size_t DrainReady();
  bool HasReady() const;

  std::atomic<int> level_;
  LogFormat format_;
  std::string path_;
  size_t capacity_ = 0;      // power of two
  size_t slot_bytes_ = 0;
  std::vector<Slot> slots_;
  std::unique_ptr<char[]> payloads_;  // capacity_ * slot_bytes_

  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) uint64_t dequeue_pos_ = 0;  // writer thread only

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};
  std::atomic<bool> reopen_{false};
  std::atomic<bool> stop_{false};
  /// True only while the writer is (about to be) parked on wake_cv_.
  /// Producers skip the notify syscall when the writer is already busy
  /// draining — under load that is nearly always, and the writer's
  /// bounded sleep re-checks the ring regardless, so a lost wakeup only
  /// delays a drain by one timeout tick.
  std::atomic<bool> writer_idle_{false};

  std::FILE* out_ = nullptr;  // stderr when path_ empty
  std::mutex mu_;
  std::condition_variable wake_cv_;   // writer waits here
  std::condition_variable flush_cv_;  // Flush() waits here
  std::thread writer_;
};

}  // namespace taco::obs

#endif  // TACO_OBS_LOG_H_
