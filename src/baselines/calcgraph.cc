#include "baselines/calcgraph.h"

#include <algorithm>
#include <deque>

#include "baselines/deadline.h"
#include "common/range_set.h"

namespace taco {

CalcGraph::VertexId CalcGraph::InternVertex(const Range& range) {
  auto it = vertex_by_range_.find(range);
  if (it != vertex_by_range_.end()) return it->second;
  VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(Vertex{range, {}, {}, true});
  vertex_by_range_.emplace(range, id);
  ForEachContainer(range, [&](ContainerKey key) {
    containers_[key].push_back(id);
  });
  ++live_vertices_;
  return id;
}

void CalcGraph::RemoveVertexIfOrphan(VertexId id) {
  Vertex& vertex = vertices_[id];
  if (!vertex.alive || !vertex.out_edges.empty() || !vertex.in_edges.empty()) {
    return;
  }
  vertex.alive = false;
  --live_vertices_;
  vertex_by_range_.erase(vertex.range);
  ForEachContainer(vertex.range, [&](ContainerKey key) {
    auto it = containers_.find(key);
    if (it == containers_.end()) return;
    auto& list = it->second;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
    if (list.empty()) containers_.erase(it);
  });
}

void CalcGraph::RemoveEdge(EdgeId id) {
  Edge& edge = edges_[id];
  if (!edge.alive) return;
  edge.alive = false;
  --live_edges_;
  auto unlink = [id](std::vector<EdgeId>* list) {
    list->erase(std::remove(list->begin(), list->end(), id), list->end());
  };
  unlink(&vertices_[edge.prec].out_edges);
  unlink(&vertices_[edge.dep].in_edges);
  RemoveVertexIfOrphan(edge.prec);
  RemoveVertexIfOrphan(edge.dep);
}

Status CalcGraph::AddDependency(const Dependency& dep) {
  if (!dep.prec.IsValid() || !dep.dep.IsValid()) {
    return Status::InvalidArgument("invalid dependency " +
                                   dep.prec.ToString() + " -> " +
                                   dep.dep.ToString());
  }
  VertexId prec = InternVertex(dep.prec);
  VertexId dep_v = InternVertex(Range(dep.dep));
  EdgeId edge = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{prec, dep_v, true});
  vertices_[prec].out_edges.push_back(edge);
  vertices_[dep_v].in_edges.push_back(edge);
  ++live_edges_;
  return Status::OK();
}

std::vector<Range> CalcGraph::FindDependents(const Range& input) {
  counters_ = QueryCounters{};
  query_timed_out_ = false;
  Deadline deadline(query_budget_ms_);

  std::vector<Range> result;
  std::unordered_set<Cell> visited;
  std::deque<Range> queue{input};

  while (!queue.empty()) {
    Range current = queue.front();
    queue.pop_front();
    bool expired = false;
    ForEachOverlappingVertex(current, [&](VertexId id) {
      const Vertex& vertex = vertices_[id];
      ++counters_.vertex_visits;
      for (EdgeId edge_id : vertex.out_edges) {
        ++counters_.edge_accesses;
        const Cell dep_cell = vertices_[edges_[edge_id].dep].range.head;
        if (visited.insert(dep_cell).second) {
          result.push_back(Range(dep_cell));
          queue.push_back(Range(dep_cell));
          ++counters_.result_ranges;
        }
        if (deadline.Expired()) expired = true;
      }
    });
    if (expired) {
      query_timed_out_ = true;
      return result;
    }
  }
  return result;
}

std::vector<Range> CalcGraph::FindPrecedents(const Range& input) {
  counters_ = QueryCounters{};
  query_timed_out_ = false;
  Deadline deadline(query_budget_ms_);

  std::vector<Range> result;
  std::unordered_set<VertexId> visited;
  std::deque<Range> queue{input};

  while (!queue.empty()) {
    Range current = queue.front();
    queue.pop_front();
    bool expired = false;
    ForEachOverlappingVertex(current, [&](VertexId id) {
      const Vertex& vertex = vertices_[id];
      ++counters_.vertex_visits;
      for (EdgeId edge_id : vertex.in_edges) {
        ++counters_.edge_accesses;
        VertexId prec = edges_[edge_id].prec;
        if (visited.insert(prec).second) {
          const Range& prec_range = vertices_[prec].range;
          result.push_back(prec_range);
          queue.push_back(prec_range);
          ++counters_.result_ranges;
        }
        if (deadline.Expired()) expired = true;
      }
    });
    if (expired) {
      query_timed_out_ = true;
      return result;
    }
  }
  return DisjointifyRanges(result);
}

Status CalcGraph::RemoveFormulaCells(const Range& cells) {
  if (!cells.IsValid()) {
    return Status::InvalidArgument("invalid range " + cells.ToString());
  }
  std::vector<VertexId> targets;
  ForEachOverlappingVertex(cells, [&](VertexId id) {
    const Vertex& vertex = vertices_[id];
    if (cells.Contains(vertex.range) && !vertex.in_edges.empty()) {
      targets.push_back(id);
    }
  });
  for (VertexId vid : targets) {
    std::vector<EdgeId> in_edges = vertices_[vid].in_edges;  // copy: mutated
    for (EdgeId edge_id : in_edges) {
      RemoveEdge(edge_id);
    }
  }
  return Status::OK();
}

}  // namespace taco
