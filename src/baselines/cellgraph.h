// CellGraph: the RedisGraph-style baseline of Sec. VI-D.
//
// Graph databases have no notion of range vertices or spatial overlap, so
// the paper decomposes every range edge into cell-to-cell edges before
// bulk-loading ("an edge A1:A2 -> B1 is decomposed into A1 -> B1 and
// A2 -> B1"). This baseline reproduces that representation: a hash-map
// adjacency over single cells. Construction cost and memory explode with
// range sizes — a SUM over 10k rows becomes 10k edges — which is exactly
// the failure mode the paper measures (RedisGraph DNFs most of Fig. 13).
//
// Queries honor an optional deadline, mirroring the paper's 60 s cutoff
// for RedisGraph dependent searches.

#ifndef TACO_BASELINES_CELLGRAPH_H_
#define TACO_BASELINES_CELLGRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dependency_graph.h"

namespace taco {

/// Cell-granularity adjacency-list graph (no range vertices, no R-tree).
class CellGraph : public DependencyGraph {
 public:
  CellGraph() = default;

  Status AddDependency(const Dependency& dep) override;
  std::vector<Range> FindDependents(const Range& input) override;
  std::vector<Range> FindPrecedents(const Range& input) override;
  Status RemoveFormulaCells(const Range& cells) override;

  /// Vertices/edges of the decomposed cell-level graph (these are the
  /// sizes a graph database would store).
  size_t NumVertices() const override { return adjacency_.size(); }
  size_t NumEdges() const override { return num_edges_; }
  std::string Name() const override { return "CellGraph"; }

  /// Wall-clock budget per query; 0 = unlimited.
  void set_query_budget_ms(double ms) { query_budget_ms_ = ms; }
  /// True when the last query hit the budget (the DNF condition).
  bool query_timed_out() const { return query_timed_out_; }

 private:
  struct CellEntry {
    std::vector<Cell> out;  ///< Cells that depend on this cell.
    std::vector<Cell> in;   ///< Cells this cell depends on.
  };

  std::unordered_map<Cell, CellEntry> adjacency_;
  size_t num_edges_ = 0;
  double query_budget_ms_ = 0;
  bool query_timed_out_ = false;
};

}  // namespace taco

#endif  // TACO_BASELINES_CELLGRAPH_H_
