// ExcelLike: a model of the documented Excel dependency machinery, for the
// Sec. VI-E comparison.
//
// Excel stores duplicate formulas as shared-formula records — one master
// expression plus the list of cells using it, with relative references
// resolved per cell on demand [22]. That compresses *storage*, but the
// dependency information is not indexed for traversal: finding dependents
// reconstructs ("decompresses") each shared record's references and scans
// the cell lists. The paper measures Excel's Range.Dependents as slower
// than even NoComp (Fig. 16) and hypothesizes exactly this
// storage-compression-without-query-support design; this baseline
// reproduces that cost profile:
//   * memory-compact: one record per distinct relative formula shape,
//   * FindDependents: per BFS step, scan every shared record and resolve
//     its references per member cell (O(total dependencies) per step).

#ifndef TACO_BASELINES_EXCELLIKE_H_
#define TACO_BASELINES_EXCELLIKE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dependency_graph.h"

namespace taco {

/// Shared-formula-record dependency store with scan-based traversal.
class ExcelLikeGraph : public DependencyGraph {
 public:
  ExcelLikeGraph() = default;

  Status AddDependency(const Dependency& dep) override;
  std::vector<Range> FindDependents(const Range& input) override;
  std::vector<Range> FindPrecedents(const Range& input) override;
  Status RemoveFormulaCells(const Range& cells) override;

  /// Vertices: formula cells. Edges: shared records (the compact storage
  /// representation, analogous to Excel's shared formula records).
  /// Records are compacted as soon as their last member cell leaves, so
  /// this is always the live record count.
  size_t NumVertices() const override { return shape_of_cell_.size(); }
  size_t NumEdges() const override { return records_.size(); }
  std::string Name() const override { return "Excel-like"; }

  /// Total raw dependencies across all records.
  uint64_t NumRawDependencies() const { return raw_dependencies_; }

  /// Wall-clock budget per query; 0 = unlimited (paper cutoff: 300 s).
  void set_query_budget_ms(double ms) { query_budget_ms_ = ms; }
  bool query_timed_out() const { return query_timed_out_; }

 private:
  /// One reference of a formula shape, relative to the formula cell.
  /// (Absolute references are also stored relatively; resolution per cell
  /// reproduces them exactly, which is all traversal needs.)
  struct RelRef {
    Offset head;
    Offset tail;
    friend auto operator<=>(const RelRef&, const RelRef&) = default;
  };
  /// A shared formula record: a shape plus the cells that use it.
  struct Record {
    std::vector<RelRef> shape;
    std::vector<Cell> cells;
  };

  /// The shape key of a cell's accumulated references (ordered).
  using ShapeKey = std::vector<std::pair<std::pair<int32_t, int32_t>,
                                         std::pair<int32_t, int32_t>>>;

  static ShapeKey KeyOf(const std::vector<RelRef>& shape);

  /// Moves `cell` (with shape) into the record for that shape.
  void FileCellUnderRecord(const Cell& cell,
                           const std::vector<RelRef>& shape);
  void RemoveCellFromRecord(const Cell& cell);

  /// Resolved reference window of `ref` for member cell `cell`.
  static Range Resolve(const RelRef& ref, const Cell& cell) {
    return Range(cell + ref.head, cell + ref.tail);
  }

  std::map<ShapeKey, size_t> record_by_shape_;  ///< shape -> index.
  std::vector<Record> records_;
  std::unordered_map<Cell, std::vector<RelRef>> shape_of_cell_;
  uint64_t raw_dependencies_ = 0;
  double query_budget_ms_ = 0;
  bool query_timed_out_ = false;
};

}  // namespace taco

#endif  // TACO_BASELINES_EXCELLIKE_H_
