// Cooperative deadline checking for the expensive comparison baselines.
//
// The paper marks baseline runs as DNF ("did not finish") when they exceed
// a cutoff (300 s for builds, 60 s for RedisGraph queries, Sec. VI-D/E).
// The baselines here are intentionally faithful to their originals' cost
// profiles, so the benches need the same escape hatch: a deadline that the
// long loops poll. A deadline of zero disables checking.

#ifndef TACO_BASELINES_DEADLINE_H_
#define TACO_BASELINES_DEADLINE_H_

#include <chrono>

namespace taco {

/// Polls wall-clock time against a budget. Checking is amortized: the
/// clock is read once every kCheckInterval calls.
class Deadline {
 public:
  /// No deadline (never expires).
  Deadline() = default;

  /// Expires `budget_ms` from now; a budget of 0 never expires.
  explicit Deadline(double budget_ms) : budget_ms_(budget_ms) {
    start_ = std::chrono::steady_clock::now();
  }

  /// True once the budget is exhausted. Cheap enough for inner loops.
  bool Expired() {
    if (budget_ms_ <= 0) return false;
    if (expired_) return true;
    if (++calls_ % kCheckInterval != 0) return false;
    double elapsed = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    expired_ = elapsed > budget_ms_;
    return expired_;
  }

 private:
  static constexpr uint32_t kCheckInterval = 256;

  double budget_ms_ = 0;
  std::chrono::steady_clock::time_point start_;
  uint32_t calls_ = 0;
  bool expired_ = false;
};

}  // namespace taco

#endif  // TACO_BASELINES_DEADLINE_H_
