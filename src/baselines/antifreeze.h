// Antifreeze-style compressed dependents table (the comparison system of
// Sec. VI-D, from Bendre et al., SIGMOD'19 [7]).
//
// Antifreeze takes the opposite approach to TACO: it precomputes the full
// transitive dependents of every cell and compresses each dependent set
// into at most K bounding ranges stored in a per-cell look-up table.
// Queries are then a single table hit, but:
//   * the bounding ranges over-approximate, so results can contain false
//     positives (cells that do not actually depend on the input), and
//   * any formula change invalidates the table, which is rebuilt from
//     scratch — the build/maintenance costs the paper measures in
//     Figs. 13-15 (Antifreeze finished building for only 4 of 20 sheets).
//
// The table rebuild honors an optional time budget so benches can apply
// the paper's 300 s DNF cutoff.

#ifndef TACO_BASELINES_ANTIFREEZE_H_
#define TACO_BASELINES_ANTIFREEZE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dependency_graph.h"
#include "graph/nocomp_graph.h"

namespace taco {

/// Antifreeze baseline. Implements DependencyGraph; FindDependents may
/// return a superset of the true dependents (bounding-range compression).
class AntifreezeGraph : public DependencyGraph {
 public:
  /// `max_bounding_ranges` is K; the paper (and its original) use 20.
  explicit AntifreezeGraph(int max_bounding_ranges = 20)
      : max_bounding_ranges_(max_bounding_ranges) {}

  Status AddDependency(const Dependency& dep) override;

  /// Looks up the precomputed dependents. Triggers a (re)build when the
  /// table is stale. Returns an empty result if the build deadline
  /// expired (check build_timed_out()).
  std::vector<Range> FindDependents(const Range& input) override;

  /// Precedents are not precomputed by Antifreeze; answered via the
  /// underlying uncompressed graph.
  std::vector<Range> FindPrecedents(const Range& input) override;

  Status RemoveFormulaCells(const Range& cells) override;

  size_t NumVertices() const override { return base_.NumVertices(); }
  size_t NumEdges() const override { return base_.NumEdges(); }
  std::string Name() const override { return "Antifreeze"; }

  /// Wall-clock budget for one table rebuild; 0 = unlimited.
  void set_build_budget_ms(double ms) { build_budget_ms_ = ms; }

  /// True when the last rebuild hit the budget (the DNF condition).
  bool build_timed_out() const { return build_timed_out_; }

  /// Forces the table rebuild now (normally lazy). Returns false on
  /// deadline expiry.
  bool BuildLookupTable();

  size_t lookup_table_size() const { return table_.size(); }

 private:
  /// Greedy compression of a dependent cell set into <= K ranges:
  /// column-major sort, then chunked bounding boxes.
  std::vector<Range> CompressDependents(std::vector<Cell> cells) const;

  int max_bounding_ranges_;
  NoCompGraph base_;  ///< The uncompressed graph Antifreeze builds on.
  std::vector<Dependency> dependencies_;  ///< For rebuilds.
  std::unordered_map<Cell, std::vector<Range>> table_;
  bool table_stale_ = true;
  double build_budget_ms_ = 0;
  bool build_timed_out_ = false;
};

}  // namespace taco

#endif  // TACO_BASELINES_ANTIFREEZE_H_
