// CalcGraph: the NoComp-Calc baseline of Sec. VI-E.
//
// Reimplements the OpenOffice/LibreOffice Calc formula-dependency design
// [6]: instead of an R-tree, the sheet space is pre-partitioned into
// fixed-size rectangular containers; every vertex (range) is registered
// in each container it overlaps, and an overlap lookup scans the vertex
// lists of the containers covering the probe range. Large ranges register
// in many containers and popular containers accumulate long lists, which
// is why this design trails the R-tree on big sheets (Fig. 16).

#ifndef TACO_BASELINES_CALCGRAPH_H_
#define TACO_BASELINES_CALCGRAPH_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/dependency_graph.h"

namespace taco {

/// Uncompressed formula graph with container-partitioned overlap lookup.
class CalcGraph : public DependencyGraph {
 public:
  /// Container geometry: the sheet splits into blocks of
  /// `container_cols` x `container_rows` cells.
  explicit CalcGraph(int32_t container_cols = 16,
                     int32_t container_rows = 1024)
      : container_cols_(container_cols), container_rows_(container_rows) {}

  Status AddDependency(const Dependency& dep) override;
  std::vector<Range> FindDependents(const Range& input) override;
  std::vector<Range> FindPrecedents(const Range& input) override;
  Status RemoveFormulaCells(const Range& cells) override;

  size_t NumVertices() const override { return live_vertices_; }
  size_t NumEdges() const override { return live_edges_; }
  std::string Name() const override { return "NoComp-Calc"; }

  /// Wall-clock budget per query; 0 = unlimited (paper cutoff: 300 s).
  void set_query_budget_ms(double ms) { query_budget_ms_ = ms; }
  bool query_timed_out() const { return query_timed_out_; }

 private:
  using VertexId = uint32_t;
  using EdgeId = uint32_t;
  /// Container coordinate, packed (block_col << 32 | block_row).
  using ContainerKey = uint64_t;

  struct Vertex {
    Range range;
    std::vector<EdgeId> out_edges;
    std::vector<EdgeId> in_edges;
    bool alive = true;
  };
  struct Edge {
    VertexId prec = 0;
    VertexId dep = 0;
    bool alive = true;
  };

  ContainerKey KeyFor(int32_t block_col, int32_t block_row) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(block_col)) << 32) |
           static_cast<uint32_t>(block_row);
  }

  /// Calls `fn(container_key)` for every container overlapping `r`.
  template <typename Fn>
  void ForEachContainer(const Range& r, Fn&& fn) const {
    int32_t c0 = (r.head.col - 1) / container_cols_;
    int32_t c1 = (r.tail.col - 1) / container_cols_;
    int32_t r0 = (r.head.row - 1) / container_rows_;
    int32_t r1 = (r.tail.row - 1) / container_rows_;
    for (int32_t bc = c0; bc <= c1; ++bc) {
      for (int32_t br = r0; br <= r1; ++br) {
        fn(KeyFor(bc, br));
      }
    }
  }

  /// Calls `fn(vertex_id)` once per distinct vertex overlapping `probe`.
  template <typename Fn>
  void ForEachOverlappingVertex(const Range& probe, Fn&& fn) const {
    std::unordered_set<VertexId> seen;
    ForEachContainer(probe, [&](ContainerKey key) {
      auto it = containers_.find(key);
      if (it == containers_.end()) return;
      for (VertexId id : it->second) {
        if (!vertices_[id].range.Overlaps(probe)) continue;
        if (seen.insert(id).second) fn(id);
      }
    });
  }

  VertexId InternVertex(const Range& range);
  void RemoveVertexIfOrphan(VertexId id);
  void RemoveEdge(EdgeId id);

  int32_t container_cols_;
  int32_t container_rows_;
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::unordered_map<Range, VertexId> vertex_by_range_;
  std::unordered_map<ContainerKey, std::vector<VertexId>> containers_;
  size_t live_vertices_ = 0;
  size_t live_edges_ = 0;
  double query_budget_ms_ = 0;
  bool query_timed_out_ = false;
};

}  // namespace taco

#endif  // TACO_BASELINES_CALCGRAPH_H_
