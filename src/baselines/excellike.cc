#include "baselines/excellike.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "baselines/deadline.h"
#include "common/range_set.h"

namespace taco {

ExcelLikeGraph::ShapeKey ExcelLikeGraph::KeyOf(
    const std::vector<RelRef>& shape) {
  ShapeKey key;
  key.reserve(shape.size());
  for (const RelRef& ref : shape) {
    key.push_back({{ref.head.dcol, ref.head.drow},
                   {ref.tail.dcol, ref.tail.drow}});
  }
  return key;
}

void ExcelLikeGraph::RemoveCellFromRecord(const Cell& cell) {
  auto it = shape_of_cell_.find(cell);
  if (it == shape_of_cell_.end()) return;
  ShapeKey key = KeyOf(it->second);
  auto rec_it = record_by_shape_.find(key);
  if (rec_it != record_by_shape_.end()) {
    Record& record = records_[rec_it->second];
    auto pos = std::find(record.cells.begin(), record.cells.end(), cell);
    if (pos != record.cells.end()) {
      record.cells.erase(pos);
      raw_dependencies_ -= record.shape.size();
    }
    // Drop emptied records: NumEdges() reports the stored record count,
    // and reference accumulation in AddDependency refiles a cell through
    // every prefix shape, so tombstones would pile up on every insert and
    // be scanned by all future traversals. Swap-pop keeps the indices in
    // record_by_shape_ dense.
    if (record.cells.empty()) {
      size_t idx = rec_it->second;
      record_by_shape_.erase(rec_it);
      if (idx + 1 != records_.size()) {
        records_[idx] = std::move(records_.back());
        record_by_shape_[KeyOf(records_[idx].shape)] = idx;
      }
      records_.pop_back();
    }
  }
}

void ExcelLikeGraph::FileCellUnderRecord(const Cell& cell,
                                         const std::vector<RelRef>& shape) {
  ShapeKey key = KeyOf(shape);
  auto [it, inserted] = record_by_shape_.try_emplace(key, records_.size());
  if (inserted) {
    records_.push_back(Record{shape, {}});
  }
  records_[it->second].cells.push_back(cell);
  raw_dependencies_ += shape.size();
}

Status ExcelLikeGraph::AddDependency(const Dependency& dep) {
  if (!dep.prec.IsValid() || !dep.dep.IsValid()) {
    return Status::InvalidArgument("invalid dependency " +
                                   dep.prec.ToString() + " -> " +
                                   dep.dep.ToString());
  }
  // Accumulate the reference into the cell's shape and refile the cell:
  // dependencies of one formula arrive one by one, and the final record
  // is the full shape (matching shared-formula granularity).
  RemoveCellFromRecord(dep.dep);
  std::vector<RelRef>& shape = shape_of_cell_[dep.dep];
  shape.push_back(RelRef{dep.prec.head - dep.dep, dep.prec.tail - dep.dep});
  FileCellUnderRecord(dep.dep, shape);
  return Status::OK();
}

std::vector<Range> ExcelLikeGraph::FindDependents(const Range& input) {
  counters_ = QueryCounters{};
  query_timed_out_ = false;
  Deadline deadline(query_budget_ms_);

  std::vector<Range> result;
  std::unordered_set<Cell> visited;
  std::deque<Range> queue{input};

  while (!queue.empty()) {
    Range current = queue.front();
    queue.pop_front();
    // Decompression scan: every record, every member cell, every
    // reference — there is no index from ranges to referencing formulas.
    for (const Record& record : records_) {
      for (const Cell& cell : record.cells) {
        ++counters_.vertex_visits;
        bool depends = false;
        for (const RelRef& ref : record.shape) {
          ++counters_.edge_accesses;
          if (Resolve(ref, cell).Overlaps(current)) {
            depends = true;
            break;
          }
        }
        if (depends && visited.insert(cell).second) {
          result.push_back(Range(cell));
          queue.push_back(Range(cell));
          ++counters_.result_ranges;
        }
        if (deadline.Expired()) {
          query_timed_out_ = true;
          return result;
        }
      }
    }
  }
  return result;
}

std::vector<Range> ExcelLikeGraph::FindPrecedents(const Range& input) {
  counters_ = QueryCounters{};
  query_timed_out_ = false;
  Deadline deadline(query_budget_ms_);

  std::vector<Range> result;
  std::vector<Range> visited_ranges;
  std::deque<Range> queue{input};

  while (!queue.empty()) {
    Range current = queue.front();
    queue.pop_front();
    // Resolve the references of formula cells inside `current`.
    for (const auto& [cell, shape] : shape_of_cell_) {
      if (!current.Contains(cell)) continue;
      ++counters_.vertex_visits;
      for (const RelRef& ref : shape) {
        ++counters_.edge_accesses;
        Range window = Resolve(ref, cell);
        bool seen = std::find(visited_ranges.begin(), visited_ranges.end(),
                              window) != visited_ranges.end();
        if (!seen) {
          visited_ranges.push_back(window);
          result.push_back(window);
          queue.push_back(window);
          ++counters_.result_ranges;
        }
        if (deadline.Expired()) {
          query_timed_out_ = true;
          return DisjointifyRanges(result);
        }
      }
    }
  }
  return DisjointifyRanges(result);
}

Status ExcelLikeGraph::RemoveFormulaCells(const Range& cells) {
  if (!cells.IsValid()) {
    return Status::InvalidArgument("invalid range " + cells.ToString());
  }
  std::vector<Cell> targets;
  for (const auto& [cell, shape] : shape_of_cell_) {
    if (cells.Contains(cell)) targets.push_back(cell);
  }
  for (const Cell& cell : targets) {
    RemoveCellFromRecord(cell);
    shape_of_cell_.erase(cell);
  }
  return Status::OK();
}

}  // namespace taco
