#include "baselines/cellgraph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "baselines/deadline.h"
#include "common/range_set.h"

namespace taco {

Status CellGraph::AddDependency(const Dependency& dep) {
  if (!dep.prec.IsValid() || !dep.dep.IsValid()) {
    return Status::InvalidArgument("invalid dependency " +
                                   dep.prec.ToString() + " -> " +
                                   dep.dep.ToString());
  }
  // Bulk-load decomposition: one cell-to-cell edge per precedent cell.
  for (const Cell& prec_cell : EnumerateCells(dep.prec)) {
    adjacency_[prec_cell].out.push_back(dep.dep);
    adjacency_[dep.dep].in.push_back(prec_cell);
    ++num_edges_;
  }
  return Status::OK();
}

std::vector<Range> CellGraph::FindDependents(const Range& input) {
  counters_ = QueryCounters{};
  query_timed_out_ = false;
  Deadline deadline(query_budget_ms_);

  std::vector<Range> result;
  std::unordered_set<Cell> visited;
  std::deque<Cell> queue;

  // Without a spatial index, seeding a range query requires probing every
  // cell of the input (graph databases match start nodes by property).
  for (const Cell& c : EnumerateCells(input)) {
    if (adjacency_.contains(c)) queue.push_back(c);
    if (deadline.Expired()) {
      query_timed_out_ = true;
      return result;
    }
  }

  while (!queue.empty()) {
    Cell current = queue.front();
    queue.pop_front();
    auto it = adjacency_.find(current);
    if (it == adjacency_.end()) continue;
    ++counters_.vertex_visits;
    for (const Cell& dep : it->second.out) {
      ++counters_.edge_accesses;
      if (visited.insert(dep).second) {
        result.push_back(Range(dep));
        queue.push_back(dep);
        ++counters_.result_ranges;
      }
      if (deadline.Expired()) {
        query_timed_out_ = true;
        return result;
      }
    }
  }
  return result;
}

std::vector<Range> CellGraph::FindPrecedents(const Range& input) {
  counters_ = QueryCounters{};
  query_timed_out_ = false;
  Deadline deadline(query_budget_ms_);

  std::vector<Range> result;
  std::unordered_set<Cell> visited;
  std::deque<Cell> queue;
  for (const Cell& c : EnumerateCells(input)) {
    if (adjacency_.contains(c)) queue.push_back(c);
    if (deadline.Expired()) {
      query_timed_out_ = true;
      return result;
    }
  }

  while (!queue.empty()) {
    Cell current = queue.front();
    queue.pop_front();
    auto it = adjacency_.find(current);
    if (it == adjacency_.end()) continue;
    ++counters_.vertex_visits;
    for (const Cell& prec : it->second.in) {
      ++counters_.edge_accesses;
      if (visited.insert(prec).second) {
        result.push_back(Range(prec));
        queue.push_back(prec);
        ++counters_.result_ranges;
      }
      if (deadline.Expired()) {
        query_timed_out_ = true;
        return result;
      }
    }
  }
  return DisjointifyRanges(result);
}

Status CellGraph::RemoveFormulaCells(const Range& cells) {
  if (!cells.IsValid()) {
    return Status::InvalidArgument("invalid range " + cells.ToString());
  }
  // Collect formula cells in range (cells with incoming edges).
  std::vector<Cell> targets;
  for (const auto& [cell, entry] : adjacency_) {
    if (cells.Contains(cell) && !entry.in.empty()) targets.push_back(cell);
  }
  for (const Cell& target : targets) {
    CellEntry& entry = adjacency_[target];
    std::vector<Cell> in_cells = std::move(entry.in);
    entry.in.clear();
    num_edges_ -= in_cells.size();
    for (const Cell& prec : in_cells) {
      auto it = adjacency_.find(prec);
      if (it == adjacency_.end()) continue;
      auto& out = it->second.out;
      // Remove one occurrence per removed edge.
      auto pos = std::find(out.begin(), out.end(), target);
      if (pos != out.end()) out.erase(pos);
      if (it->second.out.empty() && it->second.in.empty()) {
        adjacency_.erase(it);
      }
    }
    auto self = adjacency_.find(target);
    if (self != adjacency_.end() && self->second.out.empty() &&
        self->second.in.empty()) {
      adjacency_.erase(self);
    }
  }
  return Status::OK();
}

}  // namespace taco
