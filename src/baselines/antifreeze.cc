#include "baselines/antifreeze.h"

#include <algorithm>
#include <unordered_set>

#include "common/range_set.h"

#include "baselines/deadline.h"

namespace taco {

Status AntifreezeGraph::AddDependency(const Dependency& dep) {
  TACO_RETURN_IF_ERROR(base_.AddDependency(dep));
  dependencies_.push_back(dep);
  table_stale_ = true;
  return Status::OK();
}

Status AntifreezeGraph::RemoveFormulaCells(const Range& cells) {
  TACO_RETURN_IF_ERROR(base_.RemoveFormulaCells(cells));
  dependencies_.erase(
      std::remove_if(dependencies_.begin(), dependencies_.end(),
                     [&cells](const Dependency& dep) {
                       return cells.Contains(dep.dep);
                     }),
      dependencies_.end());
  // Antifreeze rebuilds the whole table on any modification.
  table_stale_ = true;
  return Status::OK();
}

std::vector<Range> AntifreezeGraph::CompressDependents(
    std::vector<Cell> cells) const {
  std::vector<Range> out;
  if (cells.empty()) return out;
  std::sort(cells.begin(), cells.end());
  // Chunk the column-major-sorted cells into K consecutive groups and
  // bound each group: linear-time and mirrors the "few bounding ranges
  // per cell" table layout of the original system.
  size_t k = static_cast<size_t>(max_bounding_ranges_);
  size_t n = cells.size();
  size_t groups = std::min(k, n);
  size_t per_group = (n + groups - 1) / groups;
  for (size_t begin = 0; begin < n; begin += per_group) {
    size_t end = std::min(begin + per_group, n);
    Range box(cells[begin]);
    for (size_t i = begin + 1; i < end; ++i) {
      box = box.BoundingUnion(Range(cells[i]));
    }
    out.push_back(box);
  }
  return out;
}

bool AntifreezeGraph::BuildLookupTable() {
  table_.clear();
  build_timed_out_ = false;
  Deadline deadline(build_budget_ms_);

  // Key cells: every cell of every precedent range, plus every formula
  // cell (any of them can be the target of an update). This per-cell
  // expansion is exactly why Antifreeze builds are expensive on sheets
  // with large ranges.
  std::unordered_set<Cell> keys;
  for (const Dependency& dep : dependencies_) {
    for (const Cell& c : EnumerateCells(dep.prec)) {
      keys.insert(c);
      if (deadline.Expired()) {
        build_timed_out_ = true;
        table_stale_ = true;
        return false;
      }
    }
    keys.insert(dep.dep);
  }

  for (const Cell& key : keys) {
    std::vector<Range> dependents = base_.FindDependents(Range(key));
    std::vector<Cell> cells;
    for (const Range& r : dependents) {
      for (const Cell& c : EnumerateCells(r)) cells.push_back(c);
    }
    if (!cells.empty()) {
      table_.emplace(key, CompressDependents(std::move(cells)));
    }
    if (deadline.Expired()) {
      build_timed_out_ = true;
      table_stale_ = true;
      return false;
    }
  }
  table_stale_ = false;
  return true;
}

std::vector<Range> AntifreezeGraph::FindDependents(const Range& input) {
  if (table_stale_ && !BuildLookupTable()) {
    return {};
  }
  // Union of the table entries of the input cells. Entries are bounding
  // ranges, so the result may over-approximate.
  std::vector<Range> result;
  for (const Cell& c : EnumerateCells(input)) {
    auto it = table_.find(c);
    if (it == table_.end()) continue;
    result.insert(result.end(), it->second.begin(), it->second.end());
  }
  return DisjointifyRanges(result);
}

std::vector<Range> AntifreezeGraph::FindPrecedents(const Range& input) {
  return base_.FindPrecedents(input);
}

}  // namespace taco
