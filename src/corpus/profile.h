// Corpus profiles: the synthetic stand-ins for the Enron and Github
// datasets (DESIGN.md §4).
//
// The real corpora are collections of large spreadsheets whose formula
// regions were produced by autofill, copy-paste, and programmatic
// generation. The profiles below parameterize a generator that produces
// sheets through the same mechanisms, calibrated to the paper's reported
// statistics:
//   * pattern mix dominated by RR >> FF >> RR-Chain >> FR >> RF (Table V),
//   * compressed-edge fractions of a few percent, Enron noisier than
//     Github (Table IV),
//   * per-sheet max-dependent counts and chain lengths spanning the
//     bucket histogram of Fig. 1 (Github heavier-tailed than Enron),
//   * Github sheets several times larger than Enron sheets (Table II).
// Counts and sizes default to laptop-bench scale; the ratios, not the
// absolute totals, are the reproduction target.

#ifndef TACO_CORPUS_PROFILE_H_
#define TACO_CORPUS_PROFILE_H_

#include <cstdint>
#include <string>

namespace taco {

/// Weights for choosing the next formula region while filling a sheet.
/// Values are relative (normalized internally); each maps to a region
/// generator and, through it, to the compression pattern it exercises.
struct RegionMix {
  double sliding = 0.30;     ///< moving-window SUMs -> RR
  double derived = 0.25;     ///< same-row derived columns -> RR (InRow)
  double fig2 = 0.15;        ///< 4-reference IF ladders (Fig. 2) -> RR + chain
  double fixed = 0.18;       ///< rate lookups / VLOOKUP tables -> FF
  double chain = 0.06;       ///< running accumulators -> RR-Chain
  double cumulative = 0.04;  ///< year-to-date style SUM($X$1:Xr) -> FR
  double shrinking = 0.01;   ///< remaining-total SUM(Xr:$X$n) -> RF
  double noise = 0.01;       ///< hand-written outliers -> Single
};

/// One synthetic corpus.
struct CorpusProfile {
  std::string name;
  uint32_t seed = 1;
  int num_sheets = 30;

  /// Per-sheet formula count, log-uniform in [min, max].
  int min_formulas_per_sheet = 2000;
  int max_formulas_per_sheet = 40000;

  /// Region length (formula rows), log-uniform in [min, max]. The tail of
  /// this distribution produces the Fig. 1 heavy hitters.
  int min_region_len = 40;
  int max_region_len = 20000;

  RegionMix mix;

  /// Probability that a region is punctured by a hole (a formula replaced
  /// by a value), fragmenting its compressed edge.
  double hole_probability = 0.15;

  /// Probability that a sheet is "flat": only derived/sliding/noise
  /// regions, so no cell accumulates a large dependent set and no chain
  /// forms. Real corpora are full of such sheets — they populate the
  /// (0,100] buckets of Fig. 1.
  double flat_sheet_probability = 0.45;

  /// Probability that a derived region is written at stride 2 (every
  /// other row), the RR-GapOne shape of Sec. V.
  double gap_region_probability = 0.0;

  /// Fill data columns with literal values (needed for evaluation demos;
  /// off for graph-only benches to save memory).
  bool fill_values = false;

  /// The Enron-like corpus: smaller sheets, noisier authorship.
  static CorpusProfile Enron() {
    CorpusProfile p;
    p.name = "Enron";
    p.seed = 20230210;
    p.num_sheets = 30;
    p.min_formulas_per_sheet = 2000;
    p.max_formulas_per_sheet = 30000;
    p.min_region_len = 40;
    p.max_region_len = 15000;
    p.mix.noise = 0.03;
    p.hole_probability = 0.20;
    p.flat_sheet_probability = 0.45;
    return p;
  }

  /// The Github-like corpus: larger, cleaner, heavier-tailed sheets
  /// (xlsx files, often programmatically generated).
  static CorpusProfile Github() {
    CorpusProfile p;
    p.name = "Github";
    p.seed = 20230211;
    p.num_sheets = 40;
    p.min_formulas_per_sheet = 4000;
    p.max_formulas_per_sheet = 80000;
    p.min_region_len = 60;
    p.max_region_len = 60000;
    p.mix.noise = 0.005;
    p.hole_probability = 0.08;
    p.flat_sheet_probability = 0.35;
    return p;
  }

  /// Tiny variant of any profile for unit tests.
  CorpusProfile Tiny() const {
    CorpusProfile p = *this;
    p.num_sheets = 4;
    p.min_formulas_per_sheet = 100;
    p.max_formulas_per_sheet = 400;
    p.min_region_len = 10;
    p.max_region_len = 80;
    return p;
  }
};

}  // namespace taco

#endif  // TACO_CORPUS_PROFILE_H_
