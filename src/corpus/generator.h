// The corpus generator: synthesizes spreadsheets with realistic tabular
// locality, one region at a time.
//
// Every region is produced the way real spreadsheets are: a seed formula
// written at the top of a column and autofilled downward (so relative and
// '$'-absolute references shift exactly like Excel's), or a hand-written
// outlier for noise. Each region also records a ground-truth *anchor*:
// the cell with the region's largest dependent set and that set's size,
// plus the longest in-region dependency path. Regions occupy disjoint
// column groups, so the per-sheet maxima are exact by construction and
// provide the Fig. 1 statistics and the Fig. 10 query workloads without
// an exhaustive all-cells analysis.

#ifndef TACO_CORPUS_GENERATOR_H_
#define TACO_CORPUS_GENERATOR_H_

#include <random>
#include <vector>

#include "corpus/profile.h"
#include "sheet/sheet.h"

namespace taco {

/// One generated spreadsheet plus its workload anchors.
struct CorpusSheet {
  Sheet sheet;

  /// The cell with the most (transitive) dependents and the expected
  /// count, by construction.
  Cell max_dependents_cell{1, 1};
  uint64_t expected_max_dependents = 0;

  /// The head of the longest dependency chain and its edge length.
  Cell longest_path_cell{1, 1};
  uint64_t expected_longest_path = 0;

  /// Raw dependency count (for sizing reports).
  uint64_t expected_dependencies = 0;
};

/// Deterministic generator: the same profile always yields the same
/// corpus, sheet by sheet.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusProfile profile)
      : profile_(std::move(profile)) {}

  /// Generates the index-th sheet of the corpus (0-based).
  CorpusSheet GenerateSheet(int index) const;

  /// Generates the whole corpus.
  std::vector<CorpusSheet> GenerateAll() const;

  const CorpusProfile& profile() const { return profile_; }

 private:
  CorpusProfile profile_;
};

}  // namespace taco

#endif  // TACO_CORPUS_GENERATOR_H_
