#include "corpus/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/a1.h"

namespace taco {
namespace {

// Everything one region contributes: size, dependency count, and the
// ground-truth anchors described in generator.h.
struct RegionResult {
  uint64_t formulas = 0;
  uint64_t dependencies = 0;
  Cell anchor{1, 1};
  uint64_t anchor_count = 0;
  Cell path_head{1, 1};
  uint64_t path_len = 0;
};

// Mutable state while filling one sheet.
struct SheetBuilder {
  Sheet* sheet;
  std::mt19937* rng;
  const CorpusProfile* profile;
  int32_t next_col = 1;

  // Reserves `n` columns plus a 1-column gap between regions.
  int32_t AllocColumns(int32_t n) {
    int32_t col = next_col;
    next_col += n + 1;
    return col;
  }

  int RandomInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(*rng);
  }
  double RandomDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(*rng);
  }
  int LogUniform(int lo, int hi) {
    double a = std::log(static_cast<double>(lo));
    double b = std::log(static_cast<double>(hi));
    double x = std::uniform_real_distribution<double>(a, b)(*rng);
    return std::max(lo, std::min(hi, static_cast<int>(std::exp(x))));
  }

  void MaybeFillData(int32_t col, int32_t rows) {
    if (!profile->fill_values) return;
    for (int32_t row = 1; row <= rows; ++row) {
      (void)sheet->SetNumber(Cell{col, row}, (col * 31 + row) % 97 + 1);
    }
  }

  // Punches holes into the formula column `col`, rows [first_row, last_row]:
  // replaces formulas with literal values. Returns sorted hole rows.
  std::vector<int32_t> PunchHoles(int32_t col, int32_t first_row,
                                  int32_t last_row) {
    std::vector<int32_t> holes;
    if (RandomDouble() >= profile->hole_probability) return holes;
    int count = RandomInt(1, 3);
    for (int i = 0; i < count; ++i) {
      int32_t row = RandomInt(first_row, last_row);
      if (std::find(holes.begin(), holes.end(), row) == holes.end()) {
        holes.push_back(row);
        (void)sheet->SetNumber(Cell{col, row}, 0);
      }
    }
    std::sort(holes.begin(), holes.end());
    return holes;
  }
};

int32_t CountInPrefix(const std::vector<int32_t>& holes, int32_t upto) {
  return static_cast<int32_t>(
      std::upper_bound(holes.begin(), holes.end(), upto) - holes.begin());
}

// Longest run of rows in [first, last] containing no hole; returns
// {start, length} (length 0 when everything is a hole).
std::pair<int32_t, int32_t> LongestClearRun(const std::vector<int32_t>& holes,
                                            int32_t first, int32_t last) {
  int32_t best_start = first, best_len = 0;
  int32_t run_start = first;
  for (int32_t hole : holes) {
    int32_t len = hole - run_start;
    if (len > best_len) {
      best_len = len;
      best_start = run_start;
    }
    run_start = hole + 1;
  }
  int32_t len = last - run_start + 1;
  if (len > best_len) {
    best_len = len;
    best_start = run_start;
  }
  return {best_start, std::max<int32_t>(best_len, 0)};
}

// --- Region generators -----------------------------------------------------

// Moving-window SUM over a data column: the RR workhorse (Fig. 4a).
RegionResult SlidingRegion(SheetBuilder& b, int32_t len) {
  int32_t window = b.RandomInt(2, 8);
  len = std::min<int32_t>(len, kMaxRow - window - 1);
  int32_t dc = b.AllocColumns(2);
  int32_t fc = dc + 1;
  b.MaybeFillData(dc, len + window - 1);

  std::string seed = "SUM(" + CellToA1(Cell{dc, 1}) + ":" +
                     CellToA1(Cell{dc, window}) + ")";
  (void)b.sheet->SetFormula(Cell{fc, 1}, seed);
  (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, 1, fc, len));
  auto holes = b.PunchHoles(fc, 1, len);

  RegionResult r;
  r.formulas = static_cast<uint64_t>(len - holes.size());
  r.dependencies = r.formulas;  // one range reference per formula
  int32_t effective = std::min(window, len);
  r.anchor = Cell{dc, effective};
  r.anchor_count =
      static_cast<uint64_t>(effective - CountInPrefix(holes, effective));
  r.path_head = r.anchor;
  r.path_len = r.anchor_count > 0 ? 1 : 0;
  return r;
}

// Same-row derived column (the TACO-InRow shape). Optionally written at
// stride 2 (every other row), producing the RR-GapOne layout.
RegionResult DerivedRegion(SheetBuilder& b, int32_t len, bool gapped) {
  int32_t dc = b.AllocColumns(2);
  int32_t fc = dc + 1;
  int32_t stride = gapped ? 2 : 1;
  int32_t last_row = 1 + (len - 1) * stride;
  last_row = std::min<int32_t>(last_row, kMaxRow);
  b.MaybeFillData(dc, last_row);

  std::string seed = CellToA1(Cell{dc, 1}) + "*2+1";
  (void)b.sheet->SetFormula(Cell{fc, 1}, seed);
  if (gapped) {
    // Autofill cannot produce gaps; shift row by row like a user
    // copy-pasting into alternating rows.
    for (int32_t row = 1 + stride; row <= last_row; row += stride) {
      (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, row, fc, row));
    }
  } else {
    (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, 1, fc, last_row));
  }
  auto holes = gapped ? std::vector<int32_t>{} : b.PunchHoles(fc, 1, last_row);

  RegionResult r;
  r.formulas = static_cast<uint64_t>(
      (gapped ? len : last_row) - static_cast<int32_t>(holes.size()));
  r.dependencies = r.formulas;
  r.anchor = Cell{dc, 1};
  r.anchor_count = 1;
  r.path_head = r.anchor;
  r.path_len = 1;
  return r;
}

// The Fig. 2 ladder: IF(A_r=A_{r-1}, N_{r-1}+M_r, M_r) — four references
// per formula, one of them a chain.
RegionResult Fig2Region(SheetBuilder& b, int32_t len) {
  len = std::min<int32_t>(len, kMaxRow - 2);
  int32_t ac = b.AllocColumns(3);
  int32_t mc = ac + 1;
  int32_t fc = ac + 2;
  b.MaybeFillData(ac, len);
  b.MaybeFillData(mc, len);

  (void)b.sheet->SetFormula(Cell{fc, 1}, CellToA1(Cell{mc, 1}));
  std::string seed = "IF(" + CellToA1(Cell{ac, 2}) + "=" +
                     CellToA1(Cell{ac, 1}) + "," + CellToA1(Cell{fc, 1}) +
                     "+" + CellToA1(Cell{mc, 2}) + "," + CellToA1(Cell{mc, 2}) +
                     ")";
  (void)b.sheet->SetFormula(Cell{fc, 2}, seed);
  (void)Autofill(b.sheet, Cell{fc, 2}, Range(fc, 2, fc, len));
  auto holes = b.PunchHoles(fc, 2, len);

  RegionResult r;
  r.formulas = static_cast<uint64_t>(len - holes.size());
  r.dependencies = 1 + 4 * (r.formulas - 1);
  auto [start, run] = LongestClearRun(holes, 2, len);
  r.anchor = Cell{mc, start};
  r.anchor_count = static_cast<uint64_t>(run);       // N_start..N_(start+run-1)
  r.path_head = r.anchor;
  r.path_len = static_cast<uint64_t>(run);           // M -> N -> ... chain
  return r;
}

// Fixed references: either a scalar rate cell or a VLOOKUP table, both FF.
RegionResult FixedRegion(SheetBuilder& b, int32_t len) {
  bool vlookup = b.RandomDouble() < 0.4;
  RegionResult r;
  if (!vlookup) {
    int32_t rc = b.AllocColumns(3);  // rate col, data col, formula col
    int32_t dc = rc + 1;
    int32_t fc = rc + 2;
    (void)b.sheet->SetNumber(Cell{rc, 1}, 1.23);
    b.MaybeFillData(dc, len);
    std::string seed = CellToA1(Cell{dc, 1}) + "*" +
                       CellToA1(Cell{rc, 1}, AbsFlags{true, true});
    (void)b.sheet->SetFormula(Cell{fc, 1}, seed);
    (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, 1, fc, len));
    auto holes = b.PunchHoles(fc, 1, len);
    r.formulas = static_cast<uint64_t>(len - holes.size());
    r.dependencies = 2 * r.formulas;
    r.anchor = Cell{rc, 1};
    r.anchor_count = r.formulas;
  } else {
    int32_t tc = b.AllocColumns(4);  // 2 table cols, key col, formula col
    int32_t kc = tc + 2;
    int32_t fc = tc + 3;
    int32_t table_rows = std::min<int32_t>(100, std::max<int32_t>(4, len / 4));
    for (int32_t row = 1; row <= table_rows; ++row) {
      (void)b.sheet->SetNumber(Cell{tc, row}, row);
      (void)b.sheet->SetNumber(Cell{tc + 1, row}, row * 10);
    }
    b.MaybeFillData(kc, len);
    std::string table = CellToA1(Cell{tc, 1}, AbsFlags{true, true}) + ":" +
                        CellToA1(Cell{tc + 1, table_rows},
                                 AbsFlags{true, true});
    std::string seed =
        "VLOOKUP(" + CellToA1(Cell{kc, 1}) + "," + table + ",2)";
    (void)b.sheet->SetFormula(Cell{fc, 1}, seed);
    (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, 1, fc, len));
    auto holes = b.PunchHoles(fc, 1, len);
    r.formulas = static_cast<uint64_t>(len - holes.size());
    r.dependencies = 2 * r.formulas;
    r.anchor = Cell{tc, 1};
    r.anchor_count = r.formulas;
  }
  r.path_head = r.anchor;
  r.path_len = r.anchor_count > 0 ? 1 : 0;
  return r;
}

// Running accumulator chain: X_r = X_{r-1} + data_r (RR-Chain + RR).
RegionResult ChainRegion(SheetBuilder& b, int32_t len) {
  len = std::min<int32_t>(len, kMaxRow - 1);
  int32_t dc = b.AllocColumns(2);
  int32_t fc = dc + 1;
  b.MaybeFillData(dc, len);
  (void)b.sheet->SetNumber(Cell{fc, 1}, 0);
  std::string seed = CellToA1(Cell{fc, 1}) + "+" + CellToA1(Cell{dc, 2});
  (void)b.sheet->SetFormula(Cell{fc, 2}, seed);
  (void)Autofill(b.sheet, Cell{fc, 2}, Range(fc, 2, fc, len));
  auto holes = b.PunchHoles(fc, 2, len);

  RegionResult r;
  r.formulas = static_cast<uint64_t>(len - 1 - holes.size());
  r.dependencies = 2 * r.formulas;
  auto [start, run] = LongestClearRun(holes, 2, len);
  r.anchor = Cell{fc, start - 1};  // the cell feeding the clear run
  r.anchor_count = static_cast<uint64_t>(run);
  r.path_head = r.anchor;
  r.path_len = static_cast<uint64_t>(run);
  return r;
}

// Year-to-date style cumulative SUM($X$1:X_r): the FR pattern.
RegionResult CumulativeRegion(SheetBuilder& b, int32_t len) {
  int32_t dc = b.AllocColumns(2);
  int32_t fc = dc + 1;
  b.MaybeFillData(dc, len);
  std::string seed = "SUM(" + CellToA1(Cell{dc, 1}, AbsFlags{true, true}) +
                     ":" + CellToA1(Cell{dc, 1}) + ")";
  (void)b.sheet->SetFormula(Cell{fc, 1}, seed);
  (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, 1, fc, len));
  auto holes = b.PunchHoles(fc, 1, len);

  RegionResult r;
  r.formulas = static_cast<uint64_t>(len - holes.size());
  r.dependencies = r.formulas;
  r.anchor = Cell{dc, 1};  // row 1 of data feeds every formula
  r.anchor_count = r.formulas;
  r.path_head = r.anchor;
  r.path_len = r.formulas > 0 ? 1 : 0;
  return r;
}

// Remaining-total SUM(X_r:$X$len): the RF pattern.
RegionResult ShrinkingRegion(SheetBuilder& b, int32_t len) {
  int32_t dc = b.AllocColumns(2);
  int32_t fc = dc + 1;
  b.MaybeFillData(dc, len);
  std::string seed = "SUM(" + CellToA1(Cell{dc, 1}) + ":" +
                     CellToA1(Cell{dc, len}, AbsFlags{true, true}) + ")";
  (void)b.sheet->SetFormula(Cell{fc, 1}, seed);
  (void)Autofill(b.sheet, Cell{fc, 1}, Range(fc, 1, fc, len));
  auto holes = b.PunchHoles(fc, 1, len);

  RegionResult r;
  r.formulas = static_cast<uint64_t>(len - holes.size());
  r.dependencies = r.formulas;
  r.anchor = Cell{dc, len};  // the last data row feeds every formula
  r.anchor_count = r.formulas;
  r.path_head = r.anchor;
  r.path_len = r.formulas > 0 ? 1 : 0;
  return r;
}

// Hand-written outliers: scattered one-off formulas over a private data
// column. Nothing here compresses (the Single edges of Table IV).
RegionResult NoiseRegion(SheetBuilder& b, int32_t len) {
  len = std::min<int32_t>(len, 60);
  int32_t dc = b.AllocColumns(2);
  int32_t fc = dc + 1;
  b.MaybeFillData(dc, 4 * len);

  RegionResult r;
  int32_t row = 1;
  for (int32_t i = 0; i < len; ++i) {
    // Non-adjacent rows and varying reference shapes defeat compression.
    row += b.RandomInt(2, 5);
    if (row > kMaxRow) break;
    int nrefs = b.RandomInt(1, 3);
    std::string text;
    for (int k = 0; k < nrefs; ++k) {
      if (k > 0) text += "+";
      text += CellToA1(Cell{dc, b.RandomInt(1, 4 * len)});
    }
    (void)b.sheet->SetFormula(Cell{fc, row}, text);
    r.formulas += 1;
    r.dependencies += static_cast<uint64_t>(nrefs);
  }
  r.anchor = Cell{dc, 1};
  r.anchor_count = r.formulas > 0 ? 1 : 0;
  r.path_head = r.anchor;
  r.path_len = r.anchor_count;
  return r;
}

}  // namespace

CorpusSheet CorpusGenerator::GenerateSheet(int index) const {
  std::mt19937 rng(profile_.seed * 1000003u + static_cast<uint32_t>(index));
  CorpusSheet out;
  out.sheet.set_name(profile_.name + "_" + std::to_string(index));

  SheetBuilder b{&out.sheet, &rng, &profile_};
  int target =
      b.LogUniform(profile_.min_formulas_per_sheet,
                   profile_.max_formulas_per_sheet);

  RegionMix mix = profile_.mix;
  // Flat sheets carry only low-fan-out regions (derived columns, small
  // sliding windows, noise); they model the many real sheets whose
  // maximum dependent count stays under ~100 (Fig. 1's first bucket).
  if (b.RandomDouble() < profile_.flat_sheet_probability) {
    mix.fig2 = 0;
    mix.fixed = 0;
    mix.chain = 0;
    mix.cumulative = 0;
    mix.shrinking = 0;
  }
  std::discrete_distribution<int> pick_region(
      {mix.sliding, mix.derived, mix.fig2, mix.fixed, mix.chain,
       mix.cumulative, mix.shrinking, mix.noise});

  // Sheets have a characteristic scale: a per-sheet cap on region length
  // drawn log-uniformly. This spreads the per-sheet maxima across the
  // magnitude buckets of Fig. 1 instead of letting every sheet's max be
  // dominated by the global tail.
  int sheet_max_len =
      b.LogUniform(std::min(2 * profile_.min_region_len,
                            profile_.max_region_len),
                   profile_.max_region_len);

  uint64_t placed = 0;
  while (placed < static_cast<uint64_t>(target) &&
         b.next_col + 6 < kMaxCol) {
    int len = b.LogUniform(profile_.min_region_len, sheet_max_len);
    len = std::min<int>(len, target - static_cast<int>(placed) +
                                 profile_.min_region_len);
    len = std::max(len, 4);

    RegionResult r;
    switch (pick_region(rng)) {
      case 0: r = SlidingRegion(b, len); break;
      case 1: {
        bool gapped = b.RandomDouble() < profile_.gap_region_probability;
        r = DerivedRegion(b, len, gapped);
        break;
      }
      case 2: r = Fig2Region(b, len); break;
      case 3: r = FixedRegion(b, len); break;
      case 4: r = ChainRegion(b, len); break;
      case 5: r = CumulativeRegion(b, len); break;
      case 6: r = ShrinkingRegion(b, len); break;
      default: r = NoiseRegion(b, len); break;
    }

    placed += r.formulas;
    out.expected_dependencies += r.dependencies;
    if (r.anchor_count > out.expected_max_dependents) {
      out.expected_max_dependents = r.anchor_count;
      out.max_dependents_cell = r.anchor;
    }
    if (r.path_len > out.expected_longest_path) {
      out.expected_longest_path = r.path_len;
      out.longest_path_cell = r.path_head;
    }
  }
  return out;
}

std::vector<CorpusSheet> CorpusGenerator::GenerateAll() const {
  std::vector<CorpusSheet> out;
  out.reserve(static_cast<size_t>(profile_.num_sheets));
  for (int i = 0; i < profile_.num_sheets; ++i) {
    out.push_back(GenerateSheet(i));
  }
  return out;
}

}  // namespace taco
