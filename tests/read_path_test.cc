// MVCC read-path tests: version publication per mutation, lock-free
// GetValue/GetRange equivalence against the locked oracle, range-snapshot
// atomicity, the never-published fallback, read metrics, and — the point
// of the whole design — concurrent readers hammering a session mid-recalc
// (parallel waves, 2 threads) without ever observing a torn state.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eval/recalc.h"
#include "eval/value_version.h"
#include "graph/nocomp_graph.h"
#include "service/workbook_service.h"

namespace taco {
namespace {

std::shared_ptr<WorkbookSession> OpenSession(WorkbookService& service,
                                             const std::string& name) {
  auto session = service.Open(name);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *session;
}

TEST(ReadPathTest, EveryMutationPublishesAVersion) {
  WorkbookService service;
  auto session = OpenSession(service, "book");

  EXPECT_EQ(session->Stats().version, 0u);
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 5).ok());
  EXPECT_EQ(session->Stats().version, 1u);
  ASSERT_TRUE(session->SetFormula(Cell{2, 1}, "A1*3").ok());
  EXPECT_EQ(session->Stats().version, 2u);
  ASSERT_TRUE(session->ClearRange(Range(Cell{1, 1})).ok());
  EXPECT_EQ(session->Stats().version, 3u);

  EditBatch batch;
  batch.push_back(Edit::SetNumber(Cell{1, 1}, 7));
  batch.push_back(Edit::SetNumber(Cell{1, 2}, 8));
  ASSERT_TRUE(session->ApplyBatch(batch).ok());
  SessionStats stats = session->Stats();
  EXPECT_EQ(stats.version, 4u);  // One batch, one version.
  EXPECT_EQ(stats.versions_published, 4u);
}

TEST(ReadPathTest, NeverPublishedSessionFallsBackToLockedReads) {
  WorkbookService service;
  auto session = OpenSession(service, "book");

  // No mutation yet: reads take the engine lock and report version 0.
  EXPECT_EQ(session->GetValue(Cell{1, 1}), Value::Blank());
  RangeSnapshot snap = session->GetRange(Range(1, 1, 2, 2));
  EXPECT_EQ(snap.version, 0u);
  EXPECT_TRUE(snap.values.empty());

  SessionStats stats = session->Stats();
  EXPECT_EQ(stats.reads_locked, 2u);
  EXPECT_EQ(stats.reads_versioned, 0u);

  // The first mutation publishes; reads go lock-free from then on.
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 9).ok());
  EXPECT_EQ(session->GetValue(Cell{1, 1}), Value::Number(9));
  snap = session->GetRange(Range(1, 1, 2, 2));
  EXPECT_EQ(snap.version, 1u);
  ASSERT_EQ(snap.values.size(), 1u);
  EXPECT_EQ(snap.values[0].first, (Cell{1, 1}));
  EXPECT_EQ(snap.values[0].second, Value::Number(9));

  stats = session->Stats();
  EXPECT_EQ(stats.reads_locked, 2u);
  EXPECT_EQ(stats.reads_versioned, 2u);
}

// The equivalence oracle: a twin session with the MVCC path disabled
// replays the same edits; after every step, every cell of the working
// region must read identically through both paths. The sequence is long
// enough (> ValueVersion::kMaxDepth steps touching overlapping regions)
// to exercise delta-chain flattening.
TEST(ReadPathTest, VersionedReadsMatchLockedOracle) {
  WorkbookService service;
  auto mvcc = OpenSession(service, "mvcc");
  auto oracle = OpenSession(service, "oracle");
  oracle->EnableVersionedReads(false);

  auto apply_both = [&](const Edit& edit) {
    EditBatch batch{edit};
    ASSERT_TRUE(mvcc->ApplyBatch(batch).ok());
    ASSERT_TRUE(oracle->ApplyBatch(batch).ok());
  };
  auto check_region = [&](int32_t cols, int32_t rows) {
    for (int32_t col = 1; col <= cols; ++col) {
      for (int32_t row = 1; row <= rows; ++row) {
        Cell cell{col, row};
        EXPECT_EQ(mvcc->GetValue(cell), oracle->GetValue(cell))
            << "divergence at " << cell.ToString();
      }
    }
  };

  // A small autofilled region: column A inputs, B..D formulas over them.
  for (int32_t row = 1; row <= 8; ++row) {
    apply_both(Edit::SetNumber(Cell{1, row}, row * 1.5));
    apply_both(Edit::SetFormula(Cell{2, row}, "A" + std::to_string(row) + "*2"));
    apply_both(Edit::SetFormula(Cell{3, row},
                                "B" + std::to_string(row) + "+A" +
                                    std::to_string(row)));
  }
  apply_both(Edit::SetFormula(Cell{4, 1}, "SUM(C1:C8)"));
  check_region(4, 8);

  // 24 more steps (flattening kicks in past depth 8): overwrite inputs,
  // clear sub-rectangles, re-add formulas.
  for (int step = 0; step < 24; ++step) {
    int32_t row = 1 + (step % 8);
    switch (step % 3) {
      case 0:
        apply_both(Edit::SetNumber(Cell{1, row}, step * 0.25 - 3));
        break;
      case 1:
        apply_both(Edit::ClearRange(Range(2, row, 3, row)));
        break;
      default:
        apply_both(Edit::SetFormula(
            Cell{2, row}, "A" + std::to_string(row) + "*10"));
        break;
    }
    check_region(4, 8);
  }

  // Both paths agree range-wise too, and on error values.
  apply_both(Edit::SetFormula(Cell{5, 1}, "1/0"));
  check_region(5, 8);
  RangeSnapshot snap = mvcc->GetRange(Range(1, 1, 5, 8));
  for (const auto& [cell, value] : snap.values) {
    EXPECT_EQ(value, oracle->GetValue(cell)) << cell.ToString();
  }
}

TEST(ReadPathTest, GetRangeSkipsBlanksInColumnMajorOrder) {
  WorkbookService service;
  auto session = OpenSession(service, "book");
  ASSERT_TRUE(session->SetNumber(Cell{1, 3}, 1).ok());   // A3
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 2).ok());   // A1
  ASSERT_TRUE(session->SetText(Cell{3, 2}, "x").ok());   // C2
  ASSERT_TRUE(session->SetNumber(Cell{2, 2}, 3).ok());   // B2

  RangeSnapshot snap = session->GetRange(Range(1, 1, 4, 4));
  ASSERT_EQ(snap.values.size(), 4u);
  // EnumerateCells order: column-major (A1, A3, B2, C2); blanks absent.
  EXPECT_EQ(snap.values[0].first, (Cell{1, 1}));
  EXPECT_EQ(snap.values[1].first, (Cell{1, 3}));
  EXPECT_EQ(snap.values[2].first, (Cell{2, 2}));
  EXPECT_EQ(snap.values[3].first, (Cell{3, 2}));
  EXPECT_EQ(snap.values[2].second, Value::Number(3));
}

TEST(ReadPathTest, ClearedCellsReadBlankThroughTheVersion) {
  WorkbookService service;
  auto session = OpenSession(service, "book");
  for (int32_t row = 1; row <= 4; ++row) {
    ASSERT_TRUE(session->SetNumber(Cell{1, row}, row).ok());
  }
  ASSERT_TRUE(session->ClearRange(Range(1, 2, 1, 3)).ok());
  EXPECT_EQ(session->GetValue(Cell{1, 1}), Value::Number(1));
  EXPECT_EQ(session->GetValue(Cell{1, 2}), Value::Blank());
  EXPECT_EQ(session->GetValue(Cell{1, 3}), Value::Blank());
  EXPECT_EQ(session->GetValue(Cell{1, 4}), Value::Number(4));
  RangeSnapshot snap = session->GetRange(Range(1, 1, 1, 4));
  ASSERT_EQ(snap.values.size(), 2u);
}

TEST(ReadPathTest, ErrorValuedReadsCountAsErrorsInMetrics) {
  WorkbookService service;
  auto session = OpenSession(service, "book");
  ASSERT_TRUE(session->SetFormula(Cell{1, 1}, "1/0").ok());
  ASSERT_TRUE(session->SetNumber(Cell{2, 1}, 4).ok());

  Value error = session->GetValue(Cell{1, 1});
  EXPECT_TRUE(error.is_error());
  EXPECT_EQ(session->GetValue(Cell{2, 1}), Value::Number(4));

  OpStats get = service.metrics().Get(ServiceOp::kGet);
  EXPECT_EQ(get.count, 2u);
  EXPECT_EQ(get.errors, 1u);  // The #DIV/0! read reports ok=false.

  RangeSnapshot snap = session->GetRange(Range(1, 1, 2, 1));
  ASSERT_EQ(snap.values.size(), 2u);
  OpStats getrange = service.metrics().Get(ServiceOp::kGetRange);
  EXPECT_EQ(getrange.count, 1u);
  EXPECT_EQ(getrange.errors, 1u);  // Snapshot contains an error value.
}

TEST(ReadPathTest, DisablingVersionedReadsRestoresTheLockedPath) {
  WorkbookService service;
  auto session = OpenSession(service, "book");
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 5).ok());
  EXPECT_EQ(session->Stats().version, 1u);

  session->EnableVersionedReads(false);
  EXPECT_EQ(session->Stats().version, 0u);  // Publication dropped.
  EXPECT_EQ(session->GetValue(Cell{1, 1}), Value::Number(5));
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 6).ok());
  EXPECT_EQ(session->Stats().version, 0u);  // And stays off.
  EXPECT_EQ(session->GetValue(Cell{1, 1}), Value::Number(6));
  EXPECT_EQ(session->Stats().reads_locked, 2u);

  session->EnableVersionedReads(true);
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 7).ok());
  EXPECT_EQ(session->GetValue(Cell{1, 1}), Value::Number(7));
  EXPECT_GE(session->Stats().reads_versioned, 1u);
}

// Delta versions must carry only what a commit CHANGED, not what it
// scheduled: value-unchanged cells of the dirty closure are dropped
// entirely (no coverage, no entry), so the chain answers them from the
// older node. This pins the payload size — the MVCC side of cutoff
// recalc, where an absorbed edit dirties a wide closure but changes one
// cell.
TEST(ReadPathTest, DeltaVersionsCarryOnlyChangedCells) {
  Sheet sheet;
  NoCompGraph graph;
  RecalcEngine engine(&sheet, &graph);
  auto publish = [&](const Result<RecalcResult>& r, const Range& edited) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<Range> touched = r->dirty;
    touched.push_back(edited);
    engine.PublishVersion(touched);
  };

  // A1 feeds an absorbing IF; B1 absorbs, C1 rides on B1.
  publish(engine.SetNumber(Cell{1, 1}, 5), Range(Cell{1, 1}));
  publish(engine.SetFormula(Cell{2, 1}, "IF(A1>10,1,0)"), Range(Cell{2, 1}));
  publish(engine.SetFormula(Cell{3, 1}, "B1+1"), Range(Cell{3, 1}));

  // An absorbed edit: A1 5 -> 6 keeps B1 at 0 and C1 at 1. The delta
  // must carry exactly ONE entry (A1) even though the dirty closure
  // covered B1 and C1 too.
  publish(engine.SetNumber(Cell{1, 1}, 6), Range(Cell{1, 1}));
  const ValueVersion& absorbed = *engine.latest_version();
  EXPECT_EQ(absorbed.cell_entries(), 1u);
  EXPECT_EQ(absorbed.Lookup(Cell{1, 1}), Value::Number(6));
  EXPECT_EQ(absorbed.Lookup(Cell{2, 1}), Value::Number(0));  // Via chain.
  EXPECT_EQ(absorbed.Lookup(Cell{3, 1}), Value::Number(1));

  // A flipping edit changes all three cells: three entries.
  publish(engine.SetNumber(Cell{1, 1}, 5000), Range(Cell{1, 1}));
  const ValueVersion& flipped = *engine.latest_version();
  EXPECT_EQ(flipped.cell_entries(), 3u);
  EXPECT_EQ(flipped.Lookup(Cell{3, 1}), Value::Number(2));

  // A cleared cell changed to blank: covered WITHOUT an entry, so it
  // reads Blank instead of leaking the older node's value.
  publish(engine.ClearRange(Range(Cell{1, 1})), Range(Cell{1, 1}));
  const ValueVersion& cleared = *engine.latest_version();
  EXPECT_EQ(cleared.cell_entries(), 2u);  // B1 and C1 flipped back.
  EXPECT_EQ(cleared.Lookup(Cell{1, 1}), Value::Blank());
  EXPECT_EQ(cleared.Lookup(Cell{2, 1}), Value::Number(0));
  EXPECT_EQ(cleared.Lookup(Cell{3, 1}), Value::Number(1));
}

// A snapshot must come from ONE commit: with C1 = A1*10 maintained by
// recalc, any GetRange that mixed two versions would break the invariant.
TEST(ReadPathTest, RangeSnapshotsAreInternallyConsistent) {
  WorkbookService service;
  auto session = OpenSession(service, "book");
  ASSERT_TRUE(session->SetFormula(Cell{3, 1}, "A1*10").ok());
  for (int k = 1; k <= 50; ++k) {
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, k).ok());
    RangeSnapshot snap = session->GetRange(Range(1, 1, 3, 1));
    ASSERT_EQ(snap.values.size(), 2u);
    EXPECT_EQ(snap.values[0].second, Value::Number(k));
    EXPECT_EQ(snap.values[1].second, Value::Number(k * 10));
  }
}

// The torn-read hunt, built for TSan: one writer drives a 24-cell formula
// chain through the PARALLEL recalc path (2 threads, thresholds zeroed so
// every pass really schedules waves) while readers hammer GetValue and
// GetRange. Every snapshot a reader takes must satisfy the chain
// invariant cell[i] == A1 + i — i.e. be the complete result of one
// committed recalc, never a mid-wave mix — and version ids must be
// monotonic per reader. A serial session replays the same writes as the
// oracle for the final state.
TEST(ReadPathTest, ConcurrentReadersNeverObserveTornRecalcState) {
  constexpr int kChain = 24;
  constexpr int kWrites = 120;
  constexpr int kReaders = 4;

  WorkbookServiceOptions options;
  options.recalc_threads = 2;
  options.scheduler.min_parallel_cells = 1;
  options.scheduler.min_parallel_wave = 1;
  WorkbookService service(options);
  auto session = OpenSession(service, "book");
  ASSERT_EQ(session->recalc_mode(), RecalcMode::kParallel);

  WorkbookService oracle_service;  // Serial, single-threaded replay.
  auto oracle = OpenSession(oracle_service, "oracle");

  // B1 = A1+1, C1 = B1+1, ... : one long dependency chain, so each write
  // to A1 dirties all 24 formulas across 24 single-cell waves.
  auto seed = [&](WorkbookSession& s) {
    ASSERT_TRUE(s.SetNumber(Cell{1, 1}, 0).ok());
    for (int i = 1; i <= kChain; ++i) {
      Cell prev{i, 1};
      ASSERT_TRUE(
          s.SetFormula(Cell{i + 1, 1}, prev.ToString() + "+1").ok());
    }
  };
  seed(*session);
  seed(*oracle);

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  Range chain_range(1, 1, kChain + 1, 1);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (r % 2 == 0) {
          RangeSnapshot snap = session->GetRange(chain_range);
          if (snap.values.size() != uint64_t(kChain) + 1) {
            torn.fetch_add(1);
            continue;
          }
          bool ok = snap.values[0].second.is_number();
          double base = ok ? snap.values[0].second.number() : 0;
          for (int i = 0; ok && i <= kChain; ++i) {
            const Value& v = snap.values[i].second;
            ok = v.is_number() && v.number() == base + i;
          }
          if (!ok) torn.fetch_add(1);
          if (snap.version < last_version) torn.fetch_add(1);
          last_version = snap.version;
        } else {
          // Single-cell reads: the tail of the chain only ever holds a
          // committed value base + kChain for some acknowledged base.
          Value v = session->GetValue(Cell{kChain + 1, 1});
          if (!v.is_number() || v.number() < kChain ||
              v.number() > kChain + kWrites) {
            torn.fetch_add(1);
          }
        }
      }
    });
  }

  for (int k = 1; k <= kWrites; ++k) {
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, k).ok());
    ASSERT_TRUE(oracle->SetNumber(Cell{1, 1}, k).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0) << "readers observed torn mid-recalc state";

  // Serial-oracle cross-check of the final committed state, cell by cell.
  for (int i = 0; i <= kChain; ++i) {
    Cell cell{i + 1, 1};
    EXPECT_EQ(session->GetValue(cell), oracle->GetValue(cell))
        << "divergence at " << cell.ToString();
  }
  SessionStats stats = session->Stats();
  EXPECT_EQ(stats.version, uint64_t(1 + kChain + kWrites));
  EXPECT_GT(stats.reads_versioned, 0u);
}

}  // namespace
}  // namespace taco
