// Property fuzzing for the formula printer/parser pair: random ASTs must
// survive print -> parse -> print round trips structurally intact, with
// printing a fixed point. This is the strongest guarantee that formulas
// written by autofill and serialized through .tsheet files never drift.

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "formula/parser.h"
#include "formula/references.h"
#include "graph_test_util.h"

namespace taco {
namespace {

// Tier-1 runs use the bounded deterministic defaults below (seeds are
// fixed by INSTANTIATE_TEST_SUITE_P, so every run covers the identical
// input set — no flakes). Longer local fuzzing sessions scale every
// loop with TACO_FUZZ_TRIALS (see test::FuzzTrials).
using test::FuzzTrials;

class AstFuzzer {
 public:
  explicit AstFuzzer(uint32_t seed) : rng_(seed) {}

  ExprPtr Random(int depth) {
    // Bias toward leaves as depth grows.
    int choice = Pick(depth >= 4 ? 4 : 7);
    switch (choice) {
      case 0:
        return std::make_unique<NumberExpr>(RandomNumber());
      case 1:
        return std::make_unique<StringExpr>(RandomString());
      case 2:
        return std::make_unique<BooleanExpr>(Pick(2) == 0);
      case 3:
        return std::make_unique<ReferenceExpr>(RandomReference());
      case 4: {
        UnaryOp op = static_cast<UnaryOp>(Pick(3));
        return std::make_unique<UnaryExpr>(op, Random(depth + 1));
      }
      case 5: {
        BinaryOp op = static_cast<BinaryOp>(Pick(12));
        return std::make_unique<BinaryExpr>(op, Random(depth + 1),
                                            Random(depth + 1));
      }
      default: {
        static const char* kNames[] = {"SUM", "IF",  "MAX",    "MIN",
                                       "AVG", "AND", "VLOOKUP"};
        int n_args = Pick(3) + 1;
        std::vector<ExprPtr> args;
        for (int i = 0; i < n_args; ++i) args.push_back(Random(depth + 1));
        return std::make_unique<CallExpr>(kNames[Pick(7)], std::move(args));
      }
    }
  }

 private:
  int Pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

  double RandomNumber() {
    switch (Pick(4)) {
      case 0: return Pick(1000);
      case 1: return Pick(1000) / 8.0;
      case 2: return 0;
      default: return 123456789.25;
    }
  }

  std::string RandomString() {
    static const char* kStrings[] = {"", "a", "hi there", "q\"q", "$A$1",
                                     "1+2", "TRUE"};
    return kStrings[Pick(7)];
  }

  A1Reference RandomReference() {
    Cell head{Pick(50) + 1, Pick(500) + 1};
    A1Reference ref;
    ref.head_flags = AbsFlags{Pick(2) == 0, Pick(2) == 0};
    if (Pick(2) == 0) {
      ref.range = Range(head);
      ref.tail_flags = ref.head_flags;
      ref.is_single_cell = true;
    } else {
      Cell tail{head.col + Pick(4), head.row + Pick(8)};
      ref.range = Range(head, tail);
      ref.tail_flags = AbsFlags{Pick(2) == 0, Pick(2) == 0};
      ref.is_single_cell = false;
    }
    return ref;
  }

  std::mt19937 rng_;
};

class FormulaFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FormulaFuzzTest, PrintParseRoundTrip) {
  AstFuzzer fuzzer(GetParam());
  for (int trial = 0, n = FuzzTrials(300); trial < n; ++trial) {
    ExprPtr original = fuzzer.Random(0);
    std::string printed = ExprToString(*original);
    auto reparsed = ParseFormula(printed);
    ASSERT_TRUE(reparsed.ok())
        << "failed to reparse: " << printed << " — "
        << reparsed.status().ToString();
    EXPECT_TRUE(ExprEquals(*original, **reparsed)) << printed;
    // Printing is a fixed point.
    EXPECT_EQ(printed, ExprToString(**reparsed));
  }
}

TEST_P(FormulaFuzzTest, CloneIsDeepAndEqual) {
  AstFuzzer fuzzer(GetParam() ^ 0xC0FFEE);
  for (int trial = 0, n = FuzzTrials(100); trial < n; ++trial) {
    ExprPtr original = fuzzer.Random(0);
    ExprPtr clone = CloneExpr(*original);
    EXPECT_TRUE(ExprEquals(*original, *clone));
    EXPECT_EQ(ExprToString(*original), ExprToString(*clone));
  }
}

TEST_P(FormulaFuzzTest, ShiftThenUnshiftIsIdentityWhenInBounds) {
  // Shifting is invertible unless a mixed-anchor reference's corners
  // cross and get re-normalized (e.g. K$168:$K$171 moved right: the
  // relative head column passes the fixed tail column). That lossiness
  // is inherent to spreadsheet semantics, so crossing trials are skipped:
  // a crossing is visible as a flag change after the forward shift.
  AstFuzzer fuzzer(GetParam() ^ 0xBEEF);
  for (int trial = 0, n = FuzzTrials(200); trial < n; ++trial) {
    ExprPtr original = fuzzer.Random(0);
    Offset offset{trial % 5, trial % 7};
    auto shifted = ShiftExprForAutofill(*original, offset);
    ASSERT_TRUE(shifted.ok());  // positive offsets stay in bounds

    auto refs_before = ExtractReferences(*original);
    auto refs_after = ExtractReferences(**shifted);
    ASSERT_EQ(refs_before.size(), refs_after.size());
    bool crossed = false;
    for (size_t i = 0; i < refs_before.size(); ++i) {
      if (refs_before[i].head_flags != refs_after[i].head_flags ||
          refs_before[i].tail_flags != refs_after[i].tail_flags) {
        crossed = true;
        break;
      }
    }
    if (crossed) continue;

    auto back = ShiftExprForAutofill(**shifted, -offset);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(ExprEquals(*original, **back))
        << ExprToString(*original) << " vs " << ExprToString(**back);
  }
}

TEST_P(FormulaFuzzTest, ExtractedReferencesMatchPrintedText) {
  AstFuzzer fuzzer(GetParam() ^ 0x1234);
  for (int trial = 0, n = FuzzTrials(200); trial < n; ++trial) {
    ExprPtr original = fuzzer.Random(0);
    // References extracted from the AST equal those extracted after a
    // print/parse round trip (serialization preserves the graph inputs).
    auto reparsed = ParseFormula(ExprToString(*original));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(ExtractReferences(*original), ExtractReferences(**reparsed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace taco
