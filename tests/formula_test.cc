// Tests for the formula lexer, parser, printer, reference extraction, and
// the autofill shift transform.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "formula/lexer.h"
#include "formula/parser.h"
#include "formula/references.h"

namespace taco {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("+-*/^&%()=<><=<>=:,");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& token : *tokens) kinds.push_back(token.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                       TokenKind::kSlash, TokenKind::kCaret,
                       TokenKind::kAmpersand, TokenKind::kPercent,
                       TokenKind::kLParen, TokenKind::kRParen, TokenKind::kEq,
                       TokenKind::kNe, TokenKind::kLe, TokenKind::kNe,
                       TokenKind::kEq, TokenKind::kColon, TokenKind::kComma,
                       TokenKind::kEnd}));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("3.5 1e3 .25 \"he said \"\"hi\"\"\"");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.25);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[3].text, "he said \"hi\"");
}

TEST(LexerTest, CellRefsAndIdentifiers) {
  auto tokens = Tokenize("SUM(A1,$B$2,c3)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SUM");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kCellRef);
  EXPECT_EQ((*tokens)[2].cell, (Cell{1, 1}));
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kCellRef);
  EXPECT_EQ((*tokens)[4].cell, (Cell{2, 2}));
  EXPECT_TRUE((*tokens)[4].cell_flags.abs_col);
  EXPECT_TRUE((*tokens)[4].cell_flags.abs_row);
  EXPECT_EQ((*tokens)[6].cell, (Cell{3, 3}));  // lowercase accepted
}

TEST(LexerTest, BooleansCaseInsensitive) {
  auto tokens = Tokenize("TRUE false");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kBoolean);
  EXPECT_TRUE((*tokens)[0].boolean);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kBoolean);
  EXPECT_FALSE((*tokens)[1].boolean);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("#BAD").ok());
  EXPECT_FALSE(Tokenize("FOO123BAR").ok());  // neither call nor valid ref
}

// ---------------------------------------------------------------------------
// Parser structure

const BinaryExpr& AsBinary(const Expr& e) {
  EXPECT_EQ(e.kind, ExprKind::kBinary);
  return static_cast<const BinaryExpr&>(e);
}

TEST(ParserTest, Precedence) {
  auto expr = ParseFormula("1+2*3");
  ASSERT_TRUE(expr.ok());
  const auto& add = AsBinary(**expr);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(add.lhs->kind, ExprKind::kNumber);
  const auto& mul = AsBinary(*add.rhs);
  EXPECT_EQ(mul.op, BinaryOp::kMul);
}

TEST(ParserTest, LeftAssociativity) {
  auto expr = ParseFormula("10-4-3");
  ASSERT_TRUE(expr.ok());
  const auto& outer = AsBinary(**expr);
  EXPECT_EQ(outer.op, BinaryOp::kSub);
  const auto& inner = AsBinary(*outer.lhs);
  EXPECT_EQ(inner.op, BinaryOp::kSub);
}

TEST(ParserTest, ExponentRightAssociative) {
  auto expr = ParseFormula("2^3^2");
  ASSERT_TRUE(expr.ok());
  const auto& outer = AsBinary(**expr);
  EXPECT_EQ(outer.op, BinaryOp::kPow);
  EXPECT_EQ(outer.lhs->kind, ExprKind::kNumber);
  EXPECT_EQ(outer.rhs->kind, ExprKind::kBinary);
}

TEST(ParserTest, ComparisonLowestPrecedence) {
  auto expr = ParseFormula("A1+1=B2*2");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(AsBinary(**expr).op, BinaryOp::kEq);
}

TEST(ParserTest, UnaryAndPercent) {
  auto expr = ParseFormula("-5%");
  ASSERT_TRUE(expr.ok());
  const auto& neg = static_cast<const UnaryExpr&>(**expr);
  EXPECT_EQ(neg.op, UnaryOp::kNegate);
  EXPECT_EQ(static_cast<const UnaryExpr&>(*neg.operand).op, UnaryOp::kPercent);
}

TEST(ParserTest, PaperFig2Formula) {
  // The running example from the paper's Fig. 2.
  auto expr = ParseFormula("IF(A3=A2,N2+M3,M3)");
  ASSERT_TRUE(expr.ok());
  const auto& call = static_cast<const CallExpr&>(**expr);
  EXPECT_EQ(call.name, "IF");
  ASSERT_EQ(call.args.size(), 3u);
  EXPECT_EQ(call.args[0]->kind, ExprKind::kBinary);

  // M3 appears twice in the formula; extraction preserves duplicates.
  auto refs = ExtractReferences(**expr);
  ASSERT_EQ(refs.size(), 5u);
  EXPECT_EQ(refs[0].range, Range(Cell{1, 3}));   // A3
  EXPECT_EQ(refs[1].range, Range(Cell{1, 2}));   // A2
  EXPECT_EQ(refs[2].range, Range(Cell{14, 2}));  // N2
  EXPECT_EQ(refs[3].range, Range(Cell{13, 3}));  // M3
  EXPECT_EQ(refs[4].range, Range(Cell{13, 3}));  // M3 again
}

TEST(ParserTest, RangeReference) {
  auto expr = ParseFormula("SUM($B$1:B4)*A1");
  ASSERT_TRUE(expr.ok());
  auto refs = ExtractReferences(**expr);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].range, Range(2, 1, 2, 4));
  EXPECT_TRUE(refs[0].head_flags.abs_col);
  EXPECT_TRUE(refs[0].head_flags.abs_row);
  EXPECT_FALSE(refs[0].tail_flags.abs_row);
  EXPECT_FALSE(refs[0].is_single_cell);
  EXPECT_TRUE(refs[1].is_single_cell);
}

TEST(ParserTest, EmptyArgumentList) {
  auto expr = ParseFormula("RAND()");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(static_cast<const CallExpr&>(**expr).args.empty());
}

TEST(ParserTest, NestedCalls) {
  auto expr = ParseFormula("IF(SUM(A1:A3)>10,MAX(B1,B2),MIN(C1:C2))");
  ASSERT_TRUE(expr.ok());
  auto refs = ExtractReferences(**expr);
  EXPECT_EQ(refs.size(), 4u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("1+").ok());
  EXPECT_FALSE(ParseFormula("SUM(A1").ok());
  EXPECT_FALSE(ParseFormula("SUM A1)").ok());
  EXPECT_FALSE(ParseFormula("(1+2").ok());
  EXPECT_FALSE(ParseFormula("1 2").ok());
  EXPECT_FALSE(ParseFormula("A1:").ok());
  EXPECT_FALSE(ParseFormula("A1:5").ok());
}

// ---------------------------------------------------------------------------
// Printing round trips

class PrintRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrintRoundTripTest, ParsePrintParseIsIdentity) {
  auto first = ParseFormula(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam();
  std::string printed = ExprToString(**first);
  auto second = ParseFormula(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_TRUE(ExprEquals(**first, **second))
      << GetParam() << " -> " << printed;
  // Printing must be a fixed point after one round.
  EXPECT_EQ(printed, ExprToString(**second));
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, PrintRoundTripTest,
    ::testing::Values(
        "1+2*3", "(1+2)*3", "2^3^2", "(2^3)^2", "-A1", "-(A1+B1)", "50%%",
        "A1&\" \"&B1", "IF(A3=A2,N2+M3,M3)", "SUM($B$1:B4)*A1",
        "VLOOKUP(A1,$D$1:$E$100,2)", "1-2-3", "1-(2-3)", "10/5/2", "10/(5/2)",
        "SUM(A1:A3)+AVG(B2:B3)", "TRUE", "\"quote \"\" inside\"",
        "A1<=B1", "A1<>B2", "-2^2", "3.25%", "MAX(MIN(A1,A2),0)"));

// ---------------------------------------------------------------------------
// Autofill shift

TEST(AutofillShiftTest, RelativeMovesAbsoluteStays) {
  auto expr = ParseFormula("SUM($B$1:B4)*A1");
  ASSERT_TRUE(expr.ok());
  auto shifted = ShiftExprForAutofill(**expr, Offset{0, 1});
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(ExprToString(**shifted), "SUM($B$1:B5)*A2");
}

TEST(AutofillShiftTest, MixedAxisFlags) {
  auto expr = ParseFormula("$A1+B$2");
  ASSERT_TRUE(expr.ok());
  auto shifted = ShiftExprForAutofill(**expr, Offset{2, 3});
  ASSERT_TRUE(shifted.ok());
  // $A keeps its column but moves rows; B$2 moves columns, keeps its row.
  EXPECT_EQ(ExprToString(**shifted), "$A4+D$2");
}

TEST(AutofillShiftTest, OutOfBoundsIsRefError) {
  auto expr = ParseFormula("A1+B2");
  ASSERT_TRUE(expr.ok());
  auto shifted = ShiftExprForAutofill(**expr, Offset{0, -1});
  EXPECT_FALSE(shifted.ok());
  EXPECT_EQ(shifted.status().code(), StatusCode::kOutOfRange);
}

TEST(AutofillShiftTest, ShiftIsComposable) {
  auto expr = ParseFormula("IF(A3=A2,N2+M3,M3)");
  ASSERT_TRUE(expr.ok());
  auto once = ShiftExprForAutofill(**expr, Offset{0, 1});
  ASSERT_TRUE(once.ok());
  auto twice = ShiftExprForAutofill(**once, Offset{0, 1});
  ASSERT_TRUE(twice.ok());
  auto direct = ShiftExprForAutofill(**expr, Offset{0, 2});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(ExprEquals(**twice, **direct));
  EXPECT_EQ(ExprToString(**direct), "IF(A5=A4,N4+M5,M5)");
}

// ---------------------------------------------------------------------------
// Pattern cues

TEST(RefCueTest, ColumnAxisUsesRowFlags) {
  auto ref = ParseA1("$B$1:B4");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ClassifyReferenceCue(*ref, Axis::kColumn), RefCue::kFixRel);
  // Along the row axis, both columns are anchored -> FF.
  auto ref2 = ParseA1("$B1:$B4");
  ASSERT_TRUE(ref2.ok());
  EXPECT_EQ(ClassifyReferenceCue(*ref2, Axis::kRow), RefCue::kFixFix);
  EXPECT_EQ(ClassifyReferenceCue(*ref2, Axis::kColumn), RefCue::kRelRel);
}

TEST(RefCueTest, AllFourCues) {
  auto rr = ParseA1("A1:B4");
  auto rf = ParseA1("A1:B$4");
  auto fr = ParseA1("A$1:B4");
  auto ff = ParseA1("A$1:B$4");
  ASSERT_TRUE(rr.ok() && rf.ok() && fr.ok() && ff.ok());
  EXPECT_EQ(ClassifyReferenceCue(*rr, Axis::kColumn), RefCue::kRelRel);
  EXPECT_EQ(ClassifyReferenceCue(*rf, Axis::kColumn), RefCue::kRelFix);
  EXPECT_EQ(ClassifyReferenceCue(*fr, Axis::kColumn), RefCue::kFixRel);
  EXPECT_EQ(ClassifyReferenceCue(*ff, Axis::kColumn), RefCue::kFixFix);
}

}  // namespace
}  // namespace taco
