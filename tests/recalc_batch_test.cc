// RecalcEngine batch semantics: an EditBatch of N edits must perform
// exactly ONE merged dirty-set computation + recalc pass, re-evaluate
// each dirty formula at most once, and leave the sheet cell-for-cell
// identical to applying the same N edits sequentially.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

std::unique_ptr<DependencyGraph> MakeGraph(bool taco) {
  if (taco) return std::make_unique<TacoGraph>();
  return std::make_unique<NoCompGraph>();
}

/// Sheet + graph + engine bundle for one replay.
struct Rig {
  explicit Rig(bool taco) : graph(MakeGraph(taco)), engine(&sheet, graph.get()) {}
  Sheet sheet;
  std::unique_ptr<DependencyGraph> graph;
  RecalcEngine engine;
};

/// Asserts every cell of `range` evaluates identically in both rigs.
void ExpectSameValues(Rig* a, Rig* b, const Range& range) {
  for (const Cell& cell : EnumerateCells(range)) {
    EXPECT_EQ(a->engine.GetValue(cell), b->engine.GetValue(cell))
        << "cell " << cell.ToString();
  }
}

class RecalcBatchTest : public ::testing::TestWithParam<bool> {};

TEST_P(RecalcBatchTest, BatchMatchesSequentialCellForCell) {
  Rig batch_rig(GetParam());
  Rig seq_rig(GetParam());

  // A small model: A1:A5 inputs, B column derived, C1 grand total.
  EditBatch setup;
  for (int r = 1; r <= 5; ++r) {
    setup.push_back(Edit::SetNumber(Cell{1, r}, r * 10.0));
    setup.push_back(
        Edit::SetFormula(Cell{2, r}, "A" + std::to_string(r) + "*2"));
  }
  setup.push_back(Edit::SetFormula(Cell{3, 1}, "SUM(B1:B5)"));

  auto batch_result = batch_rig.engine.ApplyBatch(setup);
  ASSERT_TRUE(batch_result.ok()) << batch_result.status().ToString();
  EXPECT_EQ(batch_result->recalc_passes, 1u);
  EXPECT_EQ(batch_result->edits_applied, setup.size());

  uint64_t sequential_passes = 0;
  for (const Edit& edit : setup) {
    auto r = seq_rig.engine.ApplyBatch({edit});
    ASSERT_TRUE(r.ok());
    sequential_passes += r->recalc_passes;
  }
  EXPECT_EQ(sequential_passes, setup.size());

  ExpectSameValues(&batch_rig, &seq_rig, Range(1, 1, 4, 6));
}

TEST_P(RecalcBatchTest, EachDirtyFormulaRecalculatedAtMostOnce) {
  Rig rig(GetParam());
  // B1 = SUM(A1:A10): every input edit dirties the same single formula.
  for (int r = 1; r <= 10; ++r) {
    ASSERT_TRUE(rig.engine.SetNumber(Cell{1, r}, 1.0).ok());
  }
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 1}, "SUM(A1:A10)").ok());

  EditBatch batch;
  for (int r = 1; r <= 10; ++r) {
    batch.push_back(Edit::SetNumber(Cell{1, r}, 2.0));
  }
  auto result = rig.engine.ApplyBatch(batch);
  ASSERT_TRUE(result.ok());
  // Ten edits all dirty exactly B1; a per-edit loop would recalc it ten
  // times, the merged pass exactly once.
  EXPECT_EQ(result->recalc_passes, 1u);
  EXPECT_EQ(result->recalculated, 1u);
  EXPECT_EQ(result->dirty_cells, 1u);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, 1}), Value::Number(20.0));

  // Sequential baseline: the same ten edits cost ten recalcs of B1.
  Rig seq(GetParam());
  for (int r = 1; r <= 10; ++r) {
    ASSERT_TRUE(seq.engine.SetNumber(Cell{1, r}, 1.0).ok());
  }
  ASSERT_TRUE(seq.engine.SetFormula(Cell{2, 1}, "SUM(A1:A10)").ok());
  uint64_t recalced = 0;
  for (const Edit& edit : batch) {
    auto r = seq.engine.ApplyBatch({edit});
    ASSERT_TRUE(r.ok());
    recalced += r->recalculated;
  }
  EXPECT_EQ(recalced, 10u);
  EXPECT_EQ(seq.engine.GetValue(Cell{2, 1}), rig.engine.GetValue(Cell{2, 1}));
}

TEST_P(RecalcBatchTest, OverlappingDirtySetsAreMerged) {
  Rig rig(GetParam());
  // Chain: A1 -> B1 -> B2 -> B3. Editing A1 and B1's formula both dirty
  // the downstream chain; the merged pass must still visit each formula
  // once (disjointified dirty set).
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 1.0).ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 1}, "A1+1").ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 2}, "B1+1").ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 3}, "B2+1").ok());

  EditBatch batch;
  batch.push_back(Edit::SetNumber(Cell{1, 1}, 5.0));
  batch.push_back(Edit::SetFormula(Cell{2, 1}, "A1+100"));
  auto result = rig.engine.ApplyBatch(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recalc_passes, 1u);
  // Dirty formulas: B1, B2, B3 — each exactly once despite two seeds.
  EXPECT_EQ(result->recalculated, 3u);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, 3}), Value::Number(107.0));
}

TEST_P(RecalcBatchTest, BatchWithClearAndFormulaReplacement) {
  Rig batch_rig(GetParam());
  Rig seq_rig(GetParam());
  for (Rig* rig : {&batch_rig, &seq_rig}) {
    for (int r = 1; r <= 4; ++r) {
      ASSERT_TRUE(rig->engine.SetNumber(Cell{1, r}, r * 1.0).ok());
    }
    ASSERT_TRUE(rig->engine.SetFormula(Cell{2, 1}, "SUM(A1:A4)").ok());
    ASSERT_TRUE(rig->engine.SetFormula(Cell{2, 2}, "B1*10").ok());
  }

  EditBatch batch;
  batch.push_back(Edit::ClearRange(Range(1, 3, 1, 4)));   // Drop A3:A4.
  batch.push_back(Edit::SetFormula(Cell{2, 1}, "SUM(A1:A2)"));  // Rewire.
  batch.push_back(Edit::SetText(Cell{4, 1}, "note"));
  auto result = batch_rig.engine.ApplyBatch(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recalc_passes, 1u);
  for (const Edit& edit : batch) {
    ASSERT_TRUE(seq_rig.engine.ApplyBatch({edit}).ok());
  }
  ExpectSameValues(&batch_rig, &seq_rig, Range(1, 1, 4, 4));
  EXPECT_EQ(batch_rig.engine.GetValue(Cell{2, 2}), Value::Number(30.0));
}

TEST_P(RecalcBatchTest, FailingEditStopsBatchButKeepsEngineConsistent) {
  Rig rig(GetParam());
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 1.0).ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 1}, "A1*2").ok());

  EditBatch batch;
  batch.push_back(Edit::SetNumber(Cell{1, 1}, 7.0));
  batch.push_back(Edit::SetFormula(Cell{3, 1}, "SUM(("));  // Parse error.
  batch.push_back(Edit::SetNumber(Cell{1, 1}, 9.0));       // Never applied.
  RecalcResult partial;
  auto result = rig.engine.ApplyBatch(batch, &partial);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  // The edit before the failure was applied AND recalculated, and the
  // partial outcome reports exactly that work.
  EXPECT_EQ(rig.engine.GetValue(Cell{1, 1}), Value::Number(7.0));
  EXPECT_EQ(rig.engine.GetValue(Cell{2, 1}), Value::Number(14.0));
  EXPECT_EQ(partial.edits_applied, 1u);
  EXPECT_EQ(partial.recalc_passes, 1u);
  EXPECT_EQ(partial.recalculated, 1u);
  // The failing formula touched neither the sheet nor the graph.
  EXPECT_FALSE(rig.sheet.IsFormulaCell(Cell{3, 1}));
}

TEST_P(RecalcBatchTest, FailedFormulaReplacementKeepsOldDependencies) {
  Rig rig(GetParam());
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 3.0).ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 1}, "A1*2").ok());
  // Replacing B1's formula with garbage must fail WITHOUT dropping B1's
  // existing graph edges (parse is validated before the clear+insert).
  auto result = rig.engine.SetFormula(Cell{2, 1}, "SUM((");
  ASSERT_FALSE(result.ok());
  auto after = rig.engine.SetNumber(Cell{1, 1}, 4.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->recalculated, 1u);  // B1 still depends on A1.
  EXPECT_EQ(rig.engine.GetValue(Cell{2, 1}), Value::Number(8.0));
}

TEST_P(RecalcBatchTest, EmptyBatchIsANoOp) {
  Rig rig(GetParam());
  auto result = rig.engine.ApplyBatch({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recalc_passes, 0u);
  EXPECT_EQ(result->edits_applied, 0u);
  EXPECT_EQ(result->recalculated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Graphs, RecalcBatchTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Taco" : "NoComp";
                         });

}  // namespace
}  // namespace taco
