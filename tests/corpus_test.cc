// Tests for the corpus simulator: determinism, ground-truth anchors
// (validated against real graph queries), pattern-mix shape, and scale
// ordering between the Enron and Github profiles.

#include <gtest/gtest.h>

#include "common/range_set.h"
#include "corpus/generator.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

CorpusProfile TestProfile() {
  CorpusProfile p = CorpusProfile::Enron().Tiny();
  p.seed = 777;
  return p;
}

TEST(CorpusTest, DeterministicAcrossGenerators) {
  CorpusGenerator g1(TestProfile());
  CorpusGenerator g2(TestProfile());
  for (int i = 0; i < 3; ++i) {
    CorpusSheet a = g1.GenerateSheet(i);
    CorpusSheet b = g2.GenerateSheet(i);
    EXPECT_EQ(a.sheet.cell_count(), b.sheet.cell_count());
    EXPECT_EQ(a.sheet.formula_cell_count(), b.sheet.formula_cell_count());
    EXPECT_EQ(a.expected_dependencies, b.expected_dependencies);
    EXPECT_EQ(a.max_dependents_cell, b.max_dependents_cell);
    EXPECT_EQ(a.expected_max_dependents, b.expected_max_dependents);
    // Spot-check identical contents.
    auto deps_a = CollectDependencies(a.sheet);
    auto deps_b = CollectDependencies(b.sheet);
    ASSERT_EQ(deps_a.size(), deps_b.size());
    for (size_t k = 0; k < deps_a.size(); k += 17) {
      EXPECT_EQ(deps_a[k], deps_b[k]);
    }
  }
}

TEST(CorpusTest, DifferentSheetsDiffer) {
  CorpusGenerator gen(TestProfile());
  CorpusSheet a = gen.GenerateSheet(0);
  CorpusSheet b = gen.GenerateSheet(1);
  EXPECT_NE(a.sheet.cell_count(), b.sheet.cell_count());
}

TEST(CorpusTest, DependencyCountMatchesPrediction) {
  CorpusGenerator gen(TestProfile());
  for (int i = 0; i < 4; ++i) {
    CorpusSheet s = gen.GenerateSheet(i);
    auto deps = CollectDependencies(s.sheet);
    EXPECT_EQ(deps.size(), s.expected_dependencies) << "sheet " << i;
  }
}

TEST(CorpusTest, AnchorsMatchRealQueries) {
  // With noise disabled, the recorded anchors are exact by construction;
  // verify against actual graph queries.
  CorpusProfile p = TestProfile();
  p.mix.noise = 0.0;
  CorpusGenerator gen(p);
  for (int i = 0; i < 4; ++i) {
    CorpusSheet s = gen.GenerateSheet(i);
    NoCompGraph graph;
    ASSERT_TRUE(BuildGraphFromSheet(s.sheet, &graph).ok());
    auto dependents = graph.FindDependents(Range(s.max_dependents_cell));
    EXPECT_EQ(CoveredCellCount(dependents), s.expected_max_dependents)
        << "sheet " << i << " anchor " << s.max_dependents_cell.ToString();
  }
}

TEST(CorpusTest, TacoCompressesCorpusSheets) {
  CorpusGenerator gen(TestProfile());
  CorpusSheet s = gen.GenerateSheet(0);

  TacoGraph taco;
  NoCompGraph nocomp;
  ASSERT_TRUE(BuildGraphFromSheet(s.sheet, &taco).ok());
  ASSERT_TRUE(BuildGraphFromSheet(s.sheet, &nocomp).ok());
  // Compression must be substantial even on tiny sheets (Table IV shape).
  EXPECT_LT(taco.NumEdges() * 3, nocomp.NumEdges());
  // And lossless: spot-check equivalence on the anchor.
  auto t = taco.FindDependents(Range(s.max_dependents_cell));
  auto n = nocomp.FindDependents(Range(s.max_dependents_cell));
  EXPECT_TRUE(SameCellSet(t, n));
}

TEST(CorpusTest, PatternMixShapeMatchesTableV) {
  // On a mid-size sheet the reduced-edge ranking must put the RR family
  // first and FF second, with FR/RF marginal (Table V's ordering).
  CorpusProfile p = CorpusProfile::Enron();
  p.num_sheets = 1;
  p.min_formulas_per_sheet = 4000;
  p.max_formulas_per_sheet = 8000;
  p.min_region_len = 30;
  p.max_region_len = 400;
  CorpusGenerator gen(p);
  CorpusSheet s = gen.GenerateSheet(0);

  TacoGraph taco;
  ASSERT_TRUE(BuildGraphFromSheet(s.sheet, &taco).ok());
  auto stats = taco.PatternStats();
  uint64_t rr_family = stats[PatternType::kRR].reduced() +
                       stats[PatternType::kRRChain].reduced();
  uint64_t ff = stats[PatternType::kFF].reduced();
  uint64_t fr = stats[PatternType::kFR].reduced();
  uint64_t rf = stats[PatternType::kRF].reduced();
  EXPECT_GT(rr_family, ff);
  EXPECT_GT(ff, fr);
  EXPECT_GT(fr, rf);
}

TEST(CorpusTest, GithubSheetsLargerThanEnron) {
  CorpusProfile enron = CorpusProfile::Enron();
  CorpusProfile github = CorpusProfile::Github();
  // Compare expected dependency totals over a few sheets.
  // Shrink sheet sizes (keeping the profiles' scale ratios) so the test
  // can afford enough samples to average out the log-uniform variance.
  auto shrink = [](CorpusProfile p) {
    p.min_formulas_per_sheet /= 20;
    p.max_formulas_per_sheet /= 20;
    p.min_region_len = 10;
    p.max_region_len /= 20;
    return p;
  };
  CorpusGenerator ge(shrink(enron));
  CorpusGenerator gg(shrink(github));
  uint64_t enron_total = 0, github_total = 0;
  for (int i = 0; i < 12; ++i) {
    enron_total += ge.GenerateSheet(i).expected_dependencies;
    github_total += gg.GenerateSheet(i).expected_dependencies;
  }
  EXPECT_GT(github_total, enron_total);
}

TEST(CorpusTest, GapRegionsGenerateStride2Layout) {
  CorpusProfile p = TestProfile();
  p.gap_region_probability = 1.0;
  p.mix = RegionMix{0, 1, 0, 0, 0, 0, 0, 0};  // derived regions only
  p.hole_probability = 0;
  CorpusGenerator gen(p);
  CorpusSheet s = gen.GenerateSheet(0);

  // With the extended pattern set, gap sheets compress via RR-GapOne.
  TacoOptions options;
  options.patterns = ExtendedPatternSet();
  TacoGraph with_gap{options};
  TacoGraph without_gap;
  ASSERT_TRUE(BuildGraphFromSheet(s.sheet, &with_gap).ok());
  ASSERT_TRUE(BuildGraphFromSheet(s.sheet, &without_gap).ok());
  auto stats = with_gap.PatternStats();
  EXPECT_GT(stats[PatternType::kRRGapOne].reduced(), 0u);
  EXPECT_LT(with_gap.NumEdges(), without_gap.NumEdges());
}

TEST(CorpusTest, FillValuesPopulatesData) {
  CorpusProfile p = TestProfile();
  p.fill_values = true;
  CorpusGenerator gen(p);
  CorpusSheet with = gen.GenerateSheet(0);
  p.fill_values = false;
  CorpusGenerator gen2(p);
  CorpusSheet without = gen2.GenerateSheet(0);
  EXPECT_GT(with.sheet.cell_count(), without.sheet.cell_count());
  EXPECT_EQ(with.sheet.formula_cell_count(),
            without.sheet.formula_cell_count());
}

}  // namespace
}  // namespace taco
