// Loopback integration tests for the socket transport (src/net): real
// TCP connections against a SocketServer on an ephemeral port.
//
// What must hold: concurrent clients of one workbook observe each
// other's edits (a response received means the edit is applied); torn
// and pipelined writes reassemble into the same commands stdin framing
// would produce; an oversized line is dropped with one ERR and the
// connection survives; an unframeable BATCH header closes the stream;
// EOF mid-frame executes the partial command; idle and over-capacity
// clients are turned away with an ERR line; and Shutdown() with clients
// attached drains in-flight commands, joins every thread, and leaves
// the service's sessions intact. The concurrent suites run under
// ThreadSanitizer in CI.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket_client.h"
#include "net/socket_server.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

namespace taco {
namespace {

class NetTransportTest : public ::testing::Test {
 protected:
  void StartServer(SocketServerOptions options = {},
                   WorkbookServiceOptions service_options = {}) {
    service_ = std::make_unique<WorkbookService>(service_options);
    server_ = std::make_unique<SocketServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  SocketClient Client() {
    SocketClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  static std::string Call(SocketClient* client, const std::string& command) {
    auto response = client->Call(command);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.value_or("(dead)");
  }

  std::unique_ptr<WorkbookService> service_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(NetTransportTest, ClientsShareSessionsAndObserveEachOthersEdits) {
  StartServer();
  SocketClient a = Client();
  SocketClient b = Client();

  EXPECT_TRUE(Call(&a, "OPEN wb").starts_with("OK opened wb"));
  EXPECT_TRUE(Call(&a, "SET wb A1 7").starts_with("OK set"));
  // a's response arrived, so the edit is applied: b must see it.
  EXPECT_EQ(Call(&b, "GET wb A1"), "VALUE A1 7");
  EXPECT_TRUE(Call(&b, "FORMULA wb B1 A1*3").starts_with("OK set"));
  EXPECT_EQ(Call(&a, "GET wb B1"), "VALUE B1 21");

  // Both transports share one service: the in-process processor sees
  // the socket clients' session...
  CommandProcessor processor(service_.get());
  EXPECT_EQ(processor.Execute("LIST"), "OK sessions wb");
  // ...and STATS (from either path) reports the attached connections.
  std::string stats = Call(&a, "STATS");
  EXPECT_NE(stats.find("connections open=2 accepted=2"), std::string::npos)
      << stats;
}

TEST_F(NetTransportTest, TornAndPipelinedWritesReassemble) {
  StartServer();
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));

  // One command torn across four writes, CRLF-terminated.
  ASSERT_TRUE(c.WriteRaw("SE").ok());
  ASSERT_TRUE(c.WriteRaw("T wb A1 4").ok());
  ASSERT_TRUE(c.WriteRaw("2\r").ok());
  ASSERT_TRUE(c.WriteRaw("\n").ok());
  auto set_response = c.ReadResponse();
  ASSERT_TRUE(set_response.ok());
  EXPECT_TRUE(set_response->starts_with("OK set")) << *set_response;

  // Two commands pipelined in one write: two responses, in order.
  ASSERT_TRUE(c.WriteRaw("GET wb A1\nGET wb B9\n").ok());
  EXPECT_EQ(*c.ReadResponse(), "VALUE A1 42");
  EXPECT_EQ(*c.ReadResponse(), "VALUE B9 ");

  // A BATCH torn mid-body is still one frame and one merged recalc.
  ASSERT_TRUE(c.WriteRaw("BATCH wb 2\nSET A2 1\n").ok());
  ASSERT_TRUE(c.WriteRaw("SET A3 2\n").ok());
  auto batch_response = c.ReadResponse();
  ASSERT_TRUE(batch_response.ok());
  EXPECT_TRUE(batch_response->starts_with("OK batch edits=2"))
      << *batch_response;
  EXPECT_NE(batch_response->find("passes=1"), std::string::npos);
}

TEST_F(NetTransportTest, OversizedLineGetsErrAndConnectionSurvives) {
  SocketServerOptions options;
  options.max_line_bytes = 256;
  StartServer(options);
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));

  // An unterminated flood: the ERR arrives while the line is still
  // open, proving the server bounded its buffering.
  ASSERT_TRUE(c.WriteRaw(std::string(400, 'X')).ok());
  auto err = c.ReadResponse();
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(*err, "ERR InvalidArgument: line exceeds 256 bytes");

  // Terminate the flood; the connection keeps serving.
  ASSERT_TRUE(c.WriteRaw(std::string(300, 'X') + "\n").ok());
  EXPECT_TRUE(Call(&c, "SET wb A1 5").starts_with("OK set"));

  // An oversized line that arrives already terminated, followed by a
  // pipelined command: one ERR, then the command runs.
  ASSERT_TRUE(c.WriteRaw(std::string(400, 'Y') + "\nGET wb A1\n").ok());
  EXPECT_EQ(*c.ReadResponse(), "ERR InvalidArgument: line exceeds 256 bytes");
  EXPECT_EQ(*c.ReadResponse(), "VALUE A1 5");

  // Inside a BATCH body the dropped line consumes its slot, so framing
  // never slips: the batch fails cleanly and the next command works.
  ASSERT_TRUE(
      c.WriteRaw("BATCH wb 2\n" + std::string(400, 'Z') + "\nSET A2 9\n")
          .ok());
  auto batch = c.ReadResponse();
  ASSERT_TRUE(batch.ok());
  EXPECT_NE(batch->find("batch line 1"), std::string::npos) << *batch;
  EXPECT_EQ(Call(&c, "GET wb A2"), "VALUE A2 ");  // Batch applied nothing.
  EXPECT_TRUE(Call(&c, "LIST").starts_with("OK sessions"));
}

TEST_F(NetTransportTest, OversizedBatchHeaderIsUnframeableAndCloses) {
  SocketServerOptions options;
  options.max_line_bytes = 256;
  StartServer(options);
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));

  // The header's body-line count is somewhere in the dropped bytes, so
  // the frame is unknowable: the body lines that follow must NOT be
  // reinterpreted as commands — the server answers and hangs up.
  ASSERT_TRUE(c.WriteRaw("BATCH wb " + std::string(400, ' ') +
                         "3\nSET A1 1\nSET A2 2\nSET A3 3\n")
                  .ok());
  auto err = c.ReadResponse();
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->find("BATCH frame unknowable"), std::string::npos) << *err;
  EXPECT_EQ(c.ReadLine().status().code(), StatusCode::kUnavailable);

  // Leading whitespace must not defeat the detection (the normal path's
  // tokenizer skips it, so this is still a BATCH header).
  SocketClient d = Client();
  ASSERT_TRUE(d.WriteRaw("  \tBATCH wb " + std::string(400, 'x') +
                         "\nSET A1 1\n")
                  .ok());
  auto err2 = d.ReadResponse();
  ASSERT_TRUE(err2.ok());
  EXPECT_NE(err2->find("BATCH frame unknowable"), std::string::npos) << *err2;
  EXPECT_EQ(d.ReadLine().status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTransportTest, UnframeableBatchHeaderClosesConnection) {
  StartServer();
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));

  std::string response = Call(&c, "BATCH wb 99999999");
  EXPECT_TRUE(response.starts_with("ERR InvalidArgument")) << response;
  // The body length was unknowable, so the server hung up afterwards.
  auto next = c.ReadLine();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTransportTest, EofMidBatchExecutesPartialFrame) {
  StartServer();
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));

  ASSERT_TRUE(c.SendCommand("BATCH wb 3\nSET A1 5\nSET A2 6").ok());
  c.FinishWrites();
  auto response = c.ReadResponse();
  ASSERT_TRUE(response.ok());
  // Identical to what the stdin loop produces at EOF inside a body.
  EXPECT_NE(response->find("batch line 3"), std::string::npos) << *response;
  auto eof = c.ReadLine();
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTransportTest, IdleTimeoutClosesConnectionWithAnErrLine) {
  SocketServerOptions options;
  options.idle_timeout_ms = 100;
  StartServer(options);
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));

  // Stay silent; the server must say why before hanging up.
  auto line = c.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, "ERR Unavailable: idle timeout, closing connection");
  EXPECT_EQ(c.ReadLine().status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTransportTest, MaxClientsRefusedWithErrLineThenReadmitted) {
  SocketServerOptions options;
  options.max_clients = 1;
  StartServer(options);

  SocketClient first = Client();
  ASSERT_TRUE(Call(&first, "OPEN wb").starts_with("OK opened"));

  SocketClient second = Client();
  auto refusal = second.ReadLine();
  ASSERT_TRUE(refusal.ok());
  EXPECT_EQ(*refusal, "ERR Unavailable: too many clients (max 1)");
  EXPECT_EQ(second.ReadLine().status().code(), StatusCode::kUnavailable);

  // Freeing the slot readmits (the close is observed asynchronously, so
  // poll with a bounded retry loop rather than one racy attempt).
  first.Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    SocketClient retry;
    ASSERT_TRUE(retry.Connect("127.0.0.1", server_->port()).ok());
    auto response = retry.Call("GET wb A1");
    if (response.ok() && response->starts_with("VALUE")) {
      admitted = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST_F(NetTransportTest, QuitClosesTheConnectionSilently) {
  StartServer();
  SocketClient c = Client();
  ASSERT_TRUE(Call(&c, "OPEN wb").starts_with("OK opened"));
  ASSERT_TRUE(c.SendCommand("QUIT").ok());
  EXPECT_EQ(c.ReadLine().status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTransportTest, ShutdownWithClientsAttachedLeavesNoLeaks) {
  StartServer();
  constexpr int kClients = 4;

  // Each client keeps a command stream going until the server goes
  // away. Every response it does receive must be complete and
  // well-formed — shutdown may cut the session short but never a
  // response in half.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::atomic<int> malformed{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      SocketClient c;
      if (!c.Connect("127.0.0.1", server_->port()).ok()) return;
      std::string session = "wb" + std::to_string(i);
      if (!c.SendCommand("OPEN " + session).ok()) return;
      if (!c.ReadResponse().ok()) return;
      for (int op = 0; !stop.load(); op = (op + 1) % 100) {
        auto response =
            c.Call("SET " + session + " A1 " + std::to_string(op));
        if (!response.ok()) break;  // Server drained us: fine.
        if (!(response->starts_with("OK") || response->starts_with("ERR") ||
              response->starts_with("VALUE"))) {
          malformed.fetch_add(1);
        }
      }
    });
  }

  // Let traffic build, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Shutdown();
  stop.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_EQ(server_->open_connections(), 0);
  EXPECT_EQ(service_->metrics().transport().open.load(), 0);

  // The sessions the clients opened belong to the service, not the
  // transport: they survive the transport's death and stay reachable
  // in-process (no session leaked, none lost).
  CommandProcessor processor(service_.get());
  for (int i = 0; i < kClients; ++i) {
    std::string session = "wb" + std::to_string(i);
    std::string response = processor.Execute("GET " + session + " A1");
    EXPECT_TRUE(response.starts_with("VALUE A1")) << response;
  }

  // A fresh transport can be stood up over the same service.
  server_ = std::make_unique<SocketServer>(service_.get());
  ASSERT_TRUE(server_->Start().ok());
  SocketClient again = Client();
  EXPECT_TRUE(Call(&again, "GET wb0 A1").starts_with("VALUE A1"));
  server_->Shutdown();
}

// Mixed concurrent traffic — own session plus a shared one — exercising
// the accept path, per-connection framing, and the shared service under
// TSan. Values on the shared session race by design; well-formedness
// and per-client self-consistency are the assertions.
TEST_F(NetTransportTest, ConcurrentClientsMixedTrafficSoak) {
  WorkbookServiceOptions service_options;
  service_options.recalc_threads = 2;  // Wave scheduler in the loop too.
  StartServer({}, service_options);

  {
    SocketClient setup = Client();
    ASSERT_TRUE(Call(&setup, "OPEN shared").starts_with("OK opened"));
  }

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 60;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      SocketClient c;
      if (!c.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::string own = "own" + std::to_string(i);
      auto check = [&](const std::string& command, const char* prefix) {
        auto response = c.Call(command);
        if (!response.ok() || !response->starts_with(prefix)) {
          failures.fetch_add(1);
        }
      };
      check("OPEN " + own, "OK opened");
      for (int op = 0; op < kOpsPerClient; ++op) {
        switch (op % 5) {
          case 0:
            check("SET " + own + " A" + std::to_string(1 + op % 9) + " " +
                      std::to_string(op),
                  "OK set");
            break;
          case 1:
            check("FORMULA " + own + " B1 SUM(A1:A9)", "OK set");
            break;
          case 2:
            check("SET shared C" + std::to_string(1 + i) + " " +
                      std::to_string(op),
                  "OK set");
            break;
          case 3:
            check("GET shared C" + std::to_string(1 + i), "VALUE");
            break;
          default:
            check("BATCH " + own + " 2\nSET A1 " + std::to_string(op) +
                      "\nFORMULA B2 A1*2",
                  "OK batch");
            break;
        }
      }
      // Own-session state is not racy: the last writes must read back.
      check("GET " + own + " B2", "VALUE B2 ");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const TransportCounters& counters = service_->metrics().transport();
  EXPECT_EQ(counters.accepted.load(), static_cast<uint64_t>(kClients + 1));
  EXPECT_GE(counters.commands.load(),
            static_cast<uint64_t>(kClients * kOpsPerClient));
}

}  // namespace
}  // namespace taco
