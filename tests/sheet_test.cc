// Tests for the sparse sheet model, autofill, and .tsheet serialization.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sheet/sheet.h"
#include "sheet/textio.h"

namespace taco {
namespace {

TEST(SheetTest, SetAndGetLiterals) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 42.5).ok());
  ASSERT_TRUE(sheet.SetText(Cell{1, 2}, "label").ok());
  ASSERT_TRUE(sheet.SetBoolean(Cell{1, 3}, true).ok());

  ASSERT_NE(sheet.Get(Cell{1, 1}), nullptr);
  EXPECT_DOUBLE_EQ(sheet.Get(Cell{1, 1})->number(), 42.5);
  EXPECT_EQ(sheet.Get(Cell{1, 2})->text(), "label");
  EXPECT_TRUE(sheet.Get(Cell{1, 3})->boolean());
  EXPECT_EQ(sheet.Get(Cell{2, 1}), nullptr);
  EXPECT_EQ(sheet.cell_count(), 3u);
  EXPECT_EQ(sheet.formula_cell_count(), 0u);
}

TEST(SheetTest, SetFormulaParsesAndCanonicalizes) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 1}, "sum(a1:a3)").ok());
  ASSERT_TRUE(sheet.IsFormulaCell(Cell{2, 1}));
  EXPECT_EQ(sheet.Get(Cell{2, 1})->formula().text, "SUM(A1:A3)");
  EXPECT_EQ(sheet.formula_cell_count(), 1u);
}

TEST(SheetTest, SetFormulaRejectsMalformed) {
  Sheet sheet;
  EXPECT_FALSE(sheet.SetFormula(Cell{1, 1}, "SUM(").ok());
  EXPECT_EQ(sheet.Get(Cell{1, 1}), nullptr);
}

TEST(SheetTest, OverwriteMaintainsFormulaCount) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 1}, "A2+1").ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 5).ok());
  EXPECT_EQ(sheet.formula_cell_count(), 0u);
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 1}, "A3+1").ok());
  EXPECT_EQ(sheet.formula_cell_count(), 1u);
  ASSERT_TRUE(sheet.Clear(Cell{1, 1}).ok());
  EXPECT_EQ(sheet.formula_cell_count(), 0u);
  EXPECT_EQ(sheet.cell_count(), 0u);
}

TEST(SheetTest, ClearRangeSparseAndDense) {
  Sheet sheet;
  for (int row = 1; row <= 10; ++row) {
    ASSERT_TRUE(sheet.SetNumber(Cell{1, row}, row).ok());
  }
  // Dense path: range area smaller than cell count.
  ASSERT_TRUE(sheet.ClearRange(Range(1, 1, 1, 3)).ok());
  EXPECT_EQ(sheet.cell_count(), 7u);
  // Sparse path: huge range, few cells.
  ASSERT_TRUE(sheet.ClearRange(Range(1, 1, 1000, 100000)).ok());
  EXPECT_EQ(sheet.cell_count(), 0u);
}

TEST(SheetTest, UsedRange) {
  Sheet sheet;
  EXPECT_FALSE(sheet.UsedRange().has_value());
  ASSERT_TRUE(sheet.SetNumber(Cell{3, 7}, 1).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{5, 2}, 2).ok());
  ASSERT_EQ(sheet.UsedRange(), Range(3, 2, 5, 7));
}

TEST(SheetTest, OutOfBoundsRejected) {
  Sheet sheet;
  EXPECT_FALSE(sheet.SetNumber(Cell{0, 1}, 1).ok());
  EXPECT_FALSE(sheet.SetNumber(Cell{1, kMaxRow + 1}, 1).ok());
  EXPECT_FALSE(sheet.ClearRange(Range(2, 2, 1, 1)).ok());
}

TEST(SheetTest, ColumnMajorIterationOrder) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{2, 1}, 1).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 2}, 2).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 3).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{2, 2}, 4).ok());

  std::vector<Cell> order;
  sheet.ForEachCellColumnMajor(
      [&order](const Cell& cell, const CellContent&) { order.push_back(cell); });
  EXPECT_EQ(order, (std::vector<Cell>{{1, 1}, {1, 2}, {2, 1}, {2, 2}}));
}

// ---------------------------------------------------------------------------
// Autofill

TEST(AutofillTest, PaperFig4aSlidingWindow) {
  // C1 = SUM(A1:B3) dragged down to C4 produces the RR pattern of Fig. 4a.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM(A1:B3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 4)).ok());
  EXPECT_EQ(sheet.Get(Cell{3, 2})->formula().text, "SUM(A2:B4)");
  EXPECT_EQ(sheet.Get(Cell{3, 3})->formula().text, "SUM(A3:B5)");
  EXPECT_EQ(sheet.Get(Cell{3, 4})->formula().text, "SUM(A4:B6)");
  EXPECT_EQ(sheet.formula_cell_count(), 4u);
}

TEST(AutofillTest, PaperFig4cExpandingWindow) {
  // C1 = SUM($A$1:B1) dragged down produces the FR pattern of Fig. 4c.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM($A$1:B1)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 3)).ok());
  EXPECT_EQ(sheet.Get(Cell{3, 2})->formula().text, "SUM($A$1:B2)");
  EXPECT_EQ(sheet.Get(Cell{3, 3})->formula().text, "SUM($A$1:B3)");
}

TEST(AutofillTest, FixedReferenceFF) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM($A$1:$B$3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 3)).ok());
  EXPECT_EQ(sheet.Get(Cell{3, 2})->formula().text, "SUM($A$1:$B$3)");
  EXPECT_EQ(sheet.Get(Cell{3, 3})->formula().text, "SUM($A$1:$B$3)");
}

TEST(AutofillTest, RowAxisFill) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 5}, "A1+A2").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{1, 5}, Range(1, 5, 4, 5)).ok());
  EXPECT_EQ(sheet.Get(Cell{2, 5})->formula().text, "B1+B2");
  EXPECT_EQ(sheet.Get(Cell{4, 5})->formula().text, "D1+D2");
}

TEST(AutofillTest, LiteralsCopyUnchanged) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 7).ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{1, 1}, Range(1, 1, 1, 5)).ok());
  for (int row = 1; row <= 5; ++row) {
    ASSERT_NE(sheet.Get(Cell{1, row}), nullptr) << row;
    EXPECT_DOUBLE_EQ(sheet.Get(Cell{1, row})->number(), 7);
  }
}

TEST(AutofillTest, BlankSourceClears) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{2, 2}, 1).ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{9, 9}, Range(2, 2, 2, 3)).ok());
  EXPECT_EQ(sheet.Get(Cell{2, 2}), nullptr);
}

TEST(AutofillTest, RefErrorWhenShiftLeavesSheet) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 2}, "A1").ok());
  // Filling upward would reference row 0.
  Status s = Autofill(&sheet, Cell{2, 2}, Range(2, 1, 2, 2));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(AutofillTest, LargeFillSharesNothingAcrossRows) {
  // A 5000-row fill parses once and shifts per row; verify a few samples.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{14, 3}, "IF(A3=A2,N2+M3,M3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{14, 3}, Range(14, 3, 14, 5002)).ok());
  EXPECT_EQ(sheet.Get(Cell{14, 5002})->formula().text,
            "IF(A5002=A5001,N5001+M5002,M5002)");
  EXPECT_EQ(sheet.formula_cell_count(), 5000u);
}

// ---------------------------------------------------------------------------
// Text I/O

TEST(TextIoTest, RoundTripAllContentTypes) {
  Sheet sheet;
  sheet.set_name("demo");
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 42.5).ok());
  ASSERT_TRUE(sheet.SetText(Cell{1, 2}, "he said \"hi\"").ok());
  ASSERT_TRUE(sheet.SetBoolean(Cell{1, 3}, false).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 1}, "SUM(A1:A3)*2").ok());

  std::string text = WriteSheetText(sheet);
  auto loaded = ReadSheetText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->cell_count(), 4u);
  EXPECT_DOUBLE_EQ(loaded->Get(Cell{1, 1})->number(), 42.5);
  EXPECT_EQ(loaded->Get(Cell{1, 2})->text(), "he said \"hi\"");
  EXPECT_FALSE(loaded->Get(Cell{1, 3})->boolean());
  EXPECT_EQ(loaded->Get(Cell{2, 1})->formula().text, "SUM(A1:A3)*2");
}

TEST(TextIoTest, WriteIsDeterministicColumnMajor) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{2, 1}, 1).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 2).ok());
  std::string text = WriteSheetText(sheet);
  EXPECT_NE(text.find("A1 = 2\nB1 = 1\n"), std::string::npos) << text;
}

TEST(TextIoTest, CommentsAndBlankLinesIgnored) {
  auto sheet = ReadSheetText("# header\n\n  \nA1 = 1\n# tail\n");
  ASSERT_TRUE(sheet.ok());
  EXPECT_EQ(sheet->cell_count(), 1u);
}

TEST(TextIoTest, ErrorsCarryLineNumbers) {
  auto bad_cell = ReadSheetText("A1 = 1\nZZZZZ9 = 2\n");
  ASSERT_FALSE(bad_cell.ok());
  EXPECT_NE(bad_cell.status().message().find("line 2"), std::string::npos);

  auto bad_number = ReadSheetText("A1 = 12x\n");
  ASSERT_FALSE(bad_number.ok());

  auto bad_formula = ReadSheetText("A1 = =SUM(\n");
  ASSERT_FALSE(bad_formula.ok());

  auto no_eq = ReadSheetText("A1 1\n");
  ASSERT_FALSE(no_eq.ok());

  auto bad_string = ReadSheetText("A1 = \"oops\n");
  ASSERT_FALSE(bad_string.ok());
}

TEST(TextIoTest, FileRoundTrip) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM(A1:B3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 100)).ok());

  std::string path = ::testing::TempDir() + "/taco_textio_test.tsheet";
  ASSERT_TRUE(SaveSheetFile(sheet, path).ok());
  auto loaded = LoadSheetFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "taco_textio_test");
  EXPECT_EQ(loaded->formula_cell_count(), 100u);
  EXPECT_EQ(loaded->Get(Cell{3, 50})->formula().text, "SUM(A50:B52)");
}

TEST(TextIoTest, MissingFileIsIoError) {
  auto missing = LoadSheetFile("/nonexistent/path/x.tsheet");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST(SheetTest, ClearRangeShrinksTheCellMap) {
  // unordered_map::erase never gives buckets back; the post-bulk-clear
  // shrink heuristic must, so a sheet that briefly held a huge region
  // doesn't keep paying (memory and iteration) for it forever.
  Sheet sheet;
  for (int col = 1; col <= 100; ++col) {
    for (int row = 1; row <= 100; ++row) {
      ASSERT_TRUE(sheet.SetNumber(Cell{col, row}, col + row).ok());
    }
  }
  size_t grown = sheet.bucket_count();
  ASSERT_GT(grown, Sheet::kShrinkMinBuckets);

  // Keep a corner so the map is sparse, not empty.
  ASSERT_TRUE(sheet.ClearRange(Range(1, 1, 100, 99)).ok());
  EXPECT_EQ(sheet.cell_count(), 100u);
  EXPECT_LT(sheet.bucket_count(), grown / 4)
      << "bucket table did not shrink after a bulk clear";
  // Surviving cells are intact and the sheet keeps working.
  EXPECT_EQ(sheet.Get(Cell{7, 100})->number(), 107);
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 5).ok());
  EXPECT_EQ(sheet.cell_count(), 101u);

  // The sparse-iteration branch (clearing more area than cells) shrinks
  // too: wipe everything via a huge rectangle.
  ASSERT_TRUE(sheet.ClearRange(Range(1, 1, kMaxCol, kMaxRow)).ok());
  EXPECT_EQ(sheet.cell_count(), 0u);
  EXPECT_LE(sheet.bucket_count(), Sheet::kShrinkMinBuckets);
}

}  // namespace
}  // namespace taco
