// Differential equivalence suite: every DependencyGraph implementation in
// the repo runs through identical randomized insert/query/remove workloads
// and is cross-checked against the brute-force cell-level oracle. This is
// the paper's losslessness guarantee (Sec. II-B) as an executable
// contract: compressed, uncompressed, and baseline graphs must all answer
// exactly the queries the raw dependency list answers.
//
// Antifreeze is the one documented exception: its bounding-range
// dependent tables may over-approximate, so it is held to
// superset-containment (never a lost dependent) instead of equality.

#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "baselines/antifreeze.h"
#include "baselines/calcgraph.h"
#include "baselines/cellgraph.h"
#include "baselines/excellike.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

using test::DifferentialConfig;
using test::EdgesAreRawDeps;
using test::RunDifferentialWorkload;
using test::TacoRawDeps;

/// One graph implementation under differential test.
struct GraphSpec {
  const char* name;
  std::unique_ptr<DependencyGraph> (*make)();
  /// Raw dependencies the graph currently represents (nullopt when the
  /// representation has no meaningful notion, e.g. CellGraph's
  /// cell-decomposed edges).
  std::optional<uint64_t> (*raw_deps)(const DependencyGraph&);
  bool exact_dependents;
};

std::optional<uint64_t> NoRawDeps(const DependencyGraph&) {
  return std::nullopt;
}

std::optional<uint64_t> ExcelRawDeps(const DependencyGraph& g) {
  return static_cast<const ExcelLikeGraph&>(g).NumRawDependencies();
}

const GraphSpec kSpecs[] = {
    {"TacoFull",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::Full());
     },
     TacoRawDeps, true},
    {"TacoInRow",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::InRow());
     },
     TacoRawDeps, true},
    {"TacoNoHeuristics",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::NoHeuristics());
     },
     TacoRawDeps, true},
    // RR-GapOne enabled (Sec. V extension) — not in any default config,
    // so its merge/split paths only get randomized coverage here.
    {"TacoExtendedPatterns",
     +[]() -> std::unique_ptr<DependencyGraph> {
       TacoOptions options;
       options.patterns = ExtendedPatternSet();
       return std::make_unique<TacoGraph>(options);
     },
     TacoRawDeps, true},
    {"NoComp",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<NoCompGraph>();
     },
     EdgesAreRawDeps, true},
    {"CellGraph",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CellGraph>();
     },
     NoRawDeps, true},
    {"CalcGraph",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CalcGraph>();
     },
     EdgesAreRawDeps, true},
    {"CalcGraphTinyContainers",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CalcGraph>(/*container_cols=*/2,
                                          /*container_rows=*/4);
     },
     EdgesAreRawDeps, true},
    {"ExcelLike",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<ExcelLikeGraph>();
     },
     ExcelRawDeps, true},
    // Antifreeze rebuilds its dependent tables lazily and compresses them
    // into bounding ranges; dependents may over-approximate.
    {"Antifreeze",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<AntifreezeGraph>();
     },
     EdgesAreRawDeps, false},
};

struct DifferentialParam {
  const GraphSpec* spec;
  uint32_t seed;
};

class DifferentialGraphTest
    : public ::testing::TestWithParam<DifferentialParam> {
 protected:
  DifferentialConfig ConfigFor(const GraphSpec& spec) const {
    DifferentialConfig config;
    config.exact_dependents = spec.exact_dependents;
    config.raw_deps = spec.raw_deps;
    return config;
  }
};

TEST_P(DifferentialGraphTest, InsertQueryRemoveMatchesOracle) {
  const GraphSpec& spec = *GetParam().spec;
  auto graph = spec.make();
  RunDifferentialWorkload(graph.get(), GetParam().seed, ConfigFor(spec));
}

TEST_P(DifferentialGraphTest, InsertOnlyDenseWorkload) {
  // Narrow dense region: many overlapping ranges, the compression-heavy
  // shape where TACO merge bookkeeping is most stressed.
  const GraphSpec& spec = *GetParam().spec;
  auto graph = spec.make();
  DifferentialConfig config = ConfigFor(spec);
  config.max_col = 4;
  config.max_row = 16;
  config.initial_inserts = 40;
  config.removals = false;
  RunDifferentialWorkload(graph.get(), GetParam().seed ^ 0xD15EA5E,
                          config);
}

TEST_P(DifferentialGraphTest, RemovalHeavyWorkload) {
  // More rounds with small insert batches: removals repeatedly split and
  // drop edges, exercising the in-place maintenance paths (Sec. IV-C).
  const GraphSpec& spec = *GetParam().spec;
  auto graph = spec.make();
  DifferentialConfig config = ConfigFor(spec);
  config.initial_inserts = 30;
  config.rounds = 6;
  config.inserts_per_round = 6;
  config.queries_per_round = 8;
  RunDifferentialWorkload(graph.get(), GetParam().seed + 0xBAD5EED,
                          config);
}

std::vector<DifferentialParam> AllParams() {
  std::vector<DifferentialParam> params;
  for (const GraphSpec& spec : kSpecs) {
    for (uint32_t seed : {101u, 202u, 303u}) {
      params.push_back({&spec, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, DifferentialGraphTest, ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<DifferentialParam>& info) {
      return std::string(info.param.spec->name) + "S" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace taco
