// Differential equivalence suite: every DependencyGraph implementation in
// the repo runs through identical randomized insert/query/remove workloads
// and is cross-checked against the brute-force cell-level oracle. This is
// the paper's losslessness guarantee (Sec. II-B) as an executable
// contract: compressed, uncompressed, and baseline graphs must all answer
// exactly the queries the raw dependency list answers.
//
// Antifreeze is the one documented exception: its bounding-range
// dependent tables may over-approximate, so it is held to
// superset-containment (never a lost dependent) instead of equality.

#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include <gtest/gtest.h>

#include "baselines/antifreeze.h"
#include "baselines/calcgraph.h"
#include "baselines/cellgraph.h"
#include "baselines/excellike.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

using test::DecomposedEdgeCount;
using test::DifferentialConfig;
using test::DifferentialReport;
using test::EdgesAreRawDeps;
using test::RunDifferentialWorkload;
using test::TacoRawDeps;

/// One graph implementation under differential test.
struct GraphSpec {
  const char* name;
  std::unique_ptr<DependencyGraph> (*make)();
  /// Raw dependencies the graph currently represents (nullopt when the
  /// representation has no meaningful notion, e.g. CellGraph's
  /// cell-decomposed edges).
  std::optional<uint64_t> (*raw_deps)(const DependencyGraph&);
  bool exact_dependents;
  /// Expected NumEdges as a function of the live dependencies, for
  /// decomposed representations (CellGraph); nullptr when NumEdges is
  /// already covered by raw_deps.
  uint64_t (*expected_edges)(std::span<const Dependency>) = nullptr;
};

std::optional<uint64_t> NoRawDeps(const DependencyGraph&) {
  return std::nullopt;
}

std::optional<uint64_t> ExcelRawDeps(const DependencyGraph& g) {
  return static_cast<const ExcelLikeGraph&>(g).NumRawDependencies();
}

const GraphSpec kSpecs[] = {
    {"TacoFull",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::Full());
     },
     TacoRawDeps, true},
    {"TacoInRow",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::InRow());
     },
     TacoRawDeps, true},
    {"TacoNoHeuristics",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::NoHeuristics());
     },
     TacoRawDeps, true},
    // RR-GapOne enabled (Sec. V extension) — not in any default config,
    // so its merge/split paths only get randomized coverage here.
    {"TacoExtendedPatterns",
     +[]() -> std::unique_ptr<DependencyGraph> {
       TacoOptions options;
       options.patterns = ExtendedPatternSet();
       return std::make_unique<TacoGraph>(options);
     },
     TacoRawDeps, true},
    {"NoComp",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<NoCompGraph>();
     },
     EdgesAreRawDeps, true},
    // CellGraph has no raw-dependency count, but its decomposed edge
    // count is a pure function of the live dependencies (one edge per
    // precedent cell), so NumEdges is checked against that oracle.
    {"CellGraph",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CellGraph>();
     },
     NoRawDeps, true, DecomposedEdgeCount},
    {"CalcGraph",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CalcGraph>();
     },
     EdgesAreRawDeps, true},
    {"CalcGraphTinyContainers",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CalcGraph>(/*container_cols=*/2,
                                          /*container_rows=*/4);
     },
     EdgesAreRawDeps, true},
    {"ExcelLike",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<ExcelLikeGraph>();
     },
     ExcelRawDeps, true},
    // Antifreeze rebuilds its dependent tables lazily and compresses them
    // into bounding ranges; dependents may over-approximate.
    {"Antifreeze",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<AntifreezeGraph>();
     },
     EdgesAreRawDeps, false},
};

struct DifferentialParam {
  const GraphSpec* spec;
  uint32_t seed;
};

class DifferentialGraphTest
    : public ::testing::TestWithParam<DifferentialParam> {
 protected:
  DifferentialConfig ConfigFor(const GraphSpec& spec) const {
    DifferentialConfig config;
    config.exact_dependents = spec.exact_dependents;
    config.raw_deps = spec.raw_deps;
    if (spec.expected_edges != nullptr) {
      config.expected_edges = spec.expected_edges;
    }
    return config;
  }

  /// Post-run accuracy audit. Exact graphs must show zero false-positive
  /// dependent cells; for Antifreeze the report quantifies the documented
  /// over-approximation (ROADMAP precision item) and is surfaced in the
  /// test record and log.
  void AuditReport(const GraphSpec& spec, const DifferentialReport& report) {
    if (spec.exact_dependents) {
      EXPECT_EQ(report.false_positive_cells, 0u) << spec.name;
      return;
    }
    RecordProperty("dependent_queries",
                   static_cast<int>(report.dependent_queries));
    RecordProperty("false_positive_cells",
                   static_cast<int>(report.false_positive_cells));
    RecordProperty("precision_pct",
                   static_cast<int>(report.Precision() * 100.0));
    std::printf(
        "[ PRECISION] %s: %llu dependent queries, %llu oracle cells, "
        "%llu reported, %llu false positives -> precision %.4f\n",
        spec.name,
        static_cast<unsigned long long>(report.dependent_queries),
        static_cast<unsigned long long>(report.oracle_cells),
        static_cast<unsigned long long>(report.reported_cells),
        static_cast<unsigned long long>(report.false_positive_cells),
        report.Precision());
    // Over-approximation must still be bounded: reported cells can never
    // be fewer than the truth, and precision must stay meaningful.
    EXPECT_GE(report.reported_cells, report.oracle_cells);
    EXPECT_GE(report.Precision(), 0.25) << spec.name;
  }
};

TEST_P(DifferentialGraphTest, InsertQueryRemoveMatchesOracle) {
  const GraphSpec& spec = *GetParam().spec;
  auto graph = spec.make();
  DifferentialReport report;
  RunDifferentialWorkload(graph.get(), GetParam().seed, ConfigFor(spec),
                          &report);
  AuditReport(spec, report);
}

TEST_P(DifferentialGraphTest, InsertOnlyDenseWorkload) {
  // Narrow dense region: many overlapping ranges, the compression-heavy
  // shape where TACO merge bookkeeping is most stressed.
  const GraphSpec& spec = *GetParam().spec;
  auto graph = spec.make();
  DifferentialConfig config = ConfigFor(spec);
  config.max_col = 4;
  config.max_row = 16;
  config.initial_inserts = 40;
  config.removals = false;
  DifferentialReport report;
  RunDifferentialWorkload(graph.get(), GetParam().seed ^ 0xD15EA5E, config,
                          &report);
  AuditReport(spec, report);
}

TEST_P(DifferentialGraphTest, RemovalHeavyWorkload) {
  // More rounds with small insert batches: removals repeatedly split and
  // drop edges, exercising the in-place maintenance paths (Sec. IV-C).
  const GraphSpec& spec = *GetParam().spec;
  auto graph = spec.make();
  DifferentialConfig config = ConfigFor(spec);
  config.initial_inserts = 30;
  config.rounds = 6;
  config.inserts_per_round = 6;
  config.queries_per_round = 8;
  DifferentialReport report;
  RunDifferentialWorkload(graph.get(), GetParam().seed + 0xBAD5EED, config,
                          &report);
  AuditReport(spec, report);
}

std::vector<DifferentialParam> AllParams() {
  std::vector<DifferentialParam> params;
  for (const GraphSpec& spec : kSpecs) {
    for (uint32_t seed : {101u, 202u, 303u}) {
      params.push_back({&spec, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, DifferentialGraphTest, ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<DifferentialParam>& info) {
      return std::string(info.param.spec->name) + "S" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace taco
