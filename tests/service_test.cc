// Workbook service + protocol unit tests: session registry semantics
// (open/load/save/close, backend selection, LRU parking + transparent
// reload), protocol round trips including BATCH framing, and metrics.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "service/workbook_service.h"
#include "sheet/textio.h"

namespace taco {
namespace {

std::string TempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() / stem).string();
}

TEST(WorkbookServiceTest, OpenIsIdempotentAndCloseDrops) {
  WorkbookService service;
  auto a = service.Open("book");
  ASSERT_TRUE(a.ok());
  auto b = service.Open("book");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(service.resident_sessions(), 1u);

  ASSERT_TRUE(service.Close("book").ok());
  EXPECT_EQ(service.resident_sessions(), 0u);
  EXPECT_EQ(service.Get("book").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Close("book").code(), StatusCode::kNotFound);
}

TEST(WorkbookServiceTest, BackendSelectionPerSession) {
  WorkbookService service;
  auto taco = service.Open("a");
  auto nocomp = service.Open("b", "nocomp");
  ASSERT_TRUE(taco.ok());
  ASSERT_TRUE(nocomp.ok());
  EXPECT_EQ((*taco)->Stats().backend, "TACO");
  EXPECT_EQ((*nocomp)->Stats().backend, "NoComp");
  EXPECT_EQ(service.Open("c", "bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WorkbookServiceTest, SessionOpsRecalculateAndReport) {
  WorkbookService service;
  auto session = *service.Open("book");
  ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 5).ok());
  ASSERT_TRUE(session->SetFormula(Cell{2, 1}, "A1*3").ok());
  EXPECT_EQ(session->GetValue(Cell{2, 1}), Value::Number(15));

  EditBatch batch;
  batch.push_back(Edit::SetNumber(Cell{1, 1}, 10));
  batch.push_back(Edit::SetFormula(Cell{2, 2}, "B1+1"));
  auto result = session->ApplyBatch(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recalc_passes, 1u);
  EXPECT_EQ(session->GetValue(Cell{2, 2}), Value::Number(31));

  SessionStats stats = session->Stats();
  EXPECT_EQ(stats.backend, "TACO");
  EXPECT_TRUE(stats.dirty);
  EXPECT_GE(stats.edits, 4u);
  OpStats batch_stats = service.metrics().Get(ServiceOp::kBatch);
  EXPECT_EQ(batch_stats.count, 1u);
  EXPECT_EQ(batch_stats.recalc_passes, 1u);
}

TEST(WorkbookServiceTest, SaveLoadRoundTrip) {
  std::string path = TempPath("taco_service_roundtrip.tsheet");
  WorkbookService service;
  {
    auto session = *service.Open("src");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 2).ok());
    ASSERT_TRUE(session->SetFormula(Cell{1, 2}, "A1*A1").ok());
    ASSERT_TRUE(service.Save("src", path).ok());
    EXPECT_EQ(session->bound_path(), path);
    EXPECT_FALSE(session->Stats().dirty);
  }
  auto loaded = service.Load("copy", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->GetValue(Cell{1, 2}), Value::Number(4));
  // A no-op batch must not mark a clean session unsaved.
  ASSERT_TRUE((*loaded)->ApplyBatch({}).ok());
  EXPECT_FALSE((*loaded)->Stats().dirty);
  // A second load under the same name collides.
  EXPECT_EQ(service.Load("copy", path).status().code(),
            StatusCode::kAlreadyExists);
  std::remove(path.c_str());
}

TEST(WorkbookServiceTest, LruEvictionParksAndReloadsTransparently) {
  WorkbookServiceOptions options;
  options.max_resident_sessions = 2;
  WorkbookService service(options);

  // Three file-bound sessions under a cap of two: the LRU one parks.
  // wb0 uses a non-default backend, which parking must remember.
  std::string paths[3];
  for (int i = 0; i < 3; ++i) {
    std::string name = "wb" + std::to_string(i);
    paths[i] = TempPath("taco_service_lru_" + std::to_string(i) + ".tsheet");
    auto session = *service.Open(name, i == 0 ? "nocomp" : "");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, i * 100.0).ok());
    ASSERT_TRUE(service.Save(name, paths[i]).ok());
  }
  EXPECT_EQ(service.resident_sessions(), 2u);
  EXPECT_EQ(service.parked_sessions(), 1u);
  EXPECT_EQ(service.evictions(), 1u);

  // wb0 was least recently used; Get reloads it from its file with its
  // data — and its graph backend — intact.
  auto reloaded = service.Get("wb0");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->GetValue(Cell{1, 1}), Value::Number(0));
  EXPECT_EQ((*reloaded)->bound_path(), paths[0]);
  EXPECT_EQ((*reloaded)->Stats().backend, "NoComp");

  // A closed name must stay closed: Close drops the parked entry too, so
  // a later Get cannot resurrect it from the parked map.
  ASSERT_TRUE(service.Close("wb1").ok() || service.Close("wb2").ok());
  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(WorkbookServiceTest, FailedParkedReloadKeepsTheParkedEntry) {
  WorkbookServiceOptions options;
  options.max_resident_sessions = 1;
  WorkbookService service(options);

  std::string path = TempPath("taco_service_repark.tsheet");
  auto first = *service.Open("first");
  ASSERT_TRUE(first->SetNumber(Cell{1, 1}, 1).ok());
  ASSERT_TRUE(service.Save("first", path).ok());
  first.reset();  // Only the registry holds it now: evictable.
  ASSERT_TRUE(service.Open("other").ok());  // Cap 1: parks "first".
  ASSERT_EQ(service.parked_sessions(), 1u);

  // Break the backing file: reload must fail WITHOUT consuming the
  // parked entry, so the name stays bound to its data instead of being
  // recreated empty on the next open.
  std::remove(path.c_str());
  EXPECT_EQ(service.Get("first").status().code(), StatusCode::kIoError);
  EXPECT_EQ(service.parked_sessions(), 1u);
  EXPECT_EQ(service.Open("first").status().code(), StatusCode::kIoError);

  // Restoring the file makes the same name reloadable again.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 1).ok());
  ASSERT_TRUE(SaveSheetFile(sheet, path).ok());
  auto reloaded = service.Get("first");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->GetValue(Cell{1, 1}), Value::Number(1));
  std::remove(path.c_str());
}

TEST(WorkbookServiceTest, UnboundSessionsArePinnedResident) {
  WorkbookServiceOptions options;
  options.max_resident_sessions = 1;
  WorkbookService service(options);
  ASSERT_TRUE(service.Open("a").ok());
  ASSERT_TRUE(service.Open("b").ok());
  // No backing files: nothing can be parked losslessly, the cap is soft.
  EXPECT_EQ(service.resident_sessions(), 2u);
  EXPECT_EQ(service.evictions(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  WorkbookService service_;
  CommandProcessor processor_{&service_};

  std::string Run(const std::string& command) {
    return processor_.Execute(command);
  }
};

TEST_F(ProtocolTest, OpenSetFormulaGetRoundTrip) {
  EXPECT_EQ(Run("OPEN book"), "OK opened book backend=TACO");
  EXPECT_TRUE(Run("SET book A1 2.5").starts_with("OK set")) << Run("LIST");
  EXPECT_TRUE(Run("FORMULA book B1 A1*4").starts_with("OK set"));
  EXPECT_EQ(Run("GET book B1"), "VALUE B1 10");
  EXPECT_TRUE(Run("SET book C1 \"hello world\"")
                  .starts_with("OK set edits=1 dirty=0 recalced=0 passes=1"));
  EXPECT_EQ(Run("GET book C1"), "VALUE C1 hello world");
}

TEST_F(ProtocolTest, ErrorsComeBackAsErrLines) {
  EXPECT_TRUE(Run("GET nosuch A1").starts_with("ERR NotFound:"));
  EXPECT_TRUE(Run("FLY book").starts_with("ERR InvalidArgument:"));
  EXPECT_TRUE(Run("OPEN").starts_with("ERR InvalidArgument: usage:"));
  Run("OPEN book");
  EXPECT_TRUE(Run("SET book ZZZZZZZ99 1").starts_with("ERR"));
  EXPECT_TRUE(Run("FORMULA book A1 SUM((").starts_with("ERR ParseError:"));
  EXPECT_TRUE(Run("SAVE book").starts_with("ERR InvalidArgument:"));
}

TEST_F(ProtocolTest, BatchAppliesAtomicallyOrderedEditsWithOneRecalc) {
  Run("OPEN book");
  std::string response = Run(
      "BATCH book 4\n"
      "SET A1 1\n"
      "SET A2 2\n"
      "FORMULA A3 SUM(A1:A2)\n"
      "SET A1 10");
  EXPECT_TRUE(response.starts_with("OK batch edits=4")) << response;
  EXPECT_NE(response.find("passes=1"), std::string::npos) << response;
  EXPECT_EQ(Run("GET book A3"), "VALUE A3 12");

  // A malformed edit line reports its 1-based position.
  std::string bad = Run("BATCH book 2\nSET A1 3\nNOPE A2 4");
  EXPECT_TRUE(bad.starts_with("ERR InvalidArgument: batch line 2")) << bad;
  // And the batch was rejected before touching the session.
  EXPECT_EQ(Run("GET book A1"), "VALUE A1 10");
}

TEST_F(ProtocolTest, ExtraBodyLinesFramesBatchOnly) {
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("BATCH book 3"), 3);
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("batch book 12"), 12);
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("SET book A1 1"), 0);
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("STATS"), 0);
  // Unusable counts make the frame boundary unknowable: -1 tells the
  // transport to report the error and close instead of re-interpreting
  // body lines as commands addressed to other sessions.
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("BATCH book"), -1);
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("BATCH book -2"), -1);
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("BATCH book nine"), -1);
}

TEST_F(ProtocolTest, OversizedBatchCountIsAProtocolErrorNotACrash) {
  // A hostile count must neither swallow the stream nor reserve memory.
  EXPECT_EQ(CommandProcessor::ExtraBodyLines("BATCH book 999999999"), -1);
  Run("OPEN book");
  std::string response = Run("BATCH book 999999999");
  EXPECT_TRUE(response.starts_with("ERR InvalidArgument:")) << response;
  EXPECT_NE(response.find("exceeds the limit"), std::string::npos);
}

TEST_F(ProtocolTest, DispatchKeyIsTheSessionNameOrCommandWord) {
  EXPECT_EQ(CommandProcessor::DispatchKey("SET book A1 1"), "book");
  EXPECT_EQ(CommandProcessor::DispatchKey("BATCH wb 3"), "wb");
  EXPECT_EQ(CommandProcessor::DispatchKey("LIST"), "LIST");
  EXPECT_EQ(CommandProcessor::DispatchKey("STATS"), "STATS");
  EXPECT_EQ(CommandProcessor::DispatchKey("  GET  wb  A1\r"), "wb");
}

TEST_F(ProtocolTest, StatsAndListReport) {
  Run("OPEN alpha");
  Run("OPEN beta nocomp");
  Run("SET alpha A1 1");
  EXPECT_EQ(Run("LIST"), "OK sessions alpha beta");

  std::string session_stats = Run("STATS beta");
  EXPECT_NE(session_stats.find("backend=NoComp"), std::string::npos)
      << session_stats;
  std::string service_stats = Run("STATS");
  EXPECT_TRUE(service_stats.starts_with("OK service resident=2"))
      << service_stats;
  EXPECT_NE(service_stats.find("OPEN"), std::string::npos);
  EXPECT_NE(service_stats.find("SET"), std::string::npos);
  EXPECT_TRUE(service_stats.ends_with("END"));
}

TEST(WorkbookServiceTest, ParallelRecalcMatchesSerialThroughTheService) {
  WorkbookServiceOptions parallel_options;
  parallel_options.recalc_threads = 3;
  parallel_options.scheduler.min_parallel_cells = 1;
  parallel_options.scheduler.min_parallel_wave = 1;
  WorkbookService parallel_service(parallel_options);
  WorkbookService serial_service;  // recalc_threads defaults to 0.

  auto parallel = *parallel_service.Open("book");
  auto serial = *serial_service.Open("book");
  EXPECT_EQ(parallel->recalc_mode(), RecalcMode::kParallel);
  EXPECT_EQ(serial->recalc_mode(), RecalcMode::kSerial);

  for (auto& session : {parallel, serial}) {
    EditBatch setup;
    setup.push_back(Edit::SetNumber(Cell{1, 1}, 7));
    for (int r = 1; r <= 50; ++r) {
      setup.push_back(
          Edit::SetFormula(Cell{2, r}, "$A$1*" + std::to_string(r)));
    }
    ASSERT_TRUE(session->ApplyBatch(setup).ok());
  }
  auto presult = parallel->SetNumber(Cell{1, 1}, 3);
  auto sresult = serial->SetNumber(Cell{1, 1}, 3);
  ASSERT_TRUE(presult.ok());
  ASSERT_TRUE(sresult.ok());
  EXPECT_EQ(presult->recalculated, sresult->recalculated);
  EXPECT_EQ(presult->waves, 1u);
  for (const Cell& cell : EnumerateCells(Range(1, 1, 2, 50))) {
    EXPECT_EQ(parallel->GetValue(cell), serial->GetValue(cell))
        << cell.ToString();
  }

  // The session stats surface the wave metrics.
  SessionStats stats = parallel->Stats();
  EXPECT_EQ(stats.recalc_mode, RecalcMode::kParallel);
  EXPECT_GE(stats.waves, 1u);
  EXPECT_GE(stats.max_wave_cells, 50u);
}

TEST(WorkbookServiceTest, SetRecalcModeRequiresAnExecutor) {
  WorkbookService service;  // No recalc threads configured.
  auto session = *service.Open("book");
  EXPECT_EQ(session->SetRecalcMode(RecalcMode::kParallel).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(session->SetRecalcMode(RecalcMode::kSerial).ok());
}

TEST(WorkbookServiceTest, ConcurrentOpensOfAParkedSessionLoadOnce) {
  WorkbookServiceOptions options;
  options.max_resident_sessions = 1;
  WorkbookService service(options);

  std::string path = TempPath("taco_service_inflight.tsheet");
  {
    auto first = *service.Open("first");
    ASSERT_TRUE(first->SetNumber(Cell{1, 1}, 42).ok());
    ASSERT_TRUE(service.Save("first", path).ok());
  }
  ASSERT_TRUE(service.Open("other").ok());  // Cap 1: parks "first".
  ASSERT_EQ(service.parked_sessions(), 1u);

  // Many threads race to reload the parked name. Exactly one runs the
  // file I/O (behind the InFlight placeholder, outside the shard lock);
  // the rest wait on the placeholder and must all get THE SAME session
  // with the saved data — never a fresh empty one.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<WorkbookSession>> sessions(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto result = service.Open("first");
      if (result.ok()) sessions[i] = *result;
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_NE(sessions[0], nullptr);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(sessions[i], nullptr) << "open " << i << " failed";
    EXPECT_EQ(sessions[i].get(), sessions[0].get());
  }
  EXPECT_EQ(sessions[0]->GetValue(Cell{1, 1}), Value::Number(42));
  std::remove(path.c_str());
}

TEST_F(ProtocolTest, RecalcCommandQueriesAndSwitchesTheMode) {
  // Without recalc threads, parallel mode is rejected but serial works.
  Run("OPEN book");
  EXPECT_EQ(Run("RECALC book"),
            "OK recalc book mode=serial threads=0 cutoff=off");
  EXPECT_TRUE(Run("RECALC book parallel").starts_with("ERR InvalidArgument"));
  EXPECT_EQ(Run("RECALC book serial"),
            "OK recalc book mode=serial threads=0 cutoff=off");
  EXPECT_TRUE(Run("RECALC").starts_with("ERR InvalidArgument: usage"));
  EXPECT_TRUE(Run("RECALC book sideways").starts_with("ERR InvalidArgument"));

  // With a recalc pool, sessions default to parallel and can switch.
  WorkbookServiceOptions options;
  options.recalc_threads = 2;
  WorkbookService parallel_service(options);
  CommandProcessor processor(&parallel_service);
  EXPECT_EQ(processor.Execute("OPEN wb"), "OK opened wb backend=TACO");
  EXPECT_EQ(processor.Execute("RECALC wb"),
            "OK recalc wb mode=parallel threads=2 cutoff=off");
  EXPECT_EQ(processor.Execute("RECALC wb serial"),
            "OK recalc wb mode=serial threads=2 cutoff=off");
  EXPECT_EQ(processor.Execute("RECALC wb parallel"),
            "OK recalc wb mode=parallel threads=2 cutoff=off");
  std::string stats = processor.Execute("STATS wb");
  EXPECT_NE(stats.find("recalc_mode=parallel"), std::string::npos) << stats;
  EXPECT_NE(stats.find("waves="), std::string::npos) << stats;
  std::string service_stats = processor.Execute("STATS");
  EXPECT_NE(service_stats.find("recalc_workers=2"), std::string::npos)
      << service_stats;
}

TEST_F(ProtocolTest, RecalcCutoffTogglePrunesAndReportsInStats) {
  // The cutoff toggle composes with the mode switch, survives round
  // trips, and actually prunes: an absorbing IF chain edited upstream
  // re-evaluates only up to the absorber, and STATS counts the rest as
  // cells_skipped.
  Run("OPEN wb");
  EXPECT_EQ(Run("RECALC wb cutoff on"),
            "OK recalc wb mode=serial threads=0 cutoff=on");
  EXPECT_EQ(Run("RECALC wb cutoff off"),
            "OK recalc wb mode=serial threads=0 cutoff=off");
  EXPECT_TRUE(Run("RECALC wb cutoff sideways")
                  .starts_with("ERR InvalidArgument: usage"));
  EXPECT_TRUE(Run("RECALC wb cutoff").starts_with("ERR InvalidArgument"));
  EXPECT_EQ(Run("RECALC wb serial cutoff on"),
            "OK recalc wb mode=serial threads=0 cutoff=on");

  // A1 -> B1 = IF(A1>100,1,0) -> C1 = B1+1 -> D1 = C1+1. Priming pass
  // first (cutoff needs cached priors), then an absorbed edit: A1=5 ->
  // A1=6 keeps B1 at 0, so C1 and D1 prune.
  Run("SET wb A1 5");
  Run("FORMULA wb B1 IF(A1>100,1,0)");
  Run("FORMULA wb C1 B1+1");
  Run("FORMULA wb D1 C1+1");
  Run("SET wb A1 6");
  std::string stats = Run("STATS wb");
  EXPECT_NE(stats.find("cutoff=on"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cells_skipped=2"), std::string::npos) << stats;
  EXPECT_EQ(Run("GET wb D1"), "VALUE D1 2");
  EXPECT_EQ(Run("GET wb B1"), "VALUE B1 0");

  // An edit that DOES flip the absorber re-evaluates everything below.
  Run("SET wb A1 500");
  EXPECT_EQ(Run("GET wb D1"), "VALUE D1 3");
  std::string explain = Run("EXPLAIN wb A1");
  EXPECT_NE(explain.find("cutoff=on"), std::string::npos) << explain;
}

TEST(WorkbookServiceTest, StorageCountersTrackWalAndCheckpoints) {
  // The storage satellite: checkpoints / wal_records / wal_bytes /
  // recoveries / recovered_records must be visible in ServiceMetrics and
  // on the STATS report.
  std::string wal_dir = TempPath("taco_service_counters_wal");
  std::string snap = TempPath("taco_service_counters.snap");
  {
    WorkbookServiceOptions options;
    options.wal_dir = wal_dir;
    WorkbookService service(options);
    auto session = *service.Open("book");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 1).ok());
    ASSERT_TRUE(session->SetFormula(Cell{2, 1}, "A1*2").ok());
    const StorageCounters& st = service.metrics().storage();
    EXPECT_EQ(st.wal_records.load(), 2u);
    EXPECT_GT(st.wal_bytes.load(), 0u);
    EXPECT_EQ(st.checkpoints.load(), 0u);
    ASSERT_TRUE(service.Save("book", snap).ok());
    EXPECT_EQ(st.checkpoints.load(), 1u);
    ASSERT_TRUE(session->SetNumber(Cell{1, 2}, 5).ok());
    EXPECT_EQ(st.wal_records.load(), 3u);
    EXPECT_EQ(st.recoveries.load(), 0u);
  }
  {
    // A new service over the same WAL dir: OPEN recovers snapshot + the
    // one post-checkpoint record.
    WorkbookServiceOptions options;
    options.wal_dir = wal_dir;
    WorkbookService service(options);
    CommandProcessor processor(&service);
    EXPECT_EQ(processor.Execute("OPEN book"), "OK opened book backend=TACO");
    const StorageCounters& st = service.metrics().storage();
    EXPECT_EQ(st.recoveries.load(), 1u);
    EXPECT_EQ(st.recovered_records.load(), 1u);
    EXPECT_EQ(processor.Execute("GET book B1"), "VALUE B1 2");
    EXPECT_EQ(processor.Execute("GET book A2"), "VALUE A2 5");
    std::string stats = processor.Execute("STATS");
    EXPECT_NE(stats.find("storage engine=text checkpoints=0 wal_records=0 "
                         "wal_bytes=0 recoveries=1 recovered_records=1"),
              std::string::npos)
        << stats;
    std::string storage = processor.Execute("STORAGE book");
    EXPECT_TRUE(storage.starts_with("OK storage session=book engine=text"))
        << storage;
    EXPECT_NE(storage.find("wal_records=1"), std::string::npos) << storage;
    EXPECT_NE(storage.find("recovered=1"), std::string::npos) << storage;
    EXPECT_NE(storage.find("unsaved=1"), std::string::npos) << storage;
    // CHECKPOINT rotates: the live record count drops to zero.
    EXPECT_EQ(processor.Execute("CHECKPOINT book"),
              "OK checkpoint book path=" + snap);
    EXPECT_EQ(st.checkpoints.load(), 1u);
    storage = processor.Execute("STORAGE book");
    EXPECT_NE(storage.find("wal_records=0"), std::string::npos) << storage;
    EXPECT_NE(storage.find("unsaved=0"), std::string::npos) << storage;
    ASSERT_TRUE(service.Close("book").ok());
  }
  std::filesystem::remove_all(wal_dir);
  std::remove(snap.c_str());
}

TEST_F(ProtocolTest, CheckpointAndStorageVerbsValidateUsage) {
  EXPECT_TRUE(Run("CHECKPOINT").starts_with("ERR InvalidArgument: usage:"));
  EXPECT_TRUE(Run("STORAGE").starts_with("ERR InvalidArgument: usage:"));
  EXPECT_TRUE(Run("CHECKPOINT ghost").starts_with("ERR NotFound:"));
  EXPECT_TRUE(Run("STORAGE ghost").starts_with("ERR NotFound:"));
  Run("OPEN book");
  // No bound path and none given: same contract as SAVE.
  EXPECT_TRUE(Run("CHECKPOINT book").starts_with("ERR InvalidArgument:"));
  // Without --wal-dir the report shows the engine and no WAL.
  std::string storage = Run("STORAGE book");
  EXPECT_TRUE(storage.starts_with("OK storage session=book engine=text"))
      << storage;
  EXPECT_NE(storage.find("wal=(none)"), std::string::npos) << storage;
}

TEST_F(ProtocolTest, SaveCloseLoadThroughProtocol) {
  std::string path = TempPath("taco_protocol_roundtrip.tsheet");
  Run("OPEN book");
  Run("SET book A1 9");
  Run("FORMULA book A2 A1+1");
  EXPECT_EQ(Run("SAVE book " + path), "OK saved book");
  EXPECT_EQ(Run("CLOSE book"), "OK closed book");
  std::string loaded = Run("LOAD book2 " + path);
  EXPECT_TRUE(loaded.starts_with("OK loaded book2 cells=2 formulas=1"))
      << loaded;
  EXPECT_EQ(Run("GET book2 A2"), "VALUE A2 10");
  std::remove(path.c_str());
}

TEST_F(ProtocolTest, GetRangeValidatesUsageBeforeTouchingSessions) {
  EXPECT_TRUE(Run("GETRANGE").starts_with("ERR InvalidArgument: usage:"));
  EXPECT_TRUE(Run("GETRANGE book").starts_with("ERR InvalidArgument: usage:"));
  // The range parses before the session resolves, so a bad range on a
  // missing session is a parse error, not NotFound.
  EXPECT_TRUE(Run("GETRANGE ghost NOPE!").starts_with("ERR"));
  EXPECT_TRUE(Run("GETRANGE ghost A1:B2").starts_with("ERR NotFound:"));
  // An in-bounds but oversized area is refused up front: the response
  // would otherwise carry up to Area() VALUE lines.
  Run("OPEN book");
  std::string oversized = Run("GETRANGE book A1:D20000");
  EXPECT_TRUE(oversized.starts_with("ERR InvalidArgument:")) << oversized;
  EXPECT_NE(oversized.find("over the GETRANGE limit"), std::string::npos)
      << oversized;
  // Exactly at the cap is fine: 65536 = 1 column x 65536 rows.
  std::string at_cap = Run("GETRANGE book A1:A65536");
  EXPECT_TRUE(at_cap.starts_with("OK range A1:A65536")) << at_cap;
}

TEST_F(ProtocolTest, GetRangeFramesHeaderValuesAndTerminator) {
  Run("OPEN book");
  Run("SET book A1 1");
  Run("SET book A3 2");
  Run("FORMULA book B2 A1+A3");
  std::string response = Run("GETRANGE book A1:B3");
  // Header carries the published version and the non-blank cell count;
  // VALUE lines come in EnumerateCells (column-major) order; the lone
  // terminator closes the frame for SocketClient.
  EXPECT_TRUE(response.starts_with("OK range A1:B3 version=3 cells=3"))
      << response;
  EXPECT_EQ(response,
            "OK range A1:B3 version=3 cells=3\n"
            "VALUE A1 1\n"
            "VALUE A3 2\n"
            "VALUE B2 3\n"
            "END");
  // The framing predicate must keep reading GETRANGE bodies.
  EXPECT_TRUE(CommandProcessor::ResponseContinues(
      "OK range A1:B3 version=3 cells=3"));
  EXPECT_FALSE(CommandProcessor::ResponseContinues("OK session=book ..."));
  EXPECT_FALSE(CommandProcessor::ResponseContinues("VALUE A1 1"));
}

TEST_F(ProtocolTest, GetRangeOnNeverPublishedSessionReportsVersionZero) {
  Run("OPEN book");  // No mutation yet: nothing has been published.
  EXPECT_EQ(Run("GETRANGE book A1:B2"),
            "OK range A1:B2 version=0 cells=0\nEND");
  // The first mutation publishes version 1 and the header reflects it.
  Run("SET book A1 7");
  EXPECT_EQ(Run("GETRANGE book A1:B2"),
            "OK range A1:B2 version=1 cells=1\nVALUE A1 7\nEND");
}

TEST_F(ProtocolTest, StatsReportVersionAndReadPathCounters) {
  Run("OPEN book");
  Run("SET book A1 1");
  Run("SET book A2 2");
  Run("GET book A1");
  Run("GETRANGE book A1:A2");
  std::string stats = Run("STATS book");
  EXPECT_NE(stats.find(" version=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" versions=2"), std::string::npos) << stats;
  // Both reads ran after the first publish, so both went versioned.
  EXPECT_NE(stats.find(" reads_versioned=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" reads_locked=0"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" wal_failed=0"), std::string::npos) << stats;
}

}  // namespace
}  // namespace taco
