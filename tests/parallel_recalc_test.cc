// Parallel recalculation determinism: RecalcMode::kParallel driven by
// the wave scheduler must produce sheets CELL-FOR-CELL identical to
// kSerial — values, error cells, and #CYCLE! patterns included — with
// identical recalc_passes, across every planning granularity
// (cell-granular Kahn waves, range-granular fallback, serial inline).
// The randomized suites double as the TSan workload for the scheduler.

#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/antifreeze.h"
#include "baselines/calcgraph.h"
#include "baselines/cellgraph.h"
#include "baselines/excellike.h"
#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "sched/recalc_scheduler.h"
#include "sched/thread_pool.h"
#include "sheet/sheet.h"
#include "taco/pattern.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

std::unique_ptr<DependencyGraph> MakeGraph(bool taco) {
  if (taco) return std::make_unique<TacoGraph>();
  return std::make_unique<NoCompGraph>();
}

/// Sheet + graph + engine, optionally wired to a wave scheduler.
struct Rig {
  Rig(bool taco, RecalcExecutor* executor)
      : graph(MakeGraph(taco)), engine(&sheet, graph.get()) {
    if (executor != nullptr) {
      engine.set_executor(executor);
      engine.set_mode(RecalcMode::kParallel);
    }
  }
  Sheet sheet;
  std::unique_ptr<DependencyGraph> graph;
  RecalcEngine engine;
};

/// Asserts every cell of `range` evaluates identically in both rigs.
void ExpectSameValues(Rig* serial, Rig* parallel, const Range& range) {
  for (const Cell& cell : EnumerateCells(range)) {
    Value expected = serial->engine.GetValue(cell);
    Value actual = parallel->engine.GetValue(cell);
    EXPECT_EQ(expected, actual)
        << "cell " << cell.ToString() << ": serial=" << expected.ToString()
        << " parallel=" << actual.ToString();
  }
}

/// Aggressive options: no serial fast path, every wave parallel, so even
/// tiny workloads exercise the wave machinery.
SchedulerOptions EagerOptions() {
  SchedulerOptions options;
  options.threads = 3;
  options.min_parallel_cells = 1;
  options.min_parallel_wave = 1;
  return options;
}

class ParallelRecalcTest : public ::testing::TestWithParam<bool> {};

TEST_P(ParallelRecalcTest, FanOutRunsInOneWave) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig serial(GetParam(), nullptr);
  Rig parallel(GetParam(), &scheduler);

  constexpr int kRows = 200;
  for (Rig* rig : {&serial, &parallel}) {
    ASSERT_TRUE(rig->engine.SetNumber(Cell{1, 1}, 10.0).ok());
    EditBatch setup;
    for (int r = 1; r <= kRows; ++r) {
      setup.push_back(
          Edit::SetFormula(Cell{2, r}, "$A$1*" + std::to_string(r)));
    }
    ASSERT_TRUE(rig->engine.ApplyBatch(setup).ok());
  }

  auto serial_result = serial.engine.SetNumber(Cell{1, 1}, 3.0);
  auto parallel_result = parallel.engine.SetNumber(Cell{1, 1}, 3.0);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  // Wide fan-out: every dependent is independent of the others, so the
  // whole dirty set executes as one wave.
  EXPECT_EQ(parallel_result->waves, 1u);
  EXPECT_EQ(parallel_result->max_wave_cells, static_cast<uint64_t>(kRows));
  EXPECT_EQ(parallel_result->recalculated, serial_result->recalculated);
  EXPECT_EQ(parallel_result->recalc_passes, serial_result->recalc_passes);
  ExpectSameValues(&serial, &parallel, Range(1, 1, 2, kRows));
}

TEST_P(ParallelRecalcTest, ChainRunsOneWavePerLink) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig serial(GetParam(), nullptr);
  Rig parallel(GetParam(), &scheduler);

  constexpr int kRows = 60;
  for (Rig* rig : {&serial, &parallel}) {
    ASSERT_TRUE(rig->engine.SetNumber(Cell{1, 1}, 1.0).ok());
    EditBatch setup;
    setup.push_back(Edit::SetFormula(Cell{2, 1}, "A1+1"));
    for (int r = 2; r <= kRows; ++r) {
      setup.push_back(
          Edit::SetFormula(Cell{2, r}, "B" + std::to_string(r - 1) + "+1"));
    }
    ASSERT_TRUE(rig->engine.ApplyBatch(setup).ok());
  }

  auto serial_result = serial.engine.SetNumber(Cell{1, 1}, 5.0);
  auto parallel_result = parallel.engine.SetNumber(Cell{1, 1}, 5.0);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  // A pure chain is inherently serial: one wave per link, 1 cell each.
  EXPECT_EQ(parallel_result->waves, static_cast<uint64_t>(kRows));
  EXPECT_EQ(parallel_result->max_wave_cells, 1u);
  ExpectSameValues(&serial, &parallel, Range(1, 1, 2, kRows));
  EXPECT_EQ(parallel.engine.GetValue(Cell{2, kRows}),
            Value::Number(5.0 + kRows));
}

TEST_P(ParallelRecalcTest, CycleCellsMatchSerialIncludingOrderSensitivity) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig serial(GetParam(), nullptr);
  Rig parallel(GetParam(), &scheduler);

  // COUNT swallows errors, so the cycle's outcome depends on which
  // member is evaluated first — the sharpest determinism probe we have:
  // serial evaluates in dirty-range enumeration order, and the parallel
  // leftover pass must replay exactly that order.
  for (Rig* rig : {&serial, &parallel}) {
    ASSERT_TRUE(rig->engine.SetNumber(Cell{4, 1}, 1.0).ok());  // D1
    EditBatch setup;
    setup.push_back(Edit::SetFormula(Cell{1, 1}, "COUNT(B1)+D1*0"));  // A1
    setup.push_back(Edit::SetFormula(Cell{2, 1}, "COUNT(A1)+D1*0"));  // B1
    // Downstream of the cycle plus an acyclic bystander.
    setup.push_back(Edit::SetFormula(Cell{3, 1}, "A1+B1"));           // C1
    setup.push_back(Edit::SetFormula(Cell{3, 2}, "D1*10"));           // C2
    ASSERT_TRUE(rig->engine.ApplyBatch(setup).ok());
  }

  // Editing D1 dirties the cycle, its downstream, and the bystander.
  auto serial_result = serial.engine.SetNumber(Cell{4, 1}, 2.0);
  auto parallel_result = parallel.engine.SetNumber(Cell{4, 1}, 2.0);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(parallel_result->recalculated, serial_result->recalculated);
  ExpectSameValues(&serial, &parallel, Range(1, 1, 4, 2));

  // Self-reference: the tightest cycle.
  for (Rig* rig : {&serial, &parallel}) {
    ASSERT_TRUE(rig->engine.SetFormula(Cell{5, 1}, "E1+D1").ok());
  }
  ASSERT_TRUE(serial.engine.SetNumber(Cell{4, 1}, 3.0).ok());
  ASSERT_TRUE(parallel.engine.SetNumber(Cell{4, 1}, 3.0).ok());
  ExpectSameValues(&serial, &parallel, Range(1, 1, 5, 2));
  EXPECT_EQ(parallel.engine.GetValue(Cell{5, 1}),
            Value::Error(EvalError::kCycle));
}

TEST_P(ParallelRecalcTest, RangeGranularFallbackMatchesSerial) {
  ThreadPool pool(3);
  // An edge budget of 4 forces per-cell expansion to abort immediately,
  // exercising the range-granular leveling path on a normal workload.
  SchedulerOptions options = EagerOptions();
  options.max_edges = 4;
  RecalcScheduler scheduler(&pool, options);
  Rig serial(GetParam(), nullptr);
  Rig parallel(GetParam(), &scheduler);

  constexpr int kRows = 40;
  for (Rig* rig : {&serial, &parallel}) {
    EditBatch setup;
    for (int r = 1; r <= kRows; ++r) {
      setup.push_back(Edit::SetNumber(Cell{1, r}, r * 1.0));
      setup.push_back(
          Edit::SetFormula(Cell{2, r}, "SUM($A$1:A" + std::to_string(r) + ")"));
      setup.push_back(
          Edit::SetFormula(Cell{3, r}, "B" + std::to_string(r) + "*2"));
    }
    ASSERT_TRUE(rig->engine.ApplyBatch(setup).ok());
  }

  auto serial_result = serial.engine.SetNumber(Cell{1, 1}, 100.0);
  auto parallel_result = parallel.engine.SetNumber(Cell{1, 1}, 100.0);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(parallel_result->recalculated, serial_result->recalculated);
  EXPECT_GE(parallel_result->waves, 1u);
  ExpectSameValues(&serial, &parallel, Range(1, 1, 3, kRows));
}

TEST_P(ParallelRecalcTest, TinyDirtySetsTakeTheSerialInlinePath) {
  ThreadPool pool(3);
  SchedulerOptions options;
  options.threads = 3;
  options.min_parallel_cells = 1000;  // Force the inline path.
  RecalcScheduler scheduler(&pool, options);
  Rig serial(GetParam(), nullptr);
  Rig parallel(GetParam(), &scheduler);

  for (Rig* rig : {&serial, &parallel}) {
    ASSERT_TRUE(rig->engine.SetNumber(Cell{1, 1}, 2.0).ok());
    ASSERT_TRUE(rig->engine.SetFormula(Cell{2, 1}, "A1*3").ok());
    ASSERT_TRUE(rig->engine.SetFormula(Cell{2, 2}, "B1+1").ok());
  }
  auto serial_result = serial.engine.SetNumber(Cell{1, 1}, 4.0);
  auto parallel_result = parallel.engine.SetNumber(Cell{1, 1}, 4.0);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(parallel_result->waves, 0u);  // Inline: no waves scheduled.
  ExpectSameValues(&serial, &parallel, Range(1, 1, 2, 2));
}

// ---------------------------------------------------------------------------
// Randomized differential workloads: identical random edit batches are
// applied once in kSerial and once in kParallel; after every batch the
// rigs must agree cell-for-cell (errors and #CYCLE! included) and on
// recalc_passes/recalculated. Formulas reference cells in any direction,
// so cycles, diamonds, and error propagation occur organically.
// ---------------------------------------------------------------------------

constexpr int kCols = 6;
constexpr int kRows = 12;

std::string RandomCellRef(std::mt19937* rng) {
  std::uniform_int_distribution<int> col(1, kCols);
  std::uniform_int_distribution<int> row(1, kRows);
  return Cell{col(*rng), row(*rng)}.ToString();
}

std::string RandomRangeRef(std::mt19937* rng) {
  std::uniform_int_distribution<int> col(1, kCols);
  std::uniform_int_distribution<int> row(1, kRows);
  std::uniform_int_distribution<int> extent(0, 2);
  int c1 = col(*rng), r1 = row(*rng);
  int c2 = std::min(kCols, c1 + extent(*rng));
  int r2 = std::min(kRows, r1 + extent(*rng));
  return Range(c1, r1, c2, r2).ToString();
}

Edit RandomEdit(std::mt19937* rng) {
  std::uniform_int_distribution<int> col(1, kCols);
  std::uniform_int_distribution<int> row(1, kRows);
  Cell cell{col(*rng), row(*rng)};
  switch (std::uniform_int_distribution<int>(0, 9)(*rng)) {
    case 0:
    case 1:
    case 2:
      return Edit::SetNumber(
          cell, std::uniform_int_distribution<int>(-5, 20)(*rng) * 1.0);
    case 3:
      return Edit::SetFormula(cell, "SUM(" + RandomRangeRef(rng) + ")");
    case 4:
      return Edit::SetFormula(cell, RandomCellRef(rng) + "*2+" +
                                        RandomCellRef(rng));
    case 5:
      return Edit::SetFormula(cell, "IF(" + RandomCellRef(rng) + ">0," +
                                        RandomCellRef(rng) + "," +
                                        RandomCellRef(rng) + ")");
    case 6:
      // COUNT swallows errors: the order-sensitive cycle probe.
      return Edit::SetFormula(cell, "COUNT(" + RandomRangeRef(rng) + ")");
    case 7:
      // Division: organic #DIV/0! propagation.
      return Edit::SetFormula(cell, RandomCellRef(rng) + "/" +
                                        RandomCellRef(rng));
    case 8: {
      std::uniform_int_distribution<int> extent(0, 1);
      int c1 = col(*rng), r1 = row(*rng);
      return Edit::ClearRange(Range(c1, r1, std::min(kCols, c1 + extent(*rng)),
                                    std::min(kRows, r1 + extent(*rng))));
    }
    default:
      return Edit::SetFormula(cell, "AVERAGE(" + RandomRangeRef(rng) + ")");
  }
}

void RunRandomizedWorkload(bool taco, const SchedulerOptions& options,
                           uint32_t seed, int rounds) {
  ThreadPool pool(options.threads);
  RecalcScheduler scheduler(&pool, options);
  Rig serial(taco, nullptr);
  Rig parallel(taco, &scheduler);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> batch_size(1, 8);

  const Range region(1, 1, kCols, kRows);
  for (int round = 0; round < rounds; ++round) {
    EditBatch batch;
    int n = batch_size(rng);
    for (int i = 0; i < n; ++i) batch.push_back(RandomEdit(&rng));

    RecalcResult serial_partial, parallel_partial;
    auto serial_result = serial.engine.ApplyBatch(batch, &serial_partial);
    auto parallel_result =
        parallel.engine.ApplyBatch(batch, &parallel_partial);
    ASSERT_EQ(serial_result.ok(), parallel_result.ok())
        << "round " << round << ": " << serial_result.status().ToString()
        << " vs " << parallel_result.status().ToString();
    const RecalcResult& s =
        serial_result.ok() ? *serial_result : serial_partial;
    const RecalcResult& p =
        parallel_result.ok() ? *parallel_result : parallel_partial;
    EXPECT_EQ(s.recalc_passes, p.recalc_passes) << "round " << round;
    EXPECT_EQ(s.recalculated, p.recalculated) << "round " << round;
    EXPECT_EQ(s.dirty_cells, p.dirty_cells) << "round " << round;
    ExpectSameValues(&serial, &parallel, region);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(ParallelRecalcTest, RandomizedWorkloadsMatchCellForCell) {
  for (uint32_t seed : {11u, 23u, 57u}) {
    RunRandomizedWorkload(GetParam(), EagerOptions(), seed, 40);
  }
}

TEST_P(ParallelRecalcTest, RandomizedWorkloadsMatchUnderRangeFallback) {
  SchedulerOptions options = EagerOptions();
  options.max_edges = 2;  // Everything lands in range-granular mode.
  for (uint32_t seed : {5u, 71u}) {
    RunRandomizedWorkload(GetParam(), options, seed, 30);
  }
}

TEST_P(ParallelRecalcTest, RandomizedWorkloadsMatchAtDefaultBudgets) {
  // Default thresholds: small batches go inline, bigger dirty sets hit
  // the wave path — the mix a real service sees.
  SchedulerOptions options;
  options.threads = 4;
  options.min_parallel_cells = 8;
  options.min_parallel_wave = 2;
  RunRandomizedWorkload(GetParam(), options, 99u, 40);
}

INSTANTIATE_TEST_SUITE_P(Graphs, ParallelRecalcTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Taco" : "NoComp";
                         });

// ---------------------------------------------------------------------------
// Cutoff-vs-full differential: the same randomized workloads, but the
// twin engines differ in the value-change cutoff flag instead of the
// executor. Cutoff's contract is BY-CONSTRUCTION equality — every cell
// it prunes is provably unreachable from a changed value — so the rigs
// must agree cell-for-cell (errors and #CYCLE! included) across every
// DependencyGraph implementation, since each graph shapes dirty sets
// (and thus wave plans and prune opportunities) differently. Also the
// TSan workload for ExecuteCellCutoff's prime-then-dispatch ordering.
// ---------------------------------------------------------------------------

/// The ten graph configurations of the differential suite
/// (tests/differential_test.cc kSpecs), reduced to name + factory.
struct CutoffGraphSpec {
  const char* name;
  std::unique_ptr<DependencyGraph> (*make)();
};

const CutoffGraphSpec kCutoffSpecs[] = {
    {"TacoFull",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::Full());
     }},
    {"TacoInRow",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::InRow());
     }},
    {"TacoNoHeuristics",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<TacoGraph>(TacoOptions::NoHeuristics());
     }},
    {"TacoExtendedPatterns",
     +[]() -> std::unique_ptr<DependencyGraph> {
       TacoOptions options;
       options.patterns = ExtendedPatternSet();
       return std::make_unique<TacoGraph>(options);
     }},
    {"NoComp",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<NoCompGraph>();
     }},
    {"CellGraph",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CellGraph>();
     }},
    {"CalcGraph",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CalcGraph>();
     }},
    {"CalcGraphTinyContainers",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<CalcGraph>(/*container_cols=*/2,
                                          /*container_rows=*/4);
     }},
    {"ExcelLike",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<ExcelLikeGraph>();
     }},
    {"Antifreeze",
     +[]() -> std::unique_ptr<DependencyGraph> {
       return std::make_unique<AntifreezeGraph>();
     }},
};

/// Sheet + graph + engine with an explicit cutoff flag.
struct CutoffRig {
  CutoffRig(const CutoffGraphSpec& spec, RecalcExecutor* executor, bool cutoff)
      : graph(spec.make()), engine(&sheet, graph.get()) {
    if (executor != nullptr) {
      engine.set_executor(executor);
      engine.set_mode(RecalcMode::kParallel);
    }
    engine.set_cutoff(cutoff);
  }
  Sheet sheet;
  std::unique_ptr<DependencyGraph> graph;
  RecalcEngine engine;
};

/// Identical random batches into a full rig and a cutoff rig; after
/// every batch: cell-for-cell equality plus the cutoff accounting
/// invariant `recalculated + cells_skipped_cutoff == dirty_formulas`.
void RunCutoffDifferential(const CutoffGraphSpec& spec,
                           const SchedulerOptions& options, bool parallel,
                           uint32_t seed, int rounds) {
  ThreadPool pool(options.threads);
  RecalcScheduler scheduler(&pool, options);
  RecalcExecutor* executor = parallel ? &scheduler : nullptr;
  CutoffRig full(spec, executor, /*cutoff=*/false);
  CutoffRig cut(spec, executor, /*cutoff=*/true);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> batch_size(1, 8);

  const Range region(1, 1, kCols, kRows);
  uint64_t total_skipped = 0;
  for (int round = 0; round < rounds; ++round) {
    EditBatch batch;
    int n = batch_size(rng);
    for (int i = 0; i < n; ++i) batch.push_back(RandomEdit(&rng));

    RecalcResult full_partial, cut_partial;
    auto full_result = full.engine.ApplyBatch(batch, &full_partial);
    auto cut_result = cut.engine.ApplyBatch(batch, &cut_partial);
    ASSERT_EQ(full_result.ok(), cut_result.ok())
        << spec.name << " round " << round << ": "
        << full_result.status().ToString() << " vs "
        << cut_result.status().ToString();
    const RecalcResult& f = full_result.ok() ? *full_result : full_partial;
    const RecalcResult& c = cut_result.ok() ? *cut_result : cut_partial;
    EXPECT_EQ(f.recalc_passes, c.recalc_passes)
        << spec.name << " round " << round;
    EXPECT_EQ(f.dirty_cells, c.dirty_cells) << spec.name << " round " << round;
    // The accounting invariant, on both rigs: a full pass simply has
    // zero skips.
    EXPECT_EQ(c.recalculated + c.cells_skipped_cutoff, c.dirty_formulas)
        << spec.name << " round " << round;
    EXPECT_EQ(f.cells_skipped_cutoff, 0u) << spec.name << " round " << round;
    EXPECT_EQ(f.recalculated, f.dirty_formulas)
        << spec.name << " round " << round;
    total_skipped += c.cells_skipped_cutoff;

    for (const Cell& cell : EnumerateCells(region)) {
      Value expected = full.engine.GetValue(cell);
      Value actual = cut.engine.GetValue(cell);
      EXPECT_EQ(expected, actual)
          << spec.name << " round " << round << " cell " << cell.ToString()
          << ": full=" << expected.ToString()
          << " cutoff=" << actual.ToString();
    }
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;
    }
  }
  // The workload overwrites cells with fresh random values constantly;
  // a run where cutoff never pruned anything would mean the suite isn't
  // actually exercising the prune path.
  EXPECT_GT(total_skipped, 0u) << spec.name;
}

class CutoffDifferentialTest
    : public ::testing::TestWithParam<const CutoffGraphSpec*> {};

TEST_P(CutoffDifferentialTest, CellGranularWavesMatchFullRecalc) {
  SchedulerOptions options = EagerOptions();
  options.threads = 2;  // Matches the TSan CI job's recalc width.
  RunCutoffDifferential(*GetParam(), options, /*parallel=*/true, 11u, 30);
}

TEST_P(CutoffDifferentialTest, RangeGranularFallbackMatchesFullRecalc) {
  SchedulerOptions options = EagerOptions();
  options.threads = 2;
  options.max_edges = 2;  // Everything lands in range-granular mode.
  RunCutoffDifferential(*GetParam(), options, /*parallel=*/true, 47u, 25);
}

TEST_P(CutoffDifferentialTest, SerialEngineCutoffMatchesFullRecalc) {
  SchedulerOptions options = EagerOptions();  // Unused: no executor.
  RunCutoffDifferential(*GetParam(), options, /*parallel=*/false, 83u, 25);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, CutoffDifferentialTest,
    ::testing::Values(&kCutoffSpecs[0], &kCutoffSpecs[1], &kCutoffSpecs[2],
                      &kCutoffSpecs[3], &kCutoffSpecs[4], &kCutoffSpecs[5],
                      &kCutoffSpecs[6], &kCutoffSpecs[7], &kCutoffSpecs[8],
                      &kCutoffSpecs[9]),
    [](const ::testing::TestParamInfo<const CutoffGraphSpec*>& info) {
      return std::string(info.param->name);
    });

}  // namespace
}  // namespace taco
