// Tests for the formula evaluator and the recalculation engine, including
// end-to-end recalc driven by both TACO and NoComp graphs (results must be
// identical — the engine is graph-agnostic).

#include <gtest/gtest.h>

#include "eval/recalc.h"
#include "formula/parser.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

// Evaluates one formula against a prepared sheet.
Value Eval(const Sheet& sheet, const std::string& formula) {
  Evaluator evaluator(&sheet);
  auto ast = ParseFormula(formula);
  EXPECT_TRUE(ast.ok()) << formula;
  return evaluator.EvaluateExpr(**ast);
}

Sheet NumbersSheet() {
  Sheet sheet;
  // A1..A5 = 1..5; B1 = "text"; C1 = TRUE.
  for (int row = 1; row <= 5; ++row) {
    EXPECT_TRUE(sheet.SetNumber(Cell{1, row}, row).ok());
  }
  EXPECT_TRUE(sheet.SetText(Cell{2, 1}, "text").ok());
  EXPECT_TRUE(sheet.SetBoolean(Cell{3, 1}, true).ok());
  return sheet;
}

TEST(EvaluatorTest, Literals) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "42"), Value::Number(42));
  EXPECT_EQ(Eval(sheet, "\"hi\""), Value::Text("hi"));
  EXPECT_EQ(Eval(sheet, "TRUE"), Value::Boolean(true));
}

TEST(EvaluatorTest, Arithmetic) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "1+2*3"), Value::Number(7));
  EXPECT_EQ(Eval(sheet, "(1+2)*3"), Value::Number(9));
  EXPECT_EQ(Eval(sheet, "2^10"), Value::Number(1024));
  EXPECT_EQ(Eval(sheet, "-5+1"), Value::Number(-4));
  EXPECT_EQ(Eval(sheet, "50%"), Value::Number(0.5));
  EXPECT_EQ(Eval(sheet, "10/4"), Value::Number(2.5));
}

TEST(EvaluatorTest, DivisionByZero) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "1/0"), Value::Error(EvalError::kDiv0));
  // Errors propagate through enclosing expressions.
  EXPECT_EQ(Eval(sheet, "1+(1/0)"), Value::Error(EvalError::kDiv0));
  EXPECT_EQ(Eval(sheet, "SUM(A1,1/0)"), Value::Error(EvalError::kDiv0));
}

TEST(EvaluatorTest, Comparisons) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "1<2"), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "2<=2"), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "1<>2"), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "\"abc\"=\"ABC\""), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "\"a\"<\"b\""), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "1=\"a\""), Value::Error(EvalError::kValue));
}

TEST(EvaluatorTest, Concat) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "\"a\"&\"b\""), Value::Text("ab"));
  EXPECT_EQ(Eval(sheet, "\"n=\"&42"), Value::Text("n=42"));
}

TEST(EvaluatorTest, Aggregates) {
  Sheet sheet = NumbersSheet();
  EXPECT_EQ(Eval(sheet, "SUM(A1:A5)"), Value::Number(15));
  EXPECT_EQ(Eval(sheet, "AVERAGE(A1:A5)"), Value::Number(3));
  EXPECT_EQ(Eval(sheet, "AVG(A1:A5)"), Value::Number(3));
  EXPECT_EQ(Eval(sheet, "MIN(A1:A5)"), Value::Number(1));
  EXPECT_EQ(Eval(sheet, "MAX(A1:A5)"), Value::Number(5));
  EXPECT_EQ(Eval(sheet, "COUNT(A1:A5)"), Value::Number(5));
  // Text and blanks are skipped by SUM/COUNT; COUNTA counts non-blank.
  EXPECT_EQ(Eval(sheet, "SUM(A1:C5)"), Value::Number(15));
  EXPECT_EQ(Eval(sheet, "COUNT(A1:C5)"), Value::Number(5));
  EXPECT_EQ(Eval(sheet, "COUNTA(A1:C5)"), Value::Number(7));
  // Multiple arguments mix scalars and ranges.
  EXPECT_EQ(Eval(sheet, "SUM(A1:A3,10,A5)"), Value::Number(21));
}

TEST(EvaluatorTest, IfIsLazy) {
  Sheet sheet = NumbersSheet();
  EXPECT_EQ(Eval(sheet, "IF(A1=1,\"yes\",\"no\")"), Value::Text("yes"));
  EXPECT_EQ(Eval(sheet, "IF(A1>1,\"yes\",\"no\")"), Value::Text("no"));
  // The untaken branch is not evaluated: no #DIV/0!.
  EXPECT_EQ(Eval(sheet, "IF(TRUE,1,1/0)"), Value::Number(1));
  EXPECT_EQ(Eval(sheet, "IF(FALSE,1/0,2)"), Value::Number(2));
}

TEST(EvaluatorTest, LogicalFunctions) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "AND(TRUE,1,2)"), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "AND(TRUE,0)"), Value::Boolean(false));
  EXPECT_EQ(Eval(sheet, "OR(FALSE,0,3)"), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "NOT(FALSE)"), Value::Boolean(true));
  EXPECT_EQ(Eval(sheet, "ABS(0-7)"), Value::Number(7));
  EXPECT_EQ(Eval(sheet, "ROUND(3.14159,2)"), Value::Number(3.14));
  EXPECT_EQ(Eval(sheet, "ROUND(2.5)"), Value::Number(3));
}

TEST(EvaluatorTest, Vlookup) {
  Sheet sheet;
  // Table D1:E3: (10, "a"), (20, "b"), (30, "c").
  ASSERT_TRUE(sheet.SetNumber(Cell{4, 1}, 10).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{4, 2}, 20).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{4, 3}, 30).ok());
  ASSERT_TRUE(sheet.SetText(Cell{5, 1}, "a").ok());
  ASSERT_TRUE(sheet.SetText(Cell{5, 2}, "b").ok());
  ASSERT_TRUE(sheet.SetText(Cell{5, 3}, "c").ok());

  EXPECT_EQ(Eval(sheet, "VLOOKUP(20,D1:E3,2)"), Value::Text("b"));
  EXPECT_EQ(Eval(sheet, "VLOOKUP(99,D1:E3,2)"), Value::Error(EvalError::kNa));
  EXPECT_EQ(Eval(sheet, "VLOOKUP(10,D1:E3,3)"), Value::Error(EvalError::kRef));
}

TEST(EvaluatorTest, UnknownFunctionIsNameError) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "FROBNICATE(1)"), Value::Error(EvalError::kName));
}

TEST(EvaluatorTest, CellChains) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 5).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 2}, "A1*2").ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 3}, "A2+1").ok());
  Evaluator evaluator(&sheet);
  EXPECT_EQ(evaluator.EvaluateCell(Cell{1, 3}), Value::Number(11));
  // The intermediate result is cached.
  EXPECT_GE(evaluator.cache_size(), 2u);
}

TEST(EvaluatorTest, CycleDetection) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 1}, "A2+1").ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 2}, "A1+1").ok());
  Evaluator evaluator(&sheet);
  Value v = evaluator.EvaluateCell(Cell{1, 1});
  EXPECT_EQ(v, Value::Error(EvalError::kCycle));
}

TEST(EvaluatorTest, DeepChainDoesNotOverflowStack) {
  // Running-total chains reach 10^5 cells in real sheets; evaluation must
  // be iterative over cells (a recursive evaluator segfaults here).
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 1).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 2}, "A1+1").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{1, 2}, Range(1, 2, 1, 150000)).ok());
  Evaluator evaluator(&sheet);
  EXPECT_EQ(evaluator.EvaluateCell(Cell{1, 150000}), Value::Number(150000));
}

TEST(EvaluatorTest, CycleInsideDeepChain) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 1}, "A1000+1").ok());  // back edge
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 2}, "A1+1").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{1, 2}, Range(1, 2, 1, 1000)).ok());
  Evaluator evaluator(&sheet);
  Value v = evaluator.EvaluateCell(Cell{1, 1000});
  EXPECT_EQ(v, Value::Error(EvalError::kCycle));
}

TEST(EvaluatorTest, BlankCellsAreZeroInArithmetic) {
  Sheet sheet;
  EXPECT_EQ(Eval(sheet, "Z99+5"), Value::Number(5));
  EXPECT_EQ(Eval(sheet, "SUM(Z1:Z10)"), Value::Number(0));
  EXPECT_EQ(Eval(sheet, "AVERAGE(Z1:Z10)"), Value::Error(EvalError::kDiv0));
}

// ---------------------------------------------------------------------------
// RecalcEngine

class RecalcEngineTest : public ::testing::TestWithParam<bool> {
 protected:
  // Param selects the graph implementation: true = TACO, false = NoComp.
  std::unique_ptr<DependencyGraph> MakeGraph() {
    if (GetParam()) return std::make_unique<TacoGraph>();
    return std::make_unique<NoCompGraph>();
  }
};

TEST_P(RecalcEngineTest, UpdatePropagatesThroughChain) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 1).ok());
  // A2..A100: each is previous + 1.
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 2}, "A1+1").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{1, 2}, Range(1, 2, 1, 100)).ok());

  auto graph = MakeGraph();
  ASSERT_TRUE(BuildGraphFromSheet(sheet, graph.get()).ok());
  RecalcEngine engine(&sheet, graph.get());

  EXPECT_EQ(engine.GetValue(Cell{1, 100}), Value::Number(100));

  auto result = engine.SetNumber(Cell{1, 1}, 1000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->dirty_cells, 99u);
  EXPECT_EQ(result->recalculated, 99u);
  EXPECT_EQ(engine.GetValue(Cell{1, 100}), Value::Number(1099));
}

TEST_P(RecalcEngineTest, FormulaReplacementRewiresGraph) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 10).ok());
  ASSERT_TRUE(sheet.SetNumber(Cell{2, 1}, 20).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "A1*2").ok());

  auto graph = MakeGraph();
  ASSERT_TRUE(BuildGraphFromSheet(sheet, graph.get()).ok());
  RecalcEngine engine(&sheet, graph.get());
  EXPECT_EQ(engine.GetValue(Cell{3, 1}), Value::Number(20));

  // Repoint C1 at B1. Updating A1 must no longer dirty C1.
  ASSERT_TRUE(engine.SetFormula(Cell{3, 1}, "B1*2").ok());
  EXPECT_EQ(engine.GetValue(Cell{3, 1}), Value::Number(40));

  auto result = engine.SetNumber(Cell{1, 1}, 99);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dirty_cells, 0u);
  auto result2 = engine.SetNumber(Cell{2, 1}, 30);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->dirty_cells, 1u);
  EXPECT_EQ(engine.GetValue(Cell{3, 1}), Value::Number(60));
}

TEST_P(RecalcEngineTest, ClearRangeStopsPropagation) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetNumber(Cell{1, 1}, 1).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 2}, "A1+1").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{1, 2}, Range(1, 2, 1, 50)).ok());

  auto graph = MakeGraph();
  ASSERT_TRUE(BuildGraphFromSheet(sheet, graph.get()).ok());
  RecalcEngine engine(&sheet, graph.get());
  ASSERT_TRUE(engine.ClearRange(Range(1, 20, 1, 30)).ok());

  auto result = engine.SetNumber(Cell{1, 1}, 100);
  ASSERT_TRUE(result.ok());
  // Only A2..A19 depend on A1 now.
  EXPECT_EQ(result->dirty_cells, 18u);
  EXPECT_EQ(engine.GetValue(Cell{1, 19}), Value::Number(118));
  EXPECT_EQ(engine.GetValue(Cell{1, 20}), Value::Blank());
  // The tail of the chain reads the blank as 0.
  EXPECT_EQ(engine.GetValue(Cell{1, 31}), Value::Number(1));
}

TEST_P(RecalcEngineTest, SlidingWindowRecalc) {
  Sheet sheet;
  for (int row = 1; row <= 20; ++row) {
    ASSERT_TRUE(sheet.SetNumber(Cell{1, row}, 1).ok());
  }
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 1}, "SUM(A1:A3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{2, 1}, Range(2, 1, 2, 18)).ok());

  auto graph = MakeGraph();
  ASSERT_TRUE(BuildGraphFromSheet(sheet, graph.get()).ok());
  RecalcEngine engine(&sheet, graph.get());
  EXPECT_EQ(engine.GetValue(Cell{2, 5}), Value::Number(3));

  // Changing A6 dirties the windows B4, B5, B6.
  auto result = engine.SetNumber(Cell{1, 6}, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dirty_cells, 3u);
  EXPECT_EQ(engine.GetValue(Cell{2, 5}), Value::Number(12));
  EXPECT_EQ(engine.GetValue(Cell{2, 1}), Value::Number(3));
}

INSTANTIATE_TEST_SUITE_P(Graphs, RecalcEngineTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Taco" : "NoComp";
                         });

TEST(EvaluatorTest, BulkInvalidationShrinksTheValueCache) {
  // The cache's bucket table must follow a bulk invalidation down, not
  // stay sized for the largest region ever evaluated.
  Sheet sheet;
  for (int col = 1; col <= 100; ++col) {
    for (int row = 1; row <= 100; ++row) {
      ASSERT_TRUE(sheet.SetNumber(Cell{col, row}, col * row).ok());
    }
  }
  Evaluator evaluator(&sheet);
  for (int col = 1; col <= 100; ++col) {
    for (int row = 1; row <= 100; ++row) {
      evaluator.EvaluateCell(Cell{col, row});
    }
  }
  ASSERT_EQ(evaluator.cache_size(), 10000u);
  size_t grown = evaluator.cache_bucket_count();
  ASSERT_GT(grown, Evaluator::kShrinkMinBuckets);

  evaluator.Invalidate(Range(1, 1, 100, 99));
  EXPECT_EQ(evaluator.cache_size(), 100u);
  EXPECT_LT(evaluator.cache_bucket_count(), grown / 4)
      << "cache bucket table did not shrink after bulk invalidation";
  // Cached survivors still serve; re-evaluation still works.
  EXPECT_EQ(evaluator.EvaluateCell(Cell{50, 100}), Value::Number(5000));
  EXPECT_EQ(evaluator.EvaluateCell(Cell{50, 50}), Value::Number(2500));

  evaluator.InvalidateAll();
  EXPECT_LE(evaluator.cache_bucket_count(), Evaluator::kShrinkMinBuckets);
}

}  // namespace
}  // namespace taco
