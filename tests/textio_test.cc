// Round-trip and file-level tests for the .tsheet serializer
// (sheet/textio.h): write -> read -> write must be a fixed point across
// every cell type, the parser must survive formatting noise, and the
// Save/Load file path must preserve the sheet and set its name from the
// file stem.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "sheet/sheet.h"
#include "sheet/textio.h"

namespace taco {
namespace {

Sheet MixedSheet() {
  Sheet sheet;
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 1}, 42.5).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 2}, -3).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 3}, 0.125).ok());
  EXPECT_TRUE(sheet.SetText(Cell{2, 1}, "label").ok());
  EXPECT_TRUE(sheet.SetText(Cell{2, 2}, "").ok());
  EXPECT_TRUE(sheet.SetText(Cell{2, 3}, "with \"quotes\" inside").ok());
  EXPECT_TRUE(sheet.SetBoolean(Cell{3, 1}, true).ok());
  EXPECT_TRUE(sheet.SetBoolean(Cell{3, 2}, false).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 1}, "SUM(A1:A3)").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 2}, "IF(C1,B1,\"no\")").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 3}, "$A$1+A2*2").ok());
  return sheet;
}

TEST(TextIoTest, RoundTripPreservesEveryCellType) {
  Sheet sheet = MixedSheet();
  std::string text = WriteSheetText(sheet);
  auto loaded = ReadSheetText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().cell_count(), sheet.cell_count());
  // The writer is deterministic (column-major), so a full round trip is a
  // fixed point — the strongest cheap equality check for sheets.
  EXPECT_EQ(WriteSheetText(loaded.value()), text);
}

TEST(TextIoTest, EmptySheetRoundTrips) {
  Sheet empty;
  std::string text = WriteSheetText(empty);
  auto loaded = ReadSheetText(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().cell_count(), 0u);
}

TEST(TextIoTest, CommentsAndBlankLinesIgnored) {
  auto loaded = ReadSheetText(
      "# generated corpus\n"
      "\n"
      "   \n"
      "A1 = 7\n"
      "# trailing comment\n"
      "B2 = =A1*2\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().cell_count(), 2u);
  const CellContent* formula = loaded.value().Get(Cell{2, 2});
  ASSERT_NE(formula, nullptr);
}

TEST(TextIoTest, ParseErrorsCarryLineNumbers) {
  auto bad = ReadSheetText("A1 = 1\nB1 = 12notanumber\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("2"), std::string::npos)
      << "error should name line 2: " << bad.status().ToString();
}

TEST(TextIoTest, SaveLoadFileRoundTrip) {
  Sheet sheet = MixedSheet();
  // LoadSheetFile names the sheet after the file stem; name the original
  // identically so the serialized headers (which embed the name) match.
  sheet.set_name("taco_textio_test");
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "taco_textio_test.tsheet";
  ASSERT_TRUE(SaveSheetFile(sheet, path.string()).ok());
  auto loaded = LoadSheetFile(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(WriteSheetText(loaded.value()), WriteSheetText(sheet));
  // The sheet name comes from the file stem.
  EXPECT_EQ(loaded.value().name(), "taco_textio_test");
}

TEST(TextIoTest, LoadMissingFileFails) {
  auto missing = LoadSheetFile("/nonexistent/dir/none.tsheet");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace taco
