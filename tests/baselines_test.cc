// Tests for the Sec. VI comparison baselines. CellGraph and CalcGraph are
// exact and must match the brute-force oracle; Antifreeze may return
// bounding-range supersets (verified as such); ExcelLike is exact but
// scan-based. All implement the common DependencyGraph interface.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/antifreeze.h"
#include "baselines/calcgraph.h"
#include "baselines/cellgraph.h"
#include "baselines/excellike.h"
#include "common/range_set.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "sheet/sheet.h"

namespace taco {
namespace {

using test::BruteForceDependents;
using test::BruteForcePrecedents;
using test::CellSet;
using test::RandomAcyclicDependencies;
using test::ToCellSet;

Dependency Dep(const Range& prec, const Cell& dep) {
  Dependency d;
  d.prec = prec;
  d.dep = dep;
  return d;
}

// ---------------------------------------------------------------------------
// CellGraph

TEST(CellGraphTest, DecomposesRangeEdges) {
  CellGraph graph;
  // A1:A3 -> B1 becomes three cell-level edges (the RedisGraph loading
  // transformation described in Sec. VI-D).
  ASSERT_TRUE(graph.AddDependency(Dep(Range(1, 1, 1, 3), Cell{2, 1})).ok());
  EXPECT_EQ(graph.NumEdges(), 3u);
  EXPECT_EQ(graph.NumVertices(), 4u);  // A1, A2, A3, B1
}

TEST(CellGraphTest, BlowupOnLargeRanges) {
  CellGraph graph;
  NoCompGraph nocomp;
  Dependency dep = Dep(Range(1, 1, 1, 10000), Cell{2, 1});
  ASSERT_TRUE(graph.AddDependency(dep).ok());
  ASSERT_TRUE(nocomp.AddDependency(dep).ok());
  // The decomposition is 10000x larger than the range representation.
  EXPECT_EQ(graph.NumEdges(), 10000u);
  EXPECT_EQ(nocomp.NumEdges(), 1u);
}

TEST(CellGraphTest, QueryDeadlineReportsTimeout) {
  CellGraph graph;
  for (int i = 1; i <= 2000; ++i) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, i}), Cell{2, i})).ok());
  }
  graph.set_query_budget_ms(0.000001);
  (void)graph.FindDependents(Range(1, 1, 1, 2000));
  EXPECT_TRUE(graph.query_timed_out());
  graph.set_query_budget_ms(0);
  (void)graph.FindDependents(Range(1, 1, 1, 2000));
  EXPECT_FALSE(graph.query_timed_out());
}

// ---------------------------------------------------------------------------
// Antifreeze

TEST(AntifreezeTest, LookupMatchesExactDependentsOnSmallSheets) {
  // With K large enough, bounding compression is exact for small sets.
  AntifreezeGraph graph(/*max_bounding_ranges=*/100);
  NoCompGraph nocomp;
  auto deps = RandomAcyclicDependencies(42, 40);
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(graph.AddDependency(dep).ok());
    ASSERT_TRUE(nocomp.AddDependency(dep).ok());
  }
  for (int col = 1; col <= 8; ++col) {
    for (int row = 1; row <= 30; row += 3) {
      Range input(Cell{col, row});
      EXPECT_EQ(ToCellSet(graph.FindDependents(input)),
                ToCellSet(nocomp.FindDependents(input)))
          << input.ToString();
    }
  }
}

TEST(AntifreezeTest, SmallKProducesSupersets) {
  AntifreezeGraph graph(/*max_bounding_ranges=*/2);
  NoCompGraph nocomp;
  // One cell with scattered dependents that cannot be covered exactly by
  // two rectangles.
  std::vector<Cell> dependents = {{3, 1}, {5, 9}, {2, 14}, {7, 3}, {4, 20}};
  for (const Cell& d : dependents) {
    ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{1, 1}), d)).ok());
    ASSERT_TRUE(nocomp.AddDependency(Dep(Range(Cell{1, 1}), d)).ok());
  }
  auto approx = ToCellSet(graph.FindDependents(Range(Cell{1, 1})));
  auto exact = ToCellSet(nocomp.FindDependents(Range(Cell{1, 1})));
  // Superset, never a miss.
  for (const auto& cell : exact) {
    EXPECT_TRUE(approx.contains(cell));
  }
  EXPECT_GT(approx.size(), exact.size());  // false positives exist here
}

TEST(AntifreezeTest, RebuildOnModification) {
  AntifreezeGraph graph;
  ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{1, 1}), Cell{2, 1})).ok());
  ASSERT_TRUE(graph.BuildLookupTable());
  EXPECT_EQ(ToCellSet(graph.FindDependents(Range(Cell{1, 1}))),
            (CellSet{{2, 1}}));

  // Clearing B1 invalidates and rebuilds the table.
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(Cell{2, 1})).ok());
  EXPECT_TRUE(graph.FindDependents(Range(Cell{1, 1})).empty());
}

TEST(AntifreezeTest, BuildDeadline) {
  AntifreezeGraph graph;
  // A wide sheet whose per-cell expansion is large.
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(1, 1, 20, 500), Cell{25, i})).ok());
  }
  graph.set_build_budget_ms(0.000001);
  EXPECT_FALSE(graph.BuildLookupTable());
  EXPECT_TRUE(graph.build_timed_out());
  graph.set_build_budget_ms(0);
  EXPECT_TRUE(graph.BuildLookupTable());
  EXPECT_FALSE(graph.build_timed_out());
}

TEST(AntifreezeTest, PrecedentsFallBackToBaseGraph) {
  AntifreezeGraph graph;
  ASSERT_TRUE(graph.AddDependency(Dep(Range(1, 1, 1, 3), Cell{2, 1})).ok());
  EXPECT_EQ(ToCellSet(graph.FindPrecedents(Range(Cell{2, 1}))),
            (CellSet{{1, 1}, {1, 2}, {1, 3}}));
}

// ---------------------------------------------------------------------------
// ExcelLike

TEST(ExcelLikeTest, SharedRecordsDeduplicate) {
  ExcelLikeGraph graph;
  // 100 formulas with the same relative shape share one record.
  for (int row = 1; row <= 100; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row}), Cell{2, row})).ok());
  }
  EXPECT_EQ(graph.NumEdges(), 1u);  // one shared record
  EXPECT_EQ(graph.NumRawDependencies(), 100u);
}

TEST(ExcelLikeTest, MultiReferenceShapes) {
  ExcelLikeGraph graph;
  // Two-reference formulas: both references end up in one record whose
  // shape has two entries.
  for (int row = 2; row <= 50; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row}), Cell{3, row})).ok());
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{2, row - 1}), Cell{3, row})).ok());
  }
  // One shared record: every cell files under the final two-reference
  // shape, and the transient 1-ref prefix record is compacted away once
  // its last member refiles.
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.NumRawDependencies(), 98u);

  auto result = graph.FindDependents(Range(Cell{1, 10}));
  EXPECT_EQ(ToCellSet(result), (CellSet{{3, 10}}));
  result = graph.FindDependents(Range(Cell{2, 10}));
  EXPECT_EQ(ToCellSet(result), (CellSet{{3, 11}}));
}

TEST(ExcelLikeTest, RemoveFormulaCells) {
  ExcelLikeGraph graph;
  for (int row = 1; row <= 10; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row}), Cell{2, row})).ok());
  }
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(2, 3, 2, 5)).ok());
  EXPECT_EQ(graph.NumRawDependencies(), 7u);
  EXPECT_TRUE(graph.FindDependents(Range(Cell{1, 4})).empty());
  EXPECT_EQ(ToCellSet(graph.FindDependents(Range(Cell{1, 6}))),
            (CellSet{{2, 6}}));
}

// ---------------------------------------------------------------------------
// Differential: every exact baseline must agree with the oracle.

struct BaselineParam {
  const char* name;
  int which;  // 0 = CellGraph, 1 = CalcGraph, 2 = ExcelLike
  uint32_t seed;
};

class ExactBaselineTest : public ::testing::TestWithParam<BaselineParam> {
 protected:
  std::unique_ptr<DependencyGraph> MakeGraph() const {
    switch (GetParam().which) {
      case 0: return std::make_unique<CellGraph>();
      case 1: return std::make_unique<CalcGraph>();
      default: return std::make_unique<ExcelLikeGraph>();
    }
  }
};

TEST_P(ExactBaselineTest, MatchesOracle) {
  auto deps = RandomAcyclicDependencies(GetParam().seed, 60);
  auto graph = MakeGraph();
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(graph->AddDependency(dep).ok());
  }
  std::mt19937 rng(GetParam().seed ^ 0xf00d);
  std::uniform_int_distribution<int32_t> col(1, 8);
  std::uniform_int_distribution<int32_t> row(1, 30);
  for (int trial = 0; trial < 20; ++trial) {
    Range input(Cell{col(rng), row(rng)});
    EXPECT_EQ(ToCellSet(graph->FindDependents(input)),
              BruteForceDependents(deps, input))
        << graph->Name() << " dependents of " << input.ToString();
    EXPECT_EQ(ToCellSet(graph->FindPrecedents(input)),
              BruteForcePrecedents(deps, input))
        << graph->Name() << " precedents of " << input.ToString();
  }
}

TEST_P(ExactBaselineTest, RemovalMatchesOracle) {
  auto deps = RandomAcyclicDependencies(GetParam().seed + 500, 50);
  auto graph = MakeGraph();
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(graph->AddDependency(dep).ok());
  }
  Range cleared(1, 12, 8, 18);
  ASSERT_TRUE(graph->RemoveFormulaCells(cleared).ok());
  std::vector<Dependency> remaining;
  for (const Dependency& dep : deps) {
    if (!cleared.Contains(dep.dep)) remaining.push_back(dep);
  }
  std::mt19937 rng(GetParam().seed);
  std::uniform_int_distribution<int32_t> col(1, 8);
  std::uniform_int_distribution<int32_t> row(1, 30);
  for (int trial = 0; trial < 15; ++trial) {
    Range input(Cell{col(rng), row(rng)});
    EXPECT_EQ(ToCellSet(graph->FindDependents(input)),
              BruteForceDependents(remaining, input))
        << graph->Name() << " dependents of " << input.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, ExactBaselineTest,
    ::testing::Values(BaselineParam{"CellGraph", 0, 21},
                      BaselineParam{"CellGraph", 0, 22},
                      BaselineParam{"CalcGraph", 1, 23},
                      BaselineParam{"CalcGraph", 1, 24},
                      BaselineParam{"ExcelLike", 2, 25},
                      BaselineParam{"ExcelLike", 2, 26}),
    [](const ::testing::TestParamInfo<BaselineParam>& info) {
      return std::string(info.param.name) + "S" +
             std::to_string(info.param.seed);
    });

// CalcGraph with tiny containers exercises multi-container registration.
TEST(CalcGraphTest, TinyContainers) {
  CalcGraph graph(/*container_cols=*/2, /*container_rows=*/4);
  auto deps = RandomAcyclicDependencies(99, 50);
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(graph.AddDependency(dep).ok());
  }
  for (int col = 1; col <= 8; col += 2) {
    for (int row = 1; row <= 30; row += 5) {
      Range input(Cell{col, row});
      EXPECT_EQ(ToCellSet(graph.FindDependents(input)),
                BruteForceDependents(deps, input))
          << input.ToString();
    }
  }
}

}  // namespace
}  // namespace taco
