// Larger-scale differential workloads: the same oracle cross-check as
// differential_test.cc but on a wider/taller sheet region with hundreds
// of dependencies and more mutation rounds, where TACO's merge selection,
// edge splitting, and the R-tree index see materially more churn. Kept in
// tier-1 deliberately — the whole file runs in well under a second.

#include <optional>

#include <gtest/gtest.h>

#include "baselines/antifreeze.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

using test::DifferentialConfig;
using test::EdgesAreRawDeps;
using test::RunDifferentialWorkload;
using test::TacoRawDeps;

DifferentialConfig BigConfig() {
  DifferentialConfig config;
  config.initial_inserts = 250;
  config.rounds = 8;
  config.inserts_per_round = 50;
  config.queries_per_round = 15;
  config.max_col = 14;
  config.max_row = 70;
  return config;
}

class DifferentialStressTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialStressTest, TacoFull) {
  TacoGraph graph(TacoOptions::Full());
  DifferentialConfig config = BigConfig();
  config.raw_deps = TacoRawDeps;
  RunDifferentialWorkload(&graph, GetParam(), config);
}

TEST_P(DifferentialStressTest, TacoExtendedPatterns) {
  TacoOptions options;
  options.patterns = ExtendedPatternSet();
  TacoGraph graph(options);
  DifferentialConfig config = BigConfig();
  config.raw_deps = TacoRawDeps;
  RunDifferentialWorkload(&graph, GetParam() ^ 0x6A9, config);
}

TEST_P(DifferentialStressTest, TacoNoHeuristics) {
  TacoGraph graph(TacoOptions::NoHeuristics());
  DifferentialConfig config = BigConfig();
  config.raw_deps = TacoRawDeps;
  RunDifferentialWorkload(&graph, GetParam(), config);
}

TEST_P(DifferentialStressTest, NoComp) {
  NoCompGraph graph;
  DifferentialConfig config = BigConfig();
  config.raw_deps = EdgesAreRawDeps;
  RunDifferentialWorkload(&graph, GetParam(), config);
}

TEST_P(DifferentialStressTest, Antifreeze) {
  AntifreezeGraph graph;
  DifferentialConfig config = BigConfig();
  config.exact_dependents = false;
  // Antifreeze stores the raw graph in an embedded NoComp, so its
  // NumEdges is the raw-dependency count.
  config.raw_deps = EdgesAreRawDeps;
  config.rounds = 3;  // every removal forces a full table rebuild
  RunDifferentialWorkload(&graph, GetParam(), config);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialStressTest,
                         ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace taco
