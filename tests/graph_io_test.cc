// Tests for compressed-graph persistence: save/load round trips must
// reproduce the exact edge set and answer queries identically, across all
// patterns and after maintenance.

#include <gtest/gtest.h>

#include "common/range_set.h"
#include "corpus/generator.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "taco/graph_io.h"

namespace taco {
namespace {

using test::ToCellSet;

// Collects (pattern, prec, dep, count) tuples for comparison.
std::vector<std::string> EdgeSignatures(const TacoGraph& graph) {
  std::vector<std::string> out;
  graph.ForEachEdge([&out](const CompressedEdge& edge) {
    out.push_back(edge.ToString());
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(GraphIoTest, RoundTripAllPatterns) {
  // A sheet exercising every pattern, including RR-GapOne.
  Sheet sheet;
  EXPECT_TRUE(sheet.SetFormula(Cell{3, 2}, "SUM(A1:B2)").ok());     // RR
  EXPECT_TRUE(Autofill(&sheet, Cell{3, 2}, Range(3, 2, 3, 40)).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 1}, "SUM($A$1:A1)").ok());   // FR
  EXPECT_TRUE(Autofill(&sheet, Cell{4, 1}, Range(4, 1, 4, 40)).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{5, 1}, "SUM(A1:$A$40)").ok());  // RF
  EXPECT_TRUE(Autofill(&sheet, Cell{5, 1}, Range(5, 1, 5, 40)).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{6, 1}, "SUM($A$1:$B$40)").ok());  // FF
  EXPECT_TRUE(Autofill(&sheet, Cell{6, 1}, Range(6, 1, 6, 40)).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{7, 1}, 0).ok());                 // chain
  EXPECT_TRUE(sheet.SetFormula(Cell{7, 2}, "G1+1").ok());
  EXPECT_TRUE(Autofill(&sheet, Cell{7, 2}, Range(7, 2, 7, 40)).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{9, 7}, "A3+B9").ok());          // Single

  TacoOptions options;
  options.patterns = ExtendedPatternSet();
  TacoGraph original{options};
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &original).ok());
  // Stride-2 layout for RR-GapOne.
  for (int row = 1; row <= 21; row += 2) {
    Dependency d;
    d.prec = Range(Cell{10, row});
    d.dep = Cell{11, row};
    ASSERT_TRUE(original.AddDependency(d).ok());
  }
  auto stats = original.PatternStats();
  ASSERT_TRUE(stats.contains(PatternType::kRRGapOne));

  std::string text = WriteGraphText(original);
  auto loaded = ReadGraphText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  EXPECT_EQ(loaded->NumVertices(), original.NumVertices());
  EXPECT_EQ(loaded->NumRawDependencies(), original.NumRawDependencies());
  EXPECT_EQ(EdgeSignatures(*loaded), EdgeSignatures(original));
  // Serialization is canonical: a second round trip is byte-identical.
  EXPECT_EQ(WriteGraphText(*loaded), text);

  // Query equivalence on a grid of probes.
  for (int col = 1; col <= 11; col += 2) {
    for (int row = 1; row <= 40; row += 7) {
      Range q(Cell{col, row});
      EXPECT_EQ(ToCellSet(loaded->FindDependents(q)),
                ToCellSet(original.FindDependents(q)))
          << q.ToString();
      EXPECT_EQ(ToCellSet(loaded->FindPrecedents(q)),
                ToCellSet(original.FindPrecedents(q)))
          << q.ToString();
    }
  }
}

TEST(GraphIoTest, LoadedGraphSupportsMaintenanceAndInsertion) {
  TacoGraph original;
  for (int row = 1; row <= 30; ++row) {
    Dependency d;
    d.prec = Range(Cell{1, row});
    d.dep = Cell{2, row};
    ASSERT_TRUE(original.AddDependency(d).ok());
  }
  auto loaded = ReadGraphText(WriteGraphText(original));
  ASSERT_TRUE(loaded.ok());

  // Maintenance on the loaded graph behaves like on the original.
  ASSERT_TRUE(loaded->RemoveFormulaCells(Range(2, 10, 2, 15)).ok());
  ASSERT_TRUE(original.RemoveFormulaCells(Range(2, 10, 2, 15)).ok());
  EXPECT_EQ(EdgeSignatures(*loaded), EdgeSignatures(original));

  // New insertions keep compressing.
  Dependency d;
  d.prec = Range(Cell{1, 31});
  d.dep = Cell{2, 31};
  ASSERT_TRUE(loaded->AddDependency(d).ok());
  ASSERT_TRUE(original.AddDependency(d).ok());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
}

TEST(GraphIoTest, CorpusSheetFileRoundTrip) {
  CorpusProfile profile = CorpusProfile::Enron().Tiny();
  profile.seed = 555;
  CorpusSheet cs = CorpusGenerator(profile).GenerateSheet(0);
  TacoGraph original;
  ASSERT_TRUE(BuildGraphFromSheet(cs.sheet, &original).ok());

  std::string path = ::testing::TempDir() + "/graph_io_test.tacograph";
  ASSERT_TRUE(SaveGraphFile(original, path).ok());
  auto loaded = LoadGraphFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EdgeSignatures(*loaded), EdgeSignatures(original));

  Range q(cs.max_dependents_cell);
  EXPECT_TRUE(SameCellSet(loaded->FindDependents(q),
                          original.FindDependents(q)));
}

TEST(GraphIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ReadGraphText("Bogus A1 B1 n=1\n").ok());       // bad pattern
  EXPECT_FALSE(ReadGraphText("RR A1\n").ok());                 // missing dep
  EXPECT_FALSE(ReadGraphText("RR ZZZZ9 B1 n=1\n").ok());       // bad range
  EXPECT_FALSE(ReadGraphText("Single A1 B1 n=0\n").ok());      // zero count
  EXPECT_FALSE(ReadGraphText("Single A1 B1:B3 n=1\n").ok());   // multi dep
  EXPECT_FALSE(ReadGraphText("RR A1 B1 h=1\n").ok());          // bad pair
  EXPECT_FALSE(ReadGraphText("RR A1 B1 zz=1,1\n").ok());       // bad key
  EXPECT_FALSE(ReadGraphText("RR A1 B1 axis=diag\n").ok());    // bad axis
  // A window that would leave the sheet is rejected by validation.
  EXPECT_FALSE(
      ReadGraphText("RR A1:A2 B1:B2 h=-5,0 t=-5,0 axis=col n=2 fl=0000\n")
          .ok());
  // Comments and blank lines are fine.
  auto ok = ReadGraphText("# comment\n\nSingle A1 B1 n=1 fl=0000\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->NumEdges(), 1u);
}

TEST(GraphIoTest, MissingFileIsIoError) {
  auto missing = LoadGraphFile("/nonexistent/graph.tacograph");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace taco
