// Service-level observability: the full Prometheus exposition a live
// WorkbookService renders, the METRICS / TRACE protocol verbs, and the
// HTTP /metrics listener mode of the socket server.
//
// The exposition is validated against the text-format 0.0.4 grammar by
// an actual parser (HELP/TYPE pairing, name charset, label quoting,
// series uniqueness, cumulative histogram buckets, +Inf == _count) —
// not by spot-checking substrings — because a scrape-time parse error
// in Prometheus silently loses every metric in the payload, and the
// cheapest place to catch one is here. The scrape-while-hammering suite
// runs under ThreadSanitizer in CI: rendering must be safe against
// concurrent lock-free recorders.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket_client.h"
#include "net/socket_server.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "service/exposition.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

namespace taco {
namespace {

// ---------------------------------------------------------------------
// A small text-format 0.0.4 parser/validator.

struct PromSeries {
  std::string family;                        ///< Family name (no suffix).
  std::string name;                          ///< Full sample name.
  std::map<std::string, std::string> labels;
  double value = 0;
};

class PromValidator {
 public:
  /// Parses and validates `text`; on failure `error()` says where.
  bool Validate(const std::string& text) {
    size_t start = 0;
    int line_no = 0;
    if (text.empty() || text.back() != '\n') {
      return Fail(0, "exposition must end with a newline");
    }
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(start, end - start);
      start = end + 1;
      ++line_no;
      if (line.empty()) continue;
      if (!ParseLine(line, line_no)) return false;
    }
    return CheckHistograms();
  }

  const std::string& error() const { return error_; }
  const std::vector<PromSeries>& series() const { return series_; }

  /// Sample value lookup; fails the current test when the series is
  /// absent. Label match is exact.
  double Value(const std::string& name,
               const std::map<std::string, std::string>& labels) const {
    for (const PromSeries& s : series_) {
      if (s.name == name && s.labels == labels) return s.value;
    }
    ADD_FAILURE() << "series not found: " << name;
    return -1;
  }

  bool Has(const std::string& name,
           const std::map<std::string, std::string>& labels) const {
    for (const PromSeries& s : series_) {
      if (s.name == name && s.labels == labels) return true;
    }
    return false;
  }

 private:
  bool Fail(int line_no, const std::string& what) {
    error_ = "line " + std::to_string(line_no) + ": " + what;
    return false;
  }

  static bool ValidName(const std::string& name, bool label) {
    if (name.empty()) return false;
    for (size_t i = 0; i < name.size(); ++i) {
      char c = name[i];
      bool alpha = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                   (!label && c == ':');
      if (i == 0 ? !alpha
                 : !(alpha || std::isdigit(static_cast<unsigned char>(c)))) {
        return false;
      }
    }
    return true;
  }

  bool ParseLine(const std::string& line, int line_no) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      bool is_type = line[2] == 'T';
      size_t name_start = 7;
      size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) {
        return Fail(line_no, "comment line without text");
      }
      std::string name = line.substr(name_start, name_end - name_start);
      if (!ValidName(name, false)) {
        return Fail(line_no, "bad metric name '" + name + "'");
      }
      if (!is_type) {
        if (families_.count(name)) {
          return Fail(line_no, "duplicate family " + name);
        }
        pending_help_ = name;
        return true;
      }
      // TYPE must directly follow its HELP (how the builder emits).
      if (pending_help_ != name) {
        return Fail(line_no, "TYPE " + name + " without preceding HELP");
      }
      pending_help_.clear();
      std::string type = line.substr(name_end + 1);
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return Fail(line_no, "bad type '" + type + "'");
      }
      families_[name] = type;
      current_family_ = name;
      return true;
    }
    if (line[0] == '#') return true;  // Other comments are legal.

    // Sample line: name[{labels}] value
    PromSeries sample;
    size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    sample.name = line.substr(0, pos);
    if (!ValidName(sample.name, false)) {
      return Fail(line_no, "bad sample name '" + sample.name + "'");
    }
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        size_t eq = line.find('=', pos);
        if (eq == std::string::npos || line[eq + 1] != '"') {
          return Fail(line_no, "malformed label");
        }
        std::string key = line.substr(pos, eq - pos);
        if (!ValidName(key, true)) {
          return Fail(line_no, "bad label name '" + key + "'");
        }
        pos = eq + 2;
        std::string value;
        while (pos < line.size() && line[pos] != '"') {
          if (line[pos] == '\\') {
            ++pos;
            if (pos >= line.size()) return Fail(line_no, "trailing escape");
            char c = line[pos];
            if (c == 'n') {
              value += '\n';
            } else if (c == '\\' || c == '"') {
              value += c;
            } else {
              return Fail(line_no, "bad escape in label value");
            }
          } else {
            value += line[pos];
          }
          ++pos;
        }
        if (pos >= line.size()) return Fail(line_no, "unterminated label");
        ++pos;  // Closing quote.
        if (sample.labels.count(key)) {
          return Fail(line_no, "duplicate label " + key);
        }
        sample.labels[key] = value;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        return Fail(line_no, "unterminated label set");
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return Fail(line_no, "missing value separator");
    }
    std::string value_text = line.substr(pos + 1);
    if (value_text == "+Inf") {
      sample.value = HUGE_VAL;
    } else if (value_text == "-Inf") {
      sample.value = -HUGE_VAL;
    } else if (value_text == "NaN") {
      sample.value = NAN;
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        return Fail(line_no, "bad value '" + value_text + "'");
      }
    }

    // Resolve the family: exact, or histogram suffixes.
    sample.family = sample.name;
    if (!families_.count(sample.family)) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        std::string stem = sample.name;
        if (stem.size() > strlen(suffix) &&
            stem.compare(stem.size() - strlen(suffix), strlen(suffix),
                         suffix) == 0) {
          stem.resize(stem.size() - strlen(suffix));
          if (families_.count(stem) && families_[stem] == "histogram") {
            sample.family = stem;
            break;
          }
        }
      }
    }
    if (!families_.count(sample.family)) {
      return Fail(line_no, "sample before its TYPE: " + sample.name);
    }
    if (sample.family != current_family_) {
      return Fail(line_no,
                  "sample " + sample.name + " outside its family block");
    }

    // Series uniqueness (scrape-time error in Prometheus otherwise).
    std::string key = sample.name;
    for (const auto& [k, v] : sample.labels) key += "|" + k + "=" + v;
    if (!seen_series_.insert(key).second) {
      return Fail(line_no, "duplicate series " + key);
    }
    series_.push_back(std::move(sample));
    return true;
  }

  /// Per histogram label set: buckets cumulative, +Inf present and equal
  /// to _count.
  bool CheckHistograms() {
    struct Hist {
      double last_bucket = -1;
      double inf = -1;
      double count = -1;
      double last_le = -1;
    };
    std::map<std::string, Hist> hists;
    for (const PromSeries& s : series_) {
      if (families_[s.family] != "histogram") continue;
      std::string key = s.family;
      for (const auto& [k, v] : s.labels) {
        if (k != "le") key += "|" + k + "=" + v;
      }
      Hist& h = hists[key];
      if (s.name == s.family + "_bucket") {
        auto le = s.labels.find("le");
        if (le == s.labels.end()) {
          error_ = "bucket without le: " + key;
          return false;
        }
        if (le->second == "+Inf") {
          h.inf = s.value;
        } else {
          double bound = std::strtod(le->second.c_str(), nullptr);
          if (bound <= h.last_le) {
            error_ = "le bounds not increasing: " + key;
            return false;
          }
          h.last_le = bound;
          if (s.value < h.last_bucket) {
            error_ = "bucket counts not cumulative: " + key;
            return false;
          }
          h.last_bucket = s.value;
        }
      } else if (s.name == s.family + "_count") {
        h.count = s.value;
      }
    }
    for (const auto& [key, h] : hists) {
      if (h.inf < 0 || h.count < 0 || h.inf != h.count) {
        error_ = "histogram +Inf/_count mismatch: " + key;
        return false;
      }
      if (h.last_bucket > h.inf) {
        error_ = "finite bucket exceeds +Inf: " + key;
        return false;
      }
    }
    return true;
  }

  std::map<std::string, std::string> families_;  ///< name -> type.
  std::string pending_help_;
  std::string current_family_;
  std::set<std::string> seen_series_;
  std::vector<PromSeries> series_;
  std::string error_;
};

// ---------------------------------------------------------------------

class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest() : processor_(&service_) {}

  /// Drives a representative mix so every headline op has samples.
  void DriveTraffic() {
    Exec("OPEN wb");
    for (int i = 1; i <= 20; ++i) {
      Exec("SET wb A" + std::to_string(i) + " " + std::to_string(i));
    }
    Exec("FORMULA wb B1 SUM(A1:A20)");
    Exec("FORMULA wb B2 A1*2");
    for (int i = 0; i < 10; ++i) Exec("GET wb B1");
    Exec("GETRANGE wb A1:B2");
    Exec("BATCH wb 2\nSET C1 1\nSET C2 2");
    Exec("GET wb ZZ99");        // Blank read, still a sample.
    // A metered error: the save fails inside the session, after the op
    // was timed. ("GET nosuch A1" would NOT count — the protocol layer
    // rejects it before any session is addressed.)
    Exec("SAVE wb /nonexistent_dir_for_test/out.taco");
    Exec("STATS");
    Exec("LIST");
  }

  std::string Exec(const std::string& command) {
    return processor_.Execute(command);
  }

  WorkbookService service_;
  CommandProcessor processor_;
};

TEST_F(ObservabilityTest, ExpositionSurvivesGrammarValidation) {
  DriveTraffic();
  std::string text = RenderServiceExposition(service_);
  PromValidator validator;
  EXPECT_TRUE(validator.Validate(text)) << validator.error();
  // A loaded server exposes latency quantiles for the headline verbs.
  for (const std::string& op : {"SET", "FORMULA", "GET"}) {
    for (const std::string& q : {"0.5", "0.95", "0.99"}) {
      double value = validator.Value("taco_op_latency_quantile_seconds",
                                     {{"op", op}, {"quantile", q}});
      EXPECT_GT(value, 0.0) << op << " p" << q;
    }
    EXPECT_GT(validator.Value("taco_ops_total", {{"op", op}}), 0.0);
  }
  // Sub-millisecond fidelity: an in-process GET takes microseconds, and
  // its p50 must come out in that range instead of flushing to zero.
  double get_p50 = validator.Value("taco_op_latency_quantile_seconds",
                                   {{"op", "GET"}, {"quantile", "0.5"}});
  EXPECT_LT(get_p50, 0.01);
  EXPECT_GT(get_p50, 0.0);
  // The error path counted.
  EXPECT_GE(validator.Value("taco_op_errors_total", {{"op", "SAVE"}}), 1.0);
  // Per-session gauges carry the session label.
  EXPECT_GT(validator.Value("taco_session_cells", {{"session", "wb"}}), 0.0);
  EXPECT_GT(validator.Value("taco_session_graph_edges", {{"session", "wb"}}),
            0.0);
  EXPECT_GE(validator.Value("taco_session_version_chain_depth",
                            {{"session", "wb"}}),
            1.0);
  // Observability-loss counters render even with no logger configured
  // (zeros), so dashboards never lose the series.
  EXPECT_EQ(validator.Value("taco_log_events_total", {}), 0.0);
  EXPECT_EQ(validator.Value("taco_log_dropped_total", {}), 0.0);
  EXPECT_GE(validator.Value("taco_trace_spans_overwritten_total", {}), 0.0);
  // Process introspection gauges (Linux: all real; elsewhere -1/0, but
  // the series always exist).
  EXPECT_TRUE(validator.Has("taco_process_resident_memory_bytes", {}));
  EXPECT_TRUE(validator.Has("taco_process_open_fds", {}));
  EXPECT_TRUE(validator.Has("taco_process_threads", {}));
  EXPECT_TRUE(validator.Has("taco_process_uptime_seconds", {}));
#ifdef __linux__
  EXPECT_GT(validator.Value("taco_process_resident_memory_bytes", {}), 0.0);
  EXPECT_GT(validator.Value("taco_process_open_fds", {}), 0.0);
  EXPECT_GT(validator.Value("taco_process_threads", {}), 0.0);
#endif
}

TEST_F(ObservabilityTest, ExpositionLayoutIsConstantAcrossLoad) {
  // Same series set before and after traffic: only values change. This
  // is what makes dashboards stable and the conformance transcript
  // scrubbable.
  auto series_names = [](const std::string& text) {
    PromValidator v;
    EXPECT_TRUE(v.Validate(text)) << v.error();
    std::set<std::string> names;
    for (const PromSeries& s : v.series()) {
      // Per-session gauges are the one load-dependent axis (a series per
      // live session); everything else must be layout-stable.
      if (s.labels.count("session")) continue;
      std::string key = s.name;
      for (const auto& [k, val] : s.labels) key += "|" + k + "=" + val;
      names.insert(key);
    }
    return names;
  };
  std::set<std::string> cold = series_names(RenderServiceExposition(service_));
  DriveTraffic();
  std::set<std::string> warm = series_names(RenderServiceExposition(service_));
  EXPECT_EQ(cold, warm);
}

TEST_F(ObservabilityTest, MetricsVerbServesTheSameExposition) {
  DriveTraffic();
  std::string response = Exec("METRICS");
  ASSERT_TRUE(response.starts_with("OK metrics\n")) << response;
  ASSERT_TRUE(response.ends_with("\nEND")) << response.substr(
      response.size() > 40 ? response.size() - 40 : 0);
  EXPECT_TRUE(CommandProcessor::ResponseContinues("OK metrics"));
  std::string body = response.substr(strlen("OK metrics\n"));
  body.resize(body.size() - strlen("END"));
  PromValidator validator;
  EXPECT_TRUE(validator.Validate(body)) << validator.error();
  // The verb itself meters — a second call sees the first's sample.
  EXPECT_GT(validator.Value("taco_ops_total", {{"op", "SET"}}), 0.0);
  std::string again = Exec("METRICS");
  PromValidator v2;
  std::string body2 = again.substr(strlen("OK metrics\n"));
  body2.resize(body2.size() - strlen("END"));
  ASSERT_TRUE(v2.Validate(body2)) << v2.error();
  EXPECT_GE(v2.Value("taco_ops_total", {{"op", "METRICS"}}), 1.0);
}

TEST_F(ObservabilityTest, TraceVerbDumpsSpansNewestFirst) {
  Exec("OPEN wb");
  Exec("SET wb A1 1");
  Exec("FORMULA wb B1 A1*2");
  Exec("SET wb A1 5");

  std::string all = Exec("TRACE");
  ASSERT_TRUE(all.starts_with("OK trace spans=3 recorded=3 capacity="))
      << all;
  ASSERT_TRUE(all.ends_with("\nEND"));
  EXPECT_TRUE(CommandProcessor::ResponseContinues("OK trace"));
  // Newest first: the second SET leads, the first SET is last.
  size_t first_span = all.find("\nspan ");
  ASSERT_NE(first_span, std::string::npos);
  std::string first_line =
      all.substr(first_span + 1, all.find('\n', first_span + 1) - first_span - 1);
  EXPECT_NE(first_line.find("seq=3"), std::string::npos) << first_line;
  EXPECT_NE(first_line.find("op=SET"), std::string::npos) << first_line;
  EXPECT_NE(all.find("op=FORMULA"), std::string::npos);
  // Every span carries the correlation id and the phase fields.
  for (const char* field : {"rid=", "total_us=", "lock_us=", "find_us=",
                            "eval_us=", "publish_us=", "fsync_us=",
                            "respond_us=", "dirty=", "waves="}) {
    EXPECT_NE(all.find(field), std::string::npos) << field;
  }
  // Commands run through the processor, so every span's rid is real
  // (nonzero) — the TRACE dump must not show rid=0 anywhere.
  EXPECT_EQ(all.find("rid=0 "), std::string::npos) << all;
  // Detail names the edited cell.
  EXPECT_NE(all.find("detail=A1"), std::string::npos) << all;

  std::string two = Exec("TRACE 2");
  EXPECT_TRUE(two.starts_with("OK trace spans=2 recorded=3")) << two;

  // Reads never trace: the lock-free path records no spans.
  Exec("GET wb B1");
  EXPECT_TRUE(Exec("TRACE 0").starts_with("OK trace spans=3 recorded=3"));

  EXPECT_TRUE(Exec("TRACE -1").starts_with("ERR"));
  EXPECT_TRUE(Exec("TRACE abc").starts_with("ERR"));
}

TEST_F(ObservabilityTest, BatchSpanAggregatesItsEdits) {
  Exec("OPEN wb");
  Exec("BATCH wb 3\nSET A1 1\nSET A2 2\nFORMULA A3 A1+A2");
  std::string trace = Exec("TRACE 1");
  EXPECT_NE(trace.find("op=BATCH"), std::string::npos) << trace;
  EXPECT_NE(trace.find("detail=edits=3"), std::string::npos) << trace;
}

// ---------------------------------------------------------------------
// End-to-end request correlation: one failing, threshold-slow mutation
// must leave a trace span, a structured log event, and an annotated ERR
// response that all carry the SAME rid — that join is the whole point
// of the correlation id.

TEST(RequestCorrelationTest, SpanLogAndErrorResponseShareOneRid) {
  std::string log_path =
      testing::TempDir() + "/rid_correlation_events.log";
  std::remove(log_path.c_str());
  obs::Logger::Options log_options;
  log_options.level = obs::LogLevel::kDebug;
  log_options.path = log_path;
  auto logger = obs::Logger::Open(log_options);
  ASSERT_NE(logger, nullptr);

  WorkbookServiceOptions options;
  options.logger = logger.get();
  options.annotate_errors_with_rid = true;
  options.slow_op_ms = 0.000001;  // 1ns threshold: every mutation is slow.
  WorkbookService service(options);
  CommandProcessor processor(&service);

  ASSERT_TRUE(processor.Execute("OPEN wb").starts_with("OK"));
  // A failing mutation: the parse error surfaces inside the session,
  // after the span started, so all three records exist for one rid.
  std::string err = processor.Execute("FORMULA wb B1 SUM(");
  ASSERT_TRUE(err.starts_with("ERR")) << err;
  size_t rid_pos = err.rfind(" rid=");
  ASSERT_NE(rid_pos, std::string::npos) << err;
  uint64_t rid = std::stoull(err.substr(rid_pos + 5));
  EXPECT_GT(rid, 0u);

  // The span for that command carries the same rid, and records the
  // failure (ok=0) rather than dropping the sample.
  std::string trace = processor.Execute("TRACE 1");
  size_t span_rid = trace.find("rid=");
  ASSERT_NE(span_rid, std::string::npos) << trace;
  EXPECT_EQ(std::stoull(trace.substr(span_rid + 4)), rid) << trace;
  EXPECT_NE(trace.find("op=FORMULA"), std::string::npos) << trace;
  EXPECT_NE(trace.find("ok=0"), std::string::npos) << trace;

  // The op.slow log event — flushed to the sink — carries it too.
  logger->Flush();
  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::string line, slow_line;
  while (std::getline(in, line)) {
    if (line.find("\"event\":\"op.slow\"") != std::string::npos &&
        line.find("FORMULA") != std::string::npos) {
      slow_line = line;
    }
  }
  ASSERT_FALSE(slow_line.empty());
  size_t log_rid = slow_line.find("\"rid\":");
  ASSERT_NE(log_rid, std::string::npos) << slow_line;
  EXPECT_EQ(std::stoull(slow_line.substr(log_rid + 6)), rid) << slow_line;
  EXPECT_NE(slow_line.find("\"ok\":false"), std::string::npos) << slow_line;

  // Correlation ids are per-command: a second command gets a fresh one.
  std::string err2 = processor.Execute("FORMULA wb B1 SUM(");
  size_t rid2_pos = err2.rfind(" rid=");
  ASSERT_NE(rid2_pos, std::string::npos);
  EXPECT_GT(std::stoull(err2.substr(rid2_pos + 5)), rid);

  // Successful responses stay clean — the annotation is error-only.
  EXPECT_EQ(processor.Execute("SET wb A1 1").find(" rid="),
            std::string::npos);

  // The loss counters surface on STATS and the exposition.
  std::string stats = processor.Execute("STATS");
  EXPECT_NE(stats.find("observability log_events="), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("trace_overwritten="), std::string::npos);
  PromValidator validator;
  std::string text = RenderServiceExposition(service);
  ASSERT_TRUE(validator.Validate(text)) << validator.error();
  EXPECT_GT(validator.Value("taco_log_events_total", {}), 0.0);
  EXPECT_GE(validator.Value("taco_log_dropped_total", {}), 0.0);
}

TEST(RequestCorrelationTest, ErrAnnotationIsOffByDefault) {
  WorkbookService service;
  CommandProcessor processor(&service);
  std::string err = processor.Execute("GET nosuch A1");
  ASSERT_TRUE(err.starts_with("ERR")) << err;
  // The wire format must not change unless the operator opted in.
  EXPECT_EQ(err.find(" rid="), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// HTTP /metrics listener mode.

class MetricsHttpTest : public ::testing::Test {
 protected:
  /// The same route table taco_serve installs: /metrics, /healthz, and
  /// /readyz (503 while `draining_` — the drain-window contract an
  /// orchestrator's readiness probe relies on).
  void StartHttp() {
    SocketServerOptions options;
    options.http_handler = [this](std::string_view path) -> HttpReply {
      HttpReply reply;
      if (path == "/metrics") {
        reply.body = RenderServiceExposition(service_);
      } else if (path == "/healthz") {
        reply.content_type = "text/plain; charset=utf-8";
        reply.body = "ok\n";
      } else if (path == "/readyz") {
        reply.content_type = "text/plain; charset=utf-8";
        if (draining_.load()) {
          reply.status = 503;
          reply.body = "draining\n";
        } else {
          reply.body = "ready\n";
        }
      } else {
        reply.status = 404;
        reply.body = "try /metrics, /healthz, or /readyz\n";
      }
      return reply;
    };
    server_ = std::make_unique<SocketServer>(&service_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// One raw HTTP exchange; returns status line, headers, body.
  struct HttpResponse {
    std::string status_line;
    std::map<std::string, std::string> headers;
    std::string body;
  };

  HttpResponse Request(const std::string& head) {
    HttpResponse response;
    SocketClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    EXPECT_TRUE(client.WriteRaw(head).ok());
    auto status_line = client.ReadLine();
    EXPECT_TRUE(status_line.ok());
    response.status_line = status_line.value_or("");
    while (true) {
      auto line = client.ReadLine();
      if (!line.ok() || line->empty()) break;
      size_t colon = line->find(": ");
      if (colon != std::string::npos) {
        response.headers[line->substr(0, colon)] = line->substr(colon + 2);
      }
    }
    // Body: read to EOF (the server closes after one response).
    while (true) {
      auto line = client.ReadLine();
      if (!line.ok()) break;
      response.body += *line + "\n";
    }
    return response;
  }

  WorkbookService service_;
  std::unique_ptr<SocketServer> server_;
  std::atomic<bool> draining_{false};
};

TEST_F(MetricsHttpTest, GetMetricsReturnsParseableExposition) {
  // Load the service first so the scrape carries real numbers.
  CommandProcessor processor(&service_);
  processor.Execute("OPEN wb");
  for (int i = 1; i <= 10; ++i) {
    processor.Execute("SET wb A" + std::to_string(i) + " 1");
  }
  processor.Execute("FORMULA wb B1 SUM(A1:A10)");
  processor.Execute("GET wb B1");
  StartHttp();

  HttpResponse response = Request("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(response.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(response.headers["Content-Type"],
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(response.headers["Connection"], "close");
  ASSERT_FALSE(response.body.empty());
  EXPECT_EQ(std::stoul(response.headers["Content-Length"]),
            response.body.size());
  PromValidator validator;
  EXPECT_TRUE(validator.Validate(response.body)) << validator.error();
  EXPECT_GT(validator.Value("taco_ops_total", {{"op", "SET"}}), 0.0);
  EXPECT_TRUE(validator.Has("taco_op_latency_quantile_seconds",
                            {{"op", "GET"}, {"quantile", "0.99"}}));

  // The scrape itself was metered as a METRICS op.
  HttpResponse second = Request("GET /metrics HTTP/1.1\r\n\r\n");
  PromValidator v2;
  ASSERT_TRUE(v2.Validate(second.body)) << v2.error();
  EXPECT_GE(v2.Value("taco_ops_total", {{"op", "METRICS"}}), 1.0);
}

TEST_F(MetricsHttpTest, NonMetricsTargetsGet404And405) {
  StartHttp();
  EXPECT_EQ(Request("GET /other HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 404 Not Found");
  EXPECT_EQ(Request("POST /metrics HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 405 Method Not Allowed");
  // A query string still routes to the exposition.
  EXPECT_EQ(Request("GET /metrics?format=text HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 200 OK");
}

TEST_F(MetricsHttpTest, EveryResponseAnnouncesConnectionClose) {
  StartHttp();
  // Single-shot serving is a contract, not an accident: every status —
  // success, 404, 405 — must tell the client the connection is done.
  for (const char* head :
       {"GET /metrics HTTP/1.1\r\n\r\n", "GET /nope HTTP/1.1\r\n\r\n",
        "POST /metrics HTTP/1.1\r\n\r\n", "GET /healthz HTTP/1.1\r\n\r\n"}) {
    HttpResponse response = Request(head);
    EXPECT_EQ(response.headers["Connection"], "close") << head;
    EXPECT_EQ(std::stoul(response.headers["Content-Length"]),
              response.body.size())
        << head;
  }
}

TEST_F(MetricsHttpTest, HealthzAnswersWhileReadyzTracksDraining) {
  StartHttp();
  HttpResponse health = Request("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(health.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(health.body, "ok\n");
  HttpResponse ready = Request("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(ready.status_line, "HTTP/1.1 200 OK");
  EXPECT_EQ(ready.body, "ready\n");

  // Drain flips readiness — and ONLY readiness: liveness and scrapes
  // keep answering so the drain window itself stays observable.
  draining_.store(true);
  EXPECT_EQ(Request("GET /readyz HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 503 Service Unavailable");
  EXPECT_EQ(Request("GET /readyz HTTP/1.1\r\n\r\n").body, "draining\n");
  EXPECT_EQ(Request("GET /healthz HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 200 OK");
  EXPECT_EQ(Request("GET /metrics HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 200 OK");

  draining_.store(false);
  EXPECT_EQ(Request("GET /readyz HTTP/1.1\r\n\r\n").body, "ready\n");

  // Probes with query strings route like their bare paths.
  EXPECT_EQ(Request("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n").status_line,
            "HTTP/1.1 200 OK");
}

// ---------------------------------------------------------------------
// Concurrency: scraping must never race the lock-free recorders. Run
// under TSan in CI.

TEST(ObservabilityConcurrencyTest, ScrapeWhileHammering) {
  // A (deliberately tiny) logger rides along so the lock-free emit path
  // and its drop counter run under TSan against the scrapers.
  std::string log_path = testing::TempDir() + "/hammer_events.log";
  std::remove(log_path.c_str());
  obs::Logger::Options log_options;
  log_options.level = obs::LogLevel::kDebug;
  log_options.path = log_path;
  log_options.queue_slots = 64;
  auto logger = obs::Logger::Open(log_options);
  ASSERT_NE(logger, nullptr);

  WorkbookServiceOptions service_options;
  service_options.logger = logger.get();
  WorkbookService service(service_options);
  CommandProcessor processor(&service);
  processor.Execute("OPEN wb");
  processor.Execute("FORMULA wb B1 SUM(A1:A50)");

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Two mutator threads (distinct sessions to avoid pure lock convoy),
  // two reader threads, one scraper, one tracer.
  processor.Execute("OPEN wb2");
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::string session = t == 0 ? "wb" : "wb2";
      CommandProcessor local(&service);
      int i = 0;
      while (!stop.load()) {
        local.Execute("SET " + session + " A" + std::to_string(i % 50 + 1) +
                      " " + std::to_string(i));
        ++i;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      CommandProcessor local(&service);
      while (!stop.load()) {
        local.Execute("GET wb A1");
        local.Execute("GETRANGE wb A1:A8");
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      std::string text = RenderServiceExposition(service);
      PromValidator v;
      ASSERT_TRUE(v.Validate(text)) << v.error();
    }
  });
  threads.emplace_back([&] {
    CommandProcessor local(&service);
    while (!stop.load()) {
      local.Execute("TRACE 8");
      local.Execute("STATS");
    }
  });
  // An EXPLAIN thread: the dry-run planner reads the graph under the
  // session lock while the mutators rewrite it.
  threads.emplace_back([&] {
    CommandProcessor local(&service);
    while (!stop.load()) {
      std::string response = local.Execute("EXPLAIN wb A1");
      EXPECT_EQ(response.rfind("OK explain", 0), 0u) << response;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& t : threads) t.join();

  // Final scrape still valid and the counters moved.
  PromValidator validator;
  std::string text = RenderServiceExposition(service);
  ASSERT_TRUE(validator.Validate(text)) << validator.error();
  EXPECT_GT(validator.Value("taco_ops_total", {{"op", "SET"}}), 0.0);
  EXPECT_GT(validator.Value("taco_ops_total", {{"op", "GET"}}), 0.0);
  EXPECT_GT(validator.Value("taco_ops_total", {{"op", "EXPLAIN"}}), 0.0);
  // The logger took traffic; accepted + dropped accounts for every
  // emit attempt (the tiny queue makes drops likely, and that's fine —
  // drops must be COUNTED, never blocking).
  EXPECT_GT(logger->events_logged(), 0u);
  EXPECT_EQ(validator.Value("taco_log_events_total", {}),
            static_cast<double>(logger->events_logged()));
  logger->Flush();
}

}  // namespace
}  // namespace taco
