// Protocol conformance: the socket transport must be invisible.
//
// Table-driven transcripts covering every protocol verb (OPEN LOAD SAVE
// CLOSE SET FORMULA GET GETRANGE CLEAR BATCH RECALC EXPLAIN STATS
// METRICS TRACE LIST) plus malformed
// traffic are replayed twice — through an in-process CommandProcessor
// (the stdin path of taco_serve) and through a real TCP connection —
// each against its own fresh service, and every response must come back
// byte-identical. The only tolerated difference is wall-clock noise:
// latency fields (find_ms, the STATS ms columns) and the STATS
// connection-counter line (a transport necessarily counts itself) are
// scrubbed before comparison; every other byte must match.
//
// The soak test then drives randomized protocol scripts
// (WorkloadGenerator's protocol-script mode) through a serial-oracle
// WorkbookSession and through the socket, asserting cell-for-cell
// equality over the whole sheet region. Scale with TACO_FUZZ_TRIALS.

#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "graph_test_util.h"
#include "net/socket_client.h"
#include "net/socket_server.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

namespace taco {
namespace {

/// One scripted conversation. Commands are complete (BATCH bodies
/// included); `truncate_tail` cuts the final command's frame short on
/// the wire (half-close mid-BATCH) to exercise the EOF path, and
/// `closes_stream` marks transcripts whose last command poisons the
/// stream (unframeable BATCH header) so the socket side can assert the
/// hangup.
struct Transcript {
  std::string name;
  std::vector<std::string> commands;
  bool truncate_tail = false;
  bool closes_stream = false;
};

/// Strips what may legitimately differ between two executions: latency
/// floats and the connection-counter line of the service STATS report.
/// VALUE lines pass through verbatim — cell values must be bit-equal.
///
/// METRICS and TRACE responses additionally scrub EVERY number: their
/// values are measurements (latency buckets, transport counters, span
/// timings) that necessarily differ across transports, while their
/// LAYOUT — the family/series/label structure and the span line fields
/// — is the contract and must match byte for byte.
std::string Scrub(const std::string& response) {
  static const std::regex kFloat("-?[0-9]+\\.[0-9]+");
  static const std::regex kConnections("connections [^\n]*");
  static const std::regex kNumber(
      "-?[0-9]+(\\.[0-9]+)?([eE][+-]?[0-9]+)?");
  bool scrub_all = response.starts_with("OK metrics") ||
                   response.starts_with("OK trace") ||
                   response.starts_with("OK explain");
  std::string out;
  size_t begin = 0;
  while (begin <= response.size()) {
    size_t end = response.find('\n', begin);
    std::string line = response.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin);
    if (scrub_all) {
      line = std::regex_replace(line, kNumber, "#");
    } else if (!line.starts_with("VALUE")) {
      line = std::regex_replace(line, kConnections, "connections #");
      line = std::regex_replace(line, kFloat, "#");
    }
    out += line;
    if (end == std::string::npos) break;
    out += '\n';
    begin = end + 1;
  }
  return out;
}

/// The stdin reference: direct CommandProcessor::Execute against a fresh
/// service — exactly what taco_serve's stdin loop dispatches.
std::vector<std::string> RunOverStdin(const Transcript& transcript) {
  WorkbookService service;
  CommandProcessor processor(&service);
  std::vector<std::string> responses;
  for (const std::string& command : transcript.commands) {
    responses.push_back(processor.Execute(command));
  }
  return responses;
}

std::vector<std::string> RunOverSocket(const Transcript& transcript) {
  WorkbookService service;
  SocketServer server(&service);
  EXPECT_TRUE(server.Start().ok());
  SocketClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  std::vector<std::string> responses;
  for (size_t i = 0; i < transcript.commands.size(); ++i) {
    const std::string& command = transcript.commands[i];
    bool last = i + 1 == transcript.commands.size();
    if (last && transcript.truncate_tail) {
      EXPECT_TRUE(client.SendCommand(command).ok());
      client.FinishWrites();
    } else {
      EXPECT_TRUE(client.SendCommand(command).ok());
    }
    auto response = client.ReadResponse();
    EXPECT_TRUE(response.ok())
        << transcript.name << " command " << i << ": "
        << response.status().ToString();
    if (!response.ok()) break;
    responses.push_back(*response);
  }
  if (transcript.closes_stream || transcript.truncate_tail) {
    EXPECT_EQ(client.ReadLine().status().code(), StatusCode::kUnavailable)
        << transcript.name << ": stream should have closed";
  }
  server.Shutdown();
  return responses;
}

void ExpectConformance(const Transcript& transcript) {
  SCOPED_TRACE(transcript.name);
  std::vector<std::string> stdin_responses = RunOverStdin(transcript);
  std::vector<std::string> socket_responses = RunOverSocket(transcript);
  ASSERT_EQ(stdin_responses.size(), socket_responses.size());
  for (size_t i = 0; i < stdin_responses.size(); ++i) {
    EXPECT_EQ(Scrub(stdin_responses[i]), Scrub(socket_responses[i]))
        << "command " << i << ": " << transcript.commands[i];
  }
}

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("taco_conformance_" + tag + "." + std::to_string(::getpid()) +
           ".tsheet"))
      .string();
}

TEST(ProtocolConformanceTest, EditReadVerbs) {
  ExpectConformance(
      {.name = "edit-read",
       .commands = {
           "OPEN wb",
           "OPEN wb2 nocomp",
           "LIST",
           "SET wb A1 100",
           "SET wb A2 -3",
           "SET wb A3 quarterly",
           "SET wb A4 \"spaced text\"",
           "FORMULA wb B1 SUM(A1:A2)*2",
           "FORMULA wb B2 =B1+1",
           "GET wb A3",
           "GET wb B1",
           "GET wb B2",
           "GET wb Z99",
           "CLEAR wb A1:A2",
           "GET wb B1",
           "RECALC wb",
           "STATS wb",
           "CLOSE wb2",
           "LIST",
       }});
}

TEST(ProtocolConformanceTest, GetRangeVerb) {
  // The one multi-line data response: both transports must frame the
  // header + VALUE lines + terminator identically, including the
  // version=0 never-published form, the all-blank form (header + END
  // only), and every error shape.
  ExpectConformance(
      {.name = "getrange",
       .commands = {
           "OPEN wb",
           "GETRANGE wb A1:B2",  // Never published: version=0, no rows.
           "SET wb A1 1",
           "SET wb A3 2.5",
           "FORMULA wb B2 A1*4",
           "GETRANGE wb A1:B3",  // Values in column-major order.
           "GETRANGE wb A1",     // Single-cell range.
           "GETRANGE wb D8:E9",  // All blank: header + END only.
           "GETRANGE wb",        // Usage error.
           "GETRANGE nosuch A1:B2",
           "GETRANGE wb A1:D20000",  // Over the area cap.
           "STATS wb",
       }});
}

TEST(ProtocolConformanceTest, PipelinedReadsComeBackInOrderAndFramed) {
  // A client may write a burst of commands before reading anything.
  // Responses must come back in submission order with the multi-line
  // GETRANGE frames intact — a framing bug would misattribute the
  // VALUE lines of one response to the next command's reply.
  WorkbookService service;
  SocketServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  SocketClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (const char* setup : {"OPEN wb", "SET wb A1 5", "FORMULA wb B1 A1*2"}) {
    auto response = client.Call(setup);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  const std::vector<std::string> burst = {
      "GET wb A1", "GETRANGE wb A1:B1", "GET wb B1",
      "GETRANGE wb A9:B9", "GET wb Z1"};
  for (const std::string& command : burst) {
    ASSERT_TRUE(client.SendCommand(command).ok());
  }
  const std::vector<std::string> expected = {
      "VALUE A1 5",
      "OK range A1:B1 version=2 cells=2\nVALUE A1 5\nVALUE B1 10\nEND",
      "VALUE B1 10",
      "OK range A9:B9 version=2 cells=0\nEND",
      "VALUE Z1 ",
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok())
        << "response " << i << ": " << response.status().ToString();
    EXPECT_EQ(*response, expected[i]) << "response " << i;
  }
  server.Shutdown();
}

TEST(ProtocolConformanceTest, BatchVerb) {
  ExpectConformance(
      {.name = "batch",
       .commands = {
           "OPEN wb",
           "BATCH wb 4\nSET A1 10\nSET A2 20\nFORMULA B1 SUM(A1:A2)\n"
           "SET C1 \"note\"",
           "GET wb B1",
           "BATCH wb 0",
           "BATCH wb 2\nSET A1 1\nFORMULA B9 NOSUCHFN(((",  // Bad edit.
           "GET wb A1",  // The failed batch applied nothing.
           "BATCH wb 1\nCLEAR A1:C9",
           "GET wb B1",
           "STATS wb",
       }});
}

TEST(ProtocolConformanceTest, PersistenceVerbs) {
  std::string path = TempPath("persist");
  std::string path2 = TempPath("persist2");
  ExpectConformance(
      {.name = "persistence",
       .commands = {
           "OPEN wb",
           "SET wb A1 7",
           "FORMULA wb B1 A1*6",
           "SAVE wb " + path,
           "SAVE wb",  // Bound path from the save above.
           "CLOSE wb",
           "LOAD back " + path,
           "GET back B1",
           "STATS back",
           "SAVE back " + path2,
           "LOAD dup " + path2 + " nocomp",
           "GET dup B1",
           "LOAD back " + path,  // AlreadyExists.
           "CLOSE back",
           "CLOSE back",  // NotFound the second time.
       }});
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(ProtocolConformanceTest, MalformedTraffic) {
  ExpectConformance(
      {.name = "malformed",
       .commands = {
           "",              // Empty line.
           "   \t ",        // Whitespace only.
           "# a comment",
           "FROBNICATE x",  // Unknown verb.
           "OPEN",          // Usage.
           "OPEN wb sparkly-backend",
           "OPEN wb",
           "GET nosuch A1",          // Bad session.
           "GET wb NOTACELL",        // Bad cell.
           "SET wb A1",              // Missing value.
           "FORMULA wb B1",          // Missing source.
           "FORMULA wb B1 SUM((((",  // Parse error.
           "CLEAR wb 99",            // Bad range.
           "RECALC wb warp-speed",
           "RECALC wb parallel",  // No recalc pool configured.
           "SET wb A1 5",  // Still serving after all of the above.
           "GET wb A1",
       }});
}

TEST(ProtocolConformanceTest, ServiceStatsReport) {
  ExpectConformance(
      {.name = "service-stats",
       .commands = {
           "OPEN wb",
           "SET wb A1 1",
           "FORMULA wb B1 A1+1",
           "GET wb B1",
           "STATS",  // Multi-line report, END-terminated.
           "STATS nosuch",
       }});
}

TEST(ProtocolConformanceTest, ObservabilityVerbs) {
  // METRICS and TRACE must render the same structure over both
  // transports: same families, same series in the same order, same span
  // lines — only the measured numbers (scrubbed) may differ. This is
  // what makes the exposition layout a stable contract rather than a
  // load-dependent accident.
  ExpectConformance(
      {.name = "observability",
       .commands = {
           "OPEN wb",
           "SET wb A1 1",
           "FORMULA wb B1 A1*2",
           "GET wb B1",
           "METRICS",
           "TRACE",     // Both spans (SET, FORMULA), newest first.
           "TRACE 1",   // Just the FORMULA span.
           "TRACE 0",   // Explicit "everything held".
           "TRACE -2",  // Usage error.
           "TRACE six", // Usage error.
           "METRICS",   // The first METRICS/TRACE calls are now counted.
       }});
}

TEST(ProtocolConformanceTest, ExplainVerb) {
  // EXPLAIN is a read-only dry run, so its PLAN/WAVE/EST structure must
  // be transport-independent like METRICS/TRACE: same lines in the same
  // order, with only the measured numbers (find_us, estimates) scrubbed.
  // The commands AFTER each EXPLAIN prove it committed nothing.
  ExpectConformance(
      {.name = "explain",
       .commands = {
           "OPEN wb",
           "SET wb A1 10",
           "FORMULA wb B1 A1*2",
           "FORMULA wb B2 B1+1",
           "FORMULA wb B3 SUM(B1:B2)",
           "EXPLAIN wb A1",      // Chain: B1 -> B2 -> B3.
           "GET wb B3",          // Unchanged by the dry run.
           "EXPLAIN wb A1:B3",   // Range target.
           "EXPLAIN wb Z99",     // No dependents: empty plan.
           "STATS wb",           // Same session stats on both transports.
           "EXPLAIN wb",         // Usage error.
           "EXPLAIN nosuch A1",  // Bad session.
           "EXPLAIN wb NOTACELL",
           "GET wb B3",
       }});
}

TEST(ProtocolConformanceTest, TruncatedBatchAtEof) {
  // The stream ends inside a BATCH body; both transports execute the
  // partial frame (stdin: getline fails, socket: EOF) identically.
  ExpectConformance({.name = "truncated-batch",
                     .commands = {"OPEN wb",
                                  "SET wb A1 3",
                                  "BATCH wb 3\nSET A1 5\nSET A2 6"},
                     .truncate_tail = true});
}

TEST(ProtocolConformanceTest, UnframeableBatchHeaderPoisonsTheStream) {
  // A BATCH count that cannot be framed: both transports report the
  // error and refuse to interpret anything after it (taco_serve's stdin
  // loop stops; the socket server closes the connection).
  ExpectConformance({.name = "unframeable-batch",
                     .commands = {"OPEN wb", "BATCH wb 9999999"},
                     .closes_stream = true});
  ExpectConformance({.name = "unframeable-batch-nan",
                     .commands = {"OPEN wb", "BATCH wb seven"},
                     .closes_stream = true});
  // A missing or negative count is just as unframeable as a huge one.
  ExpectConformance({.name = "unframeable-batch-missing",
                     .commands = {"OPEN wb", "BATCH wb"},
                     .closes_stream = true});
  ExpectConformance({.name = "unframeable-batch-negative",
                     .commands = {"OPEN wb", "BATCH wb -1"},
                     .closes_stream = true});
}

// --- Randomized protocol soak ---------------------------------------

TEST(ProtocolSoakTest, RandomScriptsMatchSerialOracleCellForCell) {
  constexpr int kStepsPerScript = 60;
  constexpr int kMaxCol = 8;
  constexpr int kMaxRow = 30;
  const int trials = test::FuzzTrials(6);

  for (int trial = 0; trial < trials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));

    // The serial oracle: a bare WorkbookSession driven through the
    // session API — no protocol, no transport, no threads.
    auto graph = MakeGraphBackend("taco");
    ASSERT_TRUE(graph.ok());
    WorkbookSession oracle("oracle", Sheet(), std::move(*graph));

    // The system under test: the same script as wire traffic.
    WorkbookService service;
    SocketServer server(&service);
    ASSERT_TRUE(server.Start().ok());
    SocketClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(client.Call("OPEN wb taco")->starts_with("OK opened"));

    test::WorkloadGenerator gen(0x50AC + trial, kMaxCol, kMaxRow);
    for (int i = 0; i < kStepsPerScript; ++i) {
      auto step = gen.NextProtocolStep("wb");
      auto response = client.Call(step.command);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response->starts_with("OK") ||
                  response->starts_with("VALUE"))
          << step.command << " -> " << *response;
      for (const Edit& edit : step.edits) {
        switch (edit.kind) {
          case Edit::Kind::kSetNumber:
            ASSERT_TRUE(oracle.SetNumber(edit.cell, edit.number).ok());
            break;
          case Edit::Kind::kSetText:
            ASSERT_TRUE(oracle.SetText(edit.cell, edit.text).ok());
            break;
          case Edit::Kind::kSetFormula:
            ASSERT_TRUE(oracle.SetFormula(edit.cell, edit.text).ok());
            break;
          case Edit::Kind::kClearRange:
            ASSERT_TRUE(oracle.ClearRange(edit.range).ok());
            break;
        }
      }
    }

    // Cell-for-cell equality across the whole region, via the wire.
    for (int col = 1; col <= kMaxCol; ++col) {
      for (int row = 1; row <= kMaxRow; ++row) {
        Cell cell{col, row};
        std::string expected =
            "VALUE " + cell.ToString() + " " + oracle.GetValue(cell).ToString();
        auto actual = client.Call("GET wb " + cell.ToString());
        ASSERT_TRUE(actual.ok());
        EXPECT_EQ(*actual, expected) << cell.ToString();
      }
    }
    server.Shutdown();
  }
}

}  // namespace
}  // namespace taco
