// Multi-threaded service stress test with a serial oracle.
//
// Eight sessions, four writer threads (each owning two sessions so every
// session's command order is deterministic), plus reader threads firing
// cross-session GETs — mixed SET/FORMULA/BATCH/CLEAR/GET traffic through
// the text protocol. The oracle is a second, single-threaded service
// replaying the identical per-session command streams; every session must
// match it response-for-response (timing fields stripped) and
// cell-for-cell, and every BATCH must report exactly one recalc pass.
//
// Run under ThreadSanitizer in CI (cmake -DTACO_TSAN=ON); any lock-order
// or data-race bug in the service layer shows up here.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/a1.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

namespace taco {
namespace {

constexpr int kSessions = 8;
constexpr int kWriterThreads = 4;
constexpr int kReaderThreads = 2;
constexpr int kCommandsPerSession = 60;
constexpr int kMaxCol = 6;
constexpr int kMaxRow = 24;

std::string CellName(int col, int row) {
  return ColumnToLetters(col) + std::to_string(row);
}

/// One deterministic edit line (no session name), as used inside BATCH.
/// Formulas only reference rows strictly above their own, keeping every
/// sheet a DAG so evaluation results are order-independent.
std::string RandomEditLine(std::mt19937* rng) {
  std::uniform_int_distribution<int> col(1, kMaxCol);
  std::uniform_int_distribution<int> pick(0, 9);
  int kind = pick(*rng);
  if (kind < 5) {  // SET number
    std::uniform_int_distribution<int> row(1, kMaxRow);
    std::uniform_int_distribution<int> value(-1000, 1000);
    return "SET " + CellName(col(*rng), row(*rng)) + " " +
           std::to_string(value(*rng));
  }
  if (kind < 8) {  // FORMULA over a band above the formula row
    std::uniform_int_distribution<int> row(2, kMaxRow);
    int r = row(*rng);
    std::uniform_int_distribution<int> prec_row(1, r - 1);
    int r1 = prec_row(*rng);
    int r2 = std::min(r - 1, r1 + 2);
    int c1 = col(*rng);
    int c2 = std::min(kMaxCol, c1 + 1);
    return "FORMULA " + CellName(col(*rng), r) + " SUM(" + CellName(c1, r1) +
           ":" + CellName(c2, r2) + ")+" + std::to_string(r);
  }
  // CLEAR a thin band.
  std::uniform_int_distribution<int> row(1, kMaxRow);
  int r1 = row(*rng);
  int r2 = std::min(kMaxRow, r1 + 1);
  int c1 = col(*rng);
  return "CLEAR " + CellName(c1, r1) + ":" + CellName(c1, r2);
}

/// The deterministic protocol command stream for one session.
std::vector<std::string> SessionCommands(int session_index) {
  std::mt19937 rng(0xC0FFEE + session_index);
  std::string name = "wb" + std::to_string(session_index);
  std::vector<std::string> commands;
  // Alternate graph backends across sessions: the service must serve
  // compressed and uncompressed graphs side by side.
  commands.push_back("OPEN " + name +
                     (session_index % 2 == 0 ? " taco" : " nocomp"));
  std::uniform_int_distribution<int> pick(0, 9);
  for (int i = 0; i < kCommandsPerSession; ++i) {
    int kind = pick(rng);
    if (kind < 2) {  // In-stream GET: deterministic, oracle-checkable.
      std::uniform_int_distribution<int> col(1, kMaxCol);
      std::uniform_int_distribution<int> row(1, kMaxRow);
      commands.push_back("GET " + name + " " + CellName(col(rng), row(rng)));
    } else if (kind < 5) {  // BATCH of 2..6 edits, one merged recalc.
      std::uniform_int_distribution<int> size(2, 6);
      int n = size(rng);
      std::string command = "BATCH " + name + " " + std::to_string(n);
      for (int e = 0; e < n; ++e) command += "\n" + RandomEditLine(&rng);
      commands.push_back(std::move(command));
    } else {  // Single edit through the session-addressed form.
      std::string edit = RandomEditLine(&rng);
      size_t space = edit.find(' ');
      commands.push_back(edit.substr(0, space) + " " + name +
                         edit.substr(space));
    }
  }
  return commands;
}

/// Strips the volatile timing suffix ("... find_ms=0.123") so responses
/// compare deterministically.
std::string Normalize(const std::string& response) {
  size_t pos = response.find(" find_ms=");
  return pos == std::string::npos ? response : response.substr(0, pos);
}

bool IsMutating(const std::string& command) {
  return command.starts_with("SET") || command.starts_with("FORMULA") ||
         command.starts_with("CLEAR") || command.starts_with("BATCH");
}

TEST(ServiceStressTest, ConcurrentSessionsMatchSerialOracle) {
  std::vector<std::vector<std::string>> streams;
  streams.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) streams.push_back(SessionCommands(i));

  // --- Concurrent run: 4 writers (2 sessions each) + cross readers. ---
  WorkbookServiceOptions options;
  options.shards = 4;
  options.worker_threads = 2;  // Pool unused here; threads drive directly.
  // Wave-parallel recalc inside every session, with thresholds forced to
  // zero so even these small dirty sets exercise the scheduler — the
  // serial oracle below proves determinism THROUGH the whole service
  // while TSan watches the scheduler run under real cross-session
  // concurrency.
  options.recalc_threads = 2;
  options.scheduler.min_parallel_cells = 1;
  options.scheduler.min_parallel_wave = 1;
  WorkbookService service(options);
  CommandProcessor processor(&service);

  std::vector<std::vector<std::string>> responses(kSessions);
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> reader_gets{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriterThreads; ++t) {
    threads.emplace_back([&, t] {
      // Round-robin across the owned sessions, one command at a time, so
      // every thread keeps several session locks hot simultaneously.
      std::vector<int> owned;
      for (int s = t; s < kSessions; s += kWriterThreads) owned.push_back(s);
      for (size_t c = 0; c < streams[0].size(); ++c) {
        for (int session : owned) {
          if (c < streams[session].size()) {
            responses[session].push_back(
                processor.Execute(streams[session][c]));
          }
        }
      }
    });
  }
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(0xBEEF + t);
      std::uniform_int_distribution<int> session(0, kSessions - 1);
      std::uniform_int_distribution<int> col(1, kMaxCol);
      std::uniform_int_distribution<int> row(1, kMaxRow);
      while (!writers_done.load()) {
        std::string name = "wb" + std::to_string(session(rng));
        std::string response = processor.Execute(
            "GET " + name + " " + CellName(col(rng), row(rng)));
        // Sessions appear as writers reach their OPEN; both outcomes are
        // legal under concurrency, crashes/races are not.
        EXPECT_TRUE(response.starts_with("VALUE") ||
                    response.starts_with("ERR NotFound"))
            << response;
        reader_gets.fetch_add(1);
        std::this_thread::yield();  // Don't starve writers on small hosts.
      }
    });
  }
  for (int t = 0; t < kWriterThreads; ++t) threads[t].join();
  writers_done.store(true);
  for (size_t t = kWriterThreads; t < threads.size(); ++t) threads[t].join();

  // --- Serial oracle: identical streams, one thread, fresh service. ---
  WorkbookServiceOptions oracle_options;
  oracle_options.worker_threads = 1;
  WorkbookService oracle(oracle_options);
  CommandProcessor oracle_processor(&oracle);
  std::vector<std::vector<std::string>> oracle_responses(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    for (const std::string& command : streams[i]) {
      oracle_responses[i].push_back(oracle_processor.Execute(command));
    }
  }

  // Every session: responses match the oracle line for line (timing
  // stripped) — this covers every in-stream GET value and every recalc
  // summary — and every BATCH reports exactly one merged recalc pass.
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_EQ(responses[i].size(), oracle_responses[i].size());
    uint64_t batches = 0;
    for (size_t c = 0; c < responses[i].size(); ++c) {
      EXPECT_EQ(Normalize(responses[i][c]), Normalize(oracle_responses[i][c]))
          << "session " << i << " command " << c << ": " << streams[i][c];
      if (streams[i][c].starts_with("BATCH")) {
        ++batches;
        EXPECT_NE(responses[i][c].find("passes=1"), std::string::npos)
            << responses[i][c];
      }
    }
    EXPECT_GT(batches, 0u) << "stream " << i << " exercised no batches";
  }

  // Final state: cell-for-cell equality against the oracle replay, both
  // as stored content (snapshot) and as evaluated values.
  for (int i = 0; i < kSessions; ++i) {
    std::string name = "wb" + std::to_string(i);
    auto session = service.Get(name);
    auto oracle_session = oracle.Get(name);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(oracle_session.ok());
    EXPECT_EQ((*session)->Snapshot(), (*oracle_session)->Snapshot())
        << "session " << name;
    for (int col = 1; col <= kMaxCol; ++col) {
      for (int row = 1; row <= kMaxRow; ++row) {
        Cell cell{col, row};
        EXPECT_EQ((*session)->GetValue(cell),
                  (*oracle_session)->GetValue(cell))
            << name << " " << cell.ToString();
      }
    }
    // Recalc-pass accounting: one pass per mutating command, batch or not.
    uint64_t expected_passes = 0;
    for (const std::string& command : streams[i]) {
      if (IsMutating(command)) ++expected_passes;
    }
    SessionStats stats = (*session)->Stats();
    EXPECT_EQ(stats.recalc_passes, expected_passes) << name;
    EXPECT_EQ(stats.recalc_passes, (*oracle_session)->Stats().recalc_passes);
  }
}

// The LRU eviction machinery under real concurrency: six file-bound
// sessions over a residency cap of two, two writer threads mutating
// their own sessions while churn threads Get/read across all of them —
// so save+park, transparent reload, and the epoch/use_count park
// re-checks all fire repeatedly under TSan. No write may ever be lost
// to a park racing it.
TEST(ServiceStressTest, ConcurrentEvictionParkReloadLosesNoEdits) {
  constexpr int kBound = 6;
  constexpr int kRounds = 25;

  WorkbookServiceOptions options;
  options.shards = 2;
  options.max_resident_sessions = 2;
  options.worker_threads = 1;
  WorkbookService service(options);

  auto session_name = [](int i) { return "ev" + std::to_string(i); };
  std::vector<std::string> paths(kBound);
  for (int i = 0; i < kBound; ++i) {
    paths[i] = (std::filesystem::temp_directory_path() /
                ("taco_evict_stress_" + std::to_string(i) + ".tsheet"))
                   .string();
    auto session = service.Open(session_name(i));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->SetNumber(Cell{1, 1}, 0).ok());
    ASSERT_TRUE(service.Save(session_name(i), paths[i]).ok());
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {  // Writers: sessions i with i%2==t.
    threads.emplace_back([&, t] {
      for (int round = 1; round <= kRounds; ++round) {
        for (int i = t; i < kBound; i += 2) {
          // Every round may hit a parked session: Get transparently
          // reloads it, and the write must land on the reloaded state.
          auto session = service.Get(session_name(i));
          ASSERT_TRUE(session.ok()) << session.status().ToString();
          ASSERT_TRUE((*session)->SetNumber(Cell{1, 1}, round).ok());
          ASSERT_TRUE(
              (*session)->SetNumber(Cell{2, 1}, i * 1000.0 + round).ok());
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {  // Churners: cross-session reads.
    threads.emplace_back([&, t] {
      std::mt19937 rng(0xEC0 + t);
      std::uniform_int_distribution<int> pick(0, kBound - 1);
      while (!done.load()) {
        auto session = service.Get(session_name(pick(rng)));
        if (session.ok()) (*session)->GetValue(Cell{1, 1});
        std::this_thread::yield();
      }
    });
  }
  for (int t = 0; t < 2; ++t) threads[t].join();
  done.store(true);
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();

  // Quiescent now: one more registry op must drain the backlog down to
  // the cap (nothing is pinned, everything is file-bound and savable).
  ASSERT_TRUE(service.Get(session_name(0)).ok());
  EXPECT_GT(service.evictions(), 0u);
  EXPECT_GT(service.parked_sessions(), 0u);

  // Every session — resident or parked — must carry its final writes.
  for (int i = 0; i < kBound; ++i) {
    auto session = service.Get(session_name(i));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_EQ((*session)->GetValue(Cell{1, 1}), Value::Number(kRounds))
        << session_name(i);
    EXPECT_EQ((*session)->GetValue(Cell{2, 1}),
              Value::Number(i * 1000.0 + kRounds))
        << session_name(i);
  }
  for (const std::string& path : paths) std::remove(path.c_str());
}

// The pool's per-key affinity must keep one session's commands in
// submission order even when many submitters interleave — the property
// taco_serve relies on for stdin dispatch.
TEST(ServiceStressTest, ThreadPoolKeyAffinityPreservesOrder) {
  constexpr int kKeys = 6;
  constexpr int kTasksPerKey = 200;
  std::vector<std::vector<int>> seen(kKeys);
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasksPerKey; ++i) {
      for (int k = 0; k < kKeys; ++k) {
        std::string key = "session-" + std::to_string(k);
        pool.Submit(key, [&seen, k, i] { seen[k].push_back(i); });
      }
    }
  }  // Destructor drains every queue.
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_EQ(seen[k].size(), static_cast<size_t>(kTasksPerKey));
    for (int i = 0; i < kTasksPerKey; ++i) {
      ASSERT_EQ(seen[k][i], i) << "key " << k << " ran out of order";
    }
  }
}

}  // namespace
}  // namespace taco
