// Structured logging sink (src/obs/log.h): formats, levels, the
// bounded drop-on-full queue, reopen-without-loss, and concurrency.
//
// The reopen and multi-producer suites are the SIGHUP/logrotate story:
// every event ACCEPTED into the ring must eventually appear in exactly
// one sink file, whatever renames happen underneath the writer.
#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/rid.h"

namespace taco::obs {
namespace {

std::string TempLogPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(LogLevelTest, ParsesEveryNameAndRejectsJunk) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  for (LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                     LogLevel::kError}) {
    LogLevel round = LogLevel::kDebug;
    ASSERT_TRUE(ParseLogLevel(std::string(LogLevelName(l)), &round));
    EXPECT_EQ(round, l);
  }
}

TEST(LogFormatTest, ParsesJsonTextAndLogfmtAlias) {
  LogFormat format = LogFormat::kJson;
  EXPECT_TRUE(ParseLogFormat("text", &format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_TRUE(ParseLogFormat("logfmt", &format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_TRUE(ParseLogFormat("json", &format));
  EXPECT_EQ(format, LogFormat::kJson);
  EXPECT_FALSE(ParseLogFormat("xml", &format));
}

TEST(LogTest, JsonLinesCarryTypedFieldsInOrder) {
  std::string path = TempLogPath("log_json.log");
  Logger::Options options;
  options.path = path;
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  logger->Log(LogLevel::kInfo, "unit.test",
              {{"name", "alpha"},
               {"count", 7u},
               {"delta", -3},
               {"ratio", 0.5},
               {"ok", true},
               {"stale", false}});
  logger->Flush();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  // Fixed prefix: timestamp, level, event — then fields in call order.
  EXPECT_EQ(line.rfind("{\"ts_us\":", 0), 0u) << line;
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"unit.test\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"alpha\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"count\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"delta\":-3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ratio\":0.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stale\":false"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '}');
  EXPECT_LT(line.find("\"name\""), line.find("\"count\""));
}

TEST(LogTest, JsonEscapesQuotesBackslashesAndControlBytes) {
  std::string path = TempLogPath("log_escape.log");
  Logger::Options options;
  options.path = path;
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  logger->Log(LogLevel::kInfo, "esc",
              {{"text", std::string("a\"b\\c\nd\te\rf") + '\x01' + "g"}});
  logger->Flush();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g"),
            std::string::npos)
      << lines[0];
}

TEST(LogTest, TextFormatIsLogfmtWithQuotingOnlyWhenNeeded) {
  std::string path = TempLogPath("log_text.log");
  Logger::Options options;
  options.path = path;
  options.format = LogFormat::kText;
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  logger->Log(LogLevel::kWarn, "unit.test",
              {{"plain", "bare"}, {"spaced", "two words"}, {"flag", true}});
  logger->Flush();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.rfind("ts_us=", 0), 0u) << line;
  EXPECT_NE(line.find(" level=warn "), std::string::npos) << line;
  EXPECT_NE(line.find(" event=unit.test "), std::string::npos) << line;
  EXPECT_NE(line.find(" plain=bare "), std::string::npos) << line;
  // Values with spaces get quoted; bare values do not.
  EXPECT_NE(line.find(" spaced=\"two words\" "), std::string::npos) << line;
  EXPECT_NE(line.find(" flag=true"), std::string::npos) << line;
}

TEST(LogTest, LevelGateSkipsDisabledEventsEntirely) {
  std::string path = TempLogPath("log_levels.log");
  Logger::Options options;
  options.path = path;
  options.level = LogLevel::kWarn;
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  EXPECT_FALSE(logger->enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger->enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger->enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger->enabled(LogLevel::kError));

  logger->Log(LogLevel::kDebug, "below", {});
  logger->Log(LogLevel::kInfo, "below", {});
  logger->Log(LogLevel::kWarn, "kept.warn", {});
  logger->Log(LogLevel::kError, "kept.error", {});
  logger->Flush();

  // Gated events are not accepted OR dropped — they never existed.
  EXPECT_EQ(logger->events_logged(), 2u);
  EXPECT_EQ(logger->events_dropped(), 0u);
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept.warn"), std::string::npos);
  EXPECT_NE(lines[1].find("kept.error"), std::string::npos);

  // The gate is dynamic: dropping to debug re-enables everything.
  logger->set_level(LogLevel::kDebug);
  EXPECT_TRUE(logger->enabled(LogLevel::kDebug));
  logger->Log(LogLevel::kDebug, "now.kept", {});
  logger->Flush();
  EXPECT_EQ(logger->events_logged(), 3u);
  EXPECT_EQ(ReadLines(path).size(), 3u);
}

TEST(LogTest, RidFromThreadScopeIsAttachedAutomatically) {
  std::string path = TempLogPath("log_rid.log");
  Logger::Options options;
  options.path = path;
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  logger->Log(LogLevel::kInfo, "outside", {});
  {
    RidScope scope(4242);
    logger->Log(LogLevel::kInfo, "inside", {{"k", 1}});
  }
  logger->Log(LogLevel::kInfo, "after", {});
  logger->Flush();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("\"rid\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"rid\":4242"), std::string::npos) << lines[1];
  // rid precedes the caller's fields, right after the event name.
  EXPECT_LT(lines[1].find("\"rid\""), lines[1].find("\"k\""));
  EXPECT_EQ(lines[2].find("\"rid\""), std::string::npos) << lines[2];
}

TEST(LogTest, OversizeEventsAreTruncatedNeverSplit) {
  std::string path = TempLogPath("log_trunc.log");
  Logger::Options options;
  options.path = path;
  options.max_event_bytes = 96;  // leaves room for the fixed prefix only
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  logger->Log(LogLevel::kInfo, "trunc",
              {{"blob", std::string(500, 'x')}, {"tail", "unreachable"}});
  logger->Log(LogLevel::kInfo, "fits", {});
  logger->Flush();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_LE(lines[0].size() + 1, 96u);  // +1 for the newline
  EXPECT_NE(lines[0].find("xxx"), std::string::npos);
  EXPECT_EQ(lines[0].find("unreachable"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"fits\""), std::string::npos);
}

TEST(LogTest, StderrSinkNeedsNoFileAndToleratesReopen) {
  Logger::Options options;  // empty path -> stderr
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);
  EXPECT_EQ(logger->path(), "");
  logger->Log(LogLevel::kError, "stderr.event", {{"n", 1}});
  logger->RequestReopen();  // documented no-op for the stderr sink
  logger->Flush();
  EXPECT_EQ(logger->events_logged(), 1u);
}

TEST(LogTest, OpenFailsCleanlyOnUnwritablePath) {
  Logger::Options options;
  options.path = ::testing::TempDir() + "/no_such_dir_for_logs/x.log";
  EXPECT_EQ(Logger::Open(options), nullptr);
}

TEST(LogTest, EveryAcceptedEventIsAccountedAndWritten) {
  std::string path = TempLogPath("log_account.log");
  Logger::Options options;
  options.path = path;
  options.queue_slots = 8;  // tiny ring: drops are expected, not fatal
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    logger->Log(LogLevel::kInfo, "burst", {{"i", i}});
  }
  logger->Flush();

  // The hot path's only contract: every emit is either accepted (and
  // then written, exactly once) or counted as dropped — never lost,
  // never blocked on.
  EXPECT_EQ(logger->events_logged() + logger->events_dropped(),
            static_cast<uint64_t>(kEvents));
  EXPECT_EQ(ReadLines(path).size(), logger->events_logged());
}

TEST(LogTest, ReopenAfterRotationLosesNothing) {
  std::string path = TempLogPath("log_rotate.log");
  std::string rotated = TempLogPath("log_rotate.log.1");
  Logger::Options options;
  options.path = path;
  options.queue_slots = 4096;  // larger than the event count: no drops
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  constexpr int kBefore = 300;
  constexpr int kAfter = 300;
  for (int i = 0; i < kBefore; ++i) {
    logger->Log(LogLevel::kInfo, "rot", {{"i", i}});
  }

  // Classic logrotate: rename the live file, then poke the process.
  // The writer keeps appending to the renamed file until it honours the
  // reopen, after which new events land in a fresh file at `path`.
  ASSERT_EQ(std::rename(path.c_str(), rotated.c_str()), 0);
  logger->RequestReopen();
  for (int i = kBefore; i < kBefore + kAfter; ++i) {
    logger->Log(LogLevel::kInfo, "rot", {{"i", i}});
  }
  logger->Flush();

  ASSERT_EQ(logger->events_dropped(), 0u);
  ASSERT_EQ(logger->events_logged(),
            static_cast<uint64_t>(kBefore + kAfter));

  // Every event appears exactly once, across the two files combined.
  std::set<int> seen;
  size_t total_lines = 0;
  for (const std::string& file : {rotated, path}) {
    for (const std::string& line : ReadLines(file)) {
      ++total_lines;
      size_t at = line.find("\"i\":");
      ASSERT_NE(at, std::string::npos) << line;
      int id = std::stoi(line.substr(at + 4));
      EXPECT_TRUE(seen.insert(id).second) << "duplicate event " << id;
    }
  }
  EXPECT_EQ(total_lines, static_cast<size_t>(kBefore + kAfter));
  EXPECT_EQ(seen.size(), static_cast<size_t>(kBefore + kAfter));
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), kBefore + kAfter - 1);
  // The reopen really did create a fresh file at the original path.
  EXPECT_FALSE(ReadLines(path).empty());
}

TEST(LogTest, ConcurrentProducersNeverLoseOrDuplicate) {
  std::string path = TempLogPath("log_mt.log");
  Logger::Options options;
  options.path = path;
  options.queue_slots = 64;  // force contention AND wraparound
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RidScope scope(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        logger->Log(LogLevel::kInfo, "mt",
                    {{"tid", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  logger->Flush();

  EXPECT_EQ(logger->events_logged() + logger->events_dropped(),
            static_cast<uint64_t>(kThreads * kPerThread));
  std::vector<std::string> lines = ReadLines(path);
  EXPECT_EQ(lines.size(), logger->events_logged());
  // No torn lines: each is a complete JSON object with both fields.
  std::set<std::pair<int, int>> seen;
  for (const std::string& line : lines) {
    ASSERT_EQ(line.rfind("{\"ts_us\":", 0), 0u) << line;
    ASSERT_EQ(line.back(), '}') << line;
    size_t tid_at = line.find("\"tid\":");
    size_t i_at = line.find("\"i\":");
    ASSERT_NE(tid_at, std::string::npos) << line;
    ASSERT_NE(i_at, std::string::npos) << line;
    int tid = std::stoi(line.substr(tid_at + 6));
    int i = std::stoi(line.substr(i_at + 4));
    EXPECT_TRUE(seen.insert({tid, i}).second)
        << "duplicate tid=" << tid << " i=" << i;
    // The producer's rid must ride along: rid == tid + 1 by scope.
    EXPECT_NE(line.find("\"rid\":" + std::to_string(tid + 1)),
              std::string::npos)
        << line;
  }
}

TEST(LogTest, FlushWaitsForEverythingAcceptedBeforeIt) {
  std::string path = TempLogPath("log_flush.log");
  Logger::Options options;
  options.path = path;
  auto logger = Logger::Open(options);
  ASSERT_NE(logger, nullptr);

  for (int round = 0; round < 50; ++round) {
    logger->Log(LogLevel::kInfo, "flush", {{"round", round}});
    logger->Flush();
    // Flush's contract: the event just accepted is on disk NOW.
    EXPECT_EQ(ReadLines(path).size(), static_cast<size_t>(round + 1));
  }
}

TEST(LogTest, DestructorDrainsPendingEvents) {
  std::string path = TempLogPath("log_dtor.log");
  uint64_t accepted = 0;
  {
    Logger::Options options;
    options.path = path;
    auto logger = Logger::Open(options);
    ASSERT_NE(logger, nullptr);
    for (int i = 0; i < 200; ++i) {
      logger->Log(LogLevel::kInfo, "dtor", {{"i", i}});
    }
    accepted = logger->events_logged();
    // No Flush: teardown itself must not lose accepted events.
  }
  EXPECT_EQ(ReadLines(path).size(), accepted);
}

}  // namespace
}  // namespace taco::obs
