// Unit tests for the observability primitives (src/obs): histogram
// bucketing and quantiles, concurrent recording, the trace-span ring,
// and the Prometheus text-format builder. The service-level wiring
// (METRICS verb, /metrics endpoint, conformance of the full exposition)
// lives in observability_test.cc.

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace taco::obs {
namespace {

// ---------------------------------------------------------------------
// Bucket geometry.

TEST(HistogramBucketsTest, BoundsAreStrictlyMonotonicFromOneMicrosecond) {
  const auto& bounds = LatencyHistogram::BucketBoundsNs();
  EXPECT_EQ(bounds.front(), 1000u);  // 1µs.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bucket " << i;
    // Log spacing: the ratio is 10^(1/5) within integer rounding.
    double ratio = double(bounds[i]) / double(bounds[i - 1]);
    EXPECT_NEAR(ratio, std::pow(10.0, 0.2), 0.01) << "bucket " << i;
  }
  // Five decades * ... : the top bound covers paper-scale full recalcs.
  EXPECT_GT(bounds.back(), 60u * 1000 * 1000 * 1000);  // > 60 s.
}

TEST(HistogramBucketsTest, BucketIndexEdges) {
  const auto& bounds = LatencyHistogram::BucketBoundsNs();
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(999), 0u);
  // Bounds are exclusive upper: a sample exactly at a bound moves up.
  EXPECT_EQ(LatencyHistogram::BucketIndex(1000), 1u);
  for (size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(bounds[i] - 1), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(bounds[i]), i + 1);
  }
  // At or past the last bound: overflow.
  EXPECT_EQ(LatencyHistogram::BucketIndex(bounds.back()),
            LatencyHistogram::kBuckets);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kBuckets);
}

// The regression this subsystem exists to fix: a 5µs read must land in
// a nonzero bucket and survive into the quantiles, instead of being
// flushed to zero by millisecond-unit aggregation.
TEST(HistogramBucketsTest, FiveMicrosecondSampleLandsInANonzeroBucket) {
  LatencyHistogram histogram;
  histogram.Record(5000);  // 5µs.
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_EQ(snapshot.sum_ns, 5000u);
  size_t index = LatencyHistogram::BucketIndex(5000);
  EXPECT_GT(index, 0u);
  EXPECT_EQ(snapshot.buckets[index], 1u);
  // And every quantile of the one-sample distribution is ~5µs, not 0.
  EXPECT_GT(snapshot.QuantileNs(0.5), 0.0);
  EXPECT_LE(snapshot.QuantileNs(0.99), 5000.0 + 1e-9);
}

// ---------------------------------------------------------------------
// Quantiles.

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.QuantileNs(0.5), 0.0);
  EXPECT_EQ(empty.MeanNs(), 0.0);
}

TEST(HistogramQuantileTest, QuantilesAreOrderedAndBucketAccurate) {
  LatencyHistogram histogram;
  // 90 fast samples at 2µs, 10 slow at 40ms: p50 must sit in the fast
  // bucket, p99 in the slow one, and the estimates must be within one
  // bucket ratio (~1.585x) of the true values.
  for (int i = 0; i < 90; ++i) histogram.Record(2000);
  for (int i = 0; i < 10; ++i) histogram.Record(40 * 1000 * 1000);
  HistogramSnapshot snapshot = histogram.Snapshot();
  double p50 = snapshot.QuantileNs(0.50);
  double p95 = snapshot.QuantileNs(0.95);
  double p99 = snapshot.QuantileNs(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1000.0);
  EXPECT_LE(p50, 2000.0 * 1.585);
  EXPECT_GE(p99, 40e6 / 1.585);
  EXPECT_LE(p99, 40e6 * 1.585);
  EXPECT_EQ(snapshot.max_ns, 40u * 1000 * 1000);
  // A finite bucket caps at max_ns: no quantile exceeds the observed max.
  EXPECT_LE(snapshot.QuantileNs(1.0), double(snapshot.max_ns));
}

TEST(HistogramQuantileTest, OverflowBucketInterpolatesTowardMax) {
  LatencyHistogram histogram;
  const auto& bounds = LatencyHistogram::BucketBoundsNs();
  uint64_t huge = bounds.back() + 5'000'000'000;  // Well past the top.
  histogram.Record(huge);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.buckets[LatencyHistogram::kBuckets], 1u);
  double p50 = snapshot.QuantileNs(0.5);
  EXPECT_GE(p50, double(bounds.back()));
  EXPECT_LE(p50, double(huge));
}

TEST(HistogramQuantileTest, MergeSumsBucketsAndTakesMaxOfMax) {
  LatencyHistogram a, b;
  a.Record(2000);
  b.Record(8000);
  b.Record(8000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum_ns, 18000u);
  EXPECT_EQ(merged.max_ns, 8000u);
  EXPECT_EQ(merged.buckets[LatencyHistogram::BucketIndex(2000)], 1u);
  EXPECT_EQ(merged.buckets[LatencyHistogram::BucketIndex(8000)], 2u);
}

// ---------------------------------------------------------------------
// Concurrency: counts must be exact under parallel recording (the
// sharding changes where samples land, never how many).

TEST(HistogramConcurrencyTest, ParallelRecordersLoseNothing) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(uint64_t(1000 + (t * kPerThread + i) % 100000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, uint64_t(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snapshot.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_GE(snapshot.max_ns, 100000u);
}

// ---------------------------------------------------------------------
// Trace ring.

TraceSpan MakeSpan(const std::string& op, uint64_t total_ns) {
  TraceSpan span;
  span.op = op;
  span.session = "s";
  span.total_ns = total_ns;
  return span;
}

TEST(TraceRingTest, AssignsMonotonicSequenceNumbers) {
  TraceRing ring(4);
  for (int i = 0; i < 3; ++i) ring.Record(MakeSpan("SET", 1000));
  EXPECT_EQ(ring.recorded(), 3u);
  std::vector<TraceSpan> spans = ring.Newest(0);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].seq, 3u);  // Newest first.
  EXPECT_EQ(spans[1].seq, 2u);
  EXPECT_EQ(spans[2].seq, 1u);
}

TEST(TraceRingTest, WrapsKeepingTheNewestSpans) {
  TraceRing ring(4);
  for (int i = 1; i <= 10; ++i) {
    ring.Record(MakeSpan("OP" + std::to_string(i), uint64_t(i) * 1000));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  std::vector<TraceSpan> spans = ring.Newest(0);
  ASSERT_EQ(spans.size(), 4u);  // Capacity bound, not record count.
  EXPECT_EQ(spans[0].seq, 10u);
  EXPECT_EQ(spans[0].op, "OP10");
  EXPECT_EQ(spans[3].seq, 7u);
  EXPECT_EQ(spans[3].op, "OP7");
  // Asking for more than held clamps; asking for less truncates.
  EXPECT_EQ(ring.Newest(100).size(), 4u);
  std::vector<TraceSpan> two = ring.Newest(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].seq, 10u);
  EXPECT_EQ(two[1].seq, 9u);
}

TEST(TraceRingTest, CountsSpansLostToOverwrite) {
  TraceRing ring(4);
  EXPECT_EQ(ring.overwritten(), 0u);
  for (int i = 0; i < 4; ++i) ring.Record(MakeSpan("SET", 1000));
  EXPECT_EQ(ring.overwritten(), 0u);  // Exactly full: nothing lost yet.
  ring.Record(MakeSpan("SET", 1000));
  EXPECT_EQ(ring.overwritten(), 1u);
  for (int i = 0; i < 10; ++i) ring.Record(MakeSpan("SET", 1000));
  EXPECT_EQ(ring.overwritten(), 11u);
  EXPECT_EQ(ring.recorded(), 15u);
}

TEST(TraceRingTest, SlowThresholdGatesNothingWhenUnset) {
  TraceRing ring(4);
  EXPECT_EQ(ring.slow_threshold_ns(), 0u);
  ring.set_slow_threshold_ns(5'000'000);
  EXPECT_EQ(ring.slow_threshold_ns(), 5'000'000u);
  // Recording around the threshold must not disturb the ring contents
  // (the stderr mirror is a side effect; the ring keeps every span).
  ring.Record(MakeSpan("FAST", 1000));
  ring.Record(MakeSpan("SLOW", 10'000'000));
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.Newest(1)[0].op, "SLOW");
}

TEST(TraceRingTest, ToLineRendersEveryPhaseInMicroseconds) {
  TraceSpan span;
  span.seq = 7;
  span.rid = 91;
  span.op = "SET";
  span.session = "book";
  span.detail = "B2";
  span.ok = true;
  span.total_ns = 1'234'000;
  span.lock_wait_ns = 10'000;
  span.find_dependents_ns = 200'000;
  span.eval_ns = 900'000;
  span.publish_ns = 50'000;
  span.wal_fsync_ns = 60'000;
  span.respond_ns = 14'000;
  span.dirty_cells = 42;
  span.waves = 3;
  EXPECT_EQ(span.ToLine(),
            "span seq=7 rid=91 op=SET session=book detail=B2 ok=1 "
            "total_us=1234 lock_us=10 find_us=200 eval_us=900 publish_us=50 "
            "fsync_us=60 respond_us=14 dirty=42 waves=3");
  span.detail.clear();
  EXPECT_NE(span.ToLine().find("detail=- "), std::string::npos);
}

TEST(TraceRingTest, ConcurrentRecordersKeepSequenceDense) {
  TraceRing ring(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; ++i) ring.Record(MakeSpan("SET", 100));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ring.recorded(), uint64_t(kThreads) * kPerThread);
  std::vector<TraceSpan> spans = ring.Newest(0);
  ASSERT_EQ(spans.size(), 64u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, uint64_t(kThreads) * kPerThread - i);
  }
}

// ---------------------------------------------------------------------
// Prometheus builder.

TEST(PromBuilderTest, MetricNameGrammar) {
  EXPECT_TRUE(IsValidMetricName("taco_ops_total"));
  EXPECT_TRUE(IsValidMetricName("a:b_c9"));
  EXPECT_TRUE(IsValidMetricName("_private"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9lives"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("unicode\xc3\xa9"));
}

TEST(PromBuilderTest, EscapesLabelValues) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(PromBuilderTest, RendersFamilyAndSamples) {
  PromBuilder builder;
  builder.Family("taco_ops_total", "Operations served.", "counter");
  builder.Sample("taco_ops_total", {{"op", "SET"}}, 41);
  builder.Sample("taco_ops_total", {{"op", "evil\"quote"}}, 1.5);
  std::string text = std::move(builder).Finish();
  EXPECT_EQ(text,
            "# HELP taco_ops_total Operations served.\n"
            "# TYPE taco_ops_total counter\n"
            "taco_ops_total{op=\"SET\"} 41\n"
            "taco_ops_total{op=\"evil\\\"quote\"} 1.5\n");
}

TEST(PromBuilderTest, HistogramRendersCumulativeBucketsInSeconds) {
  LatencyHistogram histogram;
  histogram.Record(2000);   // 2µs.
  histogram.Record(2500);   // 2.5µs, same bucket region.
  histogram.Record(900000); // 0.9ms.
  PromBuilder builder;
  builder.Family("t_seconds", "Latency.", "histogram");
  builder.Histogram("t_seconds", {{"op", "GET"}}, histogram.Snapshot());
  std::string text = std::move(builder).Finish();

  // Every finite bucket, one +Inf, one _sum, one _count.
  size_t bucket_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("t_seconds_bucket{", pos)) != std::string::npos) {
    ++bucket_lines;
    pos += 1;
  }
  EXPECT_EQ(bucket_lines, LatencyHistogram::kBuckets + 1);
  EXPECT_NE(text.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_count{op=\"GET\"} 3\n"), std::string::npos);
  // le values are in seconds: the first bound is 1µs -> 1e-06.
  EXPECT_NE(text.find("le=\"1e-06\"} 0\n"), std::string::npos);
  // Cumulative counts never decrease down the bucket list.
  long previous = -1;
  pos = 0;
  while ((pos = text.find("t_seconds_bucket{", pos)) != std::string::npos) {
    size_t space = text.find(' ', text.find('}', pos));
    long value = std::stol(text.substr(space + 1));
    EXPECT_GE(value, previous);
    previous = value;
    pos += 1;
  }
  // _sum is in seconds too.
  size_t sum_pos = text.find("t_seconds_sum{op=\"GET\"} ");
  ASSERT_NE(sum_pos, std::string::npos);
  double sum = std::stod(text.substr(sum_pos + strlen("t_seconds_sum{op=\"GET\"} ")));
  EXPECT_NEAR(sum, (2000 + 2500 + 900000) / 1e9, 1e-12);
}

}  // namespace
}  // namespace taco::obs
