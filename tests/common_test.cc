// Unit and property tests for the cell/range algebra and A1 notation.

#include <algorithm>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "common/a1.h"
#include "common/cell.h"
#include "common/range.h"
#include "common/status.h"

namespace taco {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::EvalError("x").code(), StatusCode::kEvalError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

// ---------------------------------------------------------------------------
// Cell and Offset

TEST(CellTest, ArithmeticRoundTrips) {
  Cell a{5, 10};
  Offset o{-2, 3};
  Cell b = a + o;
  EXPECT_EQ(b, (Cell{3, 13}));
  EXPECT_EQ(b - o, a);
  EXPECT_EQ(b - a, o);
  EXPECT_EQ(-o, (Offset{2, -3}));
}

TEST(CellTest, ValidityBounds) {
  EXPECT_TRUE((Cell{1, 1}).IsValid());
  EXPECT_TRUE((Cell{kMaxCol, kMaxRow}).IsValid());
  EXPECT_FALSE((Cell{0, 1}).IsValid());
  EXPECT_FALSE((Cell{1, 0}).IsValid());
  EXPECT_FALSE((Cell{kMaxCol + 1, 1}).IsValid());
  EXPECT_FALSE((Cell{1, kMaxRow + 1}).IsValid());
}

TEST(CellTest, OrderingIsColumnMajor) {
  EXPECT_LT((Cell{1, 5}), (Cell{2, 1}));
  EXPECT_LT((Cell{2, 1}), (Cell{2, 2}));
  EXPECT_FALSE((Cell{2, 2}) < (Cell{2, 2}));
}

TEST(CellTest, DominanceIsComponentwise) {
  EXPECT_TRUE(DominatedBy(Cell{1, 1}, Cell{2, 2}));
  EXPECT_TRUE(DominatedBy(Cell{2, 2}, Cell{2, 2}));
  EXPECT_FALSE(DominatedBy(Cell{1, 3}, Cell{2, 2}));
  EXPECT_FALSE(DominatedBy(Cell{3, 1}, Cell{2, 2}));
}

// ---------------------------------------------------------------------------
// Range basics

TEST(RangeTest, GeometryAccessors) {
  Range r(2, 3, 4, 7);
  EXPECT_EQ(r.width(), 3);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.Area(), 15u);
  EXPECT_FALSE(r.IsSingleCell());
  EXPECT_FALSE(r.IsLine());
  EXPECT_TRUE(Range(Cell{2, 2}).IsSingleCell());
  EXPECT_TRUE(Range(2, 1, 2, 9).IsLine());
  EXPECT_TRUE(Range(1, 4, 9, 4).IsLine());
}

TEST(RangeTest, ContainsAndOverlaps) {
  Range r(2, 2, 5, 5);
  EXPECT_TRUE(r.Contains(Cell{2, 2}));
  EXPECT_TRUE(r.Contains(Cell{5, 5}));
  EXPECT_FALSE(r.Contains(Cell{1, 2}));
  EXPECT_TRUE(r.Contains(Range(3, 3, 4, 4)));
  EXPECT_FALSE(r.Contains(Range(3, 3, 6, 4)));
  EXPECT_TRUE(r.Overlaps(Range(5, 5, 9, 9)));
  EXPECT_FALSE(r.Overlaps(Range(6, 6, 9, 9)));
  EXPECT_TRUE(r.Overlaps(r));
}

TEST(RangeTest, IntersectMatchesOverlap) {
  Range a(2, 2, 5, 5);
  auto overlap = a.Intersect(Range(4, 1, 8, 3));
  ASSERT_TRUE(overlap.has_value());
  EXPECT_EQ(*overlap, Range(4, 2, 5, 3));
  EXPECT_FALSE(a.Intersect(Range(6, 6, 7, 7)).has_value());
}

TEST(RangeTest, BoundingUnionIsPaperOperator) {
  // The paper's example: A1:A3 ⊕ A2:A5 = A1:A5.
  Range a(1, 1, 1, 3);
  Range b(1, 2, 1, 5);
  EXPECT_EQ(a.BoundingUnion(b), Range(1, 1, 1, 5));
  // Disjoint rectangles still produce the bounding box.
  EXPECT_EQ(Range(1, 1, 1, 1).BoundingUnion(Range(3, 4, 3, 4)),
            Range(1, 1, 3, 4));
}

TEST(RangeTest, ShiftedTranslates) {
  EXPECT_EQ(Range(2, 2, 3, 4).Shifted(Offset{1, -1}), Range(3, 1, 4, 3));
}

TEST(RangeTest, TouchesOnAxisColumn) {
  Range top(3, 1, 3, 4);
  Range below(3, 5, 3, 5);
  EXPECT_TRUE(top.TouchesOnAxis(below, Axis::kColumn));
  EXPECT_TRUE(below.TouchesOnAxis(top, Axis::kColumn));
  EXPECT_FALSE(top.TouchesOnAxis(below, Axis::kRow));
  // Different column: not adjacent on the column axis.
  EXPECT_FALSE(top.TouchesOnAxis(Range(4, 5, 4, 5), Axis::kColumn));
  // Overlapping, not touching.
  EXPECT_FALSE(top.TouchesOnAxis(Range(3, 4, 3, 6), Axis::kColumn));
  // Gap of one row: not touching.
  EXPECT_FALSE(top.TouchesOnAxis(Range(3, 6, 3, 6), Axis::kColumn));
}

TEST(RangeTest, TouchesOnAxisRow) {
  Range left(1, 2, 4, 2);
  Range right(5, 2, 5, 2);
  EXPECT_TRUE(left.TouchesOnAxis(right, Axis::kRow));
  EXPECT_TRUE(right.TouchesOnAxis(left, Axis::kRow));
  EXPECT_FALSE(left.TouchesOnAxis(Range(5, 3, 5, 3), Axis::kRow));
}

// ---------------------------------------------------------------------------
// Rectangle subtraction (exactness properties)

// Brute-force oracle: the set of cells in a but not in any subtrahend.
std::set<std::pair<int, int>> BruteDifference(
    const Range& a, const std::vector<Range>& subs) {
  std::set<std::pair<int, int>> cells;
  for (const Cell& c : EnumerateCells(a)) {
    bool covered = false;
    for (const Range& s : subs) {
      if (s.Contains(c)) {
        covered = true;
        break;
      }
    }
    if (!covered) cells.insert({c.col, c.row});
  }
  return cells;
}

std::set<std::pair<int, int>> CellsOf(const std::vector<Range>& ranges) {
  std::set<std::pair<int, int>> cells;
  for (const Range& r : ranges) {
    for (const Cell& c : EnumerateCells(r)) {
      cells.insert({c.col, c.row});
    }
  }
  return cells;
}

TEST(RangeSubtractTest, DisjointReturnsOriginal) {
  std::vector<Range> out;
  SubtractRange(Range(1, 1, 2, 2), Range(5, 5, 6, 6), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(1, 1, 2, 2));
}

TEST(RangeSubtractTest, FullCoverReturnsEmpty) {
  std::vector<Range> out;
  SubtractRange(Range(2, 2, 3, 3), Range(1, 1, 5, 5), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RangeSubtractTest, CenterHoleProducesFourPieces) {
  std::vector<Range> out;
  SubtractRange(Range(1, 1, 5, 5), Range(3, 3, 3, 3), &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(CellsOf(out), BruteDifference(Range(1, 1, 5, 5), {Range(3, 3, 3, 3)}));
}

TEST(RangeSubtractTest, PaperRemoveDepExample) {
  // Removing C2 from C1:C4 leaves C1 and C3:C4 (Sec. III-B).
  std::vector<Range> out =
      SubtractRanges(Range(3, 1, 3, 4), std::vector<Range>{Range(3, 2, 3, 2)});
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out[0], Range(3, 1, 3, 1));
  EXPECT_EQ(out[1], Range(3, 3, 3, 4));
}

// Property: subtraction pieces are disjoint and exactly cover a \ b,
// swept over randomized rectangles.
TEST(RangeSubtractTest, RandomizedExactness) {
  std::mt19937 rng(20230210);
  std::uniform_int_distribution<int> coord(1, 12);
  for (int trial = 0; trial < 500; ++trial) {
    auto random_range = [&] {
      int c1 = coord(rng), c2 = coord(rng);
      int r1 = coord(rng), r2 = coord(rng);
      return Range(std::min(c1, c2), std::min(r1, r2), std::max(c1, c2),
                   std::max(r1, r2));
    };
    Range a = random_range();
    std::vector<Range> subs;
    int n_subs = 1 + trial % 4;
    for (int i = 0; i < n_subs; ++i) subs.push_back(random_range());

    std::vector<Range> pieces = SubtractRanges(a, subs);
    // Exactness.
    EXPECT_EQ(CellsOf(pieces), BruteDifference(a, subs));
    // Disjointness.
    for (size_t i = 0; i < pieces.size(); ++i) {
      for (size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_FALSE(pieces[i].Overlaps(pieces[j]))
            << pieces[i].ToString() << " overlaps " << pieces[j].ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A1 notation

TEST(A1Test, ColumnLettersRoundTrip) {
  EXPECT_EQ(ColumnToLetters(1), "A");
  EXPECT_EQ(ColumnToLetters(26), "Z");
  EXPECT_EQ(ColumnToLetters(27), "AA");
  EXPECT_EQ(ColumnToLetters(28), "AB");
  EXPECT_EQ(ColumnToLetters(702), "ZZ");
  EXPECT_EQ(ColumnToLetters(703), "AAA");
  EXPECT_EQ(ColumnToLetters(kMaxCol), "XFD");

  for (int col : {1, 2, 25, 26, 27, 51, 52, 701, 702, 703, 1000, kMaxCol}) {
    auto back = LettersToColumn(ColumnToLetters(col));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, col);
  }
}

TEST(A1Test, LettersToColumnRejectsBadInput) {
  EXPECT_FALSE(LettersToColumn("").ok());
  EXPECT_FALSE(LettersToColumn("A1").ok());
  EXPECT_FALSE(LettersToColumn("XFE").ok());  // one past the max column
}

TEST(A1Test, ParseCell) {
  auto c = ParseCellA1("B7");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (Cell{2, 7}));
  EXPECT_TRUE(ParseCellA1("$B$7").ok());
  EXPECT_FALSE(ParseCellA1("B").ok());
  EXPECT_FALSE(ParseCellA1("7").ok());
  EXPECT_FALSE(ParseCellA1("B7x").ok());
  EXPECT_FALSE(ParseCellA1("B0").ok());
}

TEST(A1Test, ParseRangeWithFlags) {
  auto ref = ParseA1("$B$1:B4");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->range, Range(2, 1, 2, 4));
  EXPECT_TRUE(ref->head_flags.abs_col);
  EXPECT_TRUE(ref->head_flags.abs_row);
  EXPECT_FALSE(ref->tail_flags.abs_col);
  EXPECT_FALSE(ref->tail_flags.abs_row);
  EXPECT_FALSE(ref->is_single_cell);
}

TEST(A1Test, ParseSingleCellReference) {
  auto ref = ParseA1("C9");
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->is_single_cell);
  EXPECT_EQ(ref->range, Range(Cell{3, 9}));
}

TEST(A1Test, ParseNormalizesReversedCorners) {
  auto ref = ParseA1("B3:A1");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->range, Range(1, 1, 2, 3));
}

TEST(A1Test, PrintRoundTrip) {
  EXPECT_EQ(CellToA1(Cell{2, 7}), "B7");
  EXPECT_EQ(CellToA1(Cell{2, 7}, AbsFlags{true, true}), "$B$7");
  EXPECT_EQ(CellToA1(Cell{2, 7}, AbsFlags{true, false}), "$B7");
  EXPECT_EQ(RangeToA1(Range(1, 1, 2, 3)), "A1:B3");
  EXPECT_EQ(RangeToA1(Range(Cell{3, 3})), "C3");
  EXPECT_EQ((Range(1, 1, 2, 3)).ToString(), "A1:B3");
  EXPECT_EQ((Cell{27, 14}).ToString(), "AA14");
}

// Property sweep: ParseA1(RangeToA1(r)) == r over a grid of ranges.
class A1RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(A1RoundTripTest, RangeRoundTrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> col(1, 1000);
  std::uniform_int_distribution<int> row(1, 100000);
  for (int i = 0; i < 200; ++i) {
    int c1 = col(rng), c2 = col(rng), r1 = row(rng), r2 = row(rng);
    Range r(std::min(c1, c2), std::min(r1, r2), std::max(c1, c2),
            std::max(r1, r2));
    auto parsed = ParseA1(RangeToA1(r));
    ASSERT_TRUE(parsed.ok()) << RangeToA1(r);
    EXPECT_EQ(parsed->range, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, A1RoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace taco
